// §5.3 ablation — KSG vs KDE vs shrinkage binning.
//
// The paper justifies KSG with three claims: (1) the kernel approach is
// orders of magnitude slower, (2) the kernel approach has larger variance
// in higher dimensions, (3) the shrinkage binning estimator overestimates
// so strongly under sparse high-dimensional sampling that "almost no change
// in information could be seen". This bench reproduces all three.
#include <chrono>
#include <functional>
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace sops;
using Clock = std::chrono::steady_clock;

info::SampleMatrix correlated_blocks(std::size_t m, std::size_t blocks,
                                     double rho, std::uint64_t seed) {
  rng::Xoshiro256 engine(seed);
  info::SampleMatrix samples(m, blocks);
  for (std::size_t s = 0; s < m; ++s) {
    const double shared = rng::standard_normal(engine);
    for (std::size_t d = 0; d < blocks; ++d) {
      samples(s, d) = rho * shared +
                      std::sqrt(1 - rho * rho) * rng::standard_normal(engine);
    }
  }
  return samples;
}

double time_ms(const std::function<double()>& fn, double& result) {
  const auto start = Clock::now();
  result = fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Ablation (par. 5.3): KSG vs KDE vs shrinkage binning",
      "KSG is faster and tighter; KDE slower with more variance; binning "
      "overestimates in high dimension",
      args);

  const std::size_t m = args.samples(400, 1000);

  // --- Accuracy & speed on a 2-block Gaussian with known MI. -------------
  const double rho = 0.7;
  const double truth = info::gaussian_mi_bits(rho);
  const auto pair = correlated_blocks(m, 2, std::sqrt(rho), 1);
  const auto blocks2 = info::uniform_blocks(2, 1);

  double ksg_value = 0.0;
  double kde_value = 0.0;
  double bin_value = 0.0;
  const double ksg_ms = time_ms(
      [&] { return info::multi_information_ksg(pair, blocks2); }, ksg_value);
  const double kde_ms = time_ms(
      [&] { return info::multi_information_kde(pair, blocks2); }, kde_value);
  const double bin_ms = time_ms(
      [&] {
        return info::multi_information_binned(pair, blocks2,
                                              info::BinningOptions{});
      },
      bin_value);

  std::cout << "bivariate Gaussian (rho leading to I = " << truth << " bits), m = "
            << m << ":\n"
            << "  KSG     " << ksg_value << " bits in " << ksg_ms << " ms\n"
            << "  KDE     " << kde_value << " bits in " << kde_ms << " ms\n"
            << "  binning " << bin_value << " bits in " << bin_ms << " ms\n\n";

  // --- Variance and speed across repetitions in higher dimension. --------
  // ML plug-in binning (no shrinkage) is the estimator whose §5.3 failure
  // mode the paper describes; with James–Stein shrinkage over the huge
  // joint support the estimate instead collapses toward the uniform target
  // (reported below as an informational line).
  const std::size_t dim = 10;       // "more than ten particles (20 dim)" scale
  const std::size_t reps = args.fast ? 6 : 12;
  const std::size_t m_high = args.samples(250, 600);
  info::BinningOptions ml_binning;
  ml_binning.james_stein_shrinkage = false;
  // Single-threaded estimators for the timing comparison: wall-clock of the
  // multithreaded paths on a contended machine is too noisy to compare.
  info::KsgOptions ksg_serial;
  ksg_serial.threads = 1;
  info::KdeOptions kde_serial;
  kde_serial.threads = 1;
  std::vector<double> ksg_values;
  std::vector<double> kde_values;
  std::vector<double> bin_values;
  double ksg_total_ms = 0.0;
  double kde_total_ms = 0.0;
  const auto blocks_high = info::uniform_blocks(dim, 1);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto samples = correlated_blocks(m_high, dim, 0.5, 100 + rep);
    double value = 0.0;
    ksg_total_ms += time_ms(
        [&] {
          return info::multi_information_ksg(samples, blocks_high, ksg_serial);
        },
        value);
    ksg_values.push_back(value);
    kde_total_ms += time_ms(
        [&] {
          return info::multi_information_kde(samples, blocks_high, kde_serial);
        },
        value);
    kde_values.push_back(value);
    bin_values.push_back(
        info::multi_information_binned(samples, blocks_high, ml_binning));
  }
  auto stddev = [](const std::vector<double>& values) {
    double mean = 0.0;
    for (const double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (const double v : values) var += (v - mean) * (v - mean);
    return std::sqrt(var / static_cast<double>(values.size()));
  };
  auto mean_of = [](const std::vector<double>& values) {
    double mean = 0.0;
    for (const double v : values) mean += v;
    return mean / static_cast<double>(values.size());
  };
  std::cout << dim << "-dimensional ensembles, " << reps << " repetitions ("
            << ksg_total_ms << " ms KSG vs " << kde_total_ms << " ms KDE):\n"
            << "  KSG     mean " << mean_of(ksg_values) << "  sd "
            << stddev(ksg_values) << "\n"
            << "  KDE     mean " << mean_of(kde_values) << "  sd "
            << stddev(kde_values) << "\n"
            << "  binning mean " << mean_of(bin_values) << "  sd "
            << stddev(bin_values) << "\n\n";

  // --- The "no change visible" failure: binning on sparse independent vs
  //     organized ensembles.
  const auto independent = correlated_blocks(m_high, dim, 0.0, 500);
  const auto organized = correlated_blocks(m_high, dim, 0.8, 501);
  const double bin_indep =
      info::multi_information_binned(independent, blocks_high, ml_binning);
  const double bin_org =
      info::multi_information_binned(organized, blocks_high, ml_binning);
  const double shrunk_indep = info::multi_information_binned(
      independent, blocks_high, info::BinningOptions{});
  std::cout << "informational: shrinkage binning on the sparse joint support "
               "collapses to "
            << shrunk_indep << " bits (uniform-target domination)\n";
  const double ksg_indep = info::multi_information_ksg(independent, blocks_high);
  const double ksg_org = info::multi_information_ksg(organized, blocks_high);
  std::cout << "independent vs organized (true Delta large):\n"
            << "  binning: " << bin_indep << " -> " << bin_org
            << "  (relative change "
            << (bin_org - bin_indep) / std::max(bin_indep, 1e-9) << ")\n"
            << "  KSG:     " << ksg_indep << " -> " << ksg_org << "\n\n";

  io::CsvTable table;
  table.header = {"estimator", "bivariate_value", "bivariate_ms",
                  "highdim_sd", "sparse_independent", "sparse_organized"};
  table.add_row({0, ksg_value, ksg_ms, stddev(ksg_values), ksg_indep, ksg_org});
  table.add_row({1, kde_value, kde_ms, stddev(kde_values),
                 info::multi_information_kde(independent, blocks_high),
                 info::multi_information_kde(organized, blocks_high)});
  table.add_row({2, bin_value, bin_ms, stddev(bin_values), bin_indep, bin_org});
  bench::dump_csv("ablation_estimators.csv", table);

  bool all = true;
  all &= bench::check(std::abs(ksg_value - truth) < 0.15,
                      "KSG within 0.15 bits of the Gaussian truth");
  // Speed note, not a check: the paper's "multiple orders of magnitudes
  // slower" verdict targets the Suzuki et al. density-ratio estimator [41]
  // (an iterative optimization per evaluation). Our kernel baseline is a
  // direct resubstitution KDE, which costs about the same as KSG per run —
  // what it cannot match is KSG's variance and bias, checked below.
  std::cout << "note: resubstitution-KDE cost is comparable to KSG ("
            << kde_total_ms << " vs " << ksg_total_ms
            << " ms); the paper's speed gap concerns the density-ratio "
               "estimator [41] (see DESIGN.md)\n";
  all &= bench::check(stddev(kde_values) > stddev(ksg_values),
                      "kernel estimator has larger variance than KSG in high "
                      "dimension");
  all &= bench::check(std::abs(mean_of(kde_values) - mean_of(ksg_values)) >
                          2.0 * stddev(ksg_values),
                      "kernel estimator is strongly biased in high dimension "
                      "relative to KSG");
  all &= bench::check(bin_indep > 5.0,
                      "binning grossly overestimates sparse independent data");
  all &= bench::check(
      (bin_org - bin_indep) < 0.3 * (bin_indep + 1e-9),
      "binning shows 'almost no change' between independent and organized");
  all &= bench::check(ksg_org - ksg_indep > 1.0,
                      "KSG clearly separates independent from organized");

  std::cout << (all ? "RESULT: paragraph-5.3 claims reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
