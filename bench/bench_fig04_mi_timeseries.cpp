// Fig. 4 — multi-information over time for the three-type collective
// (n = 50, l = 3, r_c = 5, r_αβ from the caption), with snapshots of one
// sample at the caption's times.
//
// The paper's claim: I(W₁⁽ᵗ⁾,…,W_n⁽ᵗ⁾) increases as the collective visibly
// organizes, reaching several bits by t = 250.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 4: I(t) for the n=50, l=3, r_c=5 collective",
      "multi-information rises in step with visible organization", args);

  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = 25;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(120, 500);
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);

  // Chart + CSV.
  std::vector<io::Series> chart_series{
      {"I(W1..Wn) [bits]", result.steps(), result.mi_values()}};
  io::ChartOptions chart;
  chart.y_label = "multi-information (bits)";
  std::cout << io::render_chart(chart_series, chart) << "\n";

  io::CsvTable table;
  table.header = {"t", "multi_information_bits"};
  for (const auto& point : result.points) {
    table.add_row({static_cast<double>(point.step), point.multi_information});
  }
  bench::dump_csv("fig04_mi_timeseries.csv", table);

  // Snapshots of sample 0 at (approximately) the caption's times.
  io::ScatterOptions scatter;
  scatter.width = 44;
  scatter.height = 18;
  for (const std::size_t target : {std::size_t{0}, std::size_t{50},
                                   simulation.steps}) {
    std::size_t best = 0;
    for (std::size_t f = 0; f < series.frame_steps.size(); ++f) {
      if (series.frame_steps[f] <= target) best = f;
    }
    std::cout << "sample 0 at t = " << series.frame_steps[best] << ":\n"
              << io::render_scatter(series.frames[best][0], series.types,
                                    scatter)
              << "\n";
  }

  const double initial = result.points.front().multi_information;
  const double final_mi = result.points.back().multi_information;
  bool all = true;
  all &= bench::check(final_mi - initial > 1.0,
                      "I increases by well over a bit across the run "
                      "(paper: ~2 -> ~10 bits)");
  // Monotone-ish rise: the last quarter exceeds the first quarter average.
  const std::size_t q = result.points.size() / 4;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < q; ++i) {
    early += result.points[i].multi_information;
    late += result.points[result.points.size() - 1 - i].multi_information;
  }
  all &= bench::check(late > early, "late-time I exceeds early-time I");
  all &= bench::check(result.self_organizing(),
                      "verdict: the collective self-organizes");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
