// Fig. 11 — normalized decomposition of the multi-information over time for
// the l = 5, r_c = 15 system of Fig. 10: the between-types term
// I(W̃₁,…,W̃_l) plus one within-type term per type, each divided by the
// total multi-information of the step.
//
// The paper's claim: the relative contributions fluctuate early, then
// settle to a stable profile while the total I is still increasing, and
// organization is present on all levels (no term is ~zero throughout).
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 11: normalized Eq.-(5) decomposition (l = 5, r_c = 15)",
      "contributions fluctuate early then settle while total I still grows",
      args);

  sim::SimulationConfig simulation = core::presets::fig9_random_types(5, 15.0, 0);
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = 25;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(100, 500);

  core::AnalysisOptions options;
  options.compute_decomposition = true;
  const core::AnalysisResult result = core::analyze_self_organization(
      core::run_experiment(experiment), options);

  const std::size_t type_count =
      result.points.front().decomposition.within_group.size();

  io::CsvTable table;
  table.header = {"t", "total_I", "between_norm"};
  for (std::size_t g = 0; g < type_count; ++g) {
    table.header.push_back("within_type" + std::to_string(g) + "_norm");
  }

  std::vector<io::Series> curves(1 + type_count);
  curves[0].label = "between types (normalized)";
  for (std::size_t g = 0; g < type_count; ++g) {
    curves[1 + g].label = "within type " + std::to_string(g);
  }

  for (const auto& point : result.points) {
    const auto& d = point.decomposition;
    // Normalize by the *reconstructed* sum so the fractions add to one even
    // under estimator bias (the paper normalizes by the step's total).
    const double denom = std::max(std::abs(d.reconstructed()), 1e-9);
    std::vector<double> row{static_cast<double>(point.step),
                            point.multi_information,
                            d.between_groups / denom};
    curves[0].x.push_back(static_cast<double>(point.step));
    curves[0].y.push_back(d.between_groups / denom);
    for (std::size_t g = 0; g < type_count; ++g) {
      row.push_back(d.within_group[g] / denom);
      curves[1 + g].x.push_back(static_cast<double>(point.step));
      curves[1 + g].y.push_back(d.within_group[g] / denom);
    }
    table.add_row(std::move(row));
  }

  io::ChartOptions chart;
  chart.y_label = "normalized contribution";
  chart.y_from_zero = false;
  std::cout << io::render_chart(curves, chart) << "\n";
  bench::dump_csv("fig11_decomposition.csv", table);

  // Early vs late variability of the normalized contributions.
  auto spread_over = [&](std::size_t begin, std::size_t end) {
    double total = 0.0;
    for (const auto& curve : curves) {
      double lo = 1e18;
      double hi = -1e18;
      for (std::size_t f = begin; f < end; ++f) {
        lo = std::min(lo, curve.y[f]);
        hi = std::max(hi, curve.y[f]);
      }
      total += hi - lo;
    }
    return total;
  };
  const std::size_t frames = result.points.size();
  const double early_spread = spread_over(0, frames / 2);
  const double late_spread = spread_over(frames / 2, frames);
  std::cout << "contribution variability: early " << early_spread << ", late "
            << late_spread << "\n";

  bool all = true;
  all &= bench::check(late_spread < early_spread,
                      "normalized contributions settle after the early phase");
  all &= bench::check(result.points.back().multi_information >
                          result.points[frames / 2].multi_information,
                      "total I still increasing while contributions settle");
  // Organization on all levels: between-term and within-terms all
  // meaningfully nonzero late.
  const auto& final_d = result.points.back().decomposition;
  bool every_level = final_d.between_groups > 0.1;
  for (const double w : final_d.within_group) every_level &= (w > 0.0);
  all &= bench::check(every_level, "organization present on all levels");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
