// Fig. 8 — increase of multi-information ΔI(0→250) as a function of the
// number of types l, with F² interactions specified by random preferred
// distances r_αβ ∈ [1, 5], averaged over random type matrices.
//
// The paper's claim: with F² scaling, ΔI *decreases* as the number of types
// grows (for a fixed particle count).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 8: Delta-I vs number of types (F2, random r_ab in [1,5])",
      "Delta-I decreases with the number of types under F2 scaling", args);

  const std::size_t particle_count = 20;
  const std::vector<std::size_t> type_counts =
      args.fast ? std::vector<std::size_t>{1, 2, 3, 5, 7, 10}
                : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::size_t matrices = args.fast ? 4 : 10;
  const std::size_t samples = args.samples(80, 500);
  const std::size_t steps = args.steps(250, 250);

  io::CsvTable table;
  table.header = {"types", "mean_delta_I", "min_delta_I", "max_delta_I"};
  io::Series curve{"mean Delta-I [bits]", {}, {}};

  for (const std::size_t l : type_counts) {
    double sum = 0.0;
    double lo = 1e18;
    double hi = -1e18;
    for (std::size_t matrix = 0; matrix < matrices; ++matrix) {
      sim::SimulationConfig simulation =
          core::presets::fig8_f2_random_types(particle_count, l, matrix);
      simulation.steps = steps;
      simulation.record_stride = steps;  // endpoints only: ΔI = I(end) − I(0)
      core::ExperimentConfig experiment(simulation);
      experiment.samples = samples;
      const core::AnalysisResult result =
          core::analyze_self_organization(core::run_experiment(experiment));
      const double delta = result.delta_mi();
      sum += delta;
      lo = std::min(lo, delta);
      hi = std::max(hi, delta);
    }
    const double mean = sum / static_cast<double>(matrices);
    table.add_row({static_cast<double>(l), mean, lo, hi});
    curve.x.push_back(static_cast<double>(l));
    curve.y.push_back(mean);
    std::cout << "l = " << l << ": mean Delta-I = " << mean << " bits  (min "
              << lo << ", max " << hi << ")\n";
  }

  io::ChartOptions chart;
  chart.x_label = "number of types l";
  chart.y_label = "Delta-I (bits), t=0 -> t=250";
  chart.y_from_zero = false;
  std::cout << "\n"
            << io::render_chart(std::vector<io::Series>{curve}, chart) << "\n";
  bench::dump_csv("fig08_types_sweep.csv", table);

  // Shape checks: a decreasing trend — few-type mean above many-type mean.
  const auto& rows = table.rows;
  const double first_half =
      (rows[0][1] + rows[1][1]) / 2.0;
  const double second_half =
      (rows[rows.size() - 1][1] + rows[rows.size() - 2][1]) / 2.0;
  bool all = true;
  all &= bench::check(first_half > second_half,
                      "Delta-I decreases from few types to many types");
  all &= bench::check(rows.front()[1] > 0.0,
                      "few-type systems show positive self-organization");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
