// Shared harness for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure of Harder & Polani (2012):
// it runs the figure's workload, prints the same series/rows the paper
// reports (ASCII chart + CSV dump), and evaluates explicit CHECK lines that
// compare the measured *shape* (orderings, crossovers, signs) against the
// paper's qualitative claim. Absolute values are expected to differ — the
// substrate is a reimplementation, not the authors' machine.
//
// Modes: `--fast` (default; CI-sized ensembles), `--full` (paper-sized,
// m = 500+), and `--smoke` (seconds-scale; the configuration ctest runs to
// catch bit-rot — CHECK lines still print but carry no statistical weight
// at smoke sizes, and every bench exits 0 regardless of CHECK outcomes).
// `SOPS_BENCH_FAST=0` also selects full mode.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>

#include "core/sops.hpp"

namespace sops::bench {

/// Parsed command line of a figure bench.
struct BenchArgs {
  bool fast = true;
  bool smoke = false;

  /// Scales an ensemble size: full mode gets the paper-sized count; smoke
  /// mode clamps hard (still enough samples for the k-NN estimators).
  [[nodiscard]] std::size_t samples(std::size_t fast_m,
                                    std::size_t full_m) const noexcept {
    if (smoke) return std::min<std::size_t>(fast_m, 12);
    return fast ? fast_m : full_m;
  }
  [[nodiscard]] std::size_t steps(std::size_t fast_t,
                                  std::size_t full_t) const noexcept {
    if (smoke) return std::min<std::size_t>(fast_t, 20);
    return fast ? fast_t : full_t;
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  if (const char* env = std::getenv("SOPS_BENCH_FAST")) {
    args.fast = std::string_view(env) != "0";
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--fast") args.fast = true;
    if (arg == "--full") args.fast = false;
    if (arg == "--smoke") {
      args.fast = true;
      args.smoke = true;
    }
  }
  return args;
}

inline void print_header(std::string_view bench, std::string_view claim,
                         const BenchArgs& args) {
  std::cout << "==============================================================\n"
            << bench
            << (args.smoke ? "   [smoke mode; exercises the pipeline only]"
                : args.fast ? "   [fast mode; --full for paper-sized m]"
                            : "   [full mode]")
            << "\n"
            << "paper claim: " << claim << "\n"
            << "==============================================================\n";
}

/// Prints a CHECK line; returns ok so callers can aggregate.
inline bool check(bool ok, std::string_view what) {
  std::cout << "CHECK " << (ok ? "[PASS] " : "[FAIL] ") << what << "\n";
  return ok;
}

/// Directory for CSV dumps (created on demand next to the CWD).
inline std::string out_path(std::string_view file) {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return (dir / file).string();
}

/// Writes a table and tells the user where it went.
inline void dump_csv(std::string_view file, const io::CsvTable& table) {
  const std::string path = out_path(file);
  io::write_csv_file(path, table);
  std::cout << "series written to " << path << "\n";
}

}  // namespace sops::bench
