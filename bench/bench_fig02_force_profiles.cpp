// Fig. 2 — the two force-scaling profiles F¹ and F².
//
// Regenerates the curves of both families over distance, marks the
// preferred radius, and checks the sign structure the figure shows:
// F¹ rises from −∞ through zero at r_αβ toward k (long-range attraction cut
// at r_c); F² is bounded and decays to zero (short-range dominated).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 2: force-scaling profiles",
      "F1 crosses zero at r_ab and saturates at k; F2 is bounded and decays",
      args);

  const sim::PairParams f1{1.0, 2.0, 1.0, 1.0};  // k=1, r=2
  // F² in both regimes: the paper's literal sigma=1 (pure repulsion) and the
  // preferred-distance regime used for Fig. 8 (crossing at r=2).
  const sim::PairParams f2_literal{1.0, 0.0, 1.0, 5.0};
  const sim::PairParams f2_crossing =
      sim::f2_params_for_preferred_distance(2.0, 1.0);

  io::CsvTable table;
  table.header = {"x", "F1", "F2_literal", "F2_crossing"};
  std::vector<io::Series> series(3);
  series[0].label = "F1 (k=1, r=2)";
  series[1].label = "F2 literal (sigma=1, tau=5)";
  series[2].label = "F2 with crossing at 2";

  for (double x = 0.25; x <= 6.0; x += 0.05) {
    const double v1 = sim::force_scaling(sim::ForceLawKind::kSpring, f1, x);
    const double v2 =
        sim::force_scaling(sim::ForceLawKind::kDoubleGaussian, f2_literal, x);
    const double v3 =
        sim::force_scaling(sim::ForceLawKind::kDoubleGaussian, f2_crossing, x);
    table.add_row({x, v1, v2, v3});
    series[0].x.push_back(x);
    series[0].y.push_back(std::max(v1, -3.0));  // clip the −∞ tail for display
    series[1].x.push_back(x);
    series[1].y.push_back(v2);
    series[2].x.push_back(x);
    series[2].y.push_back(v3);
  }

  io::ChartOptions chart;
  chart.x_label = "||dz||";
  chart.y_label = "force scaling (positive = attraction)";
  chart.y_from_zero = false;
  std::cout << io::render_chart(series, chart) << "\n";
  bench::dump_csv("fig02_force_profiles.csv", table);

  bool all = true;
  all &= bench::check(
      sim::force_scaling(sim::ForceLawKind::kSpring, f1, 2.0) == 0.0,
      "F1 crosses zero exactly at r_ab");
  all &= bench::check(
      sim::force_scaling(sim::ForceLawKind::kSpring, f1, 0.5) < 0.0 &&
          sim::force_scaling(sim::ForceLawKind::kSpring, f1, 4.0) > 0.0,
      "F1: repulsive below r_ab, attractive above");
  all &= bench::check(
      std::abs(sim::force_scaling(sim::ForceLawKind::kSpring, f1, 1e5) - 1.0) <
          1e-4,
      "F1 saturates at k for large distances");
  bool f2_bounded = true;
  double f2_peak = 0.0;
  for (double x = 0.01; x < 30.0; x += 0.01) {
    const double v =
        sim::force_scaling(sim::ForceLawKind::kDoubleGaussian, f2_literal, x);
    f2_bounded &= std::abs(v) < 10.0;
    f2_peak = std::max(f2_peak, std::abs(v));
  }
  all &= bench::check(f2_bounded, "F2 is bounded everywhere (no singularity)");
  all &= bench::check(
      std::abs(sim::force_scaling(sim::ForceLawKind::kDoubleGaussian,
                                  f2_literal, 30.0)) < 1e-12,
      "F2 decays to zero at long range (weaker attraction than F1)");
  const auto crossing = sim::preferred_distance(
      sim::ForceLawKind::kDoubleGaussian, f2_crossing);
  all &= bench::check(crossing && std::abs(*crossing - 2.0) < 1e-6,
                      "F2 crossing regime realizes the requested r_ab");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
