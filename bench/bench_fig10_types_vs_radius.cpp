// Fig. 10 — multi-information over time for 20 particles, comparing
// l = 20 types vs l = 5 types at r_c ∈ {10, 15, ∞} (F¹, random r_αβ ∈ [2,8],
// k = 1).
//
// The paper's claim: with *local* interactions (finite r_c), fewer types
// organize MORE than l = n types; with unbounded interactions the diverse
// system catches up (long-range information spread compensates).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 10: I(t) for l in {20, 5} x r_c in {10, 15, inf}",
      "at finite r_c fewer types organize more; long range lifts everyone",
      args);

  struct Variant {
    std::size_t types;
    double rc;
  };
  const std::vector<Variant> variants{
      {20, 10.0}, {20, 15.0}, {20, sim::kUnboundedRadius},
      {5, 10.0},  {5, 15.0},  {5, sim::kUnboundedRadius}};
  const std::size_t matrices = args.fast ? 4 : 10;
  const std::size_t samples = args.samples(250, 500);
  const std::size_t steps = args.steps(250, 250);

  io::CsvTable table;
  table.header = {"t"};
  std::vector<io::Series> curves;
  std::vector<std::vector<double>> averaged;

  for (const Variant& variant : variants) {
    std::vector<double> mi_sum;
    std::vector<double> steps_axis;
    for (std::size_t matrix = 0; matrix < matrices; ++matrix) {
      sim::SimulationConfig simulation =
          core::presets::fig9_random_types(variant.types, variant.rc, matrix);
      simulation.steps = steps;
      simulation.record_stride = 25;
      core::ExperimentConfig experiment(simulation);
      experiment.samples = samples;
      const core::AnalysisResult result =
          core::analyze_self_organization(core::run_experiment(experiment));
      if (mi_sum.empty()) {
        mi_sum.assign(result.points.size(), 0.0);
        steps_axis = result.steps();
      }
      for (std::size_t f = 0; f < result.points.size(); ++f) {
        mi_sum[f] += result.points[f].multi_information;
      }
    }
    for (double& v : mi_sum) v /= static_cast<double>(matrices);
    averaged.push_back(mi_sum);

    const std::string label =
        "l=" + std::to_string(variant.types) + ", r_c=" +
        (std::isfinite(variant.rc) ? std::to_string(variant.rc).substr(0, 4)
                                   : "inf");
    curves.push_back({label, steps_axis, mi_sum});
    table.header.push_back(label);
    std::cout << label << ": final I = " << mi_sum.back() << " bits\n";
  }

  for (std::size_t f = 0; f < curves.front().x.size(); ++f) {
    std::vector<double> row{curves.front().x[f]};
    for (const auto& mi : averaged) row.push_back(mi[f]);
    table.add_row(std::move(row));
  }

  io::ChartOptions chart;
  chart.y_label = "multi-information (bits), averaged over matrices";
  std::cout << "\n" << io::render_chart(curves, chart) << "\n";
  bench::dump_csv("fig10_types_vs_radius.csv", table);

  // Index map: 0:(20,10) 1:(20,15) 2:(20,inf) 3:(5,10) 4:(5,15) 5:(5,inf).
  bool all = true;
  all &= bench::check(averaged[3].back() > averaged[0].back(),
                      "at r_c = 10, l = 5 organizes more than l = 20");
  all &= bench::check(averaged[4].back() > averaged[1].back(),
                      "at r_c = 15, l = 5 organizes more than l = 20");
  // With n = 20 and r_αβ ∈ [2, 8] the collective diameter rarely exceeds 10,
  // so r_c ∈ {10, 15, ∞} give near-identical neighbor sets (the paper's own
  // r_c = 15 and ∞ curves overlap); the genuine radius gradient is the
  // r_c ≤ 7.5 regime covered by the Fig. 9 bench.
  all &= bench::check(averaged[2].back() >= 0.95 * averaged[0].back(),
                      "for l = 20, unbounded radius is never worse than "
                      "r_c = 10");
  all &= bench::check(averaged[2].back() > 0.5 * averaged[5].back(),
                      "with r_c = inf the l = 20 system is competitive "
                      "(long-range spread compensates type diversity)");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
