// Fig. 9 — multi-information over time for different cut-off radii r_c,
// with 20 particles of 20 distinct types (l = n), F¹, random r_αβ ∈ [2, 8],
// k_αβ = 1, averaged over random type matrices.
//
// The paper's claim: self-organization *increases with r_c* even though
// every particle has its own type; small radii (r_c ≤ 7.5) bound it,
// r_c = ∞ is the highest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 9: I(t) for r_c in {2.5, 5, 7.5, 10, 15, inf}, l = n = 20, F1",
      "larger interaction radius -> more self-organization, even with l = n",
      args);

  const std::vector<double> radii{2.5, 5.0, 7.5, 10.0, 15.0,
                                  sim::kUnboundedRadius};
  const std::size_t matrices = args.fast ? 4 : 10;
  const std::size_t samples = args.samples(80, 500);
  const std::size_t steps = args.steps(250, 250);
  const std::size_t stride = 25;

  io::CsvTable table;
  table.header = {"t"};
  std::vector<io::Series> curves;
  std::vector<std::vector<double>> averaged;  // per radius, per frame

  for (const double rc : radii) {
    std::vector<double> mi_sum;
    std::vector<double> steps_axis;
    for (std::size_t matrix = 0; matrix < matrices; ++matrix) {
      sim::SimulationConfig simulation =
          core::presets::fig9_random_types(20, rc, matrix);
      simulation.steps = steps;
      simulation.record_stride = stride;
      core::ExperimentConfig experiment(simulation);
      experiment.samples = samples;
      const core::AnalysisResult result =
          core::analyze_self_organization(core::run_experiment(experiment));
      if (mi_sum.empty()) {
        mi_sum.assign(result.points.size(), 0.0);
        steps_axis = result.steps();
      }
      for (std::size_t f = 0; f < result.points.size(); ++f) {
        mi_sum[f] += result.points[f].multi_information;
      }
    }
    for (double& v : mi_sum) v /= static_cast<double>(matrices);
    averaged.push_back(mi_sum);

    const std::string label =
        std::isfinite(rc) ? "r_c = " + std::to_string(rc).substr(0, 4)
                          : "r_c = inf";
    curves.push_back({label, steps_axis, mi_sum});
    table.header.push_back(label);
    std::cout << label << ": final I = " << mi_sum.back() << " bits\n";
  }

  // Assemble the CSV rows (shared t axis).
  for (std::size_t f = 0; f < curves.front().x.size(); ++f) {
    std::vector<double> row{curves.front().x[f]};
    for (const auto& mi : averaged) row.push_back(mi[f]);
    table.add_row(std::move(row));
  }

  io::ChartOptions chart;
  chart.y_label = "multi-information (bits), averaged over matrices";
  std::cout << "\n" << io::render_chart(curves, chart) << "\n";
  bench::dump_csv("fig09_radius_sweep.csv", table);

  const double final_smallest = averaged.front().back();   // r_c = 2.5
  const double final_largest = averaged.back().back();     // r_c = ∞
  const double final_mid = averaged[2].back();             // r_c = 7.5
  bool all = true;
  all &= bench::check(final_largest > final_mid,
                      "r_c = inf exceeds r_c = 7.5 (long-range interactions "
                      "organize more)");
  all &= bench::check(final_largest > 2.0 * final_smallest,
                      "unbounded radius clearly dominates the smallest radius");
  all &= bench::check(final_smallest < final_mid + 2.0,
                      "small radii stay at the bottom of the ordering");
  // Rank correlation between radius index and final I (monotone trend).
  std::size_t concordant = 0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < averaged.size(); ++a) {
    for (std::size_t b = a + 1; b < averaged.size(); ++b) {
      ++pairs;
      if (averaged[b].back() > averaged[a].back()) ++concordant;
    }
  }
  all &= bench::check(static_cast<double>(concordant) / pairs > 0.7,
                      "final I is (near-)monotone in r_c");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
