// Performance micro-benchmarks (google-benchmark): the hot paths of the
// pipeline — pair-force accumulation (grid vs all-pairs), the KSG
// estimator, k-d tree queries, and ICP alignment. These back the complexity
// claims in DESIGN.md §7.
#include <benchmark/benchmark.h>

#include "core/sops.hpp"

namespace {

using namespace sops;

sim::ParticleSystem random_system(std::size_t n, double radius,
                                  std::size_t types, std::uint64_t seed) {
  rng::Xoshiro256 engine(seed);
  std::vector<geom::Vec2> positions;
  std::vector<sim::TypeId> type_ids;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(rng::uniform_disc(engine, radius));
    type_ids.push_back(static_cast<sim::TypeId>(i % types));
  }
  return {std::move(positions), std::move(type_ids)};
}

sim::InteractionModel default_model(std::size_t types) {
  return sim::InteractionModel(sim::ForceLawKind::kSpring, types,
                               sim::PairParams{1.0, 2.0, 1.0, 1.0});
}

void BM_DriftAllPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Density held constant: radius grows with √n.
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  std::vector<geom::Vec2> drift;
  for (auto _ : state) {
    sim::accumulate_drift(system, model, 3.0, drift,
                          sim::NeighborMode::kAllPairs);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftAllPairs)->Range(32, 2048)->Complexity(benchmark::oNSquared);

void BM_DriftCellGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  std::vector<geom::Vec2> drift;
  for (auto _ : state) {
    sim::accumulate_drift(system, model, 3.0, drift,
                          sim::NeighborMode::kCellGrid);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftCellGrid)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_SimulationStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::euler_maruyama_step(system, model, 3.0,
                                                      params, engine, scratch));
  }
}
BENCHMARK(BM_SimulationStep)->Range(64, 1024);

void BM_KsgMultiInformation(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 engine(3);
  const std::size_t n_blocks = 20;
  info::SampleMatrix samples(m, 2 * n_blocks);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < 2 * n_blocks; ++d) {
      samples(s, d) = rng::standard_normal(engine);
    }
  }
  info::KsgOptions options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(info::multi_information_ksg(samples, 2, options));
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_KsgMultiInformation)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Complexity(benchmark::oNSquared);

void BM_KdTreeKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 engine(5);
  std::vector<double> points(n * 3);
  for (double& v : points) v = rng::uniform(engine, -10.0, 10.0);
  const geom::KdTree tree(points, 3);
  std::size_t query = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.k_nearest({points.data() + (query % n) * 3, 3}, 5));
    ++query;
  }
}
BENCHMARK(BM_KdTreeKnn)->Range(256, 16384);

void BM_IcpAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto target = random_system(n, 8.0, 3, 11);
  const geom::RigidTransform2 pose{1.2, {3.0, -1.0}};
  const auto source = pose.apply(target.positions);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::align_icp(source, target.types,
                                              target.positions, target.types));
  }
}
BENCHMARK(BM_IcpAlign)->Range(20, 320);

void BM_KMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, 10.0, 1, 13);
  for (auto _ : state) {
    rng::Xoshiro256 engine(17);
    benchmark::DoNotOptimize(cluster::kmeans(system.positions, 4, engine));
  }
}
BENCHMARK(BM_KMeans)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
