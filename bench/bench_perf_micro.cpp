// Performance micro-benchmarks (google-benchmark): the hot paths of the
// pipeline — pair-force accumulation (grid vs all-pairs), full engine
// stepping (persistent workspace vs the pre-engine per-step-rebuild
// baseline), the KSG estimator, k-d tree queries, and ICP alignment.
//
// Besides the google-benchmark suite, the binary always emits
// BENCH_engine.json: steps/sec of cell-grid stepping for n ∈ {64, 256,
// 1024} (batched engine vs seed baseline), the intra-step sharding series
// (pooled vs fork-per-step dispatch), the executor layer's per-dispatch
// overhead, the Verlet/skin opt-in vs the cell grid on post-alignment
// collectives (speedup, rebuild skip rate, per-backend re-index cost),
// the SoA/SIMD kernel speedup (scalar reference vs vector kernels, with
// the dispatched ISA and compiler identity for cross-machine hygiene),
// analyzer (KSG) frames/sec — including the paper-shaped streaming row
// (n = 1024, m = 100) against the frozen pre-streaming post-hoc baseline
// — the job-service overhead row (JobManager vs direct run_experiment,
// submit → first-streamed-sample latency) — and the run's peak RSS — the
// engine's perf trajectory, gated by tools/bench_trend.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numbers>
#include <numeric>
#include <optional>
#include <queue>
#include <string_view>
#include <thread>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "core/sops.hpp"
#include "io/shard_manifest.hpp"
#include "support/executor.hpp"
#include "support/parallel_for.hpp"
#include "support/simd.hpp"

namespace {

using namespace sops;

sim::ParticleSystem random_system(std::size_t n, double radius,
                                  std::size_t types, std::uint64_t seed) {
  rng::Xoshiro256 engine(seed);
  std::vector<geom::Vec2> positions;
  std::vector<sim::TypeId> type_ids;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(rng::uniform_disc(engine, radius));
    type_ids.push_back(static_cast<sim::TypeId>(i % types));
  }
  return {std::move(positions), std::move(type_ids)};
}

sim::InteractionModel default_model(std::size_t types) {
  return sim::InteractionModel(sim::ForceLawKind::kSpring, types,
                               sim::PairParams{1.0, 2.0, 1.0, 1.0});
}

// ------------------------------------------------------------------------
// Pre-engine reference stepper. This reproduces, deliberately and verbatim
// in structure, what the seed engine did every step before the batched
// engine landed: construct a node-based hash grid from scratch, then fetch
// the pair parameters through the symmetric-matrix accessors for every
// interacting pair. It is the "per-step-rebuild baseline" the engine's
// speedup is measured against; do not optimize it.
class SeedBaselineStepper {
 public:
  double step(sim::ParticleSystem& system, const sim::InteractionModel& model,
              double cutoff, const sim::IntegratorParams& params,
              rng::Xoshiro256& engine, std::vector<geom::Vec2>& drift) {
    struct Key {
      std::int64_t x, y;
      bool operator==(const Key&) const = default;
    };
    struct KeyHash {
      std::size_t operator()(const Key& k) const noexcept {
        std::uint64_t h = static_cast<std::uint64_t>(k.x) * 0x9E3779B97F4A7C15ull;
        h ^= static_cast<std::uint64_t>(k.y) * 0xC2B2AE3D27D4EB4Full;
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 32;
        return static_cast<std::size_t>(h);
      }
    };
    const auto key_of = [cutoff](geom::Vec2 p) {
      return Key{static_cast<std::int64_t>(std::floor(p.x / cutoff)),
                 static_cast<std::int64_t>(std::floor(p.y / cutoff))};
    };
    const std::size_t n = system.size();
    std::unordered_map<Key, std::vector<std::size_t>, KeyHash> cells;
    cells.reserve(n);
    for (std::size_t i = 0; i < n; ++i) cells[key_of(system.position(i))].push_back(i);

    drift.assign(n, geom::Vec2{});
    const double cutoff_sq = cutoff * cutoff;
    for (std::size_t i = 0; i < n; ++i) {
      geom::Vec2 acc{};
      const Key center = key_of(system.position(i));
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          const auto it = cells.find(Key{center.x + dx, center.y + dy});
          if (it == cells.end()) continue;
          for (const std::size_t j : it->second) {
            if (j == i) continue;
            const geom::Vec2 delta = system.position(i) - system.position(j);
            const double d_sq = geom::norm_sq(delta);
            if (d_sq >= cutoff_sq || d_sq == 0.0) continue;
            const double d = std::sqrt(d_sq);
            acc += delta * (-model.scaling(system.types[i], system.types[j], d));
          }
        }
      }
      drift[i] = acc;
    }
    const double residual = sim::total_drift_norm(drift);
    sim::apply_euler_maruyama_update(system, drift, params, engine);
    return residual;
  }
};

// ------------------------------------------------------------ benchmarks

void BM_DriftAllPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Density held constant: radius grows with √n.
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  std::vector<geom::Vec2> drift;
  for (auto _ : state) {
    sim::accumulate_drift(system, model, 3.0, drift,
                          sim::NeighborMode::kAllPairs);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftAllPairs)->Range(32, 2048)->Complexity(benchmark::oNSquared);

void BM_DriftCellGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  std::vector<geom::Vec2> drift;
  for (auto _ : state) {
    sim::accumulate_drift(system, model, 3.0, drift,
                          sim::NeighborMode::kCellGrid);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftCellGrid)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_DriftCellGridPersistent(benchmark::State& state) {
  // Same work through the persistent backend: retained flat table + CSR.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);  // cached per run, as the engine does
  std::vector<geom::Vec2> drift;
  geom::CellGridBackend backend;
  for (auto _ : state) {
    sim::accumulate_drift(system, table, 3.0, drift, backend);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftCellGridPersistent)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_DriftVerletPersistent(benchmark::State& state) {
  // The Verlet quiet-step cost: the positions never move, so after the
  // first iteration every call skips the rebuild and pays only the cached
  // CSR row walk + one distance check per candidate.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5,
                                    3, 42);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  std::vector<geom::Vec2> drift;
  geom::VerletListBackend backend;
  for (auto _ : state) {
    sim::accumulate_drift(system, table, 3.0, drift, backend);
    benchmark::DoNotOptimize(drift.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftVerletPersistent)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_StepSeedBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  SeedBaselineStepper baseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline.step(system, model, 3.0, params, engine, scratch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["steps/sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["bytes/frame"] =
      static_cast<double>(n * sizeof(geom::Vec2));
}
BENCHMARK(BM_StepSeedBaseline)->Arg(64)->Arg(256)->Arg(1024);

void BM_StepEngine(benchmark::State& state) {
  // The batched engine path: persistent cell-grid backend, one drift
  // buffer, allocation-free steady state.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  geom::CellGridBackend backend;
  for (auto _ : state) {
    // The engine's steady-state step: cached table, persistent backend.
    sim::accumulate_drift(system, table, 3.0, scratch, backend);
    benchmark::DoNotOptimize(sim::total_drift_norm(scratch));
    sim::apply_euler_maruyama_update(system, scratch, params, engine);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["steps/sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["bytes/frame"] =
      static_cast<double>(n * sizeof(geom::Vec2));
}
BENCHMARK(BM_StepEngine)->Arg(64)->Arg(256)->Arg(1024);

void BM_StepEngineIntraStep(benchmark::State& state) {
  // The cell-sharded intra-step path: one collective, the drift sum
  // sharded over the grid's cell-major partition. range(0) = n,
  // range(1) = step threads. Results are bitwise-equal to serial.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto step_threads = static_cast<std::size_t>(state.range(1));
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  geom::CellGridBackend backend;
  for (auto _ : state) {
    sim::accumulate_drift(system, table, 3.0, scratch, backend, step_threads);
    benchmark::DoNotOptimize(sim::total_drift_norm(scratch));
    sim::apply_euler_maruyama_update(system, scratch, params, engine);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["steps/sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StepEngineIntraStep)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({16384, 1})
    ->Args({16384, 8});

void BM_StepEngineIntraStepPooled(benchmark::State& state) {
  // Same sharded work dispatched onto a persistent TaskPool (the engine's
  // actual path since the executor layer): per step, a wake/notify
  // round-trip instead of a thread spawn/join. Bitwise-equal results.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto step_threads = static_cast<std::size_t>(state.range(1));
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  geom::CellGridBackend backend;
  support::TaskPool pool(step_threads);
  for (auto _ : state) {
    sim::accumulate_drift(system, table, 3.0, scratch, backend,
                          pool.executor());
    benchmark::DoNotOptimize(sim::total_drift_norm(scratch));
    sim::apply_euler_maruyama_update(system, scratch, params, engine);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["steps/sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StepEngineIntraStepPooled)
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({16384, 8});

void BM_KsgMultiInformation(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 engine(3);
  const std::size_t n_blocks = 20;
  info::SampleMatrix samples(m, 2 * n_blocks);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < 2 * n_blocks; ++d) {
      samples(s, d) = rng::standard_normal(engine);
    }
  }
  info::KsgOptions options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(info::multi_information_ksg(samples, 2, options));
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_KsgMultiInformation)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Complexity(benchmark::oNSquared);

void BM_KdTreeKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 engine(5);
  std::vector<double> points(n * 3);
  for (double& v : points) v = rng::uniform(engine, -10.0, 10.0);
  const geom::KdTree tree(points, 3);
  std::size_t query = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.k_nearest({points.data() + (query % n) * 3, 3}, 5));
    ++query;
  }
}
BENCHMARK(BM_KdTreeKnn)->Range(256, 16384);

void BM_IcpAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto target = random_system(n, 8.0, 3, 11);
  const geom::RigidTransform2 pose{1.2, {3.0, -1.0}};
  const std::vector<geom::Vec2> target_points = target.positions_aos();
  const auto source = pose.apply(target_points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::align_icp(source, target.types, target_points, target.types));
  }
}
BENCHMARK(BM_IcpAlign)->Range(20, 320);

void BM_KMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto system = random_system(n, 10.0, 1, 13);
  const std::vector<geom::Vec2> points = system.positions_aos();
  for (auto _ : state) {
    rng::Xoshiro256 engine(17);
    benchmark::DoNotOptimize(cluster::kmeans(points, 4, engine));
  }
}
BENCHMARK(BM_KMeans)->Range(64, 4096);

// --------------------------------------------------- BENCH_engine.json

// Repetition policy for the JSON series: every timed window is measured
// `kBenchReps` times and the *best* value is reported — max for
// throughputs, min for costs. On a shared 1-core container, interference
// only ever slows a run, so the extremum is the least-biased estimate of
// the code's own speed (the same reasoning as google-benchmark's
// min-of-repetitions aggregation); means would gate CI on neighbors'
// workloads instead of regressions.
constexpr int kBenchReps = 3;

template <typename Measure>
double best_throughput(const Measure& measure) {
  double best = 0.0;
  for (int r = 0; r < kBenchReps; ++r) best = std::max(best, measure());
  return best;
}

template <typename Measure>
double best_cost(const Measure& measure) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kBenchReps; ++r) best = std::min(best, measure());
  return best;
}

double measure_steps_per_sec(std::size_t n, bool use_engine) {
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  geom::CellGridBackend backend;
  SeedBaselineStepper baseline;

  const auto one_step = [&] {
    if (use_engine) {
      sim::accumulate_drift(system, table, 3.0, scratch, backend);
      const double residual = sim::total_drift_norm(scratch);
      sim::apply_euler_maruyama_update(system, scratch, params, engine);
      return residual;
    }
    return baseline.step(system, model, 3.0, params, engine, scratch);
  };
  const int warmup = 50;
  const int steps = n >= 1024 ? 1200 : 5000;
  for (int i = 0; i < warmup; ++i) one_step();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) one_step();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(steps) / seconds;
}

// Steps/sec of single-sample stepping with the drift sum sharded over
// `step_threads` workers (the intra-step path). `pooled` selects the
// persistent-TaskPool dispatch (the engine's path); otherwise every step
// forks and joins transient workers (the pre-executor baseline).
double measure_intra_step_steps_per_sec(std::size_t n, std::size_t step_threads,
                                        bool pooled) {
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 engine(1);
  std::vector<geom::Vec2> scratch;
  geom::CellGridBackend backend;
  std::optional<support::TaskPool> pool;
  if (pooled) pool.emplace(step_threads);

  const auto one_step = [&] {
    if (pool.has_value()) {
      sim::accumulate_drift(system, table, 3.0, scratch, backend,
                            pool->executor());
    } else {
      sim::accumulate_drift(system, table, 3.0, scratch, backend, step_threads);
    }
    benchmark::DoNotOptimize(sim::total_drift_norm(scratch));
    sim::apply_euler_maruyama_update(system, scratch, params, engine);
  };
  const int warmup = 20;
  const int steps = n >= 16384 ? 150 : n >= 4096 ? 500 : 1500;
  for (int i = 0; i < warmup; ++i) one_step();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) one_step();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(steps) / seconds;
}

// Pure dispatch cost: microseconds per empty `width`-chunk batch, spawn vs
// pool. This is the per-step overhead the intra-step path pays before any
// drift work — the number kIntraStepMinParticles is derived from.
double measure_dispatch_us(std::size_t width, bool pooled) {
  std::optional<support::TaskPool> pool;
  std::optional<support::SpawnExecutor> spawn;
  support::Executor* executor;
  if (pooled) {
    pool.emplace(width);
    executor = &pool->executor();
  } else {
    spawn.emplace(width);
    executor = &*spawn;
  }
  auto nothing = [](std::size_t k) { benchmark::DoNotOptimize(k); };
  const int warmup = 50;
  const int rounds = pooled ? 5000 : 1000;
  for (int i = 0; i < warmup; ++i) executor->run(width, nothing);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) executor->run(width, nothing);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds * 1e6 / static_cast<double>(rounds);
}

// Verlet/skin vs cell-grid stepping on a post-alignment collective, under
// the paper's double-Gaussian pair force (the production force law, and the
// regime the skin list targets: its per-candidate exp makes compaction-first
// evaluation pay, where the spring law's near-free row math leaves every
// backend memory-bound and the grid's streaming dense path unbeatable). The
// system is first settled with the cell grid until the local candidate
// density is stationary — `kVerletSettleSteps` is sized from measurement,
// NOT a token warm-up: with a shorter settle the collective is still
// condensing, each leg then measures a different workload than the one
// before it, and the comparison is meaningless. Clones of the settled state
// are stepped through each backend with identical RNG streams. Also
// measures each backend's full re-index cost in isolation
// (`*_rebuild_us`): the cell grid pays it every step, the Verlet list only
// on displacement triggers — the skip rate is what turns the more
// expensive Verlet build into a net win.
struct VerletBenchRow {
  double grid_steps_per_sec = 0.0;
  double verlet_steps_per_sec = 0.0;
  double skip_rate = 0.0;
  double grid_rebuild_us = 0.0;
  double verlet_rebuild_us = 0.0;
  /// Adaptive-skin + partial-rebuild opt-ins engaged (the recommended
  /// production configuration); the fixed-skin leg above stays for trend
  /// continuity with pre-adaptive baselines.
  double adaptive_steps_per_sec = 0.0;
  double adaptive_skip_rate = 0.0;
  double adaptive_skin = 0.0;
  double adaptive_partials_per_step = 0.0;
};

constexpr double kVerletBenchSkin = 1.5;
constexpr int kVerletSettleSteps = 500;

VerletBenchRow measure_verlet_row(std::size_t n) {
  auto system = random_system(n, std::sqrt(static_cast<double>(n)) * 1.5, 3, 7);
  const sim::InteractionModel model(sim::ForceLawKind::kDoubleGaussian, 3,
                                    sim::PairParams{1.0, 2.0, 1.0, 1.0});
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  std::vector<geom::Vec2> drift;
  geom::CellGridBackend grid;
  {
    rng::Xoshiro256 engine(1);
    for (int i = 0; i < kVerletSettleSteps; ++i) {
      sim::accumulate_drift(system, table, 3.0, drift, grid);
      sim::apply_euler_maruyama_update(system, drift, params, engine);
    }
  }

  VerletBenchRow row;
  const int steps = n >= 16384 ? 120 : 400;
  // Each rep replays the identical settled trajectory (same clone, same
  // RNG stream), so the skip rate is deterministic and only the wall
  // clock varies.
  row.grid_steps_per_sec = best_throughput([&] {
    auto grid_system = system;
    rng::Xoshiro256 engine(2);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) {
      sim::accumulate_drift(grid_system, table, 3.0, drift, grid);
      sim::apply_euler_maruyama_update(grid_system, drift, params, engine);
    }
    return steps / std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  });
  row.verlet_steps_per_sec = best_throughput([&] {
    auto verlet_system = system;
    rng::Xoshiro256 engine(2);
    geom::VerletListBackend verlet(kVerletBenchSkin);
    sim::accumulate_drift(verlet_system, table, 3.0, drift, verlet);  // warm
    verlet.reset_stats();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) {
      sim::accumulate_drift(verlet_system, table, 3.0, drift, verlet);
      sim::apply_euler_maruyama_update(verlet_system, drift, params, engine);
    }
    const double rate =
        steps / std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    row.skip_rate = verlet.stats().skip_rate();
    return rate;
  });
  row.adaptive_steps_per_sec = best_throughput([&] {
    auto adaptive_system = system;
    rng::Xoshiro256 engine(2);
    geom::VerletListBackend verlet(kVerletBenchSkin);
    geom::VerletListBackend::AdaptiveSkin adapt;
    adapt.enabled = true;
    verlet.set_adaptive_skin(adapt);
    verlet.set_partial_rebuild(true);
    // The shell only moves on displacement-triggered full rebuilds, so give
    // the controller an untimed stretch of the same trajectory to converge
    // before the measured window (the post-alignment regime is stationary:
    // noise dominates the decayed drift, so the later segment is the same
    // workload the fixed-skin leg sees).
    for (int i = 0; i < steps; ++i) {
      sim::accumulate_drift(adaptive_system, table, 3.0, drift, verlet);
      sim::apply_euler_maruyama_update(adaptive_system, drift, params, engine);
    }
    verlet.reset_stats();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) {
      sim::accumulate_drift(adaptive_system, table, 3.0, drift, verlet);
      sim::apply_euler_maruyama_update(adaptive_system, drift, params, engine);
    }
    const double rate =
        steps / std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    row.adaptive_skip_rate = verlet.stats().skip_rate();
    row.adaptive_skin = verlet.skin();
    row.adaptive_partials_per_step =
        static_cast<double>(verlet.stats().partial_builds) / steps;
    return rate;
  });
  // Isolated full re-index cost at the settled positions.
  const int rebuilds = 50;
  row.grid_rebuild_us = best_cost([&] {
    geom::CellGridBackend fresh;
    fresh.rebuild(system.lanes(), 3.0);  // warm capacity
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < rebuilds; ++i) fresh.rebuild(system.lanes(), 3.0);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() *
           1e6 / rebuilds;
  });
  row.verlet_rebuild_us = best_cost([&] {
    geom::VerletListBackend fresh(kVerletBenchSkin);
    fresh.rebuild(system.lanes(), 3.0);  // warm capacity
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < rebuilds; ++i) {
      fresh.invalidate();
      fresh.rebuild(system.lanes(), 3.0);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() *
           1e6 / rebuilds;
  });
  return row;
}

// Analyzer throughput on a fixed mid-sized config: KSG frames/sec through
// the full align → estimate pipeline (no coarse-graining at n = 24).
double measure_analyzer_frames_per_sec(std::size_t* frames_out) {
  sim::SimulationConfig simulation(default_model(3));
  simulation.types = sim::evenly_distributed_types(24, 3);
  simulation.cutoff_radius = 3.0;
  simulation.init_disc_radius = 6.0;
  simulation.steps = 40;
  simulation.record_stride = 8;
  simulation.seed = 99;
  core::ExperimentConfig experiment(std::move(simulation));
  experiment.samples = 96;
  const core::EnsembleSeries series = core::run_experiment(experiment);

  core::AnalysisOptions options;
  const int warmup = 1;
  const int rounds = 3;
  for (int i = 0; i < warmup; ++i) {
    benchmark::DoNotOptimize(core::analyze_self_organization(series, options));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    benchmark::DoNotOptimize(core::analyze_self_organization(series, options));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (frames_out != nullptr) *frames_out = series.frame_count();
  return static_cast<double>(series.frame_count() * rounds) / seconds;
}

// ------------------------------------------------------------------------
// Pre-streaming analyzer baseline. This reproduces, deliberately and
// verbatim, the per-frame analysis path as it stood before the streaming
// pipeline landed: ICP correspondences through a single type-lifted 3-D
// k-d tree — including the seed tree's own nearest-neighbor query, whose
// per-query heap/stack/result allocations the production tree has since
// shed — the materialize-and-sort greedy matcher, and the brute-force KSG
// estimator, all run post-hoc after the recording finishes. It is the
// fixed yardstick the streaming row's speedup is measured against; do not
// optimize it. By the estimator and alignment bitwise contracts it must
// also produce the exact bits of the production pipeline, which the
// streaming CHECK below asserts.
namespace prestream {

// The seed k-d tree, reduced to what the baseline ICP queries: median
// split on the widest axis, and k-nearest via a max-heap with a
// heap-allocated traversal stack — `nearest` pays a full k_nearest(1)
// call per correspondence, exactly as the pre-streaming aligner did.
class SeedKdTree {
 public:
  SeedKdTree(std::span<const double> points, std::size_t dim)
      : points_(points), dim_(dim), count_(points.size() / dim) {
    order_.resize(count_);
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    if (count_ > 0) {
      nodes_.reserve(2 * count_ / kLeafSize + 2);
      root_ = build(0, count_);
    }
  }

  [[nodiscard]] geom::Neighbor nearest(std::span<const double> query) const {
    return k_nearest(query, 1).front();
  }

  [[nodiscard]] std::vector<geom::Neighbor> k_nearest(
      std::span<const double> query, std::size_t k) const {
    std::vector<geom::Neighbor> result;
    if (count_ == 0 || k == 0) return result;

    std::priority_queue<HeapEntry> best;  // max-heap of current best k
    auto worst = [&]() noexcept {
      return best.size() < k ? std::numeric_limits<double>::infinity()
                             : best.top().dist_sq;
    };

    std::vector<int> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
      const int node_id = stack.back();
      stack.pop_back();
      if (node_id < 0) continue;
      const Node& node = nodes_[static_cast<std::size_t>(node_id)];
      if (node.is_leaf()) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          const std::size_t idx = order_[i];
          const double d2 = dist_sq_to(idx, query);
          if (d2 < worst()) {
            best.push({d2, idx});
            if (best.size() > k) best.pop();
          }
        }
        continue;
      }
      const double delta = query[node.axis] - node.split;
      const int near_child = delta < 0.0 ? node.left : node.right;
      const int far_child = delta < 0.0 ? node.right : node.left;
      if (delta * delta < worst()) stack.push_back(far_child);
      stack.push_back(near_child);
    }

    result.resize(best.size());
    for (std::size_t i = result.size(); i-- > 0;) {
      result[i] = {best.top().index, best.top().dist_sq};
      best.pop();
    }
    return result;
  }

 private:
  struct HeapEntry {
    double dist_sq;
    std::size_t index;
    bool operator<(const HeapEntry& o) const noexcept {
      return dist_sq < o.dist_sq;
    }
  };
  struct Node {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t axis = 0;
    double split = 0.0;
    int left = -1;
    int right = -1;
    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  static constexpr std::size_t kLeafSize = 16;

  [[nodiscard]] const double* point(std::size_t i) const noexcept {
    return points_.data() + i * dim_;
  }
  [[nodiscard]] double dist_sq_to(std::size_t i,
                                  std::span<const double> query) const noexcept {
    const double* p = point(i);
    double sum = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = p[d] - query[d];
      sum += diff * diff;
    }
    return sum;
  }

  int build(std::size_t begin, std::size_t end) {
    Node node;
    node.begin = begin;
    node.end = end;
    const std::size_t count = end - begin;
    if (count <= kLeafSize) {
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    std::size_t best_axis = 0;
    double best_spread = -1.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (std::size_t i = begin; i < end; ++i) {
        const double v = point(order_[i])[d];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        best_axis = d;
      }
    }
    if (best_spread == 0.0) {
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    const std::size_t mid = begin + count / 2;
    std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                     order_.begin() + static_cast<std::ptrdiff_t>(mid),
                     order_.begin() + static_cast<std::ptrdiff_t>(end),
                     [this, best_axis](std::size_t a, std::size_t b) {
                       return point(a)[best_axis] < point(b)[best_axis];
                     });
    node.axis = best_axis;
    node.split = point(order_[mid])[best_axis];
    const std::size_t self = nodes_.size();
    nodes_.push_back(node);
    const int left = build(begin, mid);
    const int right = build(mid, end);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return static_cast<int>(self);
  }

  std::span<const double> points_;
  std::size_t dim_;
  std::size_t count_;
  std::vector<std::size_t> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

// Flat 3-D array of type-lifted points: (x, y, type · lift).
std::vector<double> lift(std::span<const geom::Vec2> points,
                         std::span<const sim::TypeId> types, double lift_scale) {
  std::vector<double> out;
  out.reserve(points.size() * 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.push_back(points[i].x);
    out.push_back(points[i].y);
    out.push_back(static_cast<double>(types[i]) * lift_scale);
  }
  return out;
}

// One ICP descent from the given initial rotation (about the source
// centroid): NN correspondences against the lifted target tree.
align::IcpResult icp_descent(std::span<const geom::Vec2> source,
                             std::span<const sim::TypeId> source_types,
                             std::span<const geom::Vec2> target,
                             const SeedKdTree& target_tree, double lift_scale,
                             double initial_angle,
                             const align::IcpOptions& options) {
  const geom::Vec2 source_centroid = geom::centroid(source);
  geom::RigidTransform2 current{
      initial_angle,
      source_centroid - geom::rotated(source_centroid, initial_angle)};

  align::IcpResult result;
  result.mean_squared_error = std::numeric_limits<double>::infinity();

  std::vector<geom::Vec2> moved(source.size());
  std::vector<geom::Vec2> matched(source.size());
  double query[3];

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (std::size_t i = 0; i < source.size(); ++i) {
      moved[i] = current.apply(source[i]);
    }

    double mse = 0.0;
    for (std::size_t i = 0; i < source.size(); ++i) {
      query[0] = moved[i].x;
      query[1] = moved[i].y;
      query[2] = static_cast<double>(source_types[i]) * lift_scale;
      const geom::Neighbor nn = target_tree.nearest({query, 3});
      matched[i] = target[nn.index];
      mse += geom::dist_sq(moved[i], matched[i]);
    }
    mse /= static_cast<double>(source.size());

    if (mse >= result.mean_squared_error - options.convergence_tolerance) {
      result.mean_squared_error = std::min(mse, result.mean_squared_error);
      break;
    }
    result.mean_squared_error = mse;
    current = geom::fit_rigid(source, matched);
  }
  result.transform = current;
  return result;
}

align::IcpResult align_icp(std::span<const geom::Vec2> source,
                           std::span<const sim::TypeId> source_types,
                           std::span<const geom::Vec2> target,
                           std::span<const sim::TypeId> target_types,
                           const align::IcpOptions& options) {
  const double diameter =
      std::max({geom::bounding_box(target).diagonal(),
                geom::bounding_box(source).diagonal(), 1.0});
  const double lift_scale = options.type_lift_scale * diameter;

  const std::vector<double> lifted_target =
      lift(target, target_types, lift_scale);
  const SeedKdTree target_tree(lifted_target, 3);

  align::IcpResult best;
  best.mean_squared_error = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.rotation_restarts; ++r) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(r) /
                         static_cast<double>(options.rotation_restarts);
    align::IcpResult candidate = icp_descent(
        source, source_types, target, target_tree, lift_scale, angle, options);
    if (candidate.mean_squared_error < best.mean_squared_error) {
      best = candidate;
    }
  }
  return best;
}

// All same-type pairs sorted by distance; greedily commit closest pairs.
std::vector<std::size_t> match_by_type(std::span<const geom::Vec2> source,
                                       std::span<const sim::TypeId> source_types,
                                       std::span<const geom::Vec2> target,
                                       std::span<const sim::TypeId> target_types) {
  struct Pair {
    double dist_sq;
    std::uint32_t s;
    std::uint32_t t;
  };
  std::vector<Pair> pairs;
  for (std::uint32_t s = 0; s < source.size(); ++s) {
    for (std::uint32_t t = 0; t < target.size(); ++t) {
      if (source_types[s] != target_types[t]) continue;
      pairs.push_back({geom::dist_sq(source[s], target[t]), s, t});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
    if (a.s != b.s) return a.s < b.s;
    return a.t < b.t;
  });

  const std::size_t n = source.size();
  std::vector<std::size_t> match(n, n);
  std::vector<char> target_used(n, 0);
  std::size_t committed = 0;
  for (const Pair& p : pairs) {
    if (match[p.s] != n || target_used[p.t]) continue;
    match[p.s] = p.t;
    target_used[p.t] = 1;
    if (++committed == n) break;
  }
  return match;
}

// Replica of align_ensemble's row loop over the frozen ICP and matcher
// (the loop structure itself did not change; only the callees did).
align::AlignedEnsemble align_rows(geom::FrameView configs,
                                  const std::vector<sim::TypeId>& types) {
  const std::size_t n = types.size();
  const std::size_t m = configs.size();
  align::AlignedEnsemble out;
  out.samples = info::SampleMatrix(m, 2 * n);
  out.blocks = info::uniform_blocks(n, 2);
  out.block_types = types;
  const std::vector<geom::Vec2> reference = geom::centered(configs[0]);
  const auto write_row = [&](std::size_t s, const std::vector<geom::Vec2>& points) {
    auto row = out.samples.row(s);
    for (std::size_t i = 0; i < n; ++i) {
      row[2 * i] = points[i].x;
      row[2 * i + 1] = points[i].y;
    }
  };
  write_row(0, reference);
  support::parallel_for(1, m, [&](std::size_t s) {
    std::vector<geom::Vec2> moved = geom::centered(configs[s]);
    const align::IcpResult icp =
        prestream::align_icp(moved, types, reference, types,
                             align::IcpOptions{});
    moved = geom::centered(icp.transform.apply(moved));
    const std::vector<std::size_t> match =
        prestream::match_by_type(moved, types, reference, types);
    std::vector<geom::Vec2> permuted(n);
    for (std::size_t i = 0; i < n; ++i) permuted[match[i]] = moved[i];
    write_row(s, permuted);
  });
  return out;
}

// One frame through the frozen pipeline: align, per-type k-means
// coarse-graining (production code — the streaming work left it alone),
// brute-force KSG. Returns the frame's multi-information.
double analyze_frame(geom::FrameView frame,
                     const std::vector<sim::TypeId>& types,
                     const core::AnalysisOptions& options,
                     std::size_t frame_index) {
  align::AlignedEnsemble aligned = align_rows(frame, types);
  rng::Xoshiro256 engine = rng::make_stream(
      options.kmeans_seed, static_cast<std::uint64_t>(frame_index));
  aligned =
      align::coarse_grain_ensemble(aligned, options.kmeans_per_type, engine);
  info::KsgOptions ksg = options.ksg;
  ksg.search = info::NeighborSearch::kBruteForce;
  return info::multi_information_ksg(aligned.samples, aligned.blocks, ksg);
}

}  // namespace prestream

// The paper-shaped analyzer row: n = 1024 particles, m = 100 samples on a
// 6-frame recording grid — the workload the streaming pipeline targets.
core::ExperimentConfig paper_row_experiment() {
  sim::SimulationConfig simulation(default_model(3));
  simulation.types = sim::evenly_distributed_types(1024, 3);
  simulation.cutoff_radius = 3.0;
  simulation.init_disc_radius = 48.0;
  simulation.steps = 40;
  simulation.record_stride = 8;
  simulation.seed = 99;
  core::ExperimentConfig experiment(std::move(simulation));
  experiment.samples = 100;
  return experiment;
}

struct StreamingRow {
  std::size_t n = 0;
  std::size_t samples = 0;
  std::size_t frames = 0;
  double streaming_frames_per_sec = 0.0;
  double post_hoc_baseline_frames_per_sec = 0.0;
  bool bitwise_match = false;
};

// Streaming analyzer throughput at the paper row vs the frozen baseline.
// The streamed run is timed end to end (simulation + overlapped analysis;
// the simulation is ~1 s here, analysis dominates). The baseline is timed
// on a single frame with a single rep: one frame runs tens of seconds
// through the lifted-tree ICP, which dwarfs timer jitter, and kBenchReps
// of it would triple an already minute-scale benchmark.
StreamingRow measure_streaming_row() {
  const core::ExperimentConfig experiment = paper_row_experiment();
  StreamingRow row;
  row.n = experiment.simulation.types.size();
  row.samples = experiment.samples;

  const core::AnalysisOptions options;
  const auto stream_start = std::chrono::steady_clock::now();
  const core::AnalysisResult streamed =
      core::measure_experiment_streamed(experiment, options);
  const double stream_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    stream_start)
                                    .count();
  row.frames = streamed.points.size();
  row.streaming_frames_per_sec =
      static_cast<double>(row.frames) / stream_seconds;

  const core::EnsembleSeries series = core::run_experiment(experiment);
  const auto baseline_start = std::chrono::steady_clock::now();
  const double baseline_mi =
      prestream::analyze_frame(series.frames[0], series.types, options, 0);
  const double baseline_seconds = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      baseline_start)
                                      .count();
  row.post_hoc_baseline_frames_per_sec = 1.0 / baseline_seconds;
  row.bitwise_match =
      baseline_mi == streamed.points.front().multi_information;
  return row;
}

// Job-layer cost at a small paper-shaped workload: the identical
// experiment run through a one-slot JobManager (the batch CLI's
// configuration since the service refactor) vs a direct run_experiment
// call, plus the submit → first-streamed-sample latency — the time a
// daemon watcher waits before the first kSampleCsv frame has bytes to
// carry. The manager is scheduling only, so the overhead ratio should
// hover at 1.0x; both numbers are recorded ungated (sub-second walls on
// shared runners jitter past any honest tolerance) to make a creeping
// scheduler cost visible in the trend.
struct ServiceBenchRow {
  double direct_seconds = 0.0;
  double manager_seconds = 0.0;
  double submit_to_first_sample_ms = 0.0;
};

ServiceBenchRow measure_service_row() {
  sim::SimulationConfig simulation(default_model(3));
  simulation.types = sim::evenly_distributed_types(256, 3);
  simulation.cutoff_radius = 3.0;
  simulation.init_disc_radius = 24.0;
  simulation.steps = 40;
  simulation.record_stride = 8;
  simulation.seed = 3;
  core::ExperimentConfig experiment(std::move(simulation));
  experiment.samples = 32;

  ServiceBenchRow row;
  const auto direct_start = std::chrono::steady_clock::now();
  const core::EnsembleSeries direct = core::run_experiment(experiment);
  row.direct_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - direct_start)
                           .count();
  benchmark::DoNotOptimize(direct.frames.sample(0, 0).data());

  core::JobLimits limits;
  limits.job_slots = 1;
  core::JobManager manager(limits);
  std::atomic<std::int64_t> first_sample_ns{-1};
  const auto submit_start = std::chrono::steady_clock::now();
  core::JobOptions options;
  options.analysis = core::JobAnalysis::kNone;
  options.events.on_sample_done = [&](const core::JobSampleEvent&) {
    std::int64_t expected = -1;
    const std::int64_t elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - submit_start)
            .count();
    first_sample_ns.compare_exchange_strong(expected, elapsed);
  };
  const std::uint64_t id =
      manager.submit(core::ConfiguredExperiment{experiment, {}}, options);
  const core::JobOutcome outcome = manager.wait(id);
  row.manager_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - submit_start)
                            .count();
  benchmark::DoNotOptimize(outcome.series.frames.sample(0, 0).data());
  row.submit_to_first_sample_ms =
      first_sample_ns.load() >= 0
          ? static_cast<double>(first_sample_ns.load()) / 1e6
          : 0.0;
  return row;
}

// Current resident set of this process in KB (VmRSS via /proc/self/statm);
// 0 when unavailable. Unlike the peak, deltas of the current RSS let one
// process compare the footprint of two storage backings back to back.
long current_rss_kb() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  long size_pages = 0;
  long resident_pages = 0;
  const int fields = std::fscanf(statm, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  return resident_pages * (static_cast<long>(sysconf(_SC_PAGESIZE)) / 1024);
#else
  return 0;
#endif
}

// Resident-set cost of recording a paper-sized ensemble into a FrameStore:
// fills every [frame][sample] slot the way the streamed driver does
// (per-sample, flushing each finished sample's extents), and reports the
// RSS delta while the store is still alive. Heap backing pays the full
// payload; the mapped spill path pushes finished extents to disk and
// drops their pages, so its delta stays far below the store's bytes().
long measure_frame_store_fill_rss_kb(core::StorageMode mode,
                                     std::size_t frames, std::size_t samples,
                                     std::size_t particles) {
  core::FrameStoreOptions options;
  options.mode = mode;
  const long before = current_rss_kb();
  core::FrameStore store(frames, samples, particles, options);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t f = 0; f < frames; ++f) {
      auto slot = store.sample_slot(f, s);
      for (std::size_t i = 0; i < slot.size(); ++i) {
        slot[i] = {static_cast<double>(s + i), static_cast<double>(f)};
      }
    }
    store.flush_samples(s, s + 1);
  }
  const long delta = current_rss_kb() - before;
  benchmark::DoNotOptimize(store.sample(0, 0).data());
  return delta > 0 ? delta : 0;
}

// Peak resident set of this process in KB; 0 when the platform has no
// getrusage. Linux reports ru_maxrss in KB, macOS in bytes.
long peak_rss_kb() {
#if defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss / 1024;
#elif defined(__unix__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

void emit_engine_json() {
  const std::size_t sizes[] = {64, 256, 1024};
  double speedup_at_1024 = 0.0;
  std::FILE* out = std::fopen("BENCH_engine.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_engine.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"engine_step\",\n"
                    "  \"mode\": \"cell_grid\",\n  \"results\": [\n");
  for (std::size_t k = 0; k < 3; ++k) {
    const std::size_t n = sizes[k];
    const double baseline =
        best_throughput([&] { return measure_steps_per_sec(n, false); });
    const double engine =
        best_throughput([&] { return measure_steps_per_sec(n, true); });
    const double speedup = engine / baseline;
    if (n == 1024) speedup_at_1024 = speedup;
    std::fprintf(out,
                 "    {\"n\": %zu, \"baseline_steps_per_sec\": %.1f, "
                 "\"engine_steps_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"bytes_per_frame\": %zu}%s\n",
                 n, baseline, engine, speedup, n * sizeof(geom::Vec2),
                 k + 1 < 3 ? "," : "");
    std::printf("engine step n=%zu: baseline %.0f steps/s, engine %.0f "
                "steps/s (%.2fx), %zu bytes/frame\n",
                n, baseline, engine, speedup, n * sizeof(geom::Vec2));
  }

  // Intra-step sharding: single-sample stepping of one large collective at
  // 1/2/4/8 drift threads, dispatched on the persistent pool (the engine's
  // path; `steps_per_sec`) and on the fork-per-step baseline
  // (`spawn_steps_per_sec`). The scaling column is against this build's own
  // pooled threads=1 row, so the number is a pure scaling measurement.
  const std::size_t intra_sizes[] = {1024, 4096, 16384};
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  double scaling_at_16384x8 = 0.0;
  std::fprintf(out, "  ],\n  \"intra_step\": [\n");
  for (std::size_t a = 0; a < 3; ++a) {
    const std::size_t n = intra_sizes[a];
    double serial = 0.0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t threads = thread_counts[b];
      const double rate = best_throughput(
          [&] { return measure_intra_step_steps_per_sec(n, threads, true); });
      const double spawn_rate = best_throughput(
          [&] { return measure_intra_step_steps_per_sec(n, threads, false); });
      if (threads == 1) serial = rate;
      const double scaling = serial > 0.0 ? rate / serial : 0.0;
      if (n == 16384 && threads == 8) scaling_at_16384x8 = scaling;
      std::fprintf(out,
                   "    {\"n\": %zu, \"threads\": %zu, "
                   "\"steps_per_sec\": %.1f, \"spawn_steps_per_sec\": %.1f, "
                   "\"scaling_vs_serial\": %.3f}%s\n",
                   n, threads, rate, spawn_rate, scaling,
                   a + 1 < 3 || b + 1 < 4 ? "," : "");
      std::printf("intra-step n=%zu threads=%zu: pooled %.0f steps/s, "
                  "spawn %.0f steps/s (%.2fx vs serial)\n",
                  n, threads, rate, spawn_rate, scaling);
    }
  }

  // Per-dispatch overhead of an empty batch at the widths kAuto allocates:
  // what one step pays before any drift work. kIntraStepMinParticles is
  // re-derived from the pooled number (see sim/parallel_policy.hpp).
  const std::size_t dispatch_width = 4;
  const double spawn_us = measure_dispatch_us(dispatch_width, false);
  const double pool_us = measure_dispatch_us(dispatch_width, true);
  std::fprintf(out,
               "  ],\n  \"dispatch\": {\"width\": %zu, "
               "\"spawn_us\": %.2f, \"pool_us\": %.2f, "
               "\"pool_speedup\": %.2f},\n",
               dispatch_width, spawn_us, pool_us,
               pool_us > 0.0 ? spawn_us / pool_us : 0.0);
  std::printf("dispatch width=%zu: spawn %.1f us, pool %.1f us (%.1fx)\n",
              dispatch_width, spawn_us, pool_us,
              pool_us > 0.0 ? spawn_us / pool_us : 0.0);
  std::fprintf(out,
               "  \"intra_step_min_particles\": {\"pre_executor\": 2048, "
               "\"current\": %zu},\n",
               sim::kIntraStepMinParticles);

  // Verlet/skin opt-in on post-alignment collectives, plus per-backend full
  // re-index cost — all gated by tools/bench_trend.py (throughput and skip
  // rate on drops, rebuild_us on growth).
  const std::size_t verlet_sizes[] = {4096, 16384};
  double adaptive_speedup_min = 1e300;
  double adaptive_skip_rate_min = 1e300;
  std::fprintf(out, "  \"verlet\": [\n");
  for (std::size_t k = 0; k < 2; ++k) {
    const std::size_t n = verlet_sizes[k];
    const VerletBenchRow row = measure_verlet_row(n);
    const double speedup = row.grid_steps_per_sec > 0.0
                               ? row.verlet_steps_per_sec / row.grid_steps_per_sec
                               : 0.0;
    const double adaptive_speedup =
        row.grid_steps_per_sec > 0.0
            ? row.adaptive_steps_per_sec / row.grid_steps_per_sec
            : 0.0;
    adaptive_speedup_min = std::min(adaptive_speedup_min, adaptive_speedup);
    adaptive_skip_rate_min =
        std::min(adaptive_skip_rate_min, row.adaptive_skip_rate);
    std::fprintf(out,
                 "    {\"n\": %zu, \"skin\": %.2f, \"settle_steps\": %d, "
                 "\"cell_grid_steps_per_sec\": %.1f, "
                 "\"verlet_steps_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"rebuild_skip_rate\": %.3f, "
                 "\"adaptive_steps_per_sec\": %.1f, "
                 "\"adaptive_speedup\": %.3f, "
                 "\"adaptive_skip_rate\": %.3f, "
                 "\"adaptive_skin\": %.3f, "
                 "\"adaptive_partials_per_step\": %.3f, "
                 "\"cell_grid_rebuild_us\": %.1f, "
                 "\"verlet_rebuild_us\": %.1f}%s\n",
                 n, kVerletBenchSkin, kVerletSettleSteps,
                 row.grid_steps_per_sec, row.verlet_steps_per_sec, speedup,
                 row.skip_rate, row.adaptive_steps_per_sec, adaptive_speedup,
                 row.adaptive_skip_rate, row.adaptive_skin,
                 row.adaptive_partials_per_step, row.grid_rebuild_us,
                 row.verlet_rebuild_us, k + 1 < 2 ? "," : "");
    std::printf("verlet n=%zu skin=%.1f: grid %.0f steps/s, verlet %.0f "
                "steps/s (%.2fx), skip rate %.2f, rebuild %.0f vs %.0f us\n",
                n, kVerletBenchSkin, row.grid_steps_per_sec,
                row.verlet_steps_per_sec, speedup, row.skip_rate,
                row.grid_rebuild_us, row.verlet_rebuild_us);
    std::printf("verlet n=%zu adaptive: %.0f steps/s (%.2fx), skip rate "
                "%.2f, skin -> %.2f, %.2f partial passes/step\n",
                n, row.adaptive_steps_per_sec, adaptive_speedup,
                row.adaptive_skip_rate, row.adaptive_skin,
                row.adaptive_partials_per_step);
  }
  std::fprintf(out, "  ],\n");

  // SoA/SIMD kernel speedup: the single-threaded cell-grid step with the
  // scalar reference kernels vs the vector kernels, same workload as the
  // intra_step series. The ISA label and compiler identity ride along so
  // tools/bench_trend.py can refuse to compare runs across machines whose
  // kernels dispatched differently — a "regression" from avx2 to generic
  // is a hardware change, not a code change. Lane width is pinned
  // (support::kSimdWidth); scalar and vector results are bitwise-identical
  // by contract, so this section is pure throughput, never accuracy.
  const std::size_t simd_sizes[] = {4096, 16384};
  const auto saved_policy = support::simd_policy();
#if defined(__clang__)
  const char* const compiler_id = "clang " __clang_version__;
#elif defined(__GNUC__)
  const char* const compiler_id = "gcc " __VERSION__;
#else
  const char* const compiler_id = "unknown";
#endif
  // Single-core cell-grid steps/sec recorded by the last pre-SoA build of
  // this benchmark (intra_step threads=1 rows) — the fixed yardstick for
  // the "SoA + SIMD bought >= 3x" check below.
  const double pre_soa_steps_per_sec[] = {479.7, 113.7};
  double simd_vs_pre_soa[] = {0.0, 0.0};
  double simd_speedup_at_16384 = 0.0;
  std::fprintf(out,
               "  \"simd\": {\"width\": %zu, \"isa\": \"%s\", "
               "\"compiler\": \"%s\", \"arch_flags\": \"%s\", "
               "\"results\": [\n",
               support::kSimdWidth, support::simd_isa(), compiler_id,
               support::cpu_dispatch_avx2() ? "baseline+avx2-dispatch"
                                            : "baseline");
  for (std::size_t k = 0; k < 2; ++k) {
    const std::size_t n = simd_sizes[k];
    support::set_simd_policy(support::SimdPolicy::kScalar);
    const double scalar_rate = best_throughput(
        [&] { return measure_intra_step_steps_per_sec(n, 1, true); });
    support::set_simd_policy(support::SimdPolicy::kSimd);
    const double simd_rate = best_throughput(
        [&] { return measure_intra_step_steps_per_sec(n, 1, true); });
    support::set_simd_policy(saved_policy);
    const double speedup = scalar_rate > 0.0 ? simd_rate / scalar_rate : 0.0;
    simd_vs_pre_soa[k] = simd_rate / pre_soa_steps_per_sec[k];
    if (n == 16384) simd_speedup_at_16384 = speedup;
    std::fprintf(out,
                 "    {\"n\": %zu, \"scalar_steps_per_sec\": %.1f, "
                 "\"simd_steps_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                 n, scalar_rate, simd_rate, speedup, k + 1 < 2 ? "," : "");
    std::printf("simd n=%zu isa=%s: scalar %.0f steps/s, simd %.0f steps/s "
                "(%.2fx)\n",
                n, support::simd_isa(), scalar_rate, simd_rate, speedup);
  }
  std::fprintf(out, "  ]},\n");

  // Analyzer throughput (align → KSG per recorded frame) and this run's
  // peak resident set — both gated by tools/bench_trend.py. The nested
  // streaming row is the paper-shaped workload: streamed simulate+analyze
  // frames/sec (gated) against the frozen pre-streaming post-hoc baseline
  // (recorded, ungated — it is a fixed yardstick, not a trend).
  std::size_t analyzer_frames = 0;
  const double frames_per_sec = measure_analyzer_frames_per_sec(&analyzer_frames);
  std::printf("analyzer: %.1f KSG frames/s (n=24, m=96, %zu frames)\n",
              frames_per_sec, analyzer_frames);
  const StreamingRow streaming = measure_streaming_row();
  const double streaming_speedup =
      streaming.post_hoc_baseline_frames_per_sec > 0.0
          ? streaming.streaming_frames_per_sec /
                streaming.post_hoc_baseline_frames_per_sec
          : 0.0;
  std::fprintf(out,
               "  \"analyzer\": {\"n\": 24, \"samples\": 96, \"frames\": %zu, "
               "\"frames_per_sec\": %.2f,\n"
               "    \"streaming\": {\"n\": %zu, \"samples\": %zu, "
               "\"frames\": %zu, \"streaming_frames_per_sec\": %.4f, "
               "\"post_hoc_baseline_frames_per_sec\": %.4f, "
               "\"speedup\": %.2f}},\n",
               analyzer_frames, frames_per_sec, streaming.n, streaming.samples,
               streaming.frames, streaming.streaming_frames_per_sec,
               streaming.post_hoc_baseline_frames_per_sec, streaming_speedup);
  std::printf("streaming analyzer n=%zu m=%zu F=%zu: %.4f frames/s streamed "
              "end-to-end vs %.4f frames/s frozen post-hoc (%.2fx), bitwise "
              "%s\n",
              streaming.n, streaming.samples, streaming.frames,
              streaming.streaming_frames_per_sec,
              streaming.post_hoc_baseline_frames_per_sec, streaming_speedup,
              streaming.bitwise_match ? "identical" : "DIVERGED");

  // Read the engine's whole-run high-water mark *before* the frame-store
  // fill below: the fill's deliberate 125 MiB heap allocation would
  // otherwise become the process peak and mask engine RSS regressions.
  const long engine_peak_rss_kb = peak_rss_kb();

  // FrameStore footprint at paper-sized m (the spill path's target
  // workload: m = 500 samples of n = 1024 particles on a long-stride
  // recording grid). Runs last so the 125 MiB fills cannot perturb the
  // timed sections above. bytes_per_frame is the deterministic per-frame
  // payload, gated on growth by bench_trend.py like RSS; the fill deltas
  // record how much of that payload stays resident per backing — the
  // mapped spill must keep the recording footprint well below the heap
  // mode's (recorded, not gated: small RSS numbers jitter).
  const std::size_t fs_frames = 16;
  const std::size_t fs_samples = 500;
  const std::size_t fs_particles = 1024;
  const long heap_fill_kb = measure_frame_store_fill_rss_kb(
      core::StorageMode::kHeap, fs_frames, fs_samples, fs_particles);
  const long mapped_fill_kb = measure_frame_store_fill_rss_kb(
      core::StorageMode::kMapped, fs_frames, fs_samples, fs_particles);
  const std::size_t fs_bytes_per_frame =
      fs_samples * fs_particles * sizeof(geom::Vec2);
  // Checkpoint/restart overhead at the same grid: the size of the shard
  // manifest sidecar a durable recording of F × m × n would carry.
  // Deterministic (header + F-step grid + per-sample entries + bitmap) and
  // tiny next to the payload; recorded so manifest format growth shows up
  // in the trend, ungated so a deliberate format revision does not trip
  // the throughput gate.
  io::ShardManifest fs_manifest;
  fs_manifest.frames = fs_frames;
  fs_manifest.samples_total = fs_samples;
  fs_manifest.particles = fs_particles;
  fs_manifest.slot_begin = 0;
  fs_manifest.slot_end = fs_samples;
  fs_manifest.frame_steps.assign(fs_frames, 0);
  fs_manifest.equilibrium_steps.assign(fs_samples, 0);
  fs_manifest.completed.assign(io::ShardManifest::words_for(fs_samples), 0);
  const std::size_t fs_manifest_bytes = fs_manifest.file_bytes();
  std::fprintf(out,
               "  \"frame_store\": {\"frames\": %zu, \"samples\": %zu, "
               "\"particles\": %zu, \"bytes_per_frame\": %zu, "
               "\"heap_fill_rss_delta_kb\": %ld, "
               "\"mapped_fill_rss_delta_kb\": %ld, "
               "\"manifest_bytes\": %zu},\n",
               fs_frames, fs_samples, fs_particles, fs_bytes_per_frame,
               heap_fill_kb, mapped_fill_kb, fs_manifest_bytes);
  std::printf("frame store m=%zu n=%zu F=%zu: %zu bytes/frame, fill RSS "
              "heap %ld KB vs mapped %ld KB, manifest %zu bytes\n",
              fs_samples, fs_particles, fs_frames, fs_bytes_per_frame,
              heap_fill_kb, mapped_fill_kb, fs_manifest_bytes);

  // Job-service overhead (see measure_service_row): recorded, ungated.
  const ServiceBenchRow service = measure_service_row();
  const double service_overhead =
      service.direct_seconds > 0.0
          ? service.manager_seconds / service.direct_seconds
          : 0.0;
  std::fprintf(out,
               "  \"service\": {\"n\": 256, \"samples\": 32, "
               "\"direct_seconds\": %.4f, \"manager_seconds\": %.4f, "
               "\"overhead_ratio\": %.3f, "
               "\"submit_to_first_sample_ms\": %.3f},\n",
               service.direct_seconds, service.manager_seconds,
               service_overhead, service.submit_to_first_sample_ms);
  std::printf("service n=256 m=32: direct %.3f s, manager %.3f s (%.2fx), "
              "submit->first sample %.2f ms\n",
              service.direct_seconds, service.manager_seconds,
              service_overhead, service.submit_to_first_sample_ms);

  std::fprintf(out, "  \"peak_rss_kb\": %ld,\n", engine_peak_rss_kb);
  std::fprintf(out, "  \"hardware_threads\": %u\n}\n",
               std::thread::hardware_concurrency());
  std::fclose(out);
  std::printf("CHECK %s engine >= 1.5x seed baseline at n=1024 (%.2fx)\n",
              speedup_at_1024 >= 1.5 ? "[PASS]" : "[FAIL]", speedup_at_1024);
  std::printf("CHECK %s intra-step >= 3x at n=16384, threads=8 (%.2fx; "
              "needs >= 8 hardware threads, %u available)\n",
              scaling_at_16384x8 >= 3.0 ? "[PASS]" : "[FAIL]",
              scaling_at_16384x8, std::thread::hardware_concurrency());
  std::printf("CHECK %s pool dispatch below spawn-per-step baseline "
              "(%.1f us vs %.1f us at width %zu)\n",
              pool_us < spawn_us ? "[PASS]" : "[FAIL]", pool_us, spawn_us,
              dispatch_width);
  std::printf("CHECK %s SoA + SIMD single-core step >= 3x the pre-SoA "
              "recording (%.2fx at n=4096, %.2fx at n=16384; simd/scalar "
              "%.2fx at n=16384)\n",
              simd_vs_pre_soa[0] >= 3.0 && simd_vs_pre_soa[1] >= 3.0
                  ? "[PASS]"
                  : "[FAIL]",
              simd_vs_pre_soa[0], simd_vs_pre_soa[1], simd_speedup_at_16384);
  // The dense chunk path once ate the Verlet opt-in's advantage (the grid
  // streamed bucket-ordered lanes while the Verlet rows still gathered by
  // index, parity ~0.9x). Packed candidate lanes closed that gap, and the
  // adaptive shell + partial rebuilds re-opened the win — the gate is an
  // advantage claim again, at both bench sizes.
  std::printf("CHECK %s adaptive verlet >= 1.4x cell grid post-alignment at "
              "n=4096 and n=16384 (min %.2fx) with skip rate >= 0.85 "
              "(min %.2f)\n",
              adaptive_speedup_min >= 1.4 && adaptive_skip_rate_min >= 0.85
                  ? "[PASS]"
                  : "[FAIL]",
              adaptive_speedup_min, adaptive_skip_rate_min);
  std::printf("CHECK %s streaming analyzer >= 3x the frozen post-hoc "
              "baseline at n=1024, m=100 (%.2fx) with bitwise-identical "
              "output (%s)\n",
              streaming_speedup >= 3.0 && streaming.bitwise_match ? "[PASS]"
                                                                  : "[FAIL]",
              streaming_speedup,
              streaming.bitwise_match ? "identical" : "DIVERGED");
  std::printf("CHECK %s mapped frame store keeps < 50%% of the heap "
              "recording footprint resident (%ld vs %ld KB at m=%zu)\n",
              heap_fill_kb <= 0 ? "[SKIP, no /proc/self/statm]"
              : mapped_fill_kb < heap_fill_kb / 2 ? "[PASS]"
                                                  : "[FAIL]",
              mapped_fill_kb, heap_fill_kb, fs_samples);
  std::printf("series written to BENCH_engine.json\n");
}

// --smoke: a seconds-scale self-check for ctest — steps a small collective
// serially and sharded, verifying the bitwise contract end to end, without
// touching BENCH_engine.json.
int run_smoke() {
  const std::size_t n = 512;
  auto serial_system = random_system(n, 34.0, 3, 7);
  auto sharded_system = serial_system;
  auto pooled_system = serial_system;
  auto scalar_system = serial_system;
  const auto model = default_model(3);
  const sim::PairScalingTable table(model);
  sim::IntegratorParams params;
  rng::Xoshiro256 serial_engine(1);
  rng::Xoshiro256 sharded_engine(1);
  rng::Xoshiro256 pooled_engine(1);
  rng::Xoshiro256 scalar_engine(1);
  std::vector<geom::Vec2> serial_drift;
  std::vector<geom::Vec2> sharded_drift;
  std::vector<geom::Vec2> pooled_drift;
  std::vector<geom::Vec2> scalar_drift;
  geom::CellGridBackend serial_backend;
  geom::CellGridBackend sharded_backend;
  geom::CellGridBackend pooled_backend;
  geom::CellGridBackend scalar_backend;
  support::TaskPool pool(4);
  const auto smoke_policy = support::simd_policy();
  for (int step = 0; step < 25; ++step) {
    sim::accumulate_drift(serial_system, table, 3.0, serial_drift,
                          serial_backend, 1);
    sim::accumulate_drift(sharded_system, table, 3.0, sharded_drift,
                          sharded_backend, 4);
    sim::accumulate_drift(pooled_system, table, 3.0, pooled_drift,
                          pooled_backend, pool.executor());
    // The scalar reference kernels must reproduce whatever the ambient
    // policy (simd, on capable builds) computed, bit for bit.
    support::set_simd_policy(support::SimdPolicy::kScalar);
    sim::accumulate_drift(scalar_system, table, 3.0, scalar_drift,
                          scalar_backend, 1);
    support::set_simd_policy(smoke_policy);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(serial_drift[i] == sharded_drift[i]) ||
          !(serial_drift[i] == pooled_drift[i]) ||
          !(serial_drift[i] == scalar_drift[i])) {
        std::fprintf(stderr, "smoke: drift diverged at step %d particle %zu\n",
                     step, i);
        return 1;
      }
    }
    sim::apply_euler_maruyama_update(serial_system, serial_drift, params,
                                     serial_engine);
    sim::apply_euler_maruyama_update(sharded_system, sharded_drift, params,
                                     sharded_engine);
    sim::apply_euler_maruyama_update(pooled_system, pooled_drift, params,
                                     pooled_engine);
    sim::apply_euler_maruyama_update(scalar_system, scalar_drift, params,
                                     scalar_engine);
  }
  // Verlet leg: serial and pooled follow one trajectory; the sharded quiet
  // steps and displacement-triggered rebuilds must stay bitwise-equal.
  auto verlet_serial_system = random_system(n, 34.0, 3, 7);
  auto verlet_pooled_system = verlet_serial_system;
  rng::Xoshiro256 verlet_serial_engine(1);
  rng::Xoshiro256 verlet_pooled_engine(1);
  geom::VerletListBackend verlet_serial;
  geom::VerletListBackend verlet_pooled;
  for (int step = 0; step < 25; ++step) {
    sim::accumulate_drift(verlet_serial_system, table, 3.0, serial_drift,
                          verlet_serial, 1);
    sim::accumulate_drift(verlet_pooled_system, table, 3.0, pooled_drift,
                          verlet_pooled, pool.executor());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(serial_drift[i] == pooled_drift[i])) {
        std::fprintf(stderr,
                     "smoke: verlet drift diverged at step %d particle %zu\n",
                     step, i);
        return 1;
      }
    }
    sim::apply_euler_maruyama_update(verlet_serial_system, serial_drift,
                                     params, verlet_serial_engine);
    sim::apply_euler_maruyama_update(verlet_pooled_system, pooled_drift,
                                     params, verlet_pooled_engine);
  }
  // Adaptive-skin + partial-rebuild leg (the configuration the bench's
  // adaptive rows measure): same serial-vs-pooled bitwise contract with the
  // controller resizing the shell and runaway rows patched in place.
  auto adaptive_serial_system = random_system(n, 34.0, 3, 7);
  auto adaptive_pooled_system = adaptive_serial_system;
  rng::Xoshiro256 adaptive_serial_engine(1);
  rng::Xoshiro256 adaptive_pooled_engine(1);
  geom::VerletListBackend adaptive_serial;
  geom::VerletListBackend adaptive_pooled;
  geom::VerletListBackend::AdaptiveSkin smoke_adapt;
  smoke_adapt.enabled = true;
  adaptive_serial.set_adaptive_skin(smoke_adapt);
  adaptive_serial.set_partial_rebuild(true);
  adaptive_pooled.set_adaptive_skin(smoke_adapt);
  adaptive_pooled.set_partial_rebuild(true);
  for (int step = 0; step < 25; ++step) {
    sim::accumulate_drift(adaptive_serial_system, table, 3.0, serial_drift,
                          adaptive_serial, 1);
    sim::accumulate_drift(adaptive_pooled_system, table, 3.0, pooled_drift,
                          adaptive_pooled, pool.executor());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(serial_drift[i] == pooled_drift[i])) {
        std::fprintf(stderr,
                     "smoke: adaptive verlet drift diverged at step %d "
                     "particle %zu\n",
                     step, i);
        return 1;
      }
    }
    sim::apply_euler_maruyama_update(adaptive_serial_system, serial_drift,
                                     params, adaptive_serial_engine);
    sim::apply_euler_maruyama_update(adaptive_pooled_system, pooled_drift,
                                     params, adaptive_pooled_engine);
  }
  std::printf(
      "smoke: 25 steps, serial == 4-thread sharded == pooled == scalar "
      "bitwise (cell grid + verlet, fixed and adaptive skin; simd policy "
      "%s)\n",
      support::simd_isa());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Filtered runs are iteration loops on one benchmark — skip the engine
  // sweep then, so a quick --benchmark_filter run stays quick and does not
  // overwrite BENCH_engine.json with numbers from a loaded machine.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") return run_smoke();
    // CI's perf-trend step wants the JSON without paying for the full
    // google-benchmark suite.
    if (arg == "--engine-json-only") {
      emit_engine_json();
      return 0;
    }
    if (arg.starts_with("--benchmark_filter")) filtered = true;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!filtered) emit_engine_json();
  return 0;
}
