// Fig. 12 — emergent structures in particle collectives with local
// interactions and few types: "balls enclosed in circles, layers of
// different types" (§7.2).
//
// Runs curated two-type systems with small r_c and verifies the emergent
// geometry: one type's particles end up enclosed by (at lower mean radius
// than) the other's.
#include "bench_common.hpp"

namespace {

using namespace sops;

// Mean distance of each type from the joint centroid.
std::vector<double> mean_radius_per_type(const std::vector<geom::Vec2>& points,
                                         const std::vector<sim::TypeId>& types,
                                         std::size_t type_count) {
  const geom::Vec2 c = geom::centroid(points);
  std::vector<double> sum(type_count, 0.0);
  std::vector<std::size_t> count(type_count, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    sum[types[i]] += geom::dist(points[i], c);
    ++count[types[i]];
  }
  for (std::size_t t = 0; t < type_count; ++t) {
    if (count[t] > 0) sum[t] /= static_cast<double>(count[t]);
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 12: emergent enclosed/layered structures at small r_c, few types",
      "local interactions with few types produce balls enclosed in circles "
      "and layered arrangements",
      args);

  // System A: the preset enclosure (type 0 ball inside a type 1 ring).
  sim::SimulationConfig enclosure = core::presets::fig12_enclosed_structure();
  enclosure.steps = args.steps(400, 800);
  const sim::Trajectory ta = sim::run_simulation(enclosure);

  // System B: three types with graded same-type radii — layered shells.
  sim::InteractionModel layered_model(sim::ForceLawKind::kSpring, 3,
                                      sim::PairParams{1.0, 1.0, 1.0, 1.0});
  // Graded cohesion: the innermost type packs tightest and most strongly,
  // each shell is looser than the one it wraps (differential adhesion).
  layered_model.set_r(0, 0, 1.0);
  layered_model.set_k(0, 0, 6.0);
  layered_model.set_r(1, 1, 2.5);
  layered_model.set_k(1, 1, 2.0);
  layered_model.set_r(2, 2, 4.5);
  layered_model.set_r(0, 1, 1.8);
  layered_model.set_r(1, 2, 2.8);
  layered_model.set_r(0, 2, 3.5);
  sim::SimulationConfig layers(std::move(layered_model));
  layers.types = sim::evenly_distributed_types(45, 3);
  layers.cutoff_radius = 6.0;
  layers.init_disc_radius = 4.0;
  layers.steps = args.steps(400, 800);
  layers.seed = 0xF12B;
  const sim::Trajectory tb = sim::run_simulation(layers);

  io::ScatterOptions scatter;
  scatter.width = 56;
  scatter.height = 24;
  std::cout << "enclosed structure (2 types):\n"
            << io::render_scatter(ta.frames.back(), ta.types, scatter)
            << "\nlayered structure (3 types):\n"
            << io::render_scatter(tb.frames.back(), tb.types, scatter) << "\n";
  io::write_text_file(bench::out_path("fig12_enclosed.svg"),
                      io::render_svg(ta.frames.back(), ta.types));
  io::write_text_file(bench::out_path("fig12_layered.svg"),
                      io::render_svg(tb.frames.back(), tb.types));
  std::cout << "SVG snapshots in bench_out/\n\n";

  const auto radii_a = mean_radius_per_type(ta.frames.back(), ta.types, 2);
  const auto radii_b = mean_radius_per_type(tb.frames.back(), tb.types, 3);
  std::cout << "enclosure mean radii by type: " << radii_a[0] << " vs "
            << radii_a[1] << "\n"
            << "layered mean radii by type: " << radii_b[0] << ", "
            << radii_b[1] << ", " << radii_b[2] << "\n";

  bool all = true;
  all &= bench::check(radii_a[0] < 0.7 * radii_a[1],
                      "two-type system: type 0 ball enclosed by type 1 ring");
  all &= bench::check(radii_b[0] < radii_b[2],
                      "three-type system: innermost type below outermost "
                      "(layering)");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
