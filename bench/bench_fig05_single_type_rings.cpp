// Fig. 5 — multi-information over time for a single-type F¹ collective of
// 20 particles with r_c > 2·r_αα.
//
// The paper's claim: despite having only one type, this system shows a
// relatively high amount of self-organization (I rising to ~6–8 bits over
// 250 steps with 500 samples) because the equilibrium is two concentric
// regular polygons whose mutual rotation is a free degree of freedom.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 5: I(t) for 20 particles of one type, F1, r_c > 2 r_aa",
      "a single-type system self-organizes into concentric rings; I rises to "
      "a relatively high level",
      args);

  sim::SimulationConfig simulation = core::presets::fig5_single_type_rings();
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = 25;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(400, 500);
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);

  std::vector<io::Series> chart_series{
      {"I(W1..Wn) [bits]", result.steps(), result.mi_values()}};
  io::ChartOptions chart;
  chart.y_label = "multi-information (bits)";
  std::cout << io::render_chart(chart_series, chart) << "\n";

  std::cout << "final configuration of sample 0:\n"
            << io::render_scatter(series.frames.back().front(), series.types)
            << "\n";

  io::CsvTable table;
  table.header = {"t", "multi_information_bits"};
  for (const auto& point : result.points) {
    table.add_row({static_cast<double>(point.step), point.multi_information});
  }
  bench::dump_csv("fig05_single_type_rings.csv", table);

  // Ring structure: radial distances from the centroid should split into an
  // inner and an outer group.
  const auto& final_config = series.frames.back().front();
  const geom::Vec2 c = geom::centroid(final_config);
  std::vector<double> radii;
  for (const geom::Vec2 p : final_config) radii.push_back(geom::dist(p, c));
  std::sort(radii.begin(), radii.end());
  // Largest gap in sorted radii separates the two rings; compare it with the
  // median inter-radius gap.
  double largest_gap = 0.0;
  double total_gap = 0.0;
  for (std::size_t i = 1; i < radii.size(); ++i) {
    largest_gap = std::max(largest_gap, radii[i] - radii[i - 1]);
    total_gap += radii[i] - radii[i - 1];
  }
  const double mean_gap = total_gap / static_cast<double>(radii.size() - 1);

  bool all = true;
  all &= bench::check(largest_gap > 3.0 * mean_gap,
                      "radial profile splits into concentric rings");
  all &= bench::check(result.delta_mi() > 1.0,
                      "single-type F1 system shows substantial Delta-I "
                      "(paper: ~6 bits at m=500)");
  all &= bench::check(result.points.back().multi_information >
                          result.points.front().multi_information,
                      "I still rising or settled above its initial value");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
