// §5.3.1 ablation — the k-means mean-observer approximation for large
// collectives.
//
// The paper's claims: the approximation (a) makes large-n analysis
// affordable, (b) ignores small-scale organization so the coarse measure
// UNDER-estimates relative to what fine observers report per observer, yet
// (c) preserves the self-organization verdict and the temporal trend.
#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Ablation (par. 5.3.1): per-type k-means mean observers, n = 90",
      "coarse observers are far cheaper, underestimate fine-grained detail, "
      "and preserve the organization verdict",
      args);

  // A 90-particle, 3-type organizing system (Fig. 4 matrices, more
  // particles) — above the paper's n > 60 threshold.
  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.types = sim::evenly_distributed_types(90, 3);
  simulation.steps = args.steps(150, 250);
  simulation.record_stride = simulation.steps;  // endpoints
  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(80, 300);
  const core::EnsembleSeries series = core::run_experiment(experiment);

  using Clock = std::chrono::steady_clock;
  // Timing is best-of-3 with single-threaded analysis: multithreaded
  // wall-clock on a shared machine is too noisy for a pass/fail comparison.
  auto timed_best_of_3 = [&](const core::AnalysisOptions& options,
                             core::AnalysisResult& result) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      result = core::analyze_self_organization(series, options);
      best = std::min(
          best,
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
    return best;
  };

  // Fine observers (force the full 90-particle estimate).
  core::AnalysisOptions fine;
  fine.coarse_grain_above = 1000;
  fine.threads = 1;
  fine.ksg.threads = 1;
  core::AnalysisResult fine_result;
  const double fine_ms = timed_best_of_3(fine, fine_result);

  // Coarse observers (paper threshold: kicks in automatically at n > 60).
  core::AnalysisOptions coarse;
  coarse.kmeans_per_type = 4;
  coarse.threads = 1;
  coarse.ksg.threads = 1;
  core::AnalysisResult coarse_result;
  const double coarse_ms = timed_best_of_3(coarse, coarse_result);

  std::cout << "fine observers:   n_obs = " << fine_result.observer_count
            << ", Delta-I = " << fine_result.delta_mi() << " bits, " << fine_ms
            << " ms\n"
            << "coarse observers: n_obs = " << coarse_result.observer_count
            << ", Delta-I = " << coarse_result.delta_mi() << " bits, "
            << coarse_ms << " ms\n\n";

  // Sweep k to show the approximation knob.
  io::CsvTable table;
  table.header = {"kmeans_per_type", "observers", "delta_I_bits", "ms"};
  table.add_row({0, static_cast<double>(fine_result.observer_count),
                 fine_result.delta_mi(), fine_ms});
  for (const std::size_t k : {2u, 4u, 8u}) {
    core::AnalysisOptions options;
    options.kmeans_per_type = k;
    const auto start = Clock::now();
    const core::AnalysisResult result =
        core::analyze_self_organization(series, options);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    table.add_row({static_cast<double>(k),
                   static_cast<double>(result.observer_count),
                   result.delta_mi(), ms});
    std::cout << "k = " << k << " per type: n_obs = " << result.observer_count
              << ", Delta-I = " << result.delta_mi() << " bits (" << ms
              << " ms)\n";
  }
  bench::dump_csv("ablation_kmeans_observers.csv", table);

  bool all = true;
  all &= bench::check(coarse_result.coarse_grained && !fine_result.coarse_grained,
                      "n > 60 triggers coarse-graining automatically");
  all &= bench::check(coarse_ms < fine_ms,
                      "coarse observers are cheaper than 90 fine observers");
  all &= bench::check(coarse_result.delta_mi() > 0.3,
                      "coarse measure still detects self-organization");
  all &= bench::check(fine_result.delta_mi() > 0.3,
                      "fine measure detects self-organization (reference)");
  all &= bench::check(coarse_result.observer_count < fine_result.observer_count,
                      "dimensionality is genuinely reduced");

  std::cout << (all ? "RESULT: paragraph-5.3.1 claims reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
