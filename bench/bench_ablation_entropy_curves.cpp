// §6 ablation — the entropy mechanics behind rising multi-information.
//
// The paper: "In the beginning the sum of the marginal entropies H(W_i) is
// as large as the overall entropy of the system because there is no
// correlation between particles at all. Over time, the marginal entropies
// decrease, however the overall entropy decreases even faster as the
// variations of individual particles are correlated. This then leads to an
// increase of multi-information over time."
//
// This bench draws all three curves for the Fig. 4 system: Σ h(W_i), h(W),
// and I(t). Note the joint KL entropy of a 100-dimensional state is
// estimated on the *coarse-grained* observers (12 dimensions) where the
// small-sample bias is manageable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Ablation (par. 6): marginal vs joint entropy during organization",
      "marginal entropies decrease; the joint entropy decreases faster; the "
      "difference (multi-information) rises",
      args);

  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = 25;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(150, 500);
  const core::EnsembleSeries series = core::run_experiment(experiment);

  // Coarse observers keep the joint-entropy estimate honest (12 dims).
  core::AnalysisOptions options;
  options.coarse_grain_above = 10;  // force coarse-graining (n = 50 > 10)
  options.kmeans_per_type = 2;
  options.compute_entropies = true;
  const core::AnalysisResult result =
      core::analyze_self_organization(series, options);

  std::vector<io::Series> curves(3);
  curves[0].label = "sum of marginal entropies [bits]";
  curves[1].label = "joint entropy [bits]";
  curves[2].label = "multi-information [bits]";
  io::CsvTable table;
  table.header = {"t", "marginal_entropy_sum", "joint_entropy",
                  "multi_information"};
  for (const auto& point : result.points) {
    const double t = static_cast<double>(point.step);
    curves[0].x.push_back(t);
    curves[0].y.push_back(point.marginal_entropy_sum);
    curves[1].x.push_back(t);
    curves[1].y.push_back(point.joint_entropy);
    curves[2].x.push_back(t);
    curves[2].y.push_back(point.multi_information);
    table.add_row({t, point.marginal_entropy_sum, point.joint_entropy,
                   point.multi_information});
  }

  io::ChartOptions chart;
  chart.y_label = "bits";
  chart.y_from_zero = false;
  std::cout << io::render_chart(curves, chart) << "\n";
  bench::dump_csv("ablation_entropy_curves.csv", table);

  const auto& first = result.points.front();
  const auto& last = result.points.back();
  const double marginal_drop =
      first.marginal_entropy_sum - last.marginal_entropy_sum;
  const double joint_drop = first.joint_entropy - last.joint_entropy;
  std::cout << "Fig. 4 system:\n"
            << "  marginal-entropy-sum drop: " << marginal_drop << " bits\n"
            << "  joint-entropy drop:        " << joint_drop << " bits\n"
            << "  multi-information rise:    "
            << last.multi_information - first.multi_information << " bits\n"
            << "  mechanism: "
            << (marginal_drop > 0.0
                    ? "both entropies fall, joint faster (par. 6 description)"
                    : "marginals rise while the joint falls relative to them "
                      "(the par. 6.1 alternative)")
            << "\n\n";

  // A contracting system reproduces the par.-6 description verbatim: the
  // Fig. 12 enclosure starts diffuse (init radius 4) and condenses into a
  // compact core+ring, so per-observer spread falls too.
  sim::SimulationConfig contracting = core::presets::fig12_enclosed_structure();
  contracting.steps = args.steps(250, 250);
  contracting.record_stride = 25;
  core::ExperimentConfig contracting_experiment(contracting);
  contracting_experiment.samples = args.samples(150, 500);
  core::AnalysisOptions contracting_options;
  contracting_options.compute_entropies = true;
  const core::AnalysisResult contracting_result = core::analyze_self_organization(
      core::run_experiment(contracting_experiment), contracting_options);
  const auto& c_first = contracting_result.points.front();
  const auto& c_last = contracting_result.points.back();
  const double c_marginal_drop =
      c_first.marginal_entropy_sum - c_last.marginal_entropy_sum;
  const double c_joint_drop = c_first.joint_entropy - c_last.joint_entropy;
  std::cout << "contracting (Fig. 12 enclosure) system:\n"
            << "  marginal-entropy-sum drop: " << c_marginal_drop << " bits\n"
            << "  joint-entropy drop:        " << c_joint_drop << " bits\n"
            << "  multi-information rise:    "
            << c_last.multi_information - c_first.multi_information
            << " bits\n\n";

  bool all = true;
  // The general par.-6.1 statement, which subsumes both mechanisms: the gap
  // Σh(W_i) − h(W) widens, i.e. the joint falls faster than the marginals
  // (equivalently I rises).
  all &= bench::check(joint_drop > marginal_drop,
                      "Fig. 4: joint entropy falls faster than the marginal "
                      "sum (the gap that IS the multi-information widens)");
  all &= bench::check(last.multi_information > first.multi_information,
                      "Fig. 4: multi-information rises");
  all &= bench::check(
      first.multi_information < 0.5 * last.multi_information,
      "Fig. 4: initially the system carries (almost) no multi-information");
  // The verbatim par.-6 description on the contracting system.
  all &= bench::check(c_marginal_drop > 0.0,
                      "contracting system: marginal entropies decrease");
  all &= bench::check(c_joint_drop > c_marginal_drop,
                      "contracting system: the joint entropy decreases faster");
  all &= bench::check(
      c_last.multi_information > c_first.multi_information,
      "contracting system: multi-information rises");

  std::cout << (all ? "RESULT: paragraph-6 entropy mechanics reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
