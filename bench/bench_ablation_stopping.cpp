// §6 ablation — stopping behavior: equilibrium vs limit cycle vs slow
// expansion.
//
// The paper reports three run outcomes: (a) equilibrium "well before" 250
// steps, (b) slow expansion with the final shape formed, (c) periodic limit
// cycles where the equilibrium criterion never fires (it requires nearly
// vanishing forces) while the configuration recurs. Asymmetric interaction
// matrices are the canonical source of cycling (§4.1) — here we use a
// rotor built from an asymmetric matrix to exhibit (c).
#include "bench_common.hpp"

namespace {

using namespace sops;

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Ablation (par. 6): equilibrium vs slow expansion vs limit cycle",
      "equilibria stop early; F2 systems keep slowly expanding; cycling "
      "systems never satisfy the force criterion but recur",
      args);

  // (a) Equilibrium: single-type F1 without noise relaxes and stops.
  sim::SimulationConfig equilibrium = core::presets::fig5_single_type_rings();
  equilibrium.steps = args.steps(3000, 5000);
  equilibrium.integrator.noise_variance = 0.0;
  equilibrium.stop_at_equilibrium = true;
  equilibrium.equilibrium.threshold = 0.1;
  const sim::Trajectory eq = sim::run_simulation(equilibrium);
  std::cout << "(a) F1 rings, no noise: equilibrium at step "
            << (eq.equilibrium_step ? std::to_string(*eq.equilibrium_step)
                                    : std::string("never"))
            << " of " << equilibrium.steps << "\n";

  // (b) Slow expansion: literal F2 keeps spreading; no equilibrium, radius
  // grows between the half-way point and the end, but slower than early on.
  sim::SimulationConfig expansion = core::presets::fig3_single_type_grid();
  expansion.steps = args.steps(400, 800);
  expansion.integrator.noise_variance = 0.0;
  const sim::Trajectory exp_run = sim::run_simulation(expansion);
  auto mean_radius = [](const std::vector<geom::Vec2>& points) {
    const geom::Vec2 c = geom::centroid(points);
    double sum = 0.0;
    for (const geom::Vec2 p : points) sum += geom::dist(p, c);
    return sum / static_cast<double>(points.size());
  };
  const double r_start = mean_radius(exp_run.frames.front());
  const double r_mid = mean_radius(exp_run.frames[exp_run.frames.size() / 2]);
  const double r_end = mean_radius(exp_run.frames.back());
  std::cout << "(b) literal F2: mean radius " << r_start << " -> " << r_mid
            << " -> " << r_end << " (still expanding, decelerating)\n";

  // (c) The §4.1 asymmetric regime via AsymmetricInteractionModel: type 0
  // wants distance 1 from type 1, type 1 wants distance 3 from type 0.
  // The preferred distances are mutually unsatisfiable, so forces never
  // vanish — the pair settles into a perpetual steady pursuit (a
  // translating relative equilibrium). The force-based criterion correctly
  // never fires, while the recurrence detector (which factors out the
  // translation) recognizes the repeating shape.
  const std::size_t cycle_steps = args.steps(4000, 8000);
  const sim::AsymmetricInteractionModel cycling_model =
      sim::make_chaser_evader_model(1.0, 3.0);
  sim::ParticleSystem pair_system({{0.0, 0.0}, {2.0, 0.3}}, {0, 1});
  sim::IntegratorParams cycle_params;
  cycle_params.noise_variance = 0.0;  // cycling is deterministic
  rng::Xoshiro256 cycle_engine(0xC1C);
  sim::EquilibriumDetector eq_detector(0.05, 10);
  sim::LimitCycleDetector cycle_detector(0.02, 10, 1500);
  bool equilibrium_fired = false;
  std::optional<sim::CycleMatch> cycle;
  std::vector<geom::Vec2> cycle_scratch;
  for (std::size_t step = 0; step < cycle_steps; ++step) {
    const double residual = sim::euler_maruyama_step_asymmetric(
        pair_system, cycling_model, sim::kUnboundedRadius, cycle_params,
        cycle_engine, cycle_scratch);
    equilibrium_fired |= eq_detector.update(residual);
    if (!cycle) cycle = cycle_detector.update(pair_system.positions_aos());
  }
  std::cout << "(c) asymmetric chaser/evader: equilibrium criterion "
            << (equilibrium_fired ? "fired (unexpected)" : "never fired")
            << ", cycle "
            << (cycle ? "detected with period " + std::to_string(cycle->period)
                      : "not detected")
            << "\n\n";

  bool all = true;
  all &= bench::check(eq.equilibrium_step.has_value() &&
                          *eq.equilibrium_step < equilibrium.steps,
                      "(a) equilibrium reached well before the step budget");
  all &= bench::check(r_end > r_mid && r_mid > r_start,
                      "(b) literal F2 keeps expanding");
  all &= bench::check((r_end - r_mid) < (r_mid - r_start),
                      "(b) expansion decelerates (shape formed)");
  all &= bench::check(!equilibrium_fired,
                      "(c) cycling system never satisfies the force criterion");
  all &= bench::check(cycle.has_value(),
                      "(c) the limit-cycle detector flags the recurrence");

  std::cout << (all ? "RESULT: paragraph-6 stopping phenomenology reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
