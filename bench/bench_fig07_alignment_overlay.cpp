// Fig. 7 — overlay of all aligned samples of the single-type ring system at
// t = 250.
//
// The paper's claim: after ICP alignment, the *outer* ring's particles
// cluster tightly across samples (alignment pins them), while the inner
// ring stays diffuse — its rotation relative to the outer ring is a free
// degree of freedom that alignment cannot (and should not) remove.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 7: aligned overlay of all samples (single-type rings)",
      "outer-ring particles align tightly across samples; the inner ring's "
      "rotation is a free degree of freedom and stays diffuse",
      args);

  sim::SimulationConfig simulation = core::presets::fig5_single_type_rings();
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = simulation.steps;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(120, 500);
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const align::AlignedEnsemble aligned =
      align::align_ensemble(series.frames.back(), series.types);

  const std::size_t n = aligned.observer_count();
  const std::size_t m = aligned.sample_count();

  // Classify observers into inner/outer ring by mean radius, then measure
  // each observer's cross-sample scatter (how tight its cluster is in the
  // overlay plot).
  std::vector<double> mean_radius(n, 0.0);
  std::vector<geom::Vec2> mean_pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < m; ++s) {
      mean_pos[i] += geom::Vec2{aligned.samples(s, 2 * i),
                                aligned.samples(s, 2 * i + 1)};
    }
    mean_pos[i] /= static_cast<double>(m);
  }
  std::vector<double> scatter(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < m; ++s) {
      const geom::Vec2 p{aligned.samples(s, 2 * i),
                         aligned.samples(s, 2 * i + 1)};
      scatter[i] += geom::dist_sq(p, mean_pos[i]);
      mean_radius[i] += geom::norm(p) / static_cast<double>(m);
    }
    scatter[i] = std::sqrt(scatter[i] / static_cast<double>(m));
  }

  // Split observers at the median radius.
  std::vector<double> sorted_radii = mean_radius;
  std::sort(sorted_radii.begin(), sorted_radii.end());
  const double split = sorted_radii[n / 2];
  double inner_scatter = 0.0;
  double outer_scatter = 0.0;
  std::size_t inner_count = 0;
  std::size_t outer_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mean_radius[i] < split) {
      inner_scatter += scatter[i];
      ++inner_count;
    } else {
      outer_scatter += scatter[i];
      ++outer_count;
    }
  }
  inner_scatter /= static_cast<double>(std::max<std::size_t>(inner_count, 1));
  outer_scatter /= static_cast<double>(std::max<std::size_t>(outer_count, 1));

  // Overlay plot: all samples' particles in one scatter.
  std::vector<geom::Vec2> overlay;
  std::vector<sim::TypeId> overlay_types;
  for (std::size_t s = 0; s < std::min<std::size_t>(m, 60); ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      overlay.push_back({aligned.samples(s, 2 * i),
                         aligned.samples(s, 2 * i + 1)});
      overlay_types.push_back(mean_radius[i] < split ? 1 : 0);
    }
  }
  io::ScatterOptions options;
  options.width = 64;
  options.height = 30;
  std::cout << io::render_scatter(overlay, overlay_types, options)
            << "(0 = outer-ring observers, 1 = inner-ring observers)\n\n"
            << "outer-ring mean cross-sample scatter: " << outer_scatter << "\n"
            << "inner-ring mean cross-sample scatter: " << inner_scatter
            << "\n\n";

  io::CsvTable table;
  table.header = {"observer", "mean_radius", "cross_sample_scatter"};
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({static_cast<double>(i), mean_radius[i], scatter[i]});
  }
  bench::dump_csv("fig07_alignment_overlay.csv", table);

  bool all = true;
  all &= bench::check(outer_scatter < inner_scatter,
                      "outer ring aligns more tightly than the inner ring "
                      "(the inner rotation is a free DOF)");
  all &= bench::check(outer_scatter < 0.8,
                      "outer-ring samples form dense clusters");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
