// Extension — per-particle information transfer (the paper's §7.3 future
// work: "The methods developed in [24] promise to furnish tools to
// investigate the information dynamics between individual particles over
// time. We tried to measure the information transfer between particles, but
// so far the results are still inconclusive").
//
// We implement KSG-style transfer entropy and apply it twice:
//  (1) a validation rig with known directional coupling (leader/follower),
//      where TE must recover the direction; and
//  (2) the Fig. 4 collective, asking whether interacting neighbors exchange
//      more information than distant particles — the paper's open question.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Extension (par. 7.3): transfer entropy between particles",
      "TE recovers known coupling direction; in the collective, interacting "
      "pairs exchange more information than distant pairs",
      args);

  // --- (1) Validation: leader/follower with known direction. -------------
  rng::Xoshiro256 engine(0x7E57);
  std::vector<std::vector<geom::Vec2>> chase_frames;
  geom::Vec2 leader{0, 0};
  geom::Vec2 follower{2, 0};
  const std::size_t chase_steps = args.steps(1500, 4000);
  for (std::size_t t = 0; t < chase_steps; ++t) {
    chase_frames.push_back({leader, follower});
    follower += (leader - follower) * 0.25 + rng::normal_vec2(engine, 0.05);
    leader += rng::normal_vec2(engine, 0.3);
  }
  const double te_forward = info::particle_transfer_entropy(chase_frames, 0, 1);
  const double te_backward = info::particle_transfer_entropy(chase_frames, 1, 0);
  std::cout << "leader -> follower TE: " << te_forward << " bits\n"
            << "follower -> leader TE: " << te_backward << " bits\n\n";

  // --- (2) The collective: TE vs interaction distance. -------------------
  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = args.steps(2000, 4000);  // long series for the estimator
  simulation.record_stride = 1;
  simulation.seed = 0x7E58;
  const sim::Trajectory trajectory = sim::run_simulation(simulation);

  // Classify particle pairs by their mean distance over the second half of
  // the run (interacting: within r_c; distant: beyond 2 r_c).
  const std::size_t n = trajectory.particle_count();
  const std::size_t half = trajectory.frames.size() / 2;
  auto mean_distance = [&](std::size_t a, std::size_t b) {
    double total = 0.0;
    for (std::size_t f = half; f < trajectory.frames.size(); ++f) {
      total += geom::dist(trajectory.frames[f][a], trajectory.frames[f][b]);
    }
    return total / static_cast<double>(trajectory.frames.size() - half);
  };

  info::TransferEntropyOptions te_options;
  std::vector<double> near_te;
  std::vector<double> far_te;
  // Sample a deterministic subset of pairs to keep the run short.
  for (std::size_t a = 0; a < n && near_te.size() + far_te.size() < 60;
       a += 3) {
    for (std::size_t b = a + 1; b < n; b += 5) {
      const double d = mean_distance(a, b);
      if (d < simulation.cutoff_radius && near_te.size() < 30) {
        near_te.push_back(info::particle_transfer_entropy(
            trajectory.frames, a, b, te_options));
      } else if (d > 2.0 * simulation.cutoff_radius && far_te.size() < 30) {
        far_te.push_back(info::particle_transfer_entropy(
            trajectory.frames, a, b, te_options));
      }
    }
  }
  auto mean_of = [](const std::vector<double>& values) {
    double total = 0.0;
    for (const double v : values) total += v;
    return values.empty() ? 0.0 : total / static_cast<double>(values.size());
  };
  const double near_mean = mean_of(near_te);
  const double far_mean = mean_of(far_te);
  std::cout << "interacting pairs (d < r_c):  mean TE = " << near_mean
            << " bits over " << near_te.size() << " pairs\n"
            << "distant pairs (d > 2 r_c):    mean TE = " << far_mean
            << " bits over " << far_te.size() << " pairs\n\n";

  io::CsvTable table;
  table.header = {"pair_class", "mean_te_bits", "pairs"};
  table.add_row({0.0, near_mean, static_cast<double>(near_te.size())});
  table.add_row({1.0, far_mean, static_cast<double>(far_te.size())});
  bench::dump_csv("ext_information_transfer.csv", table);

  bool all = true;
  all &= bench::check(te_forward > 2.0 * std::max(te_backward, 0.01),
                      "TE recovers the known leader->follower direction");
  all &= bench::check(te_backward < 0.15,
                      "no spurious reverse transfer on the validation rig");
  all &= bench::check(!near_te.empty() && !far_te.empty(),
                      "both pair classes sampled in the collective");
  all &= bench::check(near_mean > far_mean,
                      "interacting pairs exchange more information than "
                      "distant pairs (the paper's open question, answered "
                      "affirmatively here)");

  std::cout << (all ? "RESULT: extension validated\n"
                    : "RESULT: MISMATCH against expectation\n");
  return 0;
}
