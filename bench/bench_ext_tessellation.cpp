// Extension — restoring the cell-like tessellation the paper drops.
//
// §4.1: "For reasons of simplicity, as well as to be able to have long
// range interactions, we ignore a cell-like tessellation (as opposed to
// [10]), where interactions can only take place between direct neighbors of
// the tessellation."
//
// This bench runs the Fig. 4 collective under three neighbor models —
// radius cut-off (the paper's), Delaunay tessellation (the dropped [10]
// model), and tessellation ∩ radius — and compares the self-organization
// they admit. Expectation from the paper's own §6.1/§7.2 argument:
// tessellation neighborhoods are strictly local (bounded degree), so they
// behave like a small cut-off radius — organization persists but is lower
// than with longer-range interaction.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Extension: tessellation-limited interactions (the dropped [10] model)",
      "tessellation neighbors are strictly local, so self-organization "
      "persists but is bounded like a small r_c",
      args);

  struct Variant {
    const char* name;
    sim::NeighborMode mode;
    double cutoff;
  };
  const std::vector<Variant> variants{
      {"radius r_c = 5 (paper)", sim::NeighborMode::kAuto, 5.0},
      {"Delaunay tessellation", sim::NeighborMode::kDelaunay,
       sim::kUnboundedRadius},
      {"tessellation + r_c = 5", sim::NeighborMode::kDelaunay, 5.0},
  };

  io::CsvTable table;
  table.header = {"t"};
  std::vector<io::Series> curves;
  std::vector<core::AnalysisResult> results;

  for (const Variant& variant : variants) {
    sim::SimulationConfig simulation =
        core::presets::fig4_three_type_collective();
    simulation.steps = args.steps(250, 250);
    simulation.record_stride = 25;
    simulation.neighbor_mode = variant.mode;
    simulation.cutoff_radius = variant.cutoff;

    core::ExperimentConfig experiment(simulation);
    experiment.samples = args.samples(100, 400);
    results.push_back(
        core::analyze_self_organization(core::run_experiment(experiment)));
    curves.push_back({variant.name, results.back().steps(),
                      results.back().mi_values()});
    table.header.push_back(variant.name);
    std::cout << variant.name << ": Delta-I = " << results.back().delta_mi()
              << " bits\n";
  }

  for (std::size_t f = 0; f < curves.front().x.size(); ++f) {
    std::vector<double> row{curves.front().x[f]};
    for (const auto& result : results) {
      row.push_back(result.points[f].multi_information);
    }
    table.add_row(std::move(row));
  }

  io::ChartOptions chart;
  chart.y_label = "multi-information (bits)";
  std::cout << "\n" << io::render_chart(curves, chart) << "\n";
  bench::dump_csv("ext_tessellation.csv", table);

  // Mean Delaunay degree of the final configurations (locality evidence).
  sim::SimulationConfig probe = core::presets::fig4_three_type_collective();
  probe.steps = args.steps(250, 250);
  probe.neighbor_mode = sim::NeighborMode::kDelaunay;
  const sim::Trajectory trajectory = sim::run_simulation(probe);
  const auto adjacency = geom::delaunay_adjacency(trajectory.frames.back());
  double mean_degree = 0.0;
  for (const auto& list : adjacency) {
    mean_degree += static_cast<double>(list.size());
  }
  mean_degree /= static_cast<double>(adjacency.size());
  std::cout << "mean tessellation degree at equilibrium: " << mean_degree
            << " (planar bound < 6)\n\n";

  bool all = true;
  all &= bench::check(results[1].delta_mi() > 0.3,
                      "tessellation-limited system still self-organizes");
  all &= bench::check(results[2].delta_mi() > 0.3,
                      "tessellation + cutoff still self-organizes");
  all &= bench::check(mean_degree < 6.0,
                      "tessellation neighborhoods are bounded-degree (local)");
  all &= bench::check(
      results[0].points.back().multi_information >
          0.5 * results[1].points.back().multi_information,
      "radius model admits at least comparable organization (the paper's "
      "reason to prefer it is long-range capability, not level)");

  std::cout << (all ? "RESULT: extension behaves as the paper's argument "
                      "predicts\n"
                    : "RESULT: MISMATCH against expectation\n");
  return 0;
}
