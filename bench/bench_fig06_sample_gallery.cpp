// Fig. 6 — snapshots of different ensemble samples of the Fig. 4 system at
// t = 60 and t = 250.
//
// The paper's claim: final shapes show variety, but fall into a small
// number of visually distinct categories rather than being arbitrary —
// i.e. between-sample variation at t = 250 is much smaller than the
// variation of the initial condition, yet not zero.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 6: ensemble sample gallery at t = 60 and t = 250",
      "final shapes vary but cluster into a few distinct categories", args);

  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = args.steps(250, 250);
  simulation.record_stride = 10;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = args.samples(40, 64);
  const core::EnsembleSeries series = core::run_experiment(experiment);

  // Frames nearest t = 0, 60, 250.
  auto frame_at = [&](std::size_t target) {
    std::size_t best = 0;
    for (std::size_t f = 0; f < series.frame_steps.size(); ++f) {
      if (series.frame_steps[f] <= target) best = f;
    }
    return best;
  };
  const std::size_t f0 = frame_at(0);
  const std::size_t f60 = frame_at(60);
  const std::size_t f250 = frame_at(simulation.steps);

  io::ScatterOptions scatter;
  scatter.width = 36;
  scatter.height = 15;
  for (std::size_t s = 0; s < 4; ++s) {
    std::cout << "sample " << s << " @ t=" << series.frame_steps[f60] << ":\n"
              << io::render_scatter(series.frames[f60][s], series.types, scatter)
              << "sample " << s << " @ t=" << series.frame_steps[f250] << ":\n"
              << io::render_scatter(series.frames[f250][s], series.types,
                                    scatter)
              << "\n";
    io::write_text_file(
        bench::out_path("fig06_sample" + std::to_string(s) + "_t250.svg"),
        io::render_svg(series.frames[f250][s], series.types));
  }
  std::cout << "SVG snapshots in bench_out/\n\n";

  // Quantify "variety but categories": align the ensemble at t=0 and t=250
  // and compare the mean pairwise distance between aligned samples,
  // normalized by the configuration scale (the collective physically
  // expands under the Fig. 4 forces, so absolute distances grow — what the
  // categories shrink is the *relative* between-sample variation).
  const align::AlignedEnsemble initial =
      align::align_ensemble(series.frames[f0], series.types);
  const align::AlignedEnsemble organized =
      align::align_ensemble(series.frames[f250], series.types);
  auto normalized_spread = [](const align::AlignedEnsemble& ensemble) {
    double rms_radius = 0.0;
    for (std::size_t s = 0; s < ensemble.sample_count(); ++s) {
      const auto row = ensemble.samples.row(s);
      for (const double v : row) rms_radius += v * v;
    }
    rms_radius = std::sqrt(
        rms_radius / static_cast<double>(ensemble.sample_count() *
                                         ensemble.samples.dim()));
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t a = 0; a < ensemble.sample_count(); ++a) {
      for (std::size_t b = a + 1; b < ensemble.sample_count(); ++b) {
        total += info::block_max_dist(ensemble.samples, a, b, ensemble.blocks);
        ++count;
      }
    }
    return total / static_cast<double>(count) / rms_radius;
  };
  const double spread_initial = normalized_spread(initial);
  const double spread_final = normalized_spread(organized);
  std::cout << "normalized aligned ensemble spread: t=0 " << spread_initial
            << ", t=" << simulation.steps << " " << spread_final << "\n";

  // "A few distinct categories": if final shapes cluster into categories,
  // the ensemble's variance concentrates along the category axis. Measure
  // the top-eigenvalue fraction of the aligned ensemble covariance by power
  // iteration and compare organized vs initial (isotropic noise).
  auto top_variance_fraction = [](const align::AlignedEnsemble& ensemble) {
    const std::size_t m = ensemble.sample_count();
    const std::size_t dim = ensemble.samples.dim();
    std::vector<double> mean(dim, 0.0);
    for (std::size_t s = 0; s < m; ++s) {
      const auto row = ensemble.samples.row(s);
      for (std::size_t d = 0; d < dim; ++d) mean[d] += row[d];
    }
    for (double& v : mean) v /= static_cast<double>(m);

    std::vector<double> direction(dim, 1.0 / std::sqrt(static_cast<double>(dim)));
    std::vector<double> next(dim);
    double top_eigenvalue = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t s = 0; s < m; ++s) {
        const auto row = ensemble.samples.row(s);
        double projection = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          projection += (row[d] - mean[d]) * direction[d];
        }
        for (std::size_t d = 0; d < dim; ++d) {
          next[d] += projection * (row[d] - mean[d]);
        }
      }
      double norm = 0.0;
      for (const double v : next) norm += v * v;
      norm = std::sqrt(norm);
      top_eigenvalue = norm / static_cast<double>(m);
      for (std::size_t d = 0; d < dim; ++d) direction[d] = next[d] / norm;
    }
    double total_variance = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      const auto row = ensemble.samples.row(s);
      for (std::size_t d = 0; d < dim; ++d) {
        total_variance += (row[d] - mean[d]) * (row[d] - mean[d]);
      }
    }
    total_variance /= static_cast<double>(m);
    return top_eigenvalue / total_variance;
  };
  const double concentration_initial = top_variance_fraction(initial);
  const double concentration_final = top_variance_fraction(organized);
  std::cout << "top-eigenvalue variance fraction: t=0 " << concentration_initial
            << ", t=" << simulation.steps << " " << concentration_final << "\n";

  bool all = true;
  all &= bench::check(concentration_final > 1.5 * concentration_initial,
                      "final ensemble variance concentrates along category "
                      "axes (shapes fall into a few categories)");
  all &= bench::check(spread_final > 0.05 * spread_initial,
                      "final shapes retain variety (not a single attractor)");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
