// Fig. 3 — example equilibrium states for 1, 2, and 3 particle types.
//
// Runs three collectives to (near-)equilibrium and renders the final
// configurations. Checks the single-type claim: the equilibrium is a
// disc-shaped, evenly spaced arrangement ("regular grid ... always in the
// form of a disc", §6), and multi-type systems segregate by type.
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace sops;

// Mean nearest-neighbor distance and its relative spread (regularity proxy).
struct SpacingStats {
  double mean = 0.0;
  double rel_spread = 0.0;
};

SpacingStats nn_spacing(const std::vector<geom::Vec2>& points) {
  std::vector<double> nn(points.size(), 1e18);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) nn[i] = std::min(nn[i], geom::dist(points[i], points[j]));
    }
  }
  SpacingStats stats;
  for (const double d : nn) stats.mean += d;
  stats.mean /= static_cast<double>(nn.size());
  double var = 0.0;
  for (const double d : nn) var += (d - stats.mean) * (d - stats.mean);
  stats.rel_spread = std::sqrt(var / static_cast<double>(nn.size())) / stats.mean;
  return stats;
}

// How round the hull is: ratio of bounding-box short/long side.
double roundness(const std::vector<geom::Vec2>& points) {
  const geom::Aabb box = geom::bounding_box(points);
  const double long_side = std::max(box.width(), box.height());
  const double short_side = std::min(box.width(), box.height());
  return long_side > 0 ? short_side / long_side : 1.0;
}

// Type segregation: mean same-type NN distance vs mean cross-type NN.
double segregation_index(const std::vector<geom::Vec2>& points,
                         const std::vector<sim::TypeId>& types) {
  double same = 0.0;
  double cross = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best_same = 1e18;
    double best_cross = 1e18;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const double d = geom::dist(points[i], points[j]);
      if (types[i] == types[j]) {
        best_same = std::min(best_same, d);
      } else {
        best_cross = std::min(best_cross, d);
      }
    }
    if (best_same < 1e17 && best_cross < 1e17) {
      same += best_same;
      cross += best_cross;
      ++count;
    }
  }
  return count == 0 ? 1.0 : cross / same;  // > 1 means types separate
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 3: equilibrium configurations for different type counts",
      "single type -> regular disc-shaped grid; multiple types -> segregated "
      "clusters",
      args);

  // Single-type F² (the paper's rightmost panel).
  sim::SimulationConfig single = core::presets::fig3_single_type_grid();
  single.steps = args.steps(400, 800);
  const sim::Trajectory t1 = sim::run_simulation(single);

  // Two-type enclosed structure.
  sim::SimulationConfig two = core::presets::fig12_enclosed_structure();
  two.steps = args.steps(400, 800);
  const sim::Trajectory t2 = sim::run_simulation(two);

  // Three-type Fig. 4 system.
  sim::SimulationConfig three = core::presets::fig4_three_type_collective();
  three.steps = args.steps(400, 800);
  const sim::Trajectory t3 = sim::run_simulation(three);

  io::ScatterOptions scatter;
  scatter.width = 56;
  scatter.height = 24;
  std::cout << "l = 1 (F2, single type):\n"
            << io::render_scatter(t1.frames.back(), t1.types, scatter)
            << "\nl = 2:\n"
            << io::render_scatter(t2.frames.back(), t2.types, scatter)
            << "\nl = 3 (Fig. 4 system):\n"
            << io::render_scatter(t3.frames.back(), t3.types, scatter) << "\n";

  for (const auto& [name, trajectory] :
       {std::pair{"fig03_l1.svg", &t1}, {"fig03_l2.svg", &t2},
        {"fig03_l3.svg", &t3}}) {
    io::write_text_file(
        bench::out_path(name),
        io::render_svg(trajectory->frames.back(), trajectory->types));
  }
  std::cout << "SVG snapshots in bench_out/\n\n";

  const SpacingStats spacing = nn_spacing(t1.frames.back());
  bool all = true;
  all &= bench::check(spacing.rel_spread < 0.35,
                      "single-type F2 spacing is regular (NN spread < 35%)");
  all &= bench::check(roundness(t1.frames.back()) > 0.7,
                      "single-type F2 collective is disc-shaped");
  all &= bench::check(t1.residual_norms.back() < t1.residual_norms.front(),
                      "single-type system relaxed toward equilibrium");
  all &= bench::check(segregation_index(t2.frames.back(), t2.types) > 1.2,
                      "two-type system segregates by type");
  all &= bench::check(segregation_index(t3.frames.back(), t3.types) > 1.0,
                      "three-type system shows type clustering");

  std::cout << (all ? "RESULT: figure shape reproduced\n"
                    : "RESULT: MISMATCH against paper claim\n");
  return 0;
}
