#!/usr/bin/env python3
"""Append a BENCH_engine.json run to the tracked perf trajectory and gate on
regressions.

Usage:
    bench_trend.py <BENCH_engine.json> <BENCH_trend.json> [--label LABEL]
                   [--remeasure-cmd CMD] [--remeasure-runs N]

Reads the engine benchmark output, flattens its series into named metrics,
appends one entry to the trend file (creating it if absent), and exits
non-zero when any metric regressed by more than 10% against the baseline:
the most recent entry that was not itself flagged as regressed, so a bad
run cannot ratchet itself in as the next comparison point. Most metrics are
throughputs (higher is better); metrics listed in LOWER_IS_BETTER — peak
RSS, the paper-sized frame-store bytes/frame — regress when they *grow*
past the tolerance. Entries recorded on
different hardware (thread count, CPU model, or the ISA the SIMD kernels
dispatched to) are appended but not gated against each other — neither
steps/sec nor RSS is comparable across hardware, a run whose kernels fell
back from avx2 to the generic vector path is measuring different machine
code, and a false alarm would train people to ignore the gate.

With --remeasure-cmd, a first-pass regression is treated as *suspected*
rather than final: the command (which must rewrite the engine JSON, e.g.
`./bench_perf_micro --engine-json-only`) is re-run --remeasure-runs times
(default 4, for >= 5 samples including the original), and each suspect is
re-judged on the median of its samples with a MAD-widened tolerance —
max(10%, 3 * 1.4826 * MAD / |median|), i.e. three robust standard
deviations of the run-to-run spread. Only suspects that survive the
robust re-check flag the entry `regressed`; the median replaces the
first-pass value in the recorded entry so a lucky or unlucky single run
never becomes the next baseline's yardstick.
"""

import argparse
import datetime
import json
import platform
import statistics
import subprocess
import sys

REGRESSION_TOLERANCE = 0.10

# Metrics where growth, not shrinkage, is the regression.
LOWER_IS_BETTER = {"peak_rss_kb", "frame_store_bytes_per_frame"}
# Per-backend rebuild costs are emitted per collective size; any metric
# under these prefixes gates on growth too.
LOWER_IS_BETTER_PREFIXES = ("rebuild_us/",)


def flatten_metrics(engine_json):
    """BENCH_engine.json -> ({metric_name: value}, {ungated_names}).

    Ungated metrics are recorded in the trend but never gate: intra-step
    rows with more drift threads than the machine has hardware threads
    measure the scheduler's time-slicing of an oversubscribed pool, not the
    code, and the frame-store fill RSS deltas are small absolute numbers
    whose run-to-run spread far exceeds the tolerance. A false alarm would
    train people to ignore the gate.
    """
    metrics = {}
    ungated = set()
    hardware = engine_json.get("hardware_threads") or 0
    for row in engine_json.get("results", []):
        metrics[f"engine/n={row['n']}"] = row["engine_steps_per_sec"]
    for row in engine_json.get("intra_step", []):
        key = f"intra_step/n={row['n']}/threads={row['threads']}"
        metrics[key] = row["steps_per_sec"]
        if hardware and row["threads"] > hardware:
            ungated.add(key)
    for row in engine_json.get("verlet", []):
        n = row["n"]
        metrics[f"verlet/steps_per_sec/n={n}"] = row["verlet_steps_per_sec"]
        # HIGHER_IS_BETTER (the default direction): the displacement gating
        # must keep skipping rebuilds on slow-moving collectives.
        metrics[f"verlet/rebuild_skip_rate/n={n}"] = row["rebuild_skip_rate"]
        # LOWER_IS_BETTER via prefix: full re-index cost per backend.
        metrics[f"rebuild_us/cell_grid/n={n}"] = row["cell_grid_rebuild_us"]
        metrics[f"rebuild_us/verlet/n={n}"] = row["verlet_rebuild_us"]
        # Adaptive-skin + partial-rebuild sweep (rows predating the opt-in
        # lack these fields). Throughput and skip rate gate as
        # higher-is-better; the converged shell width and partial-pass rate
        # are controller diagnostics with no regression direction — the
        # right shell depends on the motion regime, and fewer partial
        # passes can mean either a wider shell (good) or more full
        # rebuilds (bad). The gated rows already catch both outcomes.
        if "adaptive_steps_per_sec" in row:
            metrics[f"verlet/adaptive_steps_per_sec/n={n}"] = \
                row["adaptive_steps_per_sec"]
            metrics[f"verlet/adaptive_skip_rate/n={n}"] = \
                row["adaptive_skip_rate"]
            for key in ("adaptive_skin", "adaptive_partials_per_step"):
                name = f"verlet/{key}/n={n}"
                metrics[name] = row[key]
                ungated.add(name)
    for row in engine_json.get("simd", {}).get("results", []):
        n = row["n"]
        # Both kernel families gate as throughputs; the speedup ratio is
        # recorded but not gated — the quotient of two noisy measurements
        # swings past any tolerance that would still catch real
        # regressions, and the absolute rows already gate both factors.
        metrics[f"simd/scalar_steps_per_sec/n={n}"] = \
            row["scalar_steps_per_sec"]
        metrics[f"simd/steps_per_sec/n={n}"] = row["simd_steps_per_sec"]
        ratio = f"simd/speedup/n={n}"
        metrics[ratio] = row["speedup"]
        ungated.add(ratio)
    analyzer = engine_json.get("analyzer", {})
    if analyzer.get("frames_per_sec"):
        metrics["analyzer/frames_per_sec"] = analyzer["frames_per_sec"]
    streaming = analyzer.get("streaming", {})
    if streaming.get("streaming_frames_per_sec"):
        # The streamed simulate+analyze rate at the paper row gates as a
        # throughput. The frozen post-hoc baseline is a fixed yardstick
        # (the benchmark binary recomputes the same frozen code path every
        # run), and the speedup is a quotient of two noisy measurements —
        # both recorded for the trajectory, neither gated.
        metrics["analyzer/streaming_frames_per_sec"] = \
            streaming["streaming_frames_per_sec"]
        for key in ("post_hoc_baseline_frames_per_sec", "speedup"):
            if streaming.get(key) is not None:
                name = f"analyzer/streaming_{key}"
                metrics[name] = float(streaming[key])
                ungated.add(name)
    frame_store = engine_json.get("frame_store", {})
    if frame_store.get("bytes_per_frame"):
        # LOWER_IS_BETTER: the paper-sized per-frame payload is
        # deterministic, so any growth is a real footprint regression
        # (e.g. padding crept into the position type).
        metrics["frame_store_bytes_per_frame"] = float(
            frame_store["bytes_per_frame"])
    for key in ("heap_fill_rss_delta_kb", "mapped_fill_rss_delta_kb",
                "manifest_bytes"):
        # A delta of 0 KB is the spill path working perfectly — record it.
        if frame_store.get(key) is not None:
            # Recorded for the trajectory (the spill path's whole point is
            # mapped << heap; the manifest sidecar should stay tiny next
            # to the payload) but not gated: the RSS deltas jitter past
            # any sane tolerance, and manifest_bytes only moves on a
            # deliberate format revision.
            name = f"frame_store/{key}"
            metrics[name] = float(frame_store[key])
            ungated.add(name)
    service = engine_json.get("service", {})
    for key in ("manager_seconds", "overhead_ratio",
                "submit_to_first_sample_ms"):
        # The job layer is scheduling only, so these should sit at ~direct
        # wall, ~1.0x, and a few ms. Recorded so a creeping scheduler cost
        # shows in the trajectory; not gated — sub-second walls and their
        # quotient jitter past any tolerance that would still catch a real
        # regression.
        if service.get(key) is not None:
            name = f"service/{key}"
            metrics[name] = float(service[key])
            ungated.add(name)
    if engine_json.get("peak_rss_kb"):
        metrics["peak_rss_kb"] = float(engine_json["peak_rss_kb"])
    return metrics, ungated


def is_regression(name, change, tolerance=REGRESSION_TOLERANCE):
    if name in LOWER_IS_BETTER or name.startswith(LOWER_IS_BETTER_PREFIXES):
        return change > tolerance
    return change < -tolerance


def remeasure_suspects(suspects, metrics, baseline, args):
    """Robust second opinion on first-pass regressions.

    Re-runs the benchmark command, pools each suspect's samples (original
    plus re-runs), and re-judges the *median* against the baseline with a
    tolerance widened to three robust standard deviations of the observed
    spread (MAD * 1.4826). Returns the confirmed regressions; medians are
    written back into `metrics` so the recorded entry reflects the robust
    value, not one noisy draw. A failing re-run keeps the first-pass
    verdict for the remaining suspects — a broken bench must not look like
    a recovery.
    """
    samples = {name: [metrics[name]] for name in suspects}
    for i in range(args.remeasure_runs):
        print(f"trend: suspected regression; re-measuring "
              f"({i + 1}/{args.remeasure_runs}): {args.remeasure_cmd}")
        sys.stdout.flush()
        try:
            subprocess.run(args.remeasure_cmd, shell=True, check=True)
            with open(args.engine_json) as f:
                remeasured, _ = flatten_metrics(json.load(f))
        except (OSError, subprocess.CalledProcessError,
                json.JSONDecodeError) as error:
            print(f"trend: re-measure run failed ({error}); keeping "
                  f"first-pass verdict", file=sys.stderr)
            return suspects
        for name in samples:
            if name in remeasured:
                samples[name].append(remeasured[name])
    confirmed = []
    for name in suspects:
        values = samples[name]
        median = statistics.median(values)
        mad = statistics.median(abs(v - median) for v in values)
        tolerance = REGRESSION_TOLERANCE
        if median:
            tolerance = max(tolerance, 3 * 1.4826 * mad / abs(median))
        base = baseline["metrics"][name]
        change = (median - base) / base
        metrics[name] = median
        regressed = is_regression(name, change, tolerance)
        status = "REGRESSION (confirmed)" if regressed else \
            "ok (noise: within the re-measured spread)"
        print(f"trend: {name}: median of {len(values)} runs {median:.1f} "
              f"vs {base:.1f} ({change:+.1%}, tolerance {tolerance:.1%}) "
              f"{status}")
        if regressed:
            confirmed.append(name)
    return confirmed


def cpu_identity():
    """Best-effort CPU model string; runners with equal vCPU counts can
    still be different silicon with >10% wall-clock spread."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def same_hardware(a, b):
    """Comparable-entry guard: thread count, CPU model, and the ISA the
    SIMD kernels dispatched to must all match. An avx2 entry and a generic
    entry ran different machine code for the hottest loops; comparing them
    would report a hardware change as a code regression (or mask one).
    Entries predating ISA recording (no "simd_isa") only compare among
    themselves."""
    return (a.get("hardware_threads") == b.get("hardware_threads")
            and a.get("cpu") == b.get("cpu")
            and a.get("simd_isa") == b.get("simd_isa"))


def default_label():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            stderr=subprocess.DEVNULL, text=True).strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("engine_json")
    parser.add_argument("trend_json")
    parser.add_argument("--label", default=None,
                        help="entry label (default: git short hash)")
    parser.add_argument("--remeasure-cmd", default=None,
                        help="shell command that rewrites the engine JSON; "
                             "run on suspected regressions to re-judge them "
                             "on a median with a MAD-widened tolerance")
    parser.add_argument("--remeasure-runs", type=int, default=4,
                        help="extra benchmark runs per suspected regression "
                             "(default 4: 5 samples with the original)")
    args = parser.parse_args()

    with open(args.engine_json) as f:
        engine = json.load(f)
    metrics, ungated = flatten_metrics(engine)
    if not metrics:
        print(f"error: no metrics found in {args.engine_json}",
              file=sys.stderr)
        return 2

    try:
        with open(args.trend_json) as f:
            trend = json.load(f)
    except FileNotFoundError:
        trend = []
    if not isinstance(trend, list):
        print(f"error: {args.trend_json} is not a JSON array", file=sys.stderr)
        return 2

    simd = engine.get("simd", {})
    entry = {
        "label": args.label or default_label(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
                       .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "hardware_threads": engine.get("hardware_threads"),
        "cpu": cpu_identity(),
        "metrics": metrics,
    }
    if simd.get("isa"):
        entry["simd_isa"] = simd["isa"]
        entry["compiler"] = simd.get("compiler")

    # Baseline: the newest same-hardware entry that was not itself a
    # regression — a bad run is recorded but never becomes the next
    # comparison point, and an interleaved run on foreign hardware does not
    # reset the gate (the fleet behind CI runners is heterogeneous).
    baseline = next((e for e in reversed(trend)
                     if not e.get("regressed") and same_hardware(e, entry)),
                    None)
    regressions = []
    if baseline is None:
        print(f"trend: no healthy baseline for {entry['hardware_threads']} "
              f"threads / '{entry['cpu']}' / isa="
              f"{entry.get('simd_isa', 'unrecorded')}; gate skipped")
    else:
        # peak RSS is a whole-run high-water mark: when the benchmark's
        # metric *set* changed (a section was added or removed), the run
        # does different work and its RSS is not comparable to the
        # baseline's — same logic as the hardware guard. Per-metric numbers
        # still gate; RSS re-baselines with this entry.
        workload_changed = set(metrics) != set(baseline["metrics"])
        for name, value in sorted(metrics.items()):
            base = baseline["metrics"].get(name)
            if base is None or base <= 0:
                print(f"trend: {name}: new metric ({value:.1f})")
                continue
            if name == "peak_rss_kb" and workload_changed:
                print(f"trend: {name}: {base:.1f} -> {value:.1f} "
                      f"(workload changed; re-baselined, not gated)")
                continue
            if name in ungated:
                print(f"trend: {name}: {base:.1f} -> {value:.1f} "
                      f"(recorded, not gated — see flatten_metrics)")
                continue
            change = (value - base) / base
            regressed = is_regression(name, change)
            status = "REGRESSION" if regressed else "ok"
            print(f"trend: {name}: {base:.1f} -> {value:.1f} "
                  f"({change:+.1%}) {status}")
            if regressed:
                regressions.append(name)
    if regressions and args.remeasure_cmd:
        regressions = remeasure_suspects(regressions, metrics, baseline,
                                         args)

    # Record the run even when gating fails: the trajectory should show the
    # regression, not hide it — but flag it so it never becomes a baseline.
    if regressions:
        entry["regressed"] = True
    trend.append(entry)
    with open(args.trend_json, "w") as f:
        json.dump(trend, f, indent=2)
        f.write("\n")
    print(f"trend: appended entry '{entry['label']}' "
          f"({len(metrics)} metrics) to {args.trend_json}")

    if regressions:
        print(f"error: >{REGRESSION_TOLERANCE:.0%} regression in: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
