// sops_run — configuration-driven experiment runner.
//
// Runs a full measure-self-organization pipeline from a key=value config
// file (see core/config_builder.hpp for the key reference), prints the I(t)
// curve, and writes the per-step results as CSV.
//
//   sops_run experiment.conf [output.csv]
//
// Example config:
//
//   preset  = fig4        # or a custom system, see docs
//   samples = 200
//   steps   = 250
//   stride  = 25
//   entropies = true
//   output  = fig4.csv
//
// Distributed / crash-safe ensembles record into durable shards:
//
//   sops_run experiment.conf --shard k/N --out runs/shard_k.shard
//       runs sample slots chunk k of N into a persist-mode shard file plus
//       a `.manifest` sidecar tracking per-sample completion. Disjoint
//       shards of one ensemble can run concurrently in separate processes.
//   sops_run experiment.conf --shard k/N --out runs/shard_k.shard --resume
//       reopens a matching shard (validated against the config) and skips
//       samples already marked complete — restart after a crash or kill
//       and the combined recording is bitwise-identical to an
//       uninterrupted run.
//   sops_run --merge runs/full.shard runs/shard_0.shard runs/shard_1.shard ...
//       verifies N completed shards (same config hash/grid/seed, disjoint
//       slot ranges covering every sample) and assembles them into one
//       recording — itself a valid 1-shard file.
//   sops_run experiment.conf --out runs/full.shard --resume
//       on a fully-complete shard (e.g. a merge output) runs zero samples
//       and goes straight to analysis — the "analyze a recording" path.
//
// `--stream` overlaps analysis with simulation: finished frames are handed
// to the streaming analyzer while later samples still simulate, and the
// reported wall time covers the combined simulate+analyze pipeline. The
// results are bitwise-identical to the post-hoc path.
//
// `sops_run --smoke` runs a tiny built-in Fig. 4 configuration instead of a
// config file — the ctest smoke entry that keeps the CLI pipeline honest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/config_builder.hpp"
#include "core/shard.hpp"
#include "core/sops.hpp"

namespace {

int run_smoke() {
  using namespace sops;
  core::ExperimentConfig experiment(core::presets::fig4_three_type_collective());
  experiment.samples = 6;
  experiment.simulation.steps = 10;
  experiment.simulation.record_stride = 5;
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);
  std::cout << "smoke: " << series.sample_count() << " samples, "
            << result.points.size() << " analysis points, delta-I = "
            << result.delta_mi() << " bits\n";
  return 0;
}

int run_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "usage: sops_run --merge <output.shard> <shard...>\n";
    return 2;
  }
  const std::string out = args.front();
  const std::vector<std::string> shards(args.begin() + 1, args.end());
  const sops::core::MergeResult result = sops::core::merge_shards(shards, out);
  std::cout << "merged " << result.shard_count << " shards ("
            << result.samples_total << " samples, "
            << result.payload_bytes / (1024 * 1024) << " MiB) into "
            << result.data_path << "\n";
  return 0;
}

// "k/N" -> (k, N); throws sops::Error on anything else.
void parse_shard_spec(const std::string& spec, std::size_t* index,
                      std::size_t* count) {
  const std::size_t slash = spec.find('/');
  std::size_t index_end = 0;
  std::size_t count_end = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument(spec);
    *index = std::stoul(spec.substr(0, slash), &index_end);
    *count = std::stoul(spec.substr(slash + 1), &count_end);
    if (index_end != slash || count_end != spec.size() - slash - 1) {
      throw std::invalid_argument(spec);
    }
  } catch (const std::exception&) {
    throw sops::Error("--shard expects k/N (e.g. 0/4), got '" + spec + "'");
  }
  if (*count == 0 || *index >= *count) {
    throw sops::Error("--shard " + spec + ": index must lie in [0, count)");
  }
}

void report_spill(const sops::core::EnsembleSeries& series,
                  const sops::core::ExperimentConfig& experiment) {
  using sops::core::StorageMode;
  const bool shard = !experiment.shard.path.empty();
  if (!shard && experiment.storage.mode == StorageMode::kHeap) return;
  if (series.frames.storage() == StorageMode::kMapped) {
    const std::size_t bytes = series.frames.bytes();
    std::cout << (shard ? "shard recorded to " : "recording spilled to ")
              << series.frames.spill_path();
    if (bytes >= 1024 * 1024) {
      std::cout << " (" << bytes / (1024 * 1024) << " MiB mapped)\n";
    } else {
      std::cout << " (" << bytes / 1024 << " KiB mapped)\n";
    }
  } else if (!series.frames.spill_fallback_reason().empty()) {
    std::cerr << "warning: frame_storage fell back to heap: "
              << series.frames.spill_fallback_reason() << "\n";
  }
  // An EIO on the spill device surfaces here instead of dying in an
  // ignored msync return. Scratch spill keeps running (the page cache
  // still holds the data); shard runs already threw if durability broke.
  const std::string flush_error = series.frames.flush_error();
  if (!flush_error.empty()) {
    std::cerr << "warning: spill I/O error during the run: " << flush_error
              << "\n";
  }
}

// The Verlet opt-in's accounting, printed whenever `neighbor = verlet`:
// what the skip rate bought, where the adaptive shell settled, and how many
// full rebuilds the partial passes replaced.
void report_verlet(const sops::core::EnsembleSeries& series,
                   const sops::core::ExperimentConfig& experiment) {
  if (experiment.simulation.neighbor_mode != sops::sim::NeighborMode::kVerletSkin) {
    return;
  }
  const sops::core::NeighborRebuildStats& stats = series.rebuild_stats;
  if (stats.steps == 0) return;  // fully resumed shard: nothing simulated
  std::printf("verlet: skip rate %.3f (%zu full rebuilds / %zu steps), "
              "%zu partial passes (%zu rows)\n",
              stats.skip_rate(), stats.rebuilds, stats.steps,
              stats.partial_rebuilds, stats.partial_rows);
  std::printf("verlet: skin %.3g -> %.3g (adapt %s, partial %s)\n",
              experiment.simulation.verlet_skin, stats.final_skin,
              experiment.simulation.verlet_skin_adapt ? "on" : "off",
              experiment.simulation.verlet_partial_rebuild ? "on" : "off");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sops;
  std::vector<std::string> positional;
  std::string shard_spec;
  std::string shard_out;
  bool resume = false;
  bool merge = false;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") return run_smoke();
    if (arg == "--merge") {
      merge = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--shard" && i + 1 < argc) {
      shard_spec = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      shard_out = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    } else {
      positional.emplace_back(arg);
    }
  }

  try {
    if (merge) return run_merge(positional);
    if (positional.empty()) {
      std::cerr << "usage: sops_run <config-file> [output.csv] [--stream]\n"
                   "       sops_run <config-file> --shard k/N --out "
                   "<file.shard> [--resume]\n"
                   "       sops_run --merge <output.shard> <shard...>\n";
      return 2;
    }
    const io::Config config = io::Config::load(positional[0]);

    // Warn about unknown keys — almost always a typo in an experiment file.
    const auto& known = core::known_config_keys();
    for (const std::string& key : config.keys()) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        std::cerr << "warning: unknown config key '" << key << "'\n";
      }
    }

    core::ConfiguredExperiment configured = core::build_experiment(config);
    core::ExperimentConfig& experiment = configured.experiment;
    if (!shard_spec.empty() || !shard_out.empty() || resume) {
      if (shard_out.empty()) {
        throw Error("--shard/--resume need --out <file.shard>");
      }
      experiment.shard.path = shard_out;
      experiment.shard.resume = resume;
      if (!shard_spec.empty()) {
        parse_shard_spec(shard_spec, &experiment.shard.index,
                         &experiment.shard.count);
      }
    }

    if (stream && experiment.shard.count > 1) {
      throw Error("--stream analyzes the full ensemble; run the shards "
                  "without it and stream the merged recording instead");
    }

    std::cout << "running " << experiment.samples << " samples of "
              << experiment.simulation.types.size() << " particles for "
              << experiment.simulation.steps << " steps"
              << (stream ? " (analysis streaming alongside)" : "") << "...\n";

    // With --stream the analyzer rides the recording as an observer; its
    // destructor drains the consumer if anything below throws.
    core::StreamingAnalyzer streaming_analyzer(configured.analysis);
    if (stream) experiment.observer = &streaming_analyzer;

    const auto run_start = std::chrono::steady_clock::now();
    const core::EnsembleSeries series = core::run_experiment(experiment);
    report_spill(series, experiment);
    report_verlet(series, experiment);
    if (!experiment.shard.path.empty()) {
      const std::size_t ran = series.sample_count() - series.resumed_samples;
      std::cout << "shard " << experiment.shard.index << "/"
                << experiment.shard.count << ": samples ["
                << series.slot_begin << ", "
                << series.slot_begin + series.sample_count() << ") complete ("
                << ran << " simulated, " << series.resumed_samples
                << " resumed)\n";
    }
    if (experiment.shard.count > 1) {
      // A shard holds one slice of the ensemble; the self-organization
      // measure needs all of it. Merge the completed shards, then analyze
      // the merged file via `--out merged.shard --resume`.
      std::cout << "partial ensemble — skipping analysis (merge the shards "
                   "first: sops_run --merge <out> <shards...>)\n";
      return 0;
    }
    const auto analysis_start = std::chrono::steady_clock::now();
    const core::AnalysisResult result =
        stream ? streaming_analyzer.finish()
               : core::analyze_self_organization(series, configured.analysis);
    const auto analysis_end = std::chrono::steady_clock::now();
    // Post-hoc: the analysis wall time proper. Streamed: the whole
    // simulate+analyze pipeline, since the two phases overlap.
    const double analysis_seconds =
        std::chrono::duration<double>(analysis_end -
                                      (stream ? run_start : analysis_start))
            .count();
    const double frames_per_sec =
        analysis_seconds > 0.0
            ? static_cast<double>(result.points.size()) / analysis_seconds
            : 0.0;
    std::printf("%s: %.2f s for %zu frames (%.3f frames/s)\n",
                stream ? "streamed simulate+analyze" : "analysis",
                analysis_seconds, result.points.size(), frames_per_sec);

    std::vector<io::Series> chart{{"I(W1..Wn) [bits]", result.steps(),
                                   result.mi_values()}};
    io::ChartOptions chart_options;
    chart_options.y_label = "multi-information (bits)";
    std::cout << io::render_chart(chart, chart_options) << "\n";

    io::CsvTable table;
    table.header = {"t", "multi_information_bits"};
    const bool with_entropies = configured.analysis.compute_entropies;
    if (with_entropies) {
      table.header.push_back("joint_entropy_bits");
      table.header.push_back("marginal_entropy_sum_bits");
    }
    for (const auto& point : result.points) {
      std::vector<double> row{static_cast<double>(point.step),
                              point.multi_information};
      if (with_entropies) {
        row.push_back(point.joint_entropy);
        row.push_back(point.marginal_entropy_sum);
      }
      table.add_row(std::move(row));
    }

    const std::string output =
        positional.size() > 1 ? positional[1]
                              : config.get_string("output", "sops_run.csv");
    io::write_csv_file(output, table);
    std::cout << "results written to " << output << "\n"
              << "Delta-I = " << result.delta_mi() << " bits — "
              << (result.self_organizing() ? "self-organizing"
                                           : "no self-organization detected")
              << "\n";
    return 0;
  } catch (const sops::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
