// sops_run — configuration-driven experiment runner and sopsd client.
//
// Batch mode runs a full measure-self-organization pipeline from a
// key=value config file (see core/config_builder.hpp for the key
// reference), prints the I(t) curve, and writes the per-step results as
// CSV:
//
//   sops_run experiment.conf [output.csv]
//
// Example config:
//
//   preset  = fig4        # or a custom system, see docs
//   samples = 200
//   steps   = 250
//   stride  = 25
//   entropies = true
//   output  = fig4.csv
//
// Batch runs execute through the same core::JobManager the sopsd daemon
// uses — one job slot spanning the whole machine — so batch and service
// execution are literally the same code path, Ctrl-C drains cleanly
// (cooperative cancellation: spill files unlinked, shard manifests left
// valid), and a spill-flush I/O error fails the run with a named error
// instead of reporting success over a recording that never reached disk.
//
// Distributed / crash-safe ensembles record into durable shards:
//
//   sops_run experiment.conf --shard k/N --out runs/shard_k.shard
//       runs sample slots chunk k of N into a persist-mode shard file plus
//       a `.manifest` sidecar tracking per-sample completion. Disjoint
//       shards of one ensemble can run concurrently in separate processes.
//   sops_run experiment.conf --shard k/N --out runs/shard_k.shard --resume
//       reopens a matching shard (validated against the config) and skips
//       samples already marked complete — restart after a crash or kill
//       and the combined recording is bitwise-identical to an
//       uninterrupted run.
//   sops_run --merge runs/full.shard runs/shard_0.shard runs/shard_1.shard ...
//       verifies N completed shards (same config hash/grid/seed, disjoint
//       slot ranges covering every sample) and assembles them into one
//       recording — itself a valid 1-shard file.
//   sops_run experiment.conf --out runs/full.shard --resume
//       on a fully-complete shard (e.g. a merge output) runs zero samples
//       and goes straight to analysis — the "analyze a recording" path.
//
// `--stream` overlaps analysis with simulation: finished frames are handed
// to the streaming analyzer while later samples still simulate, and the
// reported wall time covers the combined simulate+analyze pipeline. The
// results are bitwise-identical to the post-hoc path.
//
// Against a running `sopsd` daemon (see tools/sopsd.cpp), the client
// subcommands speak the unix-socket frame protocol:
//
//   sops_run submit <config-file>      [--socket <path>]
//   sops_run status [<job-id>]         [--socket <path>]
//   sops_run cancel <job-id>           [--socket <path>]
//   sops_run watch  <job-id>           [--socket <path>] [--save <dir>]
//
// `watch` streams the job live: one status line per state change, one
// frame per finished sample, and the analysis curve at the end. With
// `--save <dir>` the streamed bytes are written out as
// `sample_<k>.csv` / `curve.csv` — byte-identical to what a batch run of
// the same config would produce, which the integration tests assert.
//
// `sops_run --smoke` runs a tiny built-in Fig. 4 configuration instead of a
// config file — the ctest smoke entry that keeps the CLI pipeline honest.
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/config_builder.hpp"
#include "core/job_manager.hpp"
#include "core/shard.hpp"
#include "core/sops.hpp"
#include "io/frame_protocol.hpp"

namespace {

constexpr const char* kDefaultSocket = "sopsd.sock";

// SIGINT/SIGTERM → the batch JobManager's shutdown token. request() is
// async-signal-safe; the run unwinds at its next poll point through the
// normal cleanup path (spill unlink, manifest sync, pool teardown).
std::atomic<sops::support::CancelToken*> g_cancel_token{nullptr};

void handle_signal(int /*signum*/) {
  sops::support::CancelToken* token =
      g_cancel_token.load(std::memory_order_acquire);
  if (token != nullptr) token->request();
}

void install_signal_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int run_smoke() {
  using namespace sops;
  core::ExperimentConfig experiment(core::presets::fig4_three_type_collective());
  experiment.samples = 6;
  experiment.simulation.steps = 10;
  experiment.simulation.record_stride = 5;
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);
  std::cout << "smoke: " << series.sample_count() << " samples, "
            << result.points.size() << " analysis points, delta-I = "
            << result.delta_mi() << " bits\n";
  return 0;
}

int run_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "usage: sops_run --merge <output.shard> <shard...>\n";
    return 2;
  }
  const std::string out = args.front();
  const std::vector<std::string> shards(args.begin() + 1, args.end());
  const sops::core::MergeResult result = sops::core::merge_shards(shards, out);
  std::cout << "merged " << result.shard_count << " shards ("
            << result.samples_total << " samples, "
            << result.payload_bytes / (1024 * 1024) << " MiB) into "
            << result.data_path << "\n";
  return 0;
}

// "k/N" -> (k, N); throws sops::Error on anything else.
void parse_shard_spec(const std::string& spec, std::size_t* index,
                      std::size_t* count) {
  const std::size_t slash = spec.find('/');
  std::size_t index_end = 0;
  std::size_t count_end = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument(spec);
    *index = std::stoul(spec.substr(0, slash), &index_end);
    *count = std::stoul(spec.substr(slash + 1), &count_end);
    if (index_end != slash || count_end != spec.size() - slash - 1) {
      throw std::invalid_argument(spec);
    }
  } catch (const std::exception&) {
    throw sops::Error("--shard expects k/N (e.g. 0/4), got '" + spec + "'");
  }
  if (*count == 0 || *index >= *count) {
    throw sops::Error("--shard " + spec + ": index must lie in [0, count)");
  }
}

void report_spill(const sops::core::EnsembleSeries& series,
                  const sops::core::ExperimentConfig& experiment) {
  using sops::core::StorageMode;
  const bool shard = !experiment.shard.path.empty();
  if (!shard && experiment.storage.mode == StorageMode::kHeap) return;
  if (series.frames.storage() == StorageMode::kMapped) {
    const std::size_t bytes = series.frames.bytes();
    std::cout << (shard ? "shard recorded to " : "recording spilled to ")
              << series.frames.spill_path();
    if (bytes >= 1024 * 1024) {
      std::cout << " (" << bytes / (1024 * 1024) << " MiB mapped)\n";
    } else {
      std::cout << " (" << bytes / 1024 << " KiB mapped)\n";
    }
  } else if (!series.frames.spill_fallback_reason().empty()) {
    std::cerr << "warning: frame_storage fell back to heap: "
              << series.frames.spill_fallback_reason() << "\n";
  }
}

// The Verlet opt-in's accounting, printed whenever `neighbor = verlet`:
// what the skip rate bought, where the adaptive shell settled, and how many
// full rebuilds the partial passes replaced.
void report_verlet(const sops::core::EnsembleSeries& series,
                   const sops::core::ExperimentConfig& experiment) {
  if (experiment.simulation.neighbor_mode != sops::sim::NeighborMode::kVerletSkin) {
    return;
  }
  const sops::core::NeighborRebuildStats& stats = series.rebuild_stats;
  if (stats.steps == 0) return;  // fully resumed shard: nothing simulated
  std::printf("verlet: skip rate %.3f (%zu full rebuilds / %zu steps), "
              "%zu partial passes (%zu rows)\n",
              stats.skip_rate(), stats.rebuilds, stats.steps,
              stats.partial_rebuilds, stats.partial_rows);
  std::printf("verlet: skin %.3g -> %.3g (adapt %s, partial %s)\n",
              experiment.simulation.verlet_skin, stats.final_skin,
              experiment.simulation.verlet_skin_adapt ? "on" : "off",
              experiment.simulation.verlet_partial_rebuild ? "on" : "off");
}

// ---------------------------------------------------------------------------
// Daemon client subcommands.

/// Closes the protocol fd on every exit path.
struct ClientConnection {
  explicit ClientConnection(const std::string& socket_path)
      : fd(sops::io::connect_unix(socket_path)) {}
  ~ClientConnection() { ::close(fd); }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  const int fd;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sops::Error("cannot read config file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << contents) || !out.flush()) {
    throw sops::Error("cannot write " + path);
  }
}

int cmd_submit(const std::string& socket_path, const std::string& config_path) {
  const ClientConnection connection(socket_path);
  sops::io::write_frame(connection.fd, sops::io::FrameType::kSubmit,
                        read_file(config_path));
  const auto reply = sops::io::read_frame(connection.fd);
  if (!reply.has_value()) throw sops::Error("daemon closed the connection");
  if (reply->type == sops::io::FrameType::kSubmitted) {
    std::cout << "submitted job " << reply->payload << "\n";
    return 0;
  }
  std::cerr << "error: " << reply->payload << "\n";
  return 1;
}

int cmd_status(const std::string& socket_path, const std::string& id) {
  const ClientConnection connection(socket_path);
  sops::io::write_frame(connection.fd, sops::io::FrameType::kStatus, id);
  const auto reply = sops::io::read_frame(connection.fd);
  if (!reply.has_value()) throw sops::Error("daemon closed the connection");
  if (reply->type == sops::io::FrameType::kStatusReport) {
    std::cout << reply->payload;
    if (!reply->payload.empty() && reply->payload.back() != '\n') {
      std::cout << "\n";
    }
    return 0;
  }
  std::cerr << "error: " << reply->payload << "\n";
  return 1;
}

int cmd_cancel(const std::string& socket_path, const std::string& id) {
  const ClientConnection connection(socket_path);
  sops::io::write_frame(connection.fd, sops::io::FrameType::kCancel, id);
  const auto reply = sops::io::read_frame(connection.fd);
  if (!reply.has_value()) throw sops::Error("daemon closed the connection");
  if (reply->type == sops::io::FrameType::kStatusReport) {
    std::cout << reply->payload << "\n";
    return 0;
  }
  std::cerr << "error: " << reply->payload << "\n";
  return 1;
}

int cmd_watch(const std::string& socket_path, const std::string& id,
              const std::string& save_dir) {
  const ClientConnection connection(socket_path);
  sops::io::write_frame(connection.fd, sops::io::FrameType::kWatch, id);
  for (;;) {
    const auto frame = sops::io::read_frame(connection.fd);
    if (!frame.has_value()) {
      std::cerr << "error: daemon closed the stream before job_done\n";
      return 1;
    }
    switch (frame->type) {
      case sops::io::FrameType::kJobEvent:
        std::cout << frame->payload << "\n";
        break;
      case sops::io::FrameType::kSampleCsv: {
        // First line is "job=N sample=K done=D total=T"; the rest is the
        // sample's CSV, byte-identical to the batch serialization.
        const std::size_t newline = frame->payload.find('\n');
        const std::string meta = frame->payload.substr(0, newline);
        std::cout << meta << "\n";
        if (!save_dir.empty()) {
          const std::size_t key = meta.find("sample=");
          std::size_t sample = 0;
          if (key != std::string::npos) {
            sample = std::stoul(meta.substr(key + 7));
          }
          write_file(save_dir + "/sample_" + std::to_string(sample) + ".csv",
                     frame->payload.substr(newline + 1));
        }
        break;
      }
      case sops::io::FrameType::kCurveCsv:
        std::cout << "analysis curve: " << frame->payload.size() << " bytes\n";
        if (!save_dir.empty()) {
          write_file(save_dir + "/curve.csv", frame->payload);
        }
        break;
      case sops::io::FrameType::kJobDone: {
        std::cout << frame->payload << "\n";
        const bool done =
            frame->payload.find("\"state\":\"done\"") != std::string::npos;
        return done ? 0 : 3;
      }
      case sops::io::FrameType::kError:
        std::cerr << "error: " << frame->payload << "\n";
        return 1;
      default:
        std::cerr << "error: unexpected frame "
                  << sops::io::to_string(frame->type) << "\n";
        return 1;
    }
  }
}

int run_client(const std::string& command, std::vector<std::string> args) {
  std::string socket_path = kDefaultSocket;
  std::string save_dir;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--socket" && i + 1 < args.size()) {
      socket_path = args[++i];
    } else if (args[i] == "--save" && i + 1 < args.size()) {
      save_dir = args[++i];
    } else if (!args[i].empty() && args[i].front() == '-') {
      std::cerr << "unknown option '" << args[i] << "'\n";
      return 2;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (command == "submit") {
    if (positional.size() != 1) {
      std::cerr << "usage: sops_run submit <config-file> [--socket <path>]\n";
      return 2;
    }
    return cmd_submit(socket_path, positional[0]);
  }
  if (command == "status") {
    return cmd_status(socket_path, positional.empty() ? "" : positional[0]);
  }
  if (command == "cancel") {
    if (positional.size() != 1) {
      std::cerr << "usage: sops_run cancel <job-id> [--socket <path>]\n";
      return 2;
    }
    return cmd_cancel(socket_path, positional[0]);
  }
  // watch
  if (positional.size() != 1) {
    std::cerr << "usage: sops_run watch <job-id> [--socket <path>] "
                 "[--save <dir>]\n";
    return 2;
  }
  return cmd_watch(socket_path, positional[0], save_dir);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sops;

  if (argc > 1) {
    const std::string_view first(argv[1]);
    if (first == "submit" || first == "status" || first == "cancel" ||
        first == "watch") {
      try {
        return run_client(std::string(first),
                          std::vector<std::string>(argv + 2, argv + argc));
      } catch (const sops::Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
      }
    }
  }

  std::vector<std::string> positional;
  std::string shard_spec;
  std::string shard_out;
  bool resume = false;
  bool merge = false;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") return run_smoke();
    if (arg == "--merge") {
      merge = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--shard" && i + 1 < argc) {
      shard_spec = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      shard_out = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    } else {
      positional.emplace_back(arg);
    }
  }

  try {
    if (merge) return run_merge(positional);
    if (positional.empty()) {
      std::cerr << "usage: sops_run <config-file> [output.csv] [--stream]\n"
                   "       sops_run <config-file> --shard k/N --out "
                   "<file.shard> [--resume]\n"
                   "       sops_run --merge <output.shard> <shard...>\n"
                   "       sops_run submit|status|cancel|watch ... "
                   "[--socket <path>]\n";
      return 2;
    }
    const io::Config config = io::Config::load(positional[0]);

    // Warn about unknown keys — almost always a typo in an experiment file.
    const auto& known = core::known_config_keys();
    for (const std::string& key : config.keys()) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        std::cerr << "warning: unknown config key '" << key << "'\n";
      }
    }

    core::ConfiguredExperiment configured = core::build_experiment(config);
    core::ExperimentConfig& experiment = configured.experiment;
    if (!shard_spec.empty() || !shard_out.empty() || resume) {
      if (shard_out.empty()) {
        throw Error("--shard/--resume need --out <file.shard>");
      }
      experiment.shard.path = shard_out;
      experiment.shard.resume = resume;
      if (!shard_spec.empty()) {
        parse_shard_spec(shard_spec, &experiment.shard.index,
                         &experiment.shard.count);
      }
    }

    if (stream && experiment.shard.count > 1) {
      throw Error("--stream analyzes the full ensemble; run the shards "
                  "without it and stream the merged recording instead");
    }
    const bool partial_shard = experiment.shard.count > 1;

    std::cout << "running " << experiment.samples << " samples of "
              << experiment.simulation.types.size() << " particles for "
              << experiment.simulation.steps << " steps"
              << (stream ? " (analysis streaming alongside)" : "") << "...\n";

    // Batch mode is a one-slot JobManager: the same admission/cancellation/
    // flush-error semantics as the daemon, with the whole machine as the
    // job's slice. SIGINT/SIGTERM raise the manager's shutdown token.
    core::JobLimits limits;
    limits.job_slots = 1;
    limits.machine_threads = experiment.threads;
    core::JobManager manager(limits);
    g_cancel_token.store(&manager.shutdown_token(), std::memory_order_release);
    install_signal_handlers();

    core::JobOptions job_options;
    job_options.analysis = partial_shard ? core::JobAnalysis::kNone
                           : stream      ? core::JobAnalysis::kStreamed
                                         : core::JobAnalysis::kPostHoc;
    // The moment the job's simulation hands over to analysis — the batch
    // report splits its timing there.
    std::atomic<std::chrono::steady_clock::time_point::rep> analysis_start_rep{0};
    job_options.events.on_state_change = [&](const core::JobStatus& status) {
      if (status.state == core::JobState::kStreaming) {
        analysis_start_rep.store(
            std::chrono::steady_clock::now().time_since_epoch().count(),
            std::memory_order_relaxed);
      }
    };

    const auto run_start = std::chrono::steady_clock::now();
    const std::uint64_t job = manager.submit(configured, job_options);
    core::JobOutcome outcome;
    try {
      outcome = manager.wait(job);
    } catch (const CancelledError& cancelled) {
      g_cancel_token.store(nullptr, std::memory_order_release);
      std::cerr << "cancelled: " << cancelled.what()
                << " (partial state cleaned up; durable shards keep their "
                   "completed samples)\n";
      return 130;
    }
    g_cancel_token.store(nullptr, std::memory_order_release);
    const core::EnsembleSeries& series = outcome.series;

    report_spill(series, experiment);
    report_verlet(series, experiment);
    if (!experiment.shard.path.empty()) {
      const std::size_t ran = series.sample_count() - series.resumed_samples;
      std::cout << "shard " << experiment.shard.index << "/"
                << experiment.shard.count << ": samples ["
                << series.slot_begin << ", "
                << series.slot_begin + series.sample_count() << ") complete ("
                << ran << " simulated, " << series.resumed_samples
                << " resumed)\n";
    }
    if (partial_shard) {
      // A shard holds one slice of the ensemble; the self-organization
      // measure needs all of it. Merge the completed shards, then analyze
      // the merged file via `--out merged.shard --resume`.
      std::cout << "partial ensemble — skipping analysis (merge the shards "
                   "first: sops_run --merge <out> <shards...>)\n";
      return 0;
    }
    const core::AnalysisResult& result = *outcome.analysis;
    const auto analysis_end = std::chrono::steady_clock::now();
    // Post-hoc: the analysis wall time proper. Streamed: the whole
    // simulate+analyze pipeline, since the two phases overlap.
    const auto analysis_start =
        stream ? run_start
               : std::chrono::steady_clock::time_point(
                     std::chrono::steady_clock::duration(
                         analysis_start_rep.load(std::memory_order_relaxed)));
    const double analysis_seconds =
        std::chrono::duration<double>(analysis_end - analysis_start).count();
    const double frames_per_sec =
        analysis_seconds > 0.0
            ? static_cast<double>(result.points.size()) / analysis_seconds
            : 0.0;
    std::printf("%s: %.2f s for %zu frames (%.3f frames/s)\n",
                stream ? "streamed simulate+analyze" : "analysis",
                analysis_seconds, result.points.size(), frames_per_sec);

    std::vector<io::Series> chart{{"I(W1..Wn) [bits]", result.steps(),
                                   result.mi_values()}};
    io::ChartOptions chart_options;
    chart_options.y_label = "multi-information (bits)";
    std::cout << io::render_chart(chart, chart_options) << "\n";

    const io::CsvTable table = core::analysis_csv_table(
        result, configured.analysis.compute_entropies);
    const std::string output =
        positional.size() > 1 ? positional[1]
                              : config.get_string("output", "sops_run.csv");
    io::write_csv_file(output, table);
    std::cout << "results written to " << output << "\n"
              << "Delta-I = " << result.delta_mi() << " bits — "
              << (result.self_organizing() ? "self-organizing"
                                           : "no self-organization detected")
              << "\n";
    return 0;
  } catch (const sops::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
