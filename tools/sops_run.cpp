// sops_run — configuration-driven experiment runner.
//
// Runs a full measure-self-organization pipeline from a key=value config
// file (see core/config_builder.hpp for the key reference), prints the I(t)
// curve, and writes the per-step results as CSV.
//
//   sops_run experiment.conf [output.csv]
//
// Example config:
//
//   preset  = fig4        # or a custom system, see docs
//   samples = 200
//   steps   = 250
//   stride  = 25
//   entropies = true
//   output  = fig4.csv
//
// `sops_run --smoke` runs a tiny built-in Fig. 4 configuration instead of a
// config file — the ctest smoke entry that keeps the CLI pipeline honest.
#include <algorithm>
#include <iostream>
#include <string_view>

#include "core/config_builder.hpp"
#include "core/sops.hpp"

namespace {

int run_smoke() {
  using namespace sops;
  core::ExperimentConfig experiment(core::presets::fig4_three_type_collective());
  experiment.samples = 6;
  experiment.simulation.steps = 10;
  experiment.simulation.record_stride = 5;
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);
  std::cout << "smoke: " << series.sample_count() << " samples, "
            << result.points.size() << " analysis points, delta-I = "
            << result.delta_mi() << " bits\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sops;
  if (argc < 2) {
    std::cerr << "usage: sops_run <config-file> [output.csv]\n";
    return 2;
  }

  try {
    if (std::string_view(argv[1]) == "--smoke") return run_smoke();
    const io::Config config = io::Config::load(argv[1]);

    // Warn about unknown keys — almost always a typo in an experiment file.
    const auto& known = core::known_config_keys();
    for (const std::string& key : config.keys()) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        std::cerr << "warning: unknown config key '" << key << "'\n";
      }
    }

    core::ConfiguredExperiment configured = core::build_experiment(config);
    std::cout << "running " << configured.experiment.samples << " samples of "
              << configured.experiment.simulation.types.size()
              << " particles for " << configured.experiment.simulation.steps
              << " steps...\n";

    const core::EnsembleSeries series =
        core::run_experiment(configured.experiment);
    if (configured.experiment.storage.mode != core::StorageMode::kHeap) {
      if (series.frames.storage() == core::StorageMode::kMapped) {
        const std::size_t bytes = series.frames.bytes();
        std::cout << "recording spilled to " << series.frames.spill_path();
        if (bytes >= 1024 * 1024) {
          std::cout << " (" << bytes / (1024 * 1024) << " MiB mapped)\n";
        } else {
          std::cout << " (" << bytes / 1024 << " KiB mapped)\n";
        }
      } else if (!series.frames.spill_fallback_reason().empty()) {
        std::cerr << "warning: frame_storage fell back to heap: "
                  << series.frames.spill_fallback_reason() << "\n";
      }
    }
    const core::AnalysisResult result =
        core::analyze_self_organization(series, configured.analysis);

    std::vector<io::Series> chart{{"I(W1..Wn) [bits]", result.steps(),
                                   result.mi_values()}};
    io::ChartOptions chart_options;
    chart_options.y_label = "multi-information (bits)";
    std::cout << io::render_chart(chart, chart_options) << "\n";

    io::CsvTable table;
    table.header = {"t", "multi_information_bits"};
    const bool with_entropies = configured.analysis.compute_entropies;
    if (with_entropies) {
      table.header.push_back("joint_entropy_bits");
      table.header.push_back("marginal_entropy_sum_bits");
    }
    for (const auto& point : result.points) {
      std::vector<double> row{static_cast<double>(point.step),
                              point.multi_information};
      if (with_entropies) {
        row.push_back(point.joint_entropy);
        row.push_back(point.marginal_entropy_sum);
      }
      table.add_row(std::move(row));
    }

    const std::string output = argc > 2
                                   ? std::string(argv[2])
                                   : config.get_string("output", "sops_run.csv");
    io::write_csv_file(output, table);
    std::cout << "results written to " << output << "\n"
              << "Delta-I = " << result.delta_mi() << " bits — "
              << (result.self_organizing() ? "self-organizing"
                                           : "no self-organization detected")
              << "\n";
    return 0;
  } catch (const sops::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
