// sopsd — the streaming experiment daemon.
//
// One process owns a core::JobManager (one machine-wide TaskPool, carved
// into per-job slices under admission control) and serves the frame
// protocol (io/frame_protocol.hpp) on a local unix socket:
//
//   sopsd [--socket <path>] [--slots N] [--threads N] [--mem-mb N]
//         [--spill-dir <dir>]
//
// Clients (`sops_run submit/status/cancel/watch`) submit the same key=value
// config text the batch CLI reads; jobs run with a streaming analyzer
// attached and every finished sample is pushed to watchers as the exact CSV
// bytes the batch path would write — streamed output is byte-identical to a
// batch run of the same config, because both go through
// core::sample_recording_csv / core::analysis_csv_table.
//
// Watchers attaching mid-run miss nothing: the daemon keeps each job's
// emitted frames and replays them to a late subscriber before switching to
// live delivery.
//
// SIGINT/SIGTERM raise the manager's shutdown token (async-signal-safe) and
// poke a self-pipe to wake the accept loop; every job drains at its next
// poll point, durable shard manifests stay valid (sync-before-bit-flip plus
// RAII sync on destruction), scratch spill files are unlinked, and watchers
// receive a terminal job_done frame before their connections close.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config_builder.hpp"
#include "core/job_manager.hpp"
#include "core/sops.hpp"
#include "io/frame_protocol.hpp"

namespace {

using namespace sops;

constexpr const char* kDefaultSocket = "sopsd.sock";

// Signal plumbing: the handler may only touch async-signal-safe state — it
// raises the shutdown token and writes one byte into the self-pipe so the
// poll()-based accept loop wakes immediately.
std::atomic<support::CancelToken*> g_shutdown_token{nullptr};
int g_wake_pipe[2] = {-1, -1};

void handle_signal(int /*signum*/) {
  support::CancelToken* token = g_shutdown_token.load(std::memory_order_acquire);
  if (token != nullptr) token->request();
  const char byte = 1;
  [[maybe_unused]] const ssize_t wrote = ::write(g_wake_pipe[1], &byte, 1);
}

void install_signal_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked syscalls return EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon
}

/// One watcher's delivery queue: event callbacks push, the watcher's
/// connection thread pops and writes. Decouples the simulation workers
/// from client socket speed.
struct SubscriberQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<io::Frame> frames;
  bool done = false;  // terminal frame enqueued; drain and close
};

/// Per-job frame fan-out with replay: everything ever pushed for a job is
/// kept and handed to late subscribers first, so a watcher attached after
/// submission still sees every sample frame exactly once, in order.
class Broadcast {
 public:
  void push(std::uint64_t job, io::FrameType type, std::string payload,
            bool terminal = false) {
    io::Frame frame{type, std::move(payload)};
    const std::lock_guard<std::mutex> lock(mutex_);
    Channel& channel = channels_[job];
    channel.history.push_back(frame);
    channel.finished = channel.finished || terminal;
    for (const std::shared_ptr<SubscriberQueue>& sub : channel.subscribers) {
      {
        const std::lock_guard<std::mutex> sub_lock(sub->mutex);
        sub->frames.push_back(frame);
        sub->done = sub->done || terminal;
      }
      sub->cv.notify_all();
    }
  }

  /// Registers a subscriber and seeds it with the job's full history —
  /// atomically, so no frame is lost or duplicated around the handoff.
  std::shared_ptr<SubscriberQueue> subscribe(std::uint64_t job) {
    auto sub = std::make_shared<SubscriberQueue>();
    const std::lock_guard<std::mutex> lock(mutex_);
    Channel& channel = channels_[job];
    {
      const std::lock_guard<std::mutex> sub_lock(sub->mutex);
      sub->frames.assign(channel.history.begin(), channel.history.end());
      sub->done = channel.finished;
    }
    if (!channel.finished) channel.subscribers.push_back(sub);
    return sub;
  }

  void unsubscribe(std::uint64_t job,
                   const std::shared_ptr<SubscriberQueue>& sub) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(job);
    if (it == channels_.end()) return;
    auto& subs = it->second.subscribers;
    subs.erase(std::remove(subs.begin(), subs.end(), sub), subs.end());
  }

 private:
  struct Channel {
    std::vector<io::Frame> history;
    std::vector<std::shared_ptr<SubscriberQueue>> subscribers;
    bool finished = false;
  };
  std::mutex mutex_;
  std::map<std::uint64_t, Channel> channels_;
};

struct DaemonOptions {
  std::string socket_path = kDefaultSocket;
  std::string spill_dir = ".";
  core::JobLimits limits{};
};

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options)
      : options_(options), manager_(options.limits) {}

  core::JobManager& manager() { return manager_; }

  std::uint64_t submit(const std::string& config_text) {
    core::ConfiguredExperiment configured =
        core::build_experiment(io::Config::parse(config_text));
    configured.experiment.storage.spill_dir = options_.spill_dir;

    core::JobOptions job_options;
    job_options.analysis = core::JobAnalysis::kStreamed;
    job_options.events.on_state_change = [this](const core::JobStatus& status) {
      // Terminal frames are pushed by the waiter thread (which also owns
      // the curve), so a watcher always sees curve_csv before job_done.
      if (core::is_terminal(status.state)) return;
      broadcast_.push(status.id, io::FrameType::kJobEvent,
                      core::job_status_json(status));
    };
    job_options.events.on_sample_done = [this](const core::JobSampleEvent& e) {
      std::string payload = "job=" + std::to_string(e.job) +
                            " sample=" + std::to_string(e.local_sample) +
                            " done=" + std::to_string(e.samples_done) +
                            " total=" + std::to_string(e.samples_total) + "\n";
      payload += core::sample_recording_csv(*e.series, e.local_sample);
      broadcast_.push(e.job, io::FrameType::kSampleCsv, std::move(payload));
    };

    const bool with_entropies = configured.analysis.compute_entropies;
    const std::uint64_t id = manager_.submit(std::move(configured), job_options);
    {
      const std::lock_guard<std::mutex> lock(waiters_mutex_);
      waiters_.emplace_back([this, id, with_entropies] {
        finish_job(id, with_entropies);
      });
    }
    return id;
  }

  void serve(int listen_fd) {
    std::vector<std::thread> connections;
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_wake_pipe[0], POLLIN, 0}};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) {
          if (manager_.shutdown_token().requested()) break;
          continue;
        }
        std::cerr << "sopsd: poll failed: " << std::strerror(errno) << "\n";
        break;
      }
      if ((fds[1].revents & POLLIN) != 0 ||
          manager_.shutdown_token().requested()) {
        break;
      }
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) continue;
        std::cerr << "sopsd: accept failed: " << std::strerror(errno) << "\n";
        break;
      }
      connections.emplace_back([this, client] { handle(client); });
    }
    std::cout << "sopsd: shutting down, draining jobs...\n";
    // Cancel everything so every job drains and every watch stream ends
    // with its terminal frame; join the connection handlers first (they
    // may still submit, adding waiters), then the per-job waiters.
    manager_.shutdown_token().request();
    for (std::thread& connection : connections) connection.join();
    for (std::thread& waiter : take_waiters()) waiter.join();
  }

 private:
  /// Per-job completion thread: blocks in wait(), then emits the analysis
  /// curve (on success) and the terminal status — the only writer of a
  /// job's job_done frame.
  void finish_job(std::uint64_t id, bool with_entropies) {
    try {
      const core::JobOutcome outcome = manager_.wait(id);
      if (outcome.analysis.has_value()) {
        std::ostringstream curve;
        io::write_csv(curve,
                      core::analysis_csv_table(*outcome.analysis, with_entropies));
        broadcast_.push(id, io::FrameType::kCurveCsv, curve.str());
      }
    } catch (const std::exception&) {
      // Failure/cancellation detail rides in the terminal status below.
    }
    broadcast_.push(id, io::FrameType::kJobDone,
                    core::job_status_json(manager_.status(id)),
                    /*terminal=*/true);
  }

  void handle(int client) {
    // A connected-but-silent client must not pin the handler (and the
    // daemon's shutdown join) forever: bound the wait for its request.
    const timeval timeout{30, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    try {
      const std::optional<io::Frame> request = io::read_frame(client);
      if (!request.has_value()) {
        ::close(client);
        return;
      }
      switch (request->type) {
        case io::FrameType::kSubmit: {
          try {
            const std::uint64_t id = submit(request->payload);
            io::write_frame(client, io::FrameType::kSubmitted,
                            std::to_string(id));
          } catch (const Error& error) {
            io::write_frame(client, io::FrameType::kError, error.what());
          }
          break;
        }
        case io::FrameType::kStatus: {
          std::string report;
          if (request->payload.empty()) {
            for (const core::JobStatus& status : manager_.statuses()) {
              report += core::job_status_json(status);
              report += "\n";
            }
          } else {
            report =
                core::job_status_json(manager_.status(parse_id(request->payload)));
          }
          io::write_frame(client, io::FrameType::kStatusReport, report);
          break;
        }
        case io::FrameType::kCancel: {
          const std::uint64_t id = parse_id(request->payload);
          manager_.cancel(id);
          io::write_frame(client, io::FrameType::kStatusReport,
                          core::job_status_json(manager_.status(id)));
          break;
        }
        case io::FrameType::kWatch: {
          watch(client, parse_id(request->payload));
          break;
        }
        default:
          io::write_frame(client, io::FrameType::kError,
                          std::string("unexpected frame type: ") +
                              io::to_string(request->type));
      }
    } catch (const std::exception& error) {
      try {
        io::write_frame(client, io::FrameType::kError, error.what());
      } catch (...) {
        // The client is gone; nothing left to tell it.
      }
    }
    ::close(client);
  }

  void watch(int client, std::uint64_t id) {
    (void)manager_.status(id);  // throws on unknown id, before subscribing
    const std::shared_ptr<SubscriberQueue> sub = broadcast_.subscribe(id);
    try {
      for (;;) {
        io::Frame frame;
        bool last = false;
        {
          std::unique_lock<std::mutex> lock(sub->mutex);
          sub->cv.wait(lock, [&] { return !sub->frames.empty() || sub->done; });
          if (sub->frames.empty()) break;  // done, queue already drained
          frame = std::move(sub->frames.front());
          sub->frames.pop_front();
          last = sub->done && sub->frames.empty();
        }
        io::write_frame(client, frame.type, frame.payload);
        if (last) break;
      }
    } catch (...) {
      broadcast_.unsubscribe(id, sub);  // client hung up mid-stream
      throw;
    }
    broadcast_.unsubscribe(id, sub);
  }

  static std::uint64_t parse_id(const std::string& text) {
    try {
      std::size_t end = 0;
      const unsigned long long id = std::stoull(text, &end);
      if (end != text.size() || id == 0) throw std::invalid_argument(text);
      return id;
    } catch (const std::exception&) {
      throw Error("expected a job id, got '" + text + "'");
    }
  }

  std::vector<std::thread> take_waiters() {
    const std::lock_guard<std::mutex> lock(waiters_mutex_);
    std::vector<std::thread> taken;
    taken.swap(waiters_);
    return taken;
  }

  DaemonOptions options_;
  core::JobManager manager_;
  Broadcast broadcast_;
  std::mutex waiters_mutex_;
  std::vector<std::thread> waiters_;
};

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      options.socket_path = argv[++i];
    } else if (arg == "--slots" && has_value) {
      options.limits.job_slots = std::stoul(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      options.limits.machine_threads = std::stoul(argv[++i]);
    } else if (arg == "--mem-mb" && has_value) {
      options.limits.memory_budget_bytes = std::stoul(argv[++i]) << 20;
    } else if (arg == "--spill-dir" && has_value) {
      options.spill_dir = argv[++i];
    } else {
      std::cerr << "usage: sopsd [--socket <path>] [--slots N] [--threads N] "
                   "[--mem-mb N] [--spill-dir <dir>]\n";
      return 2;
    }
  }

  try {
    // Reclaim spill files a crashed predecessor leaked before any new job
    // creates its own.
    sops::core::sweep_stale_spill_files(options.spill_dir);

    if (::pipe(g_wake_pipe) != 0) {
      std::cerr << "sopsd: pipe failed: " << std::strerror(errno) << "\n";
      return 1;
    }

    Daemon daemon(options);
    g_shutdown_token.store(&daemon.manager().shutdown_token(),
                           std::memory_order_release);
    install_signal_handlers();

    const int listen_fd = sops::io::listen_unix(options.socket_path);
    std::cout << "sopsd: listening on " << options.socket_path << " ("
              << daemon.manager().limits().job_slots << " job slots, "
              << daemon.manager().limits().machine_threads
              << " threads)\n";
    daemon.serve(listen_fd);

    g_shutdown_token.store(nullptr, std::memory_order_release);
    ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
    std::cout << "sopsd: stopped\n";
    return 0;
  } catch (const sops::Error& error) {
    std::cerr << "sopsd: " << error.what() << "\n";
    return 1;
  }
}
