// The Fig. 5/7 phenomenon, hands on: a single-type F¹ collective forms two
// concentric regular polygons, and the rotation of the inner polygon
// relative to the outer one is a free degree of freedom.
//
// This example measures that degree of freedom directly: it aligns the
// ensemble (which pins the outer ring), extracts each sample's inner-ring
// rotation angle, and prints the angle histogram — approximately uniform,
// the signature of a genuinely free (high-entropy) internal coordinate that
// nevertheless carries multi-information because all inner particles share
// it.
//
//   ./rings_degree_of_freedom [samples]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numbers>
#include "example_args.hpp"

#include "core/sops.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const bool smoke = examples::smoke_mode(argc, argv);
  const std::size_t samples = smoke ? 12 : examples::arg_or(argc, argv, 1, 300);

  sim::SimulationConfig simulation = core::presets::fig5_single_type_rings();
  simulation.record_stride = simulation.steps;  // endpoints only

  core::ExperimentConfig experiment(simulation);
  experiment.samples = samples;
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const align::AlignedEnsemble aligned =
      align::align_ensemble(series.frames.back(), series.types);

  const std::size_t n = aligned.observer_count();
  const std::size_t m = aligned.sample_count();

  // Split observers into inner/outer ring by mean radius.
  std::vector<double> mean_radius(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < m; ++s) {
      mean_radius[i] += std::hypot(aligned.samples(s, 2 * i),
                                   aligned.samples(s, 2 * i + 1)) /
                        static_cast<double>(m);
    }
  }
  std::vector<double> sorted = mean_radius;
  std::sort(sorted.begin(), sorted.end());
  const double split = sorted[n / 2];

  std::size_t inner_count = 0;
  for (std::size_t i = 0; i < n; ++i) inner_count += (mean_radius[i] < split);
  std::cout << "collective of " << n << " particles: " << inner_count
            << " inner-ring, " << n - inner_count << " outer-ring\n";

  // Inner-ring rotation of each sample: the polygon angle modulo its
  // rotational symmetry (2π / inner_count).
  const double sector = 2.0 * std::numbers::pi /
                        static_cast<double>(std::max<std::size_t>(inner_count, 1));
  std::vector<double> angles;
  for (std::size_t s = 0; s < m; ++s) {
    // Mean angle offset of inner particles within their symmetry sector,
    // via the circular mean of (inner_count × angle).
    double sum_sin = 0.0;
    double sum_cos = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mean_radius[i] >= split) continue;
      const double a = std::atan2(aligned.samples(s, 2 * i + 1),
                                  aligned.samples(s, 2 * i));
      sum_sin += std::sin(a * static_cast<double>(inner_count));
      sum_cos += std::cos(a * static_cast<double>(inner_count));
    }
    const double folded = std::atan2(sum_sin, sum_cos) /
                          static_cast<double>(inner_count);
    angles.push_back(folded);  // ∈ (−sector/2, sector/2]
  }

  // Histogram over the symmetry sector.
  constexpr std::size_t kBins = 12;
  std::vector<std::size_t> histogram(kBins, 0);
  for (const double a : angles) {
    const double f = (a + sector / 2.0) / sector;  // ∈ [0, 1)
    const auto bin = std::min<std::size_t>(
        static_cast<std::size_t>(f * kBins), kBins - 1);
    ++histogram[bin];
  }
  std::cout << "\ninner-ring rotation within one symmetry sector ("
            << m << " samples, " << kBins << " bins):\n";
  for (std::size_t b = 0; b < kBins; ++b) {
    std::cout << "  [" << b << "] " << std::string(histogram[b], '#') << " "
              << histogram[b] << "\n";
  }

  // Uniformity: max/min bin ratio should be moderate for a free DOF.
  const auto [min_it, max_it] =
      std::minmax_element(histogram.begin(), histogram.end());
  std::cout << "\nmin/max bin occupancy: " << *min_it << "/" << *max_it << "\n";
  std::cout << "The rotation angle spreads across the whole sector: the\n"
               "inner-ring orientation is a free internal degree of freedom.\n"
               "All inner particles share it, which is exactly the cross-\n"
               "particle correlation the multi-information measure detects\n"
               "(paper Figs. 5 and 7).\n";
  return 0;
}
