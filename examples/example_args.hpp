// Shared command-line handling for the example binaries.
//
// Every example accepts `--smoke`: a seconds-scale configuration that ctest
// runs (`smoke_<name>`) so the examples cannot bit-rot while only being
// compiled. Smoke mode overrides the positional size arguments.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <string_view>

namespace sops::examples {

/// True when any argument is `--smoke`.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// Positional numeric argument `index` (1-based), or `fallback`.
inline std::size_t arg_or(int argc, char** argv, int index,
                          std::size_t fallback) {
  if (argc <= index || std::string_view(argv[index]) == "--smoke") {
    return fallback;
  }
  return std::strtoul(argv[index], nullptr, 10);
}

}  // namespace sops::examples
