// Information dynamics within a collective — the paper's §7.3 outlook made
// concrete: who stores information, and who sends it to whom?
//
// Runs a small three-type collective once (long trajectory, identity
// preserved), then prints each particle's active information storage and
// the strongest transfer-entropy links. Note these are time-resolved
// statistics: they use the RAW trajectory, never the permutation-reduced
// shape space (paper §5.2).
//
//   ./information_dynamics [steps]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include "example_args.hpp"

#include "core/sops.hpp"

int main(int argc, char** argv) {
  using namespace sops;
  const bool smoke = examples::smoke_mode(argc, argv);
  const std::size_t steps = smoke ? 60 : examples::arg_or(argc, argv, 1, 2500);

  // A small collective so the n² TE matrix stays readable.
  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.types = sim::evenly_distributed_types(9, 3);
  simulation.steps = steps;
  simulation.record_stride = 1;
  simulation.seed = 0x1D7;
  const sim::Trajectory trajectory = sim::run_simulation(simulation);
  const std::size_t n = trajectory.particle_count();

  std::cout << "collective of " << n << " particles, " << steps
            << " recorded steps\n\nfinal configuration:\n"
            << io::render_scatter(trajectory.frames.back(), trajectory.types)
            << "\n";

  // Active information storage per particle.
  std::cout << "active information storage (bits):\n";
  for (std::size_t i = 0; i < n; ++i) {
    const double ais =
        info::particle_active_information_storage(trajectory.frames, i);
    std::cout << "  particle " << i << " (type " << trajectory.types[i]
              << "): " << std::fixed << std::setprecision(3) << ais << "\n";
  }

  // Transfer-entropy matrix; report the strongest directed links.
  const auto te = info::transfer_entropy_matrix(trajectory.frames);
  struct Link {
    std::size_t from;
    std::size_t to;
    double bits;
  };
  std::vector<Link> links;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) links.push_back({a, b, te[a][b]});
    }
  }
  std::sort(links.begin(), links.end(),
            [](const Link& x, const Link& y) { return x.bits > y.bits; });

  std::cout << "\nstrongest transfer-entropy links:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(links.size(), 8); ++i) {
    const Link& link = links[i];
    const double d = geom::dist(trajectory.frames.back()[link.from],
                                trajectory.frames.back()[link.to]);
    std::cout << "  " << link.from << " -> " << link.to << ": " << link.bits
              << " bits  (final distance " << std::setprecision(2) << d
              << ")\n";
  }

  // Do strong links coincide with spatial proximity?
  double near_te = 0.0;
  double far_te = 0.0;
  std::size_t near_count = 0;
  std::size_t far_count = 0;
  for (const Link& link : links) {
    const double d = geom::dist(trajectory.frames.back()[link.from],
                                trajectory.frames.back()[link.to]);
    if (d < simulation.cutoff_radius) {
      near_te += link.bits;
      ++near_count;
    } else {
      far_te += link.bits;
      ++far_count;
    }
  }
  const double near_mean = near_count ? near_te / near_count : 0.0;
  const double far_mean = far_count ? far_te / far_count : 0.0;
  std::cout << "\nmean TE within r_c: " << near_mean << " bits over "
            << near_count << " pairs\nmean TE beyond r_c: " << far_mean
            << " bits over " << far_count << " pairs\n\n";
  if (near_mean > far_mean) {
    std::cout << "Interacting neighbors exchange more information — the\n"
                 "spread of information through local interactions is the\n"
                 "mechanism the paper identifies as the enabler of\n"
                 "self-organization (par. 6.1 / Steudel & Ay).\n";
  } else {
    std::cout << "At this trajectory length the near/far TE means are not\n"
                 "separated — the KSG conditional estimator needs longer\n"
                 "series (rerun with more steps; the paper itself calls\n"
                 "these measurements 'inconclusive' at par. 7.3).\n";
  }
  return 0;
}
