// Estimator playground — measure multi-information of your own ensembles.
//
// Generates three reference ensembles with known ground truth (independent,
// pairwise-correlated, globally-coupled) and runs all three estimators of
// the library on each, so you can see what the numbers mean before pointing
// the pipeline at a particle system.
//
//   ./estimator_playground [samples] [dimensions]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include "example_args.hpp"

#include "core/sops.hpp"

namespace {

using namespace sops;

info::SampleMatrix make_ensemble(std::size_t m, std::size_t dim, double coupling,
                                 std::uint64_t seed) {
  rng::Xoshiro256 engine(seed);
  info::SampleMatrix samples(m, dim);
  for (std::size_t s = 0; s < m; ++s) {
    const double shared = rng::standard_normal(engine);
    for (std::size_t d = 0; d < dim; ++d) {
      samples(s, d) = coupling * shared +
                      std::sqrt(1.0 - coupling * coupling) *
                          rng::standard_normal(engine);
    }
  }
  return samples;
}

// Closed-form multi-information (bits) of d standard normals that all load
// on one shared factor with loading a: the covariance is (1−a²)I + a²·11ᵀ.
double equicorrelated_multi_information(std::size_t dim, double loading) {
  const double rho = loading * loading;
  const double d = static_cast<double>(dim);
  // I = ½ log₂ [ 1 / ((1 + (d−1)ρ)(1−ρ)^{d−1}) ].
  return -0.5 * (std::log2(1.0 + (d - 1.0) * rho) +
                 (d - 1.0) * std::log2(1.0 - rho));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = sops::examples::smoke_mode(argc, argv);
  const std::size_t m = smoke ? 60 : sops::examples::arg_or(argc, argv, 1, 600);
  const std::size_t dim = smoke ? 4 : sops::examples::arg_or(argc, argv, 2, 6);

  const auto blocks = info::uniform_blocks(dim, 1);
  std::cout << "m = " << m << " samples, " << dim
            << " scalar observers\n\n"
            << std::setw(22) << "ensemble" << std::setw(10) << "truth"
            << std::setw(10) << "KSG" << std::setw(10) << "KL"
            << std::setw(10) << "KDE" << std::setw(12) << "binning\n";

  for (const auto& [name, coupling] :
       std::vector<std::pair<std::string, double>>{
           {"independent", 0.0}, {"weakly coupled", 0.45},
           {"strongly coupled", 0.85}}) {
    const info::SampleMatrix samples = make_ensemble(m, dim, coupling, 42);
    const double truth = equicorrelated_multi_information(dim, coupling);
    const double ksg = info::multi_information_ksg(samples, blocks);
    const double kl = info::multi_information_kl(samples, blocks);
    const double kde = info::multi_information_kde(samples, blocks);
    info::BinningOptions ml;
    ml.james_stein_shrinkage = false;
    const double binned = info::multi_information_binned(samples, blocks, ml);
    std::cout << std::setw(22) << name << std::fixed << std::setprecision(3)
              << std::setw(10) << truth << std::setw(10) << ksg
              << std::setw(10) << kl << std::setw(10) << kde << std::setw(10)
              << binned << "\n";
  }

  std::cout << "\nNotes: KSG is the paper's estimator (Eq. 18). KL is the\n"
               "entropy-difference cross-check. KDE and ML binning are the\n"
               "paper's rejected baselines — watch binning inflate with\n"
               "dimension (rerun with dimensions = 10).\n";
  return 0;
}
