// Cell sorting by differential adhesion — the biological motivation of the
// paper's introduction: "differential cell adhesion prevents areas
// consisting of different tissues to mix and starts an automatic sorting
// process ... if cells have been forced to mix in a solution" [Wolpert].
//
// Two cell types start uniformly mixed in a disc; same-type adhesion is
// stronger (smaller preferred distance) than cross-type adhesion. The demo
// tracks a mixing index (fraction of cross-type nearest neighbors) and the
// multi-information of the ensemble while the tissue un-mixes.
//
//   ./cell_sorting [samples] [steps]
#include <cstdlib>
#include <iostream>
#include "example_args.hpp"

#include "core/sops.hpp"

namespace {

using namespace sops;

// Fraction of particles whose nearest neighbor has the other type
// (0.5 ≈ fully mixed for balanced types, → 0 as the tissue sorts).
double mixing_index(std::span<const geom::Vec2> points,
                    const std::vector<sim::TypeId>& types) {
  std::size_t cross = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = 1e300;
    std::size_t nearest = i;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const double d = geom::dist_sq(points[i], points[j]);
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    if (types[nearest] != types[i]) ++cross;
  }
  return static_cast<double>(cross) / static_cast<double>(points.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = sops::examples::smoke_mode(argc, argv);
  const std::size_t samples = smoke ? 12 : sops::examples::arg_or(argc, argv, 1, 80);
  const std::size_t steps = smoke ? 20 : sops::examples::arg_or(argc, argv, 2, 200);

  // Differential adhesion: tight same-type packing, looser cross-type.
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 2,
                              sim::PairParams{1.0, 1.0, 1.0, 1.0});
  model.set_r(0, 0, 1.2);
  model.set_r(1, 1, 1.2);
  model.set_r(0, 1, 2.2);  // the two tissues tolerate, but do not mix

  sim::SimulationConfig simulation(std::move(model));
  simulation.types = sim::evenly_distributed_types(40, 2);
  simulation.cutoff_radius = 5.0;
  simulation.init_disc_radius = 3.5;
  simulation.steps = steps;
  simulation.record_stride = std::max<std::size_t>(steps / 10, 1);
  simulation.seed = 0xCE11;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = samples;
  const core::EnsembleSeries series = core::run_experiment(experiment);
  const core::AnalysisResult result = core::analyze_self_organization(series);

  std::cout << "Cell sorting by differential adhesion (n = 40, 2 tissues)\n\n";
  std::cout << "   t    mixing-index   I(W1..Wn) [bits]\n";
  for (std::size_t f = 0; f < series.frame_count(); ++f) {
    std::cout << "  " << series.frame_steps[f] << "\t"
              << mixing_index(series.frames[f][0], series.types) << "\t\t"
              << result.points[f].multi_information << "\n";
  }

  std::cout << "\nmixed initial state (sample 0):\n"
            << io::render_scatter(series.frames.front()[0], series.types)
            << "\nsorted final state (sample 0):\n"
            << io::render_scatter(series.frames.back()[0], series.types);

  const double initial_mix = mixing_index(series.frames.front()[0], series.types);
  const double final_mix = mixing_index(series.frames.back()[0], series.types);
  std::cout << "\nmixing index " << initial_mix << " -> " << final_mix
            << (final_mix < initial_mix ? "  (tissue sorted)" : "")
            << "\nDelta-I = " << result.delta_mi() << " bits; self-organizing: "
            << (result.self_organizing() ? "yes" : "no") << "\n";
  return 0;
}
