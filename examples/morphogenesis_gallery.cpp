// Morphogenesis gallery — a tour of the shapes this particle model grows
// from a featureless disc of mixed cells (paper Figs. 1, 3, 12): membranes,
// enclosed cores, layered shells, rings, and regular grids.
//
// Each scenario runs one simulation to its (near-)equilibrium and renders
// the result as ASCII plus an SVG file in gallery_out/.
//
//   ./morphogenesis_gallery [steps]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include "example_args.hpp"

#include "core/sops.hpp"

namespace {

using namespace sops;

struct Scenario {
  std::string name;
  std::string blurb;
  sim::SimulationConfig config;
};

std::vector<Scenario> make_scenarios(std::size_t steps) {
  std::vector<Scenario> scenarios;

  {
    sim::SimulationConfig config = core::presets::fig3_single_type_grid();
    config.steps = steps;
    scenarios.push_back({"regular-grid",
                         "single type, literal F2: expanding regular disc "
                         "(paracrystalline ordering)",
                         std::move(config)});
  }
  {
    sim::SimulationConfig config = core::presets::fig5_single_type_rings();
    config.steps = steps;
    scenarios.push_back({"concentric-rings",
                         "single type, F1, long range: two concentric "
                         "polygons with a free mutual rotation",
                         std::move(config)});
  }
  {
    sim::SimulationConfig config = core::presets::fig12_enclosed_structure();
    config.steps = steps;
    scenarios.push_back({"enclosed-core",
                         "two types, differential adhesion: a dense core "
                         "engulfed by a looser shell",
                         std::move(config)});
  }
  {
    sim::SimulationConfig config = core::presets::fig4_three_type_collective();
    config.steps = steps;
    scenarios.push_back({"membrane",
                         "three types (Fig. 4 matrices): membrane-like "
                         "borders between tissues",
                         std::move(config)});
  }
  {
    // A spread-out archipelago: same-type clusters mutually repelled.
    sim::InteractionModel model(sim::ForceLawKind::kSpring, 2,
                                sim::PairParams{1.0, 1.0, 1.0, 1.0});
    model.set_r(0, 0, 1.0);
    model.set_r(1, 1, 1.0);
    model.set_r(0, 1, 6.0);
    sim::SimulationConfig config(std::move(model));
    config.types = sim::evenly_distributed_types(36, 2);
    config.cutoff_radius = 8.0;
    config.init_disc_radius = 4.0;
    config.steps = steps;
    config.seed = 0x6A11;
    scenarios.push_back({"separated-islands",
                         "two types with strong cross-type exclusion: "
                         "islands at mutual distance",
                         std::move(config)});
  }
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = sops::examples::smoke_mode(argc, argv);
  const std::size_t steps = smoke ? 25 : sops::examples::arg_or(argc, argv, 1, 400);
  std::filesystem::create_directories("gallery_out");

  for (const Scenario& scenario : make_scenarios(steps)) {
    const sim::Trajectory trajectory = sim::run_simulation(scenario.config);
    std::cout << "=== " << scenario.name << " ===\n"
              << scenario.blurb << "\n";
    if (trajectory.equilibrium_step) {
      std::cout << "(equilibrium criterion held at step "
                << *trajectory.equilibrium_step << ")\n";
    }
    io::ScatterOptions options;
    options.width = 56;
    options.height = 22;
    std::cout << io::render_scatter(trajectory.frames.back(), trajectory.types,
                                    options)
              << "\n";
    io::write_text_file(
        "gallery_out/" + scenario.name + ".svg",
        io::render_svg(trajectory.frames.back(), trajectory.types));
  }
  std::cout << "SVG files written to gallery_out/\n";
  return 0;
}
