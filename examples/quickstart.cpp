// Quickstart: measure self-organization of the paper's Fig. 4 collective.
//
// Builds the three-type differential-adhesion system, runs an ensemble of
// stochastic simulations, reduces each time step to shape space, estimates
// the observer multi-information with the KSG estimator, and prints the
// I(t) curve plus the final configuration of one sample.
//
//   ./quickstart [samples] [steps]   (--smoke: tiny ctest configuration)
#include <cstdlib>
#include <iostream>

#include "core/sops.hpp"
#include "example_args.hpp"

int main(int argc, char** argv) {
  using namespace sops;

  const bool smoke = examples::smoke_mode(argc, argv);
  const std::size_t samples = smoke ? 6 : examples::arg_or(argc, argv, 1, 100);
  const std::size_t steps = smoke ? 12 : examples::arg_or(argc, argv, 2, 100);

  // 1. The system: n = 50 particles, 3 types, r_c = 5 (paper Fig. 4).
  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = steps;
  simulation.record_stride = 10;

  // 2. The ensemble: m independent stochastic runs.
  core::ExperimentConfig experiment(simulation);
  experiment.samples = samples;
  const core::EnsembleSeries series = core::run_experiment(experiment);

  // 3. The measure: shape-space reduction + KSG multi-information per step.
  const core::AnalysisResult result = core::analyze_self_organization(series);

  // 4. Report.
  std::vector<io::Series> chart{{"I(W1..Wn) [bits]", result.steps(),
                                 result.mi_values()}};
  io::ChartOptions chart_options;
  chart_options.y_label = "multi-information (bits)";
  std::cout << "Fig. 4 collective: n = " << series.particle_count()
            << ", samples = " << series.sample_count() << "\n\n"
            << io::render_chart(chart, chart_options) << '\n';

  std::cout << "Final configuration of sample 0:\n"
            << io::render_scatter(series.frames.back().front(), series.types)
            << '\n';

  std::cout << "Delta I over the run: " << result.delta_mi() << " bits\n"
            << "Verdict: the system "
            << (result.self_organizing() ? "IS" : "is NOT")
            << " self-organizing by the paper's criterion.\n";
  return 0;
}
