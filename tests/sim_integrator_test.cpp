// Euler–Maruyama integrator tests: deterministic limit, convergence to the
// preferred distance, noise statistics, and the stability clamp.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/rigid_transform.hpp"
#include "rng/samplers.hpp"
#include "sim/integrator.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::euler_maruyama_step;
using sops::sim::ForceLawKind;
using sops::sim::IntegratorParams;
using sops::sim::InteractionModel;
using sops::sim::kUnboundedRadius;
using sops::sim::PairParams;
using sops::sim::ParticleSystem;

InteractionModel spring_model(double k, double r) {
  return InteractionModel(ForceLawKind::kSpring, 1, PairParams{k, r, 1, 1});
}

IntegratorParams no_noise(double dt = 0.05) {
  IntegratorParams params;
  params.dt = dt;
  params.noise_variance = 0.0;
  return params;
}

TEST(Integrator, DeterministicWithoutNoise) {
  const InteractionModel model = spring_model(1.0, 2.0);
  ParticleSystem a({{0.0, 0.0}, {1.0, 0.0}}, {0, 0});
  ParticleSystem b = a;
  sops::rng::Xoshiro256 ea(1);
  sops::rng::Xoshiro256 eb(999);  // different engines, zero noise
  std::vector<Vec2> scratch;
  for (int i = 0; i < 50; ++i) {
    euler_maruyama_step(a, model, kUnboundedRadius, no_noise(), ea, scratch);
    euler_maruyama_step(b, model, kUnboundedRadius, no_noise(), eb, scratch);
  }
  EXPECT_EQ(a.position(0), b.position(0));
  EXPECT_EQ(a.position(1), b.position(1));
}

TEST(Integrator, PairConvergesToPreferredDistance) {
  const double r = 2.0;
  const InteractionModel model = spring_model(1.0, r);
  ParticleSystem system({{0.0, 0.0}, {0.5, 0.0}}, {0, 0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  for (int i = 0; i < 2000; ++i) {
    euler_maruyama_step(system, model, kUnboundedRadius, no_noise(0.02), engine,
                        scratch);
  }
  EXPECT_NEAR(dist(system.position(0), system.position(1)), r, 1e-6);
}

TEST(Integrator, PairApproachesFromOutside) {
  const double r = 2.0;
  const InteractionModel model = spring_model(1.0, r);
  ParticleSystem system({{0.0, 0.0}, {6.0, 0.0}}, {0, 0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  for (int i = 0; i < 2000; ++i) {
    euler_maruyama_step(system, model, kUnboundedRadius, no_noise(0.02), engine,
                        scratch);
  }
  EXPECT_NEAR(dist(system.position(0), system.position(1)), r, 1e-6);
}

TEST(Integrator, CentroidConservedWithoutNoise) {
  // Symmetric interactions: drift sums to zero, so the centroid is a
  // conserved quantity of the deterministic flow.
  const InteractionModel model = spring_model(1.5, 2.0);
  ParticleSystem system({{0, 0}, {1, 0}, {0, 2}, {3, 1}}, {0, 0, 0, 0});
  const Vec2 before = sops::geom::centroid(system.positions_aos());
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  for (int i = 0; i < 200; ++i) {
    euler_maruyama_step(system, model, kUnboundedRadius, no_noise(), engine,
                        scratch);
  }
  const Vec2 after = sops::geom::centroid(system.positions_aos());
  EXPECT_NEAR(before.x, after.x, 1e-9);
  EXPECT_NEAR(before.y, after.y, 1e-9);
}

TEST(Integrator, ReturnsPreStepResidual) {
  const InteractionModel model = spring_model(1.0, 2.0);
  ParticleSystem system({{0.0, 0.0}, {1.0, 0.0}}, {0, 0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  // Pair at distance 1 with r = 2: each particle feels |F|·x = |1 − 2|·1 = 1.
  const double residual = euler_maruyama_step(system, model, kUnboundedRadius,
                                              no_noise(), engine, scratch);
  EXPECT_NEAR(residual, 2.0, 1e-12);
}

TEST(Integrator, NoiseOnlyDiffusionStatistics) {
  // With k = 0 the update is z += √dt·ς·ξ; after T steps the displacement
  // variance per axis is T·dt·ς².
  const InteractionModel model = spring_model(0.0, 1.0);
  IntegratorParams params;
  params.dt = 0.1;
  params.noise_variance = 0.05;
  const int steps = 100;
  const int particles = 2000;

  std::vector<Vec2> start(particles, Vec2{});
  ParticleSystem system(start, std::vector<sops::sim::TypeId>(particles, 0));
  sops::rng::Xoshiro256 engine(77);
  std::vector<Vec2> scratch;
  for (int t = 0; t < steps; ++t) {
    euler_maruyama_step(system, model, 0.5, params, engine, scratch);
  }
  double var_x = 0.0;
  for (const Vec2 p : system.positions_aos()) var_x += p.x * p.x;
  var_x /= particles;
  const double expected = steps * params.dt * params.noise_variance;
  EXPECT_NEAR(var_x, expected, expected * 0.15);
}

TEST(Integrator, MaxStepClampsDrift) {
  // Huge k would fling the pair apart in one explicit step; the clamp caps
  // the displacement magnitude at max_step.
  const InteractionModel model = spring_model(1e6, 2.0);
  IntegratorParams params = no_noise(1.0);
  params.max_step = 0.5;
  ParticleSystem system({{0.0, 0.0}, {0.1, 0.0}}, {0, 0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  euler_maruyama_step(system, model, kUnboundedRadius, params, engine, scratch);
  EXPECT_LE(norm(system.position(0)), 0.5 + 1e-12);
}

TEST(Integrator, ClampDisabledAllowsLargeSteps) {
  const InteractionModel model = spring_model(1e6, 2.0);
  IntegratorParams params = no_noise(1.0);
  params.max_step = 0.0;
  ParticleSystem system({{0.0, 0.0}, {0.1, 0.0}}, {0, 0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  euler_maruyama_step(system, model, kUnboundedRadius, params, engine, scratch);
  EXPECT_GT(norm(system.position(0)), 10.0);
}

TEST(Integrator, InvalidParamsThrow) {
  const InteractionModel model = spring_model(1.0, 1.0);
  ParticleSystem system({{0.0, 0.0}}, {0});
  sops::rng::Xoshiro256 engine(1);
  std::vector<Vec2> scratch;
  IntegratorParams bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW(euler_maruyama_step(system, model, 1.0, bad_dt, engine, scratch),
               sops::PreconditionError);
  IntegratorParams bad_noise;
  bad_noise.noise_variance = -0.1;
  EXPECT_THROW(
      euler_maruyama_step(system, model, 1.0, bad_noise, engine, scratch),
      sops::PreconditionError);
}

TEST(Integrator, NoiseDrawsAreSequencedPerParticle) {
  // Two identical engines must produce identical trajectories when stepping
  // the same system — the per-particle draw order is part of the contract
  // (reproducibility does not depend on neighbor strategy or thread count).
  const InteractionModel model = spring_model(1.0, 2.0);
  IntegratorParams params;
  params.dt = 0.05;
  params.noise_variance = 0.05;

  ParticleSystem a({{0, 0}, {1, 0}, {0, 1}}, {0, 0, 0});
  ParticleSystem b = a;
  sops::rng::Xoshiro256 ea(42);
  sops::rng::Xoshiro256 eb(42);
  std::vector<Vec2> scratch;
  for (int i = 0; i < 20; ++i) {
    euler_maruyama_step(a, model, kUnboundedRadius, params, ea, scratch,
                        sops::sim::NeighborMode::kAllPairs);
    euler_maruyama_step(b, model, 100.0, params, eb, scratch,
                        sops::sim::NeighborMode::kCellGrid);
  }
  // Same pair sets (everything within 100 > any distance): identical paths.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.position(i).x, b.position(i).x, 1e-9);
    EXPECT_NEAR(a.position(i).y, b.position(i).y, 1e-9);
  }
}

}  // namespace
