// Executor-layer lifecycle tests: pooled dispatch correctness, worker caps,
// exception propagation, pool reuse across dispatch rounds, and the
// disjoint-lending pattern the engine's sample × step nesting relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "support/cancel.hpp"
#include "support/executor.hpp"
#include "support/parallel_for.hpp"

namespace {

using sops::support::Executor;
using sops::support::PoolExecutor;
using sops::support::SerialExecutor;
using sops::support::SpawnExecutor;
using sops::support::TaskPool;

TEST(SerialExecutorTest, RunsTasksInlineInOrder) {
  SerialExecutor executor;
  EXPECT_EQ(executor.width(), 1u);
  std::vector<std::size_t> order;
  std::thread::id runner;
  auto task = [&](std::size_t k) {
    order.push_back(k);
    runner = std::this_thread::get_id();
  };
  executor.run(5, task);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(TaskPoolTest, WidthCountsTheCaller) {
  TaskPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.executor().width(), 4u);

  TaskPool serial_pool(1);
  EXPECT_EQ(serial_pool.width(), 1u);
  EXPECT_EQ(serial_pool.worker_count(), 0u);
}

TEST(TaskPoolTest, EveryTaskRunsExactlyOnce) {
  TaskPool pool(4);
  for (const std::size_t count : {1u, 3u, 4u, 17u, 100u}) {
    std::vector<std::atomic<int>> visits(count);
    auto task = [&](std::size_t k) { visits[k].fetch_add(1); };
    pool.executor().run(count, task);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_EQ(visits[k].load(), 1) << "count " << count << " task " << k;
    }
  }
}

TEST(TaskPoolTest, ReusableAcrossManyDispatchRounds) {
  // The point of the pool: the same parked workers serve dispatch after
  // dispatch. 500 rounds on one pool must neither leak, wedge, nor skip.
  TaskPool pool(3);
  std::atomic<std::size_t> total{0};
  auto task = [&](std::size_t k) { total.fetch_add(k + 1); };
  for (int round = 0; round < 500; ++round) pool.executor().run(4, task);
  EXPECT_EQ(total.load(), 500u * (1 + 2 + 3 + 4));
}

TEST(TaskPoolTest, ExceptionFromPooledTaskPropagates) {
  TaskPool pool(4);
  auto task = [](std::size_t k) {
    if (k == 2) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.executor().run(8, task), std::runtime_error);
}

TEST(TaskPoolTest, OtherTasksCompleteWhenOneThrows) {
  TaskPool pool(2);
  std::vector<std::atomic<int>> visits(10);
  auto task = [&](std::size_t k) {
    visits[k].fetch_add(1);
    if (k == 0) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.executor().run(10, task), std::runtime_error);
  for (std::size_t k = 0; k < visits.size(); ++k) {
    EXPECT_EQ(visits[k].load(), 1) << k;
  }
}

TEST(TaskPoolTest, PoolStaysUsableAfterAnException) {
  TaskPool pool(3);
  auto throwing = [](std::size_t) { throw std::runtime_error("boom"); };
  EXPECT_THROW(pool.executor().run(3, throwing), std::runtime_error);
  std::atomic<int> count{0};
  auto counting = [&](std::size_t) { count.fetch_add(1); };
  pool.executor().run(6, counting);
  EXPECT_EQ(count.load(), 6);
}

TEST(TaskPoolTest, MoreTasksThanWorkersDrainsThroughTheCap) {
  // Torture case: far more tasks than runners. Every task must run exactly
  // once, on at most width() distinct threads.
  TaskPool pool(3);
  const std::size_t count = 257;
  std::vector<std::atomic<int>> visits(count);
  std::mutex ids_mutex;
  std::set<std::thread::id> ids;
  auto task = [&](std::size_t k) {
    visits[k].fetch_add(1);
    const std::lock_guard<std::mutex> lock(ids_mutex);
    ids.insert(std::this_thread::get_id());
  };
  pool.executor().run(count, task);
  for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(visits[k].load(), 1) << k;
  EXPECT_LE(ids.size(), pool.width());
}

TEST(TaskPoolTest, LendingDisjointSlicesSupportsNestedDispatch) {
  // The engine's sample × step pattern: an outer dispatch of S tasks on the
  // runner slice, each task dispatching inner work on its own helper
  // slice. S = 2 outer tasks × T = 2: pool width 4 → helper slices
  // [0,1) and [1,2), runner slice [2,3).
  TaskPool pool(4);
  PoolExecutor outer = pool.lend(2, 1);
  EXPECT_EQ(outer.width(), 2u);
  std::vector<std::atomic<int>> inner_visits(40);
  auto outer_task = [&](std::size_t k) {
    PoolExecutor inner = pool.lend(k, 1);
    EXPECT_EQ(inner.width(), 2u);
    auto inner_task = [&](std::size_t j) {
      inner_visits[k * 20 + j].fetch_add(1);
    };
    for (int repeat = 0; repeat < 50; ++repeat) inner.run(20, inner_task);
  };
  outer.run(2, outer_task);
  for (std::size_t i = 0; i < inner_visits.size(); ++i) {
    EXPECT_EQ(inner_visits[i].load(), 50) << i;
  }
}

TEST(TaskPoolTest, RunPartitionedLendsDisjointInnerExecutors) {
  // The engine's outer × inner pattern through the one shared helper:
  // 3 outer chunks × inner width 2 on a pool of 6. Inner executors must be
  // usable concurrently and every inner work item must run exactly once.
  TaskPool pool(6);
  std::vector<std::atomic<int>> visits(3 * 30);
  pool.run_partitioned(
      3, 2, [&](std::size_t k, sops::support::Executor& inner) {
        EXPECT_EQ(inner.width(), 2u);
        auto inner_task = [&](std::size_t j) {
          visits[k * 30 + j].fetch_add(1);
        };
        for (int repeat = 0; repeat < 20; ++repeat) inner.run(30, inner_task);
      });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 20) << i;
  }
}

TEST(TaskPoolTest, RunPartitionedPropagatesAChunkThrow) {
  // A sample chunk dying mid-ensemble must surface as an exception at the
  // run_partitioned call — not deadlock the barrier, not get swallowed —
  // and every *other* chunk must still have been attempted (their samples'
  // completion marks are what a crash-resume later relies on).
  TaskPool pool(6);
  std::vector<std::atomic<int>> attempted(3);
  EXPECT_THROW(
      pool.run_partitioned(3, 2,
                           [&](std::size_t k, Executor&) {
                             attempted[k].fetch_add(1);
                             if (k == 1) throw std::runtime_error("chunk died");
                           }),
      std::runtime_error);
  for (std::size_t k = 0; k < attempted.size(); ++k) {
    EXPECT_EQ(attempted[k].load(), 1) << "chunk " << k;
  }
}

TEST(TaskPoolTest, RunPartitionedSurvivesEveryChunkThrowing) {
  // Worst case: all chunks throw concurrently. Exactly one propagates
  // (the first error wins); the pool's workers must all return to the
  // parked state rather than die holding the exception.
  TaskPool pool(4);
  std::atomic<int> throws{0};
  EXPECT_THROW(pool.run_partitioned(4, 1,
                                    [&](std::size_t, Executor&) {
                                      throws.fetch_add(1);
                                      throw std::runtime_error("all died");
                                    }),
               std::runtime_error);
  EXPECT_EQ(throws.load(), 4);
}

TEST(TaskPoolTest, RunPartitionedPropagatesAnInnerDispatchThrow) {
  // The nested shape the engine actually runs: the chunk body dispatches
  // intra-step work on its lent inner executor, and a task *inside that
  // inner dispatch* throws. The error must cross both dispatch layers.
  TaskPool pool(6);
  EXPECT_THROW(
      pool.run_partitioned(3, 2,
                           [&](std::size_t k, Executor& inner) {
                             auto inner_task = [&](std::size_t j) {
                               if (k == 2 && j == 5) {
                                 throw std::runtime_error("inner task died");
                               }
                             };
                             inner.run(8, inner_task);
                           }),
      std::runtime_error);
}

TEST(TaskPoolTest, RunPartitionedReusableAfterMultiChunkThrow) {
  // After a throwing fan-out the same pool must serve a clean one — the
  // engine reuses its pool across an experiment, and a failed resume
  // attempt must not poison the retry.
  TaskPool pool(6);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run_partitioned(3, 2,
                                      [&](std::size_t k, Executor&) {
                                        if (k != 0) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
                 std::runtime_error);
    std::vector<std::atomic<int>> visits(3 * 12);
    pool.run_partitioned(3, 2, [&](std::size_t k, Executor& inner) {
      auto inner_task = [&](std::size_t j) {
        visits[k * 12 + j].fetch_add(1);
      };
      inner.run(12, inner_task);
    });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "round " << round << " item " << i;
    }
  }
}

TEST(ChunkRangeTest, PartitionsExactlyAndMatchesParallelFor) {
  // chunk_range is the one definition of the equal partition; chunks must
  // tile [0, count) exactly for awkward counts.
  for (const std::size_t count : {1u, 7u, 96u, 103u}) {
    for (const std::size_t chunks : {1u, 2u, 5u, 7u}) {
      if (chunks > count) continue;
      std::size_t expected_begin = 0;
      for (std::size_t k = 0; k < chunks; ++k) {
        const sops::support::ChunkRange range =
            sops::support::chunk_range(k, count, chunks);
        EXPECT_EQ(range.begin, expected_begin)
            << "count " << count << " chunks " << chunks << " k " << k;
        EXPECT_GE(range.end, range.begin);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(TaskPoolTest, LendClampsToTheWorkerRange) {
  TaskPool pool(3);  // workers 0, 1
  EXPECT_EQ(pool.lend(0, 2).width(), 3u);
  EXPECT_EQ(pool.lend(1, 5).width(), 2u);   // clamped to worker 1 only
  EXPECT_EQ(pool.lend(7, 2).width(), 1u);   // out of range → caller-only
  EXPECT_EQ(pool.lend(0, 0).width(), 1u);   // explicit caller-only view
}

TEST(SpawnExecutorTest, CapsLiveWorkersAtWidth) {
  // The historical explicit-partition overload spawned one thread per
  // chunk; the executor must bound distinct runners by its width no matter
  // how many tasks the batch holds.
  SpawnExecutor executor(3);
  const std::size_t count = 64;
  std::vector<std::atomic<int>> visits(count);
  std::mutex ids_mutex;
  std::set<std::thread::id> ids;
  auto task = [&](std::size_t k) {
    visits[k].fetch_add(1);
    const std::lock_guard<std::mutex> lock(ids_mutex);
    ids.insert(std::this_thread::get_id());
  };
  executor.run(count, task);
  for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(visits[k].load(), 1) << k;
  EXPECT_LE(ids.size(), 3u);
}

TEST(SpawnExecutorTest, MatchesPooledResultsBitwise) {
  // Same partition arithmetic + disjoint chunk outputs → the executor
  // choice can never change bits. Fill a buffer through both and compare.
  const std::size_t count = 1000;
  auto fill = [&](Executor& executor) {
    std::vector<double> out(count, 0.0);
    sops::support::parallel_for(executor, 0, count, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.75 + 0.5;
    });
    return out;
  };
  SpawnExecutor spawn(4);
  TaskPool pool(4);
  SerialExecutor serial;
  const std::vector<double> spawn_out = fill(spawn);
  const std::vector<double> pool_out = fill(pool.executor());
  const std::vector<double> serial_out = fill(serial);
  EXPECT_EQ(spawn_out, serial_out);
  EXPECT_EQ(pool_out, serial_out);
}

TEST(ParallelForExecutor, ExplicitPartitionCapsWorkersAtExecutorWidth) {
  // More shards than workers: all chunks processed, ≤ width runners.
  const std::size_t n = 96;
  std::vector<std::uint32_t> bounds;
  for (std::uint32_t b = 0; b <= n; b += 4) bounds.push_back(b);  // 24 chunks
  TaskPool pool(2);
  std::vector<std::atomic<int>> visits(n);
  std::mutex ids_mutex;
  std::set<std::thread::id> ids;
  sops::support::parallel_for_chunked(
      pool.executor(), std::span<const std::uint32_t>(bounds),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
        const std::lock_guard<std::mutex> lock(ids_mutex);
        ids.insert(std::this_thread::get_id());
      });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
  EXPECT_LE(ids.size(), 2u);
}

TEST(PoolSliceTest, DefaultSliceIsCallerOnlyAndInline) {
  sops::support::PoolSlice slice;
  EXPECT_EQ(slice.width(), 1u);
  EXPECT_EQ(slice.worker_count(), 0u);
  std::vector<std::size_t> order;
  std::thread::id runner;
  auto task = [&](std::size_t k) {
    order.push_back(k);
    runner = std::this_thread::get_id();
  };
  slice.executor().run(4, task);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(PoolSliceTest, SliceOfClampsAndSliceAllCoversThePool) {
  TaskPool pool(5);  // workers 0..3
  EXPECT_EQ(sops::support::slice_all(pool).width(), 5u);
  EXPECT_EQ(sops::support::slice_of(pool, 1, 2).width(), 3u);
  EXPECT_EQ(sops::support::slice_of(pool, 3, 9).width(), 2u);  // clamped
  EXPECT_EQ(sops::support::slice_of(pool, 9, 2).width(), 1u);  // out of range
}

TEST(PoolSliceTest, LendIsSliceRelativeAndCannotEscapeTheSlice) {
  // A job must not be able to reach a sibling's workers by arithmetic slip:
  // lend() indexes relative to the slice and clamps to its extent.
  TaskPool pool(7);  // workers 0..5
  const sops::support::PoolSlice slice = sops::support::slice_of(pool, 2, 3);
  EXPECT_EQ(slice.first_worker(), 2u);
  EXPECT_EQ(slice.width(), 4u);
  EXPECT_EQ(slice.lend(0, 3).width(), 4u);
  EXPECT_EQ(slice.lend(1, 99).width(), 3u);  // clamped to workers 3..4
  EXPECT_EQ(slice.lend(5, 1).width(), 1u);   // past the slice → caller-only
}

TEST(PoolSliceTest, DisjointSlicesDispatchConcurrentlyFromTwoDrivers) {
  // The machine-wide sharing pattern: two driver threads, each owning a
  // disjoint slice of one pool, dispatch simultaneously. Both must make
  // progress without borrowing the other's workers — the pool serves the
  // two fan-outs as independently as two pools would.
  TaskPool pool(5);  // workers 0..3: slice A = [0,2), slice B = [2,4)
  const sops::support::PoolSlice slice_a = sops::support::slice_of(pool, 0, 2);
  const sops::support::PoolSlice slice_b = sops::support::slice_of(pool, 2, 2);
  constexpr std::size_t kItems = 64;
  constexpr int kRounds = 200;
  std::vector<std::atomic<int>> visits_a(kItems);
  std::vector<std::atomic<int>> visits_b(kItems);
  auto drive = [&](const sops::support::PoolSlice& slice,
                   std::vector<std::atomic<int>>& visits) {
    auto task = [&](std::size_t k) { visits[k].fetch_add(1); };
    for (int round = 0; round < kRounds; ++round) {
      PoolExecutor executor = slice.executor();
      executor.run(kItems, task);
    }
  };
  std::thread driver_b([&] { drive(slice_b, visits_b); });
  drive(slice_a, visits_a);
  driver_b.join();
  for (std::size_t k = 0; k < kItems; ++k) {
    EXPECT_EQ(visits_a[k].load(), kRounds) << k;
    EXPECT_EQ(visits_b[k].load(), kRounds) << k;
  }
}

TEST(PoolSliceTest, RunPartitionedStaysInsideTheSlice) {
  // outer × inner on a slice: 2 outer chunks × inner width 2 needs a slice
  // of width 4. Run it on a slice carved out of a wider pool, concurrently
  // with a sibling doing the same on the remaining workers.
  TaskPool pool(9);  // workers 0..7: two width-4 slices
  const sops::support::PoolSlice slice_a = sops::support::slice_of(pool, 0, 4);
  const sops::support::PoolSlice slice_b = sops::support::slice_of(pool, 4, 4);
  auto drive = [](const sops::support::PoolSlice& slice,
                  std::vector<std::atomic<int>>& visits) {
    slice.run_partitioned(2, 2, [&](std::size_t k, Executor& inner) {
      EXPECT_EQ(inner.width(), 2u);
      auto inner_task = [&](std::size_t j) { visits[k * 16 + j].fetch_add(1); };
      for (int repeat = 0; repeat < 25; ++repeat) inner.run(16, inner_task);
    });
  };
  std::vector<std::atomic<int>> visits_a(32);
  std::vector<std::atomic<int>> visits_b(32);
  std::thread driver_b([&] { drive(slice_b, visits_b); });
  drive(slice_a, visits_a);
  driver_b.join();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(visits_a[i].load(), 25) << i;
    EXPECT_EQ(visits_b[i].load(), 25) << i;
  }
}

TEST(CancelTokenTest, CheckThrowsOnceRequestedAndToleratesNull) {
  sops::support::CancelToken token;
  EXPECT_FALSE(token.requested());
  sops::support::CancelToken::check(nullptr, "never");  // null = not wired
  sops::support::CancelToken::check(&token, "not yet");
  token.request();
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
  EXPECT_THROW(sops::support::CancelToken::check(&token, "stop"),
               sops::CancelledError);
  // CancelledError must remain catchable as the generic error type, so
  // existing cleanup handlers see it.
  EXPECT_THROW(sops::support::CancelToken::check(&token, "stop"), sops::Error);
}

TEST(CancelTokenTest, ChildReportsParentRaise) {
  // The job layer's shape: one root (shutdown) token, one child per job.
  sops::support::CancelToken root;
  sops::support::CancelToken job_a(&root);
  sops::support::CancelToken job_b(&root);
  job_a.request();  // cancel one job
  EXPECT_TRUE(job_a.requested());
  EXPECT_FALSE(job_b.requested());
  EXPECT_FALSE(root.requested());
  root.request();  // shutdown cancels everything
  EXPECT_TRUE(job_b.requested());
}

TEST(CancelTokenTest, RequestFromAnotherThreadIsSeenByPollers) {
  sops::support::CancelToken token;
  std::atomic<bool> poller_started{false};
  std::atomic<int> polls{0};
  std::thread poller([&] {
    poller_started.store(true);
    while (!token.requested()) {
      polls.fetch_add(1);
      std::this_thread::yield();
    }
  });
  while (!poller_started.load()) std::this_thread::yield();
  token.request();
  poller.join();  // terminates only if the raise became visible
  EXPECT_TRUE(token.requested());
}

TEST(ParallelForExecutor, PoolAndLegacyChunkingAgree) {
  // The Executor& and thread-count forms must produce the identical
  // contiguous partition: record chunk boundaries through both.
  const std::size_t count = 103;
  const std::size_t width = 4;
  auto partition_of = [&](auto dispatch) {
    std::mutex chunks_mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    dispatch([&](std::size_t begin, std::size_t end) {
      const std::lock_guard<std::mutex> lock(chunks_mutex);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  TaskPool pool(width);
  const auto pooled = partition_of([&](auto body) {
    sops::support::parallel_for_chunked(pool.executor(), 10, 10 + count, body);
  });
  const auto legacy = partition_of([&](auto body) {
    sops::support::parallel_for_chunked(10, 10 + count, body, width);
  });
  EXPECT_EQ(pooled, legacy);
  ASSERT_EQ(pooled.size(), width);
  EXPECT_EQ(pooled.front().first, 10u);
  EXPECT_EQ(pooled.back().second, 10u + count);
}

}  // namespace
