// k-d tree tests: exact agreement with the brute-force oracle across
// dimensions, point counts, and query types.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/kdtree.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::BruteForceSearcher;
using sops::geom::KdTree;
using sops::geom::Neighbor;

std::vector<double> random_points(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<double> data(count * dim);
  for (double& v : data) v = sops::rng::uniform(engine, -10.0, 10.0);
  return data;
}

struct TreeCase {
  std::size_t count;
  std::size_t dim;
};

class KdTreeVsBruteForce : public ::testing::TestWithParam<TreeCase> {};

TEST_P(KdTreeVsBruteForce, NearestMatchesOracle) {
  const auto [count, dim] = GetParam();
  const auto data = random_points(count, dim, 17);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);

  const auto queries = random_points(50, dim, 18);
  for (std::size_t q = 0; q < 50; ++q) {
    const std::span<const double> query{queries.data() + q * dim, dim};
    const Neighbor a = tree.nearest(query);
    const Neighbor b = oracle.nearest(query);
    EXPECT_DOUBLE_EQ(a.dist_sq, b.dist_sq);
  }
}

TEST_P(KdTreeVsBruteForce, KNearestMatchesOracle) {
  const auto [count, dim] = GetParam();
  const auto data = random_points(count, dim, 23);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);

  const auto queries = random_points(20, dim, 24);
  for (const std::size_t k : {1u, 3u, 7u}) {
    for (std::size_t q = 0; q < 20; ++q) {
      const std::span<const double> query{queries.data() + q * dim, dim};
      const auto a = tree.k_nearest(query, k);
      const auto b = oracle.k_nearest(query, k);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].dist_sq, b[i].dist_sq) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(KdTreeVsBruteForce, CountWithinMatchesOracle) {
  const auto [count, dim] = GetParam();
  const auto data = random_points(count, dim, 29);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);

  const auto queries = random_points(20, dim, 30);
  for (const double radius : {0.5, 2.0, 8.0, 40.0}) {
    for (std::size_t q = 0; q < 20; ++q) {
      const std::span<const double> query{queries.data() + q * dim, dim};
      EXPECT_EQ(tree.count_within(query, radius),
                oracle.count_within(query, radius))
          << "radius=" << radius;
    }
  }
}

TEST_P(KdTreeVsBruteForce, SkipIndexLeaveOneOut) {
  const auto [count, dim] = GetParam();
  const auto data = random_points(count, dim, 31);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);

  for (std::size_t s = 0; s < std::min<std::size_t>(count, 25); ++s) {
    const std::span<const double> query{data.data() + s * dim, dim};
    const auto a = tree.k_nearest(query, 3, s);
    const auto b = oracle.k_nearest(query, 3, s);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NE(a[i].index, s);  // never returns the skipped point
      EXPECT_DOUBLE_EQ(a[i].dist_sq, b[i].dist_sq);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeVsBruteForce,
    ::testing::Values(TreeCase{1, 2}, TreeCase{5, 2}, TreeCase{16, 2},
                      TreeCase{17, 2}, TreeCase{200, 2}, TreeCase{200, 3},
                      TreeCase{100, 5}, TreeCase{64, 8}, TreeCase{500, 1}));

TEST(KdTree, SelfQueryFindsSelfFirst) {
  const auto data = random_points(100, 3, 5);
  const KdTree tree(data, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    const std::span<const double> query{data.data() + i * 3, 3};
    EXPECT_DOUBLE_EQ(tree.nearest(query).dist_sq, 0.0);
  }
}

TEST(KdTree, KNearestSortedAscending) {
  const auto data = random_points(300, 2, 41);
  const KdTree tree(data, 2);
  const double query[2] = {0.0, 0.0};
  const auto result = tree.k_nearest({query, 2}, 10);
  ASSERT_EQ(result.size(), 10u);
  EXPECT_TRUE(std::is_sorted(
      result.begin(), result.end(),
      [](const Neighbor& a, const Neighbor& b) { return a.dist_sq < b.dist_sq; }));
}

TEST(KdTree, KLargerThanTreeReturnsAll) {
  const auto data = random_points(7, 2, 43);
  const KdTree tree(data, 2);
  const double query[2] = {1.0, 1.0};
  EXPECT_EQ(tree.k_nearest({query, 2}, 100).size(), 7u);
}

TEST(KdTree, DuplicatePointsAllFound) {
  // All points identical: degenerate zero-spread split path.
  std::vector<double> data(50 * 2, 3.25);
  const KdTree tree(data, 2);
  const double query[2] = {3.25, 3.25};
  EXPECT_EQ(tree.k_nearest({query, 2}, 50).size(), 50u);
  EXPECT_EQ(tree.count_within({query, 2}, 0.001), 50u);
}

TEST(KdTree, CountWithinIsStrict) {
  const std::vector<double> data{0.0, 0.0, 1.0, 0.0};
  const KdTree tree(data, 2);
  const double query[2] = {0.0, 0.0};
  // Point at distance exactly 1.0 must not be counted for radius 1.0.
  EXPECT_EQ(tree.count_within({query, 2}, 1.0), 1u);
  EXPECT_EQ(tree.count_within({query, 2}, 1.0 + 1e-9), 2u);
}

TEST(KdTree, ZeroRadiusCountsNothing) {
  const auto data = random_points(20, 2, 47);
  const KdTree tree(data, 2);
  const double query[2] = {0.0, 0.0};
  EXPECT_EQ(tree.count_within({query, 2}, 0.0), 0u);
}

TEST(KdTree, EmptyTree) {
  const std::vector<double> data;
  const KdTree tree(data, 2);
  EXPECT_EQ(tree.size(), 0u);
  const double query[2] = {0.0, 0.0};
  EXPECT_TRUE(tree.k_nearest({query, 2}, 3).empty());
  EXPECT_EQ(tree.count_within({query, 2}, 1.0), 0u);
  EXPECT_THROW((void)tree.nearest({query, 2}), sops::PreconditionError);
}

TEST(KdTree, InvalidConstructionThrows) {
  const std::vector<double> data{1.0, 2.0, 3.0};
  EXPECT_THROW(KdTree(data, 2), sops::PreconditionError);  // 3 % 2 != 0
  EXPECT_THROW(KdTree(data, 0), sops::PreconditionError);
}

// The allocation-free nearest() must replicate k_nearest(query, 1) exactly —
// same winner index on ties, same bits — on every shape, including tie-heavy
// duplicate clouds.
TEST_P(KdTreeVsBruteForce, NearestIsExactlyKNearestOne) {
  const auto [count, dim] = GetParam();
  auto data = random_points(count, dim, 53);
  // Duplicate a few points to force exact ties.
  for (std::size_t i = 0; i + 1 < count && i < 4; ++i) {
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(i * dim), dim,
                data.begin() + static_cast<std::ptrdiff_t>((count - 1 - i) * dim));
  }
  const KdTree tree(data, dim);
  const auto queries = random_points(30, dim, 54);
  for (std::size_t q = 0; q < 30; ++q) {
    const std::span<const double> query{queries.data() + q * dim, dim};
    const Neighbor fast = tree.nearest(query);
    const Neighbor reference = tree.k_nearest(query, 1).front();
    EXPECT_EQ(fast.index, reference.index);
    EXPECT_EQ(fast.dist_sq, reference.dist_sq);
  }
  // Self-queries on the duplicated points are all-zero ties.
  for (std::size_t i = 0; i < std::min<std::size_t>(count, 8); ++i) {
    const std::span<const double> query{data.data() + i * dim, dim};
    const Neighbor fast = tree.nearest(query);
    const Neighbor reference = tree.k_nearest(query, 1).front();
    EXPECT_EQ(fast.index, reference.index);
    EXPECT_EQ(fast.dist_sq, reference.dist_sq);
  }
}

std::vector<sops::geom::DimBlock> split_blocks(std::size_t dim) {
  if (dim == 1) return {{0, 1}};
  const std::size_t first = dim / 2;
  return {{0, first}, {first, dim - first}};
}

TEST_P(KdTreeVsBruteForce, KthBlockDistSqMatchesOracle) {
  const auto [count, dim] = GetParam();
  if (count < 4) return;  // need k-th neighbors to exist
  const auto data = random_points(count, dim, 57);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);
  const auto blocks = split_blocks(dim);

  for (const std::size_t k : {1u, 4u}) {
    if (count < k + 1) continue;
    for (std::size_t s = 0; s < std::min<std::size_t>(count, 15); ++s) {
      const std::span<const double> query{data.data() + s * dim, dim};
      EXPECT_EQ(tree.kth_block_dist_sq(query, k, blocks, s),
                oracle.kth_block_dist_sq(query, k, blocks, s))
          << "k=" << k << " s=" << s;
    }
  }
}

TEST_P(KdTreeVsBruteForce, CountWithinBlocksMatchesOracleAndBatch) {
  const auto [count, dim] = GetParam();
  const auto data = random_points(count, dim, 61);
  const KdTree tree(data, dim);
  const BruteForceSearcher oracle(data, dim);
  const auto blocks = split_blocks(dim);

  const std::size_t batch = std::min<std::size_t>(count, 4);
  if (batch == 0) return;
  std::vector<double> radii;
  std::vector<std::size_t> skips;
  std::vector<std::size_t> counts(batch, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    radii.push_back(b == 0 ? 0.0 : 1.5 * static_cast<double>(b));  // incl. ε=0
    skips.push_back(b);
  }
  // Batched query over rows [0, batch): one descent, per-query counts.
  tree.count_within_blocks({data.data(), batch * dim}, radii, blocks, skips,
                           counts);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const double> query{data.data() + b * dim, dim};
    EXPECT_EQ(counts[b], tree.count_within_blocks(query, radii[b], blocks, b))
        << "b=" << b;
    EXPECT_EQ(counts[b], oracle.count_within_blocks(query, radii[b], blocks, b))
        << "b=" << b;
  }
}

TEST(KdTree, BlockedQueriesOnDuplicateCloud) {
  // All points identical: every pairwise blocked distance is exactly 0.
  std::vector<double> data(40 * 4, 1.5);
  const KdTree tree(data, 4);
  const BruteForceSearcher oracle(data, 4);
  const std::vector<sops::geom::DimBlock> blocks = {{0, 2}, {2, 2}};
  const std::span<const double> query{data.data(), 4};
  EXPECT_EQ(tree.kth_block_dist_sq(query, 4, blocks, 0),
            oracle.kth_block_dist_sq(query, 4, blocks, 0));
  EXPECT_EQ(tree.kth_block_dist_sq(query, 4, blocks, 0), 0.0);
  // Strict < never counts coincident points at ε = 0.
  EXPECT_EQ(tree.count_within_blocks(query, 0.0, blocks, 0), 0u);
  EXPECT_EQ(tree.count_within_blocks(query, 0.5, blocks, 0), 39u);
}

TEST(KdTree, WrongQueryDimensionThrows) {
  const auto data = random_points(10, 3, 51);
  const KdTree tree(data, 3);
  const double query[2] = {0.0, 0.0};
  EXPECT_THROW((void)tree.k_nearest({query, 2}, 1), sops::PreconditionError);
}

}  // namespace
