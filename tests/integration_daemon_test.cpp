// End-to-end daemon smoke test: spawn the real `sopsd` binary, talk the
// real wire protocol, and hold it to the layer's core promise — a job
// streamed out of the daemon is byte-identical to the same config run in
// batch, and a cancelled neighbor job doesn't perturb it.
//
// The `integration_` prefix keeps this out of the CI TSan regex: the test
// forks+execs a child process, which TSan interceptors do not survive.
// test_core_job and test_io_frame_protocol cover the in-process pieces
// under TSan; this test covers the process seam.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/job_manager.hpp"
#include "core/config_builder.hpp"
#include "io/config.hpp"
#include "io/csv.hpp"
#include "io/frame_protocol.hpp"
#include "support/error.hpp"

namespace {

using sops::io::Frame;
using sops::io::FrameType;

// Small enough to finish in seconds on one core; big enough that several
// sample frames actually stream.
constexpr const char kSmallConfig[] =
    "preset = fig4\n"
    "steps = 20\n"
    "stride = 10\n"
    "samples = 6\n"
    "seed = 99\n";

// Long enough that a cancel lands mid-run even on a fast machine.
constexpr const char kLongConfig[] =
    "preset = fig4\n"
    "steps = 200000\n"
    "stride = 1000\n"
    "samples = 8\n"
    "seed = 7\n";

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// One request/reply exchange on a fresh connection (the protocol's shape).
Frame exchange(const std::string& socket_path, FrameType type,
               const std::string& payload) {
  const int fd = sops::io::connect_unix(socket_path);
  sops::io::write_frame(fd, type, payload);
  const auto reply = sops::io::read_frame(fd);
  ::close(fd);
  if (!reply.has_value()) {
    throw sops::Error("daemon closed the connection without replying");
  }
  return *reply;
}

pid_t spawn_daemon(const std::string& socket_path,
                   const std::string& spill_dir) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec the daemon built next to this test (ctest runs from the
    // build root). _exit on failure — never return into gtest.
    ::execl("./sopsd", "sopsd", "--socket", socket_path.c_str(), "--slots",
            "2", "--spill-dir", spill_dir.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

bool wait_for_socket(const std::string& socket_path, pid_t daemon) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(daemon, &status, WNOHANG) != 0) return false;  // died
    try {
      const int fd = sops::io::connect_unix(socket_path);
      ::close(fd);
      return true;
    } catch (const sops::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return false;
}

std::uint64_t parse_submitted_id(const Frame& reply) {
  EXPECT_EQ(reply.type, FrameType::kSubmitted) << reply.payload;
  return std::stoull(reply.payload);
}

TEST(IntegrationDaemon, StreamedJobMatchesBatchWhileNeighborIsCancelled) {
  const std::string socket_path = temp_path("sopsd_itest.sock");
  const std::string spill_dir = temp_path("sopsd_itest_spill");
  std::filesystem::create_directories(spill_dir);
  std::filesystem::remove(socket_path);

  // Fork while this process is still single-threaded.
  const pid_t daemon = spawn_daemon(socket_path, spill_dir);
  ASSERT_GT(daemon, 0);
  if (!wait_for_socket(socket_path, daemon)) {
    ::kill(daemon, SIGKILL);
    int status = 0;
    ::waitpid(daemon, &status, 0);
    FAIL() << "sopsd did not come up (is ./sopsd next to the test cwd?)";
  }

  // Submit the long job first so it occupies a slot, then the small one.
  const std::uint64_t long_id = parse_submitted_id(
      exchange(socket_path, FrameType::kSubmit, kLongConfig));
  const std::uint64_t small_id = parse_submitted_id(
      exchange(socket_path, FrameType::kSubmit, kSmallConfig));
  EXPECT_NE(long_id, small_id);

  // Cancel the long job mid-run.
  const Frame cancel_reply = exchange(socket_path, FrameType::kCancel,
                                      std::to_string(long_id));
  EXPECT_EQ(cancel_reply.type, FrameType::kStatusReport) << cancel_reply.payload;

  // Watch the small job to completion, collecting the streamed bytes.
  std::map<std::size_t, std::string> sample_csv;  // sample index → bytes
  std::string curve_csv;
  std::string final_status;
  std::size_t events_seen = 0;
  {
    const int fd = sops::io::connect_unix(socket_path);
    sops::io::write_frame(fd, FrameType::kWatch, std::to_string(small_id));
    for (;;) {
      const auto frame = sops::io::read_frame(fd);
      ASSERT_TRUE(frame.has_value()) << "watch stream ended before job_done";
      if (frame->type == FrameType::kJobEvent) {
        ++events_seen;
      } else if (frame->type == FrameType::kSampleCsv) {
        // Payload: "job=N sample=K done=D total=T\n" + CSV bytes.
        const std::size_t eol = frame->payload.find('\n');
        ASSERT_NE(eol, std::string::npos);
        const std::string meta = frame->payload.substr(0, eol);
        const std::size_t pos = meta.find("sample=");
        ASSERT_NE(pos, std::string::npos) << meta;
        const std::size_t sample = std::stoul(meta.substr(pos + 7));
        EXPECT_EQ(sample_csv.count(sample), 0u)
            << "sample " << sample << " streamed twice";
        sample_csv[sample] = frame->payload.substr(eol + 1);
      } else if (frame->type == FrameType::kCurveCsv) {
        EXPECT_TRUE(curve_csv.empty());
        curve_csv = frame->payload;
      } else if (frame->type == FrameType::kJobDone) {
        final_status = frame->payload;
        break;
      } else {
        FAIL() << "unexpected frame type "
               << sops::io::to_string(frame->type) << ": " << frame->payload;
      }
    }
    // job_done terminates the stream; the server closes the connection.
    EXPECT_FALSE(sops::io::read_frame(fd).has_value());
    ::close(fd);
  }
  EXPECT_NE(final_status.find("\"state\":\"done\""), std::string::npos)
      << final_status;
  EXPECT_GT(events_seen, 0u);
  EXPECT_FALSE(curve_csv.empty()) << "curve frame must precede job_done";

  // The cancelled neighbor must report a terminal cancelled state.
  const auto cancel_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string long_status;
  for (;;) {
    long_status = exchange(socket_path, FrameType::kStatus,
                           std::to_string(long_id))
                      .payload;
    if (long_status.find("\"state\":\"cancelled\"") != std::string::npos) break;
    ASSERT_LT(std::chrono::steady_clock::now(), cancel_deadline)
        << "long job never reached cancelled: " << long_status;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // --- byte parity: the streamed frames vs an in-process batch run of the
  // identical config text, serialized through the same functions.
  const sops::core::ConfiguredExperiment configured =
      sops::core::build_experiment(sops::io::Config::parse(kSmallConfig));
  const sops::core::EnsembleSeries reference =
      sops::core::run_experiment(configured.experiment);
  ASSERT_EQ(sample_csv.size(), reference.sample_count());
  for (std::size_t s = 0; s < reference.sample_count(); ++s) {
    ASSERT_TRUE(sample_csv.count(s)) << "sample " << s << " never streamed";
    EXPECT_EQ(sample_csv[s], sops::core::sample_recording_csv(reference, s))
        << "streamed sample " << s << " differs from batch bytes";
  }
  const sops::core::AnalysisResult analysis =
      sops::core::analyze_self_organization(reference, configured.analysis);
  std::ostringstream batch_curve;
  sops::io::write_csv(batch_curve,
                      sops::core::analysis_csv_table(
                          analysis, configured.analysis.compute_entropies));
  EXPECT_EQ(curve_csv, batch_curve.str())
      << "streamed curve differs from batch bytes";

  // --- clean shutdown: SIGTERM → drain → exit 0, socket unlinked.
  ASSERT_EQ(::kill(daemon, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_FALSE(std::filesystem::exists(socket_path))
      << "daemon must unlink its socket on exit";

  // No scratch spill files may survive the cancelled job.
  for (const auto& entry : std::filesystem::directory_iterator(spill_dir)) {
    EXPECT_NE(entry.path().extension(), ".spill")
        << "leaked spill file: " << entry.path();
  }
  std::filesystem::remove_all(spill_dir);
}

}  // namespace

#else  // !(__unix__ || __APPLE__)

TEST(IntegrationDaemon, SkippedOnThisPlatform) {
  GTEST_SKIP() << "daemon integration test requires POSIX fork/exec";
}

#endif
