// RNG tests: determinism, stream independence, and sampler statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/engine.hpp"
#include "rng/samplers.hpp"

namespace {

using sops::rng::make_stream;
using sops::rng::SplitMix64;
using sops::rng::Xoshiro256;

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Xoshiro, JumpChangesState) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  bool any_different = false;
  for (int i = 0; i < 10; ++i) any_different |= (a() != b());
  EXPECT_TRUE(any_different);
}

TEST(Streams, SameSeedStreamReproduces) {
  Xoshiro256 a = make_stream(123, 4);
  Xoshiro256 b = make_stream(123, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Streams, DistinctStreamsAreDecorrelated) {
  // Crude independence check: fraction of matching top bits ≈ 1/2.
  Xoshiro256 a = make_stream(123, 0);
  Xoshiro256 b = make_stream(123, 1);
  int matches = 0;
  const int trials = 4096;
  for (int i = 0; i < trials; ++i) matches += ((a() >> 63) == (b() >> 63));
  EXPECT_NEAR(static_cast<double>(matches) / trials, 0.5, 0.05);
}

TEST(Streams, DistinctSeedsDiffer) {
  Xoshiro256 a = make_stream(1, 0);
  Xoshiro256 b = make_stream(2, 0);
  EXPECT_NE(a(), b());
}

TEST(Uniform01, InRangeAndCoversIt) {
  Xoshiro256 engine(3);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = sops::rng::uniform01(engine);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Uniform01, MeanAndVariance) {
  Xoshiro256 engine(5);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = sops::rng::uniform01(engine);
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Uniform, RespectsBounds) {
  Xoshiro256 engine(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = sops::rng::uniform(engine, -3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(UniformIndex, CoversAllValuesUniformly) {
  Xoshiro256 engine(11);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = sops::rng::uniform_index(engine, n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, 500.0);
  }
}

TEST(StandardNormal, MomentsMatch) {
  Xoshiro256 engine(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_cube = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sops::rng::standard_normal(engine);
    sum += x;
    sum_sq += x * x;
    sum_cube += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_cube / n, 0.0, 0.05);  // symmetry
}

TEST(Normal, ScalesAndShifts) {
  Xoshiro256 engine(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sops::rng::normal(engine, 3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(sum_sq / n - mean * mean, 4.0, 0.1);
}

TEST(NormalVec2, ComponentsIndependent) {
  Xoshiro256 engine(19);
  const int n = 100000;
  double sum_xy = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = sops::rng::normal_vec2(engine, 1.0);
    sum_xy += v.x * v.y;
  }
  EXPECT_NEAR(sum_xy / n, 0.0, 0.02);  // zero covariance
}

TEST(UniformDisc, WithinRadiusAndAreaUniform) {
  Xoshiro256 engine(23);
  const double radius = 4.0;
  const int n = 50000;
  int inner = 0;  // fraction within radius/√2 should be 1/2 by area
  for (int i = 0; i < n; ++i) {
    const auto p = sops::rng::uniform_disc(engine, radius);
    ASSERT_LE(norm(p), radius);
    if (norm(p) <= radius / std::sqrt(2.0)) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.5, 0.01);
}

TEST(UniformDisc, CentroidNearOrigin) {
  Xoshiro256 engine(29);
  sops::geom::Vec2 sum{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += sops::rng::uniform_disc(engine, 2.0);
  EXPECT_NEAR(sum.x / n, 0.0, 0.02);
  EXPECT_NEAR(sum.y / n, 0.0, 0.02);
}

}  // namespace
