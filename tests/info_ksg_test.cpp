// KSG multi-information estimator tests: exact zero/positive behavior on
// synthetic ensembles with known mutual information.
#include <gtest/gtest.h>

#include <cmath>

#include "info/entropy.hpp"
#include "info/ksg.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::info::Block;
using sops::info::gaussian_mi_bits;
using sops::info::KsgConvention;
using sops::info::KsgOptions;
using sops::info::multi_information_ksg;
using sops::info::SampleMatrix;
using sops::rng::Xoshiro256;

// m samples of n i.i.d. standard normal scalars.
SampleMatrix independent_gaussians(std::size_t m, std::size_t n,
                                   std::uint64_t seed) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, n);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      samples(s, d) = sops::rng::standard_normal(engine);
    }
  }
  return samples;
}

// Bivariate normal with correlation rho, as two 1-D blocks.
SampleMatrix correlated_pair(std::size_t m, double rho, std::uint64_t seed) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, 2);
  for (std::size_t s = 0; s < m; ++s) {
    const double x = sops::rng::standard_normal(engine);
    const double z = sops::rng::standard_normal(engine);
    samples(s, 0) = x;
    samples(s, 1) = rho * x + std::sqrt(1.0 - rho * rho) * z;
  }
  return samples;
}

TEST(Ksg, IndependentVariablesGiveNearZero) {
  const SampleMatrix samples = independent_gaussians(600, 4, 11);
  const double mi = multi_information_ksg(samples, 1);
  EXPECT_NEAR(mi, 0.0, 0.15);
}

class KsgGaussianMi : public ::testing::TestWithParam<double> {};

TEST_P(KsgGaussianMi, MatchesClosedFormWithinTolerance) {
  const double rho = GetParam();
  const SampleMatrix samples = correlated_pair(1500, rho, 31);
  KsgOptions options;
  options.k = 4;
  const double estimated = multi_information_ksg(samples, 1, options);
  const double expected = gaussian_mi_bits(rho);
  EXPECT_NEAR(estimated, expected, 0.12) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Correlations, KsgGaussianMi,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9));

TEST(Ksg, MonotoneInCorrelation) {
  double previous = -1.0;
  for (const double rho : {0.0, 0.4, 0.7, 0.95}) {
    const SampleMatrix samples = correlated_pair(800, rho, 41);
    const double mi = multi_information_ksg(samples, 1);
    EXPECT_GT(mi, previous - 0.05) << rho;
    previous = mi;
  }
}

TEST(Ksg, MultivariateChainSumsPairwiseInformation) {
  // (X, Y=f(X), Z independent): I(X;Y;Z) = I(X;Y).
  const std::size_t m = 1000;
  Xoshiro256 engine(51);
  SampleMatrix samples(m, 3);
  const double rho = 0.8;
  for (std::size_t s = 0; s < m; ++s) {
    const double x = sops::rng::standard_normal(engine);
    samples(s, 0) = x;
    samples(s, 1) = rho * x + std::sqrt(1 - rho * rho) *
                                  sops::rng::standard_normal(engine);
    samples(s, 2) = sops::rng::standard_normal(engine);
  }
  const double mi3 = multi_information_ksg(samples, 1);
  const double expected = gaussian_mi_bits(rho);
  EXPECT_NEAR(mi3, expected, 0.17);
}

TEST(Ksg, TwoDimensionalBlocks) {
  // Two 2-D blocks where block 2 duplicates block 1 plus small noise:
  // high multi-information; independent blocks: near zero.
  const std::size_t m = 500;
  Xoshiro256 engine(61);
  SampleMatrix dependent(m, 4);
  SampleMatrix independent(m, 4);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < 2; ++d) {
      const double v = sops::rng::standard_normal(engine);
      dependent(s, d) = v;
      dependent(s, d + 2) = v + 0.05 * sops::rng::standard_normal(engine);
      independent(s, d) = sops::rng::standard_normal(engine);
      independent(s, d + 2) = sops::rng::standard_normal(engine);
    }
  }
  const double mi_dependent = multi_information_ksg(dependent, 2);
  const double mi_independent = multi_information_ksg(independent, 2);
  EXPECT_GT(mi_dependent, 2.0);
  EXPECT_NEAR(mi_independent, 0.0, 0.2);
}

TEST(Ksg, InvariantUnderBlockOrder) {
  const SampleMatrix samples = correlated_pair(400, 0.7, 71);
  const std::vector<Block> forward{{0, 1}, {1, 1}};
  const std::vector<Block> reversed{{1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(multi_information_ksg(samples, forward),
                   multi_information_ksg(samples, reversed));
}

TEST(Ksg, InvariantUnderRigidShiftOfABlock) {
  // Adding a constant to one marginal must not change the estimate
  // (the metric uses differences only).
  SampleMatrix samples = correlated_pair(400, 0.5, 81);
  const double base = multi_information_ksg(samples, 1);
  for (std::size_t s = 0; s < samples.count(); ++s) samples(s, 1) += 100.0;
  EXPECT_DOUBLE_EQ(multi_information_ksg(samples, 1), base);
}

TEST(Ksg, ThreadCountDoesNotChangeResult) {
  const SampleMatrix samples = correlated_pair(300, 0.6, 91);
  KsgOptions serial;
  serial.threads = 1;
  KsgOptions parallel;
  parallel.threads = 4;
  EXPECT_DOUBLE_EQ(multi_information_ksg(samples, 1, serial),
                   multi_information_ksg(samples, 1, parallel));
}

TEST(Ksg, ConventionsDifferByBoundedBias) {
  const SampleMatrix samples = correlated_pair(500, 0.6, 101);
  KsgOptions standard;
  standard.convention = KsgConvention::kStandard;
  KsgOptions literal;
  literal.convention = KsgConvention::kPaperLiteral;
  const double a = multi_information_ksg(samples, 1, standard);
  const double b = multi_information_ksg(samples, 1, literal);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, 1.0);  // small systematic offset, same signal
}

TEST(Ksg, SensitivityToKIsMild) {
  // Paper §5.3: "the estimate is not very sensitive for changes of k".
  const SampleMatrix samples = correlated_pair(1000, 0.7, 111);
  KsgOptions k2;
  k2.k = 2;
  KsgOptions k10;
  k10.k = 10;
  const double a = multi_information_ksg(samples, 1, k2);
  const double b = multi_information_ksg(samples, 1, k10);
  EXPECT_NEAR(a, b, 0.1);
}

TEST(Ksg, DuplicatedSamplesDoNotCrash) {
  // Exact ties in the metric (duplicated rows) must yield a finite value.
  SampleMatrix samples(20, 2);
  for (std::size_t s = 0; s < 20; ++s) {
    samples(s, 0) = static_cast<double>(s % 5);
    samples(s, 1) = static_cast<double>(s % 5);
  }
  const double mi = multi_information_ksg(samples, 1);
  EXPECT_TRUE(std::isfinite(mi));
}

TEST(Ksg, PreconditionsEnforced) {
  const SampleMatrix tiny = correlated_pair(4, 0.5, 121);
  KsgOptions options;
  options.k = 4;  // needs >= 5 samples
  EXPECT_THROW((void)multi_information_ksg(tiny, 1, options),
               sops::PreconditionError);

  const SampleMatrix samples = correlated_pair(50, 0.5, 131);
  const std::vector<Block> one_block{{0, 2}};
  EXPECT_THROW((void)multi_information_ksg(samples, one_block),
               sops::PreconditionError);

  const std::vector<Block> overlapping{{0, 2}, {1, 1}};
  EXPECT_THROW((void)multi_information_ksg(samples, overlapping),
               sops::PreconditionError);

  KsgOptions zero_k;
  zero_k.k = 0;
  EXPECT_THROW((void)multi_information_ksg(samples, 1, zero_k),
               sops::PreconditionError);
}

}  // namespace
