// Ensemble shape-space reduction tests, including the paper's central
// invariance property (Eqs. 11–14): the measured multi-information must not
// change when samples are hit with arbitrary isometries and same-type
// permutations.
#include <gtest/gtest.h>

#include <numeric>

#include "align/ensemble.hpp"
#include "info/ksg.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::align::align_ensemble;
using sops::align::AlignedEnsemble;
using sops::align::coarse_grain_ensemble;
using sops::align::EnsembleOptions;
using sops::geom::RigidTransform2;
using sops::geom::Vec2;
using sops::sim::TypeId;

// A structured ensemble: each sample is the same two-type "molecule" shape
// with per-sample jitter, random global rotation, translation, and
// within-type shuffling — exactly the nuisance factors alignment removes.
std::vector<std::vector<Vec2>> molecule_ensemble(
    std::size_t m, const std::vector<TypeId>& types, double jitter,
    std::uint64_t seed, bool randomize_pose = true, double scale_spread = 0.0) {
  sops::rng::Xoshiro256 engine(seed);
  // Template shape: type-0 ring of radius 2, type-1 pair inside.
  std::vector<Vec2> base(types.size());
  std::size_t ring = 0;
  std::size_t core = 0;
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i] == 0) {
      const double a = 2.0 * std::numbers::pi * ring++ / 6.0;
      base[i] = {2.0 * std::cos(a), 2.0 * std::sin(a)};
    } else {
      base[i] = {0.5 * static_cast<double>(core++), 0.0};
    }
  }

  std::vector<std::vector<Vec2>> ensemble;
  for (std::size_t s = 0; s < m; ++s) {
    std::vector<Vec2> sample = base;
    // An optional per-sample shared scale factor: a degree of freedom all
    // observers reflect coherently, so the ensemble carries real
    // multi-information (isometry reduction cannot remove a scaling).
    const double scale =
        sops::rng::uniform(engine, 1.0 - scale_spread, 1.0 + scale_spread);
    for (Vec2& p : sample) p = p * scale + sops::rng::normal_vec2(engine, jitter);
    if (randomize_pose) {
      const RigidTransform2 pose{
          sops::rng::uniform(engine, 0.0, 2.0 * std::numbers::pi),
          {sops::rng::uniform(engine, -10.0, 10.0),
           sops::rng::uniform(engine, -10.0, 10.0)}};
      sample = pose.apply(sample);
      // Shuffle within type 0 (indices 0..5 in our layout).
      for (std::size_t i = 6; i > 1; --i) {
        std::swap(sample[i - 1], sample[sops::rng::uniform_index(engine, i)]);
      }
    }
    ensemble.push_back(std::move(sample));
  }
  return ensemble;
}

const std::vector<TypeId> kTypes{0, 0, 0, 0, 0, 0, 1, 1};

TEST(AlignEnsemble, OutputShape) {
  const auto configs = molecule_ensemble(20, kTypes, 0.05, 3);
  const AlignedEnsemble aligned = align_ensemble(configs, kTypes);
  EXPECT_EQ(aligned.sample_count(), 20u);
  EXPECT_EQ(aligned.observer_count(), 8u);
  EXPECT_EQ(aligned.samples.dim(), 16u);
  EXPECT_EQ(aligned.block_types, kTypes);
}

TEST(AlignEnsemble, EveryRowIsCentered) {
  const auto configs = molecule_ensemble(15, kTypes, 0.05, 5);
  const AlignedEnsemble aligned = align_ensemble(configs, kTypes);
  for (std::size_t s = 0; s < aligned.sample_count(); ++s) {
    const auto row = aligned.samples.row(s);
    double cx = 0.0;
    double cy = 0.0;
    for (std::size_t i = 0; i < kTypes.size(); ++i) {
      cx += row[2 * i];
      cy += row[2 * i + 1];
    }
    EXPECT_NEAR(cx, 0.0, 1e-9) << s;
    EXPECT_NEAR(cy, 0.0, 1e-9) << s;
  }
}

TEST(AlignEnsemble, RemovesPoseVariation) {
  // Same jittered shape with random poses: after alignment every sample must
  // be close to the reference (per-particle distance ~ jitter, not ~ pose).
  const auto configs = molecule_ensemble(25, kTypes, 0.02, 7);
  const AlignedEnsemble aligned = align_ensemble(configs, kTypes);
  const auto ref = aligned.samples.row(0);
  for (std::size_t s = 1; s < aligned.sample_count(); ++s) {
    const auto row = aligned.samples.row(s);
    for (std::size_t d = 0; d < aligned.samples.dim(); ++d) {
      EXPECT_NEAR(row[d], ref[d], 0.5) << "sample " << s << " dim " << d;
    }
  }
}

TEST(AlignEnsemble, MultiInformationInvariantUnderNuisanceGroup) {
  // The paper's Eq. (11)–(14): applying f ∈ ISO⁺(2) × S*_n to the samples
  // must leave the measured multi-information (essentially) unchanged.
  const auto clean = molecule_ensemble(60, kTypes, 0.1, 11, false, 0.3);
  auto transformed = clean;
  sops::rng::Xoshiro256 engine(13);
  for (auto& sample : transformed) {
    const RigidTransform2 pose{
        sops::rng::uniform(engine, 0.0, 2.0 * std::numbers::pi),
        {sops::rng::uniform(engine, -30.0, 30.0),
         sops::rng::uniform(engine, -30.0, 30.0)}};
    sample = pose.apply(sample);
    for (std::size_t i = 6; i > 1; --i) {
      std::swap(sample[i - 1], sample[sops::rng::uniform_index(engine, i)]);
    }
  }

  const AlignedEnsemble a = align_ensemble(clean, kTypes);
  const AlignedEnsemble b = align_ensemble(transformed, kTypes);
  const double mi_clean =
      sops::info::multi_information_ksg(a.samples, a.blocks);
  const double mi_transformed =
      sops::info::multi_information_ksg(b.samples, b.blocks);
  EXPECT_NEAR(mi_clean, mi_transformed, 0.8);
  EXPECT_GT(mi_clean, 1.0);  // the structured shape carries information
}

TEST(AlignEnsemble, DisablingRotationsKeepsCentering) {
  const auto configs = molecule_ensemble(10, kTypes, 0.05, 17);
  EnsembleOptions options;
  options.rotations = false;
  const AlignedEnsemble aligned = align_ensemble(configs, kTypes, options);
  const auto row = aligned.samples.row(3);
  double cx = 0.0;
  for (std::size_t i = 0; i < kTypes.size(); ++i) cx += row[2 * i];
  EXPECT_NEAR(cx, 0.0, 1e-9);
}

TEST(AlignEnsemble, ThreadCountDoesNotChangeResult) {
  const auto configs = molecule_ensemble(12, kTypes, 0.05, 19);
  EnsembleOptions serial;
  serial.threads = 1;
  EnsembleOptions parallel;
  parallel.threads = 4;
  const AlignedEnsemble a = align_ensemble(configs, kTypes, serial);
  const AlignedEnsemble b = align_ensemble(configs, kTypes, parallel);
  for (std::size_t s = 0; s < a.sample_count(); ++s) {
    const auto ra = a.samples.row(s);
    const auto rb = b.samples.row(s);
    for (std::size_t d = 0; d < a.samples.dim(); ++d) {
      EXPECT_DOUBLE_EQ(ra[d], rb[d]);
    }
  }
}

TEST(AlignEnsemble, PreconditionsEnforced) {
  EXPECT_THROW(
      (void)align_ensemble(std::vector<std::vector<sops::geom::Vec2>>{}, kTypes),
      sops::PreconditionError);
  const auto configs = molecule_ensemble(5, kTypes, 0.05, 23);
  std::vector<TypeId> short_types{0, 1};
  EXPECT_THROW((void)align_ensemble(configs, short_types),
               sops::PreconditionError);
}

TEST(CoarseGrain, ReducesObserverCount) {
  const auto configs = molecule_ensemble(20, kTypes, 0.05, 29);
  const AlignedEnsemble fine = align_ensemble(configs, kTypes);
  sops::rng::Xoshiro256 engine(31);
  const AlignedEnsemble coarse = coarse_grain_ensemble(fine, 2, engine);
  // Type 0 (6 particles) → 2 clusters; type 1 (2 particles) → 2 clusters.
  EXPECT_EQ(coarse.observer_count(), 4u);
  EXPECT_EQ(coarse.sample_count(), fine.sample_count());
  EXPECT_EQ(coarse.block_types, (std::vector<TypeId>{0, 0, 1, 1}));
}

TEST(CoarseGrain, KLargerThanTypeSizeClampsToMembers) {
  const auto configs = molecule_ensemble(10, kTypes, 0.05, 37);
  const AlignedEnsemble fine = align_ensemble(configs, kTypes);
  sops::rng::Xoshiro256 engine(41);
  const AlignedEnsemble coarse = coarse_grain_ensemble(fine, 10, engine);
  EXPECT_EQ(coarse.observer_count(), 8u);  // 6 + 2
}

TEST(CoarseGrain, MeansLieWithinTypeExtent) {
  const auto configs = molecule_ensemble(15, kTypes, 0.05, 43);
  const AlignedEnsemble fine = align_ensemble(configs, kTypes);
  sops::rng::Xoshiro256 engine(47);
  const AlignedEnsemble coarse = coarse_grain_ensemble(fine, 2, engine);
  // Every coarse observer value must lie inside the bounding box of its
  // type's particles in the same sample (means of subsets).
  for (std::size_t s = 0; s < coarse.sample_count(); ++s) {
    for (std::size_t c = 0; c < coarse.observer_count(); ++c) {
      const TypeId type = coarse.block_types[c];
      double lo_x = 1e18, hi_x = -1e18, lo_y = 1e18, hi_y = -1e18;
      for (std::size_t i = 0; i < kTypes.size(); ++i) {
        if (kTypes[i] != type) continue;
        lo_x = std::min(lo_x, fine.samples(s, 2 * i));
        hi_x = std::max(hi_x, fine.samples(s, 2 * i));
        lo_y = std::min(lo_y, fine.samples(s, 2 * i + 1));
        hi_y = std::max(hi_y, fine.samples(s, 2 * i + 1));
      }
      EXPECT_GE(coarse.samples(s, 2 * c), lo_x - 1e-12);
      EXPECT_LE(coarse.samples(s, 2 * c), hi_x + 1e-12);
      EXPECT_GE(coarse.samples(s, 2 * c + 1), lo_y - 1e-12);
      EXPECT_LE(coarse.samples(s, 2 * c + 1), hi_y + 1e-12);
    }
  }
}

TEST(CoarseGrain, PreconditionsEnforced) {
  const auto configs = molecule_ensemble(5, kTypes, 0.05, 53);
  const AlignedEnsemble fine = align_ensemble(configs, kTypes);
  sops::rng::Xoshiro256 engine(59);
  EXPECT_THROW((void)coarse_grain_ensemble(fine, 0, engine),
               sops::PreconditionError);
}

}  // namespace
