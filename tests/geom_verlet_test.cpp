// VerletListBackend: displacement-gated rebuilds, the never-miss-a-pair
// safety invariant, shard-parallel build thread-invariance (TaskPool), and
// the engine/ensemble plumbing of NeighborMode::kVerletSkin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "geom/verlet_list.hpp"
#include "rng/samplers.hpp"
#include "sim/forces.hpp"
#include "sim/simulation.hpp"
#include "support/executor.hpp"

namespace {

using sops::geom::Vec2;
using sops::geom::VerletListBackend;
using sops::sim::accumulate_drift;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::NeighborMode;
using sops::sim::PairParams;
using sops::sim::PairScalingTable;
using sops::sim::ParticleSystem;

std::vector<Vec2> random_points(std::size_t n, double disc_radius,
                                std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(sops::rng::uniform_disc(engine, disc_radius));
  }
  return points;
}

// Ascending-index reference: every j ≠ i with ‖p_j − p_i‖ < radius.
std::vector<std::uint32_t> brute_neighbors(const std::vector<Vec2>& points,
                                           std::size_t i, double radius) {
  std::vector<std::uint32_t> out;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j == i) continue;
    if (sops::geom::dist_sq(points[i], points[j]) < radius * radius) {
      out.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return out;
}

// The backend's neighbors(i) as a sorted set (its order is the frozen build
// walk, not ascending index).
std::vector<std::uint32_t> sorted_neighbors(VerletListBackend& backend,
                                            std::size_t i) {
  const auto span = backend.neighbors(i);
  std::vector<std::uint32_t> out(span.begin(), span.end());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(VerletList, QuietStepsSkipAndDisplacementPastHalfSkinRebuilds) {
  const double radius = 1.5;
  const double skin = 0.8;
  std::vector<Vec2> points = random_points(60, 5.0, 71);
  VerletListBackend backend(skin);

  backend.rebuild(points, radius);
  EXPECT_EQ(backend.stats().builds, 1u);
  EXPECT_EQ(backend.stats().steps, 1u);

  // Under the threshold: the cached list must be kept...
  points[0] += Vec2{0.39, 0.0};
  backend.rebuild(points, radius);
  EXPECT_EQ(backend.stats().builds, 1u);
  EXPECT_EQ(backend.stats().steps, 2u);
  // ...and still satisfy the exact neighbor contract at the new positions.
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(sorted_neighbors(backend, i), brute_neighbors(points, i, radius))
        << "i=" << i;
  }

  // Crossing skin/2 (total displacement from the *reference* build, not the
  // previous step) must trigger a rebuild.
  points[0] += Vec2{0.02, 0.0};  // total 0.41 > skin/2 = 0.4
  backend.rebuild(points, radius);
  EXPECT_EQ(backend.stats().builds, 2u);
  EXPECT_EQ(backend.stats().steps, 3u);
}

TEST(VerletList, NeverMissesAPairThatEntersTheRadiusBetweenRebuilds) {
  // Two particles just outside the cut-off but inside the skin shell; one
  // drifts toward the other while staying under skin/2. The pair enters
  // r_c without any rebuild — the cached candidates must already hold it.
  const double radius = 1.5;
  const double skin = 0.8;
  std::vector<Vec2> points{{0.0, 0.0}, {1.6, 0.0}, {4.0, 4.0}};
  VerletListBackend backend(skin);
  backend.rebuild(points, radius);
  EXPECT_TRUE(sorted_neighbors(backend, 0).empty());

  points[1].x = 1.25;  // moved 0.35 < skin/2; now inside r_c
  backend.rebuild(points, radius);
  EXPECT_EQ(backend.stats().builds, 1u) << "displacement under skin/2 rebuilt";
  EXPECT_EQ(sorted_neighbors(backend, 0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(sorted_neighbors(backend, 1), (std::vector<std::uint32_t>{0}));
}

TEST(VerletList, FuzzedQuietMotionNeverMissesAPair) {
  // Randomized displacement sequences capped below skin/2: at every step
  // the filtered list must equal the brute-force neighbor set exactly.
  const double radius = 2.0;
  const double skin = 1.0;
  sops::rng::Xoshiro256 engine(0xBEEF);
  std::vector<Vec2> points = random_points(120, 7.0, 19);
  std::vector<Vec2> reference = points;
  VerletListBackend backend(skin);
  backend.rebuild(points, radius);

  for (int step = 0; step < 30; ++step) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Propose a jitter, but keep every particle within skin/2 of the
      // reference so this trajectory never legitimately triggers a rebuild.
      const Vec2 jitter = sops::rng::uniform_disc(engine, 0.12);
      const Vec2 candidate = points[i] + jitter;
      if (sops::geom::dist_sq(candidate, reference[i]) <
          (skin / 2) * (skin / 2)) {
        points[i] = candidate;
      }
    }
    backend.rebuild(points, radius);
    ASSERT_EQ(backend.stats().builds, 1u);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(sorted_neighbors(backend, i),
                brute_neighbors(points, i, radius))
          << "step " << step << " i " << i;
    }
  }
  EXPECT_GT(backend.stats().skip_rate(), 0.9);
}

TEST(VerletList, ShardParallelRebuildIsThreadInvariantOnTheTaskPool) {
  const double radius = 2.0;
  std::vector<Vec2> points = random_points(400, 12.0, 23);

  VerletListBackend serial_backend;
  VerletListBackend pooled_backend;
  sops::support::TaskPool pool(4);

  // Build, quiet refresh, and displacement-triggered rebuild: after each,
  // every cached row must be identical for width 1 and width 4.
  const auto expect_identical_rows = [&] {
    ASSERT_EQ(serial_backend.size(), pooled_backend.size());
    for (std::size_t i = 0; i < serial_backend.size(); ++i) {
      const auto serial_row = serial_backend.candidate_row(i);
      const auto pooled_row = pooled_backend.candidate_row(i);
      ASSERT_EQ(std::vector<std::uint32_t>(serial_row.begin(), serial_row.end()),
                std::vector<std::uint32_t>(pooled_row.begin(), pooled_row.end()))
          << "i=" << i;
    }
  };

  serial_backend.rebuild(points, radius);
  pooled_backend.rebuild(points, radius, pool.executor());
  expect_identical_rows();

  for (Vec2& p : points) p += Vec2{0.05, -0.03};  // quiet: under skin/2
  serial_backend.rebuild(points, radius);
  pooled_backend.rebuild(points, radius, pool.executor());
  EXPECT_EQ(serial_backend.stats().builds, 1u);
  EXPECT_EQ(pooled_backend.stats().builds, 1u);
  expect_identical_rows();

  points[7] += Vec2{2.0, 2.0};  // forced: past skin/2
  serial_backend.rebuild(points, radius);
  pooled_backend.rebuild(points, radius, pool.executor());
  EXPECT_EQ(serial_backend.stats().builds, 2u);
  EXPECT_EQ(pooled_backend.stats().builds, 2u);
  expect_identical_rows();
}

TEST(VerletList, ShardedDriftIsBitwiseEqualToSerialAcrossRebuilds) {
  const double cutoff = 2.5;
  const std::size_t n = 600;
  const InteractionModel model(ForceLawKind::kSpring, 3,
                               PairParams{1.0, 2.0, 1.0, 1.0});
  const PairScalingTable table(model);
  std::vector<sops::sim::TypeId> types;
  for (std::size_t i = 0; i < n; ++i) {
    types.push_back(static_cast<sops::sim::TypeId>(i % 3));
  }
  ParticleSystem serial_system(random_points(n, 18.0, 91), types);
  ParticleSystem pooled_system = serial_system;

  VerletListBackend serial_backend;
  VerletListBackend pooled_backend;
  sops::support::TaskPool pool(4);
  sops::sim::IntegratorParams params;
  sops::rng::Xoshiro256 serial_engine(5);
  sops::rng::Xoshiro256 pooled_engine(5);
  std::vector<Vec2> serial_drift;
  std::vector<Vec2> pooled_drift;

  // Every 4th step repeats the positions (no integrator update), which
  // guarantees the quiet refresh path is exercised and compared; the other
  // steps move freely, so displacement-triggered rebuilds happen too.
  for (int step = 0; step < 20; ++step) {
    accumulate_drift(serial_system, table, cutoff, serial_drift, serial_backend,
                     std::size_t{1});
    accumulate_drift(pooled_system, table, cutoff, pooled_drift, pooled_backend,
                     pool.executor());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(serial_drift[i], pooled_drift[i]) << "step " << step << " i " << i;
    }
    if (step % 4 == 3) continue;
    sops::sim::apply_euler_maruyama_update(serial_system, serial_drift, params,
                                           serial_engine);
    sops::sim::apply_euler_maruyama_update(pooled_system, pooled_drift, params,
                                           pooled_engine);
  }
  EXPECT_EQ(serial_backend.stats().builds, pooled_backend.stats().builds);
  EXPECT_GE(serial_backend.stats().builds, 1u);
  EXPECT_LT(serial_backend.stats().builds, serial_backend.stats().steps);
}

TEST(VerletList, ShardBoundsPartitionParticleIdOrder) {
  std::vector<Vec2> points = random_points(150, 9.0, 37);
  VerletListBackend backend;
  backend.rebuild(points, 2.0);

  for (const std::size_t shards : {1u, 3u, 8u}) {
    const auto bounds = backend.shard_bounds(shards);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), points.size());
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_LE(bounds.size() - 1, std::max<std::size_t>(shards, 1));
  }
  // Identity shard order: shards walk particle ids directly, so the chunked
  // drift kernel streams the CSR arrays sequentially.
  EXPECT_TRUE(backend.shard_order().empty());
}

TEST(VerletList, AdaptiveSkinStaysClampedToItsBounds) {
  // Scripted displacement at two extremes: a near-frozen collective drives
  // the wanted shell toward zero (the skin_min clamp must hold), a
  // fast-marching one drives it far past any sane shell (skin_max). The
  // controller is also rate-limited, so the march toward a clamp takes
  // several trips — every intermediate skin must respect the bounds too.
  const double radius = 1.5;
  std::vector<Vec2> points = random_points(80, 6.0, 131);
  VerletListBackend backend(1.0);
  VerletListBackend::AdaptiveSkin adapt;
  adapt.enabled = true;
  adapt.skin_min = 0.6;
  adapt.skin_max = 1.6;
  adapt.target_interval = 16.0;
  backend.set_adaptive_skin(adapt);
  backend.rebuild(points, radius);

  // Slow regime: one particle creeps just past skin/2 every ~40 steps, so
  // the observed rate asks for a shell thinner than skin_min.
  for (int trip = 0; trip < 6; ++trip) {
    for (int step = 0; step < 40; ++step) {
      points[0] += Vec2{backend.skin() / 2.0 / 39.5, 0.0};
      backend.rebuild(points, radius);
      ASSERT_GE(backend.skin(), adapt.skin_min);
      ASSERT_LE(backend.skin(), adapt.skin_max);
    }
  }
  EXPECT_DOUBLE_EQ(backend.skin(), adapt.skin_min);

  // Fast regime: a particle that blows through skin/2 every step wants a
  // shell ~2·target_interval times its step — far past skin_max.
  for (int trip = 0; trip < 10; ++trip) {
    points[0] += Vec2{0.0, backend.skin()};
    backend.rebuild(points, radius);
    ASSERT_GE(backend.skin(), adapt.skin_min);
    ASSERT_LE(backend.skin(), adapt.skin_max);
  }
  EXPECT_DOUBLE_EQ(backend.skin(), adapt.skin_max);
}

TEST(VerletList, AdaptiveSkinConvergesToTheRebuildIntervalSetpoint) {
  // Constant-velocity schedule: particle 0 moves `v` per step, everyone
  // else is frozen, so a shell of width s rebuilds every ~s/(2v) steps.
  // The controller's fixed point is s* = 2·v·target, i.e. an observed
  // rebuild interval equal to the setpoint.
  const double radius = 1.5;
  const double v = 0.02;
  const double target = 20.0;
  std::vector<Vec2> points = random_points(60, 5.0, 167);
  VerletListBackend backend(2.0);  // start far above the fixed point
  VerletListBackend::AdaptiveSkin adapt;
  adapt.enabled = true;
  adapt.skin_min = 0.1;
  adapt.skin_max = 4.0;
  adapt.target_interval = target;
  backend.set_adaptive_skin(adapt);
  backend.rebuild(points, radius);

  for (int step = 0; step < 400; ++step) {
    points[0] += Vec2{v, 0.0};
    backend.rebuild(points, radius);
  }
  // s* = 2·v·target = 0.8; allow the EMA's smoothing slack.
  EXPECT_NEAR(backend.skin(), 2.0 * v * target, 0.15);

  // Measure the converged interval directly: builds over a trailing window.
  backend.reset_stats();
  for (int step = 0; step < 200; ++step) {
    points[0] += Vec2{v, 0.0};
    backend.rebuild(points, radius);
  }
  const double interval = static_cast<double>(backend.stats().steps) /
                          static_cast<double>(backend.stats().builds);
  EXPECT_GT(interval, 0.7 * target);
  EXPECT_LT(interval, 1.3 * target);
}

TEST(VerletList, PartialRebuildFuzzNeverMissesAPairAndCountsItsWork) {
  // Randomized trajectories with a deliberately split population: most
  // particles jitter within skin/2 (quiet), a handful march steadily
  // (runaways), so steps land in every regime — quiet, partial, and full
  // rebuilds once the cap trips. At every step the backend's neighbors()
  // must equal brute force exactly; the stats must show partial passes
  // actually happened.
  const double radius = 2.0;
  const double skin = 1.0;
  sops::rng::Xoshiro256 engine(0xD1CE);
  std::vector<Vec2> points = random_points(140, 8.0, 53);
  std::vector<Vec2> reference = points;
  VerletListBackend backend(skin);
  backend.set_partial_rebuild(true);
  backend.rebuild(points, radius);

  for (int step = 0; step < 60; ++step) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i < 5) {
        // Runaways: a steady outward march, past skin/2 within a few steps.
        const double angle = 1.3 * static_cast<double>(i);
        points[i] += Vec2{0.2 * std::cos(angle), 0.2 * std::sin(angle)};
        continue;
      }
      const Vec2 jitter = sops::rng::uniform_disc(engine, 0.1);
      const Vec2 candidate = points[i] + jitter;
      if (sops::geom::dist_sq(candidate, reference[i]) <
          (skin / 2) * (skin / 2) * 0.9) {
        points[i] = candidate;
      }
    }
    backend.rebuild(points, radius);
    if (backend.stats().builds > 0) reference = points;  // approximate re-anchor
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(sorted_neighbors(backend, i),
                brute_neighbors(points, i, radius))
          << "step " << step << " i " << i;
    }
  }
  const auto& stats = backend.stats();
  EXPECT_GT(stats.partial_builds, 0u) << "fuzz never exercised a partial pass";
  EXPECT_GT(stats.builds, 0u) << "the runaway cap never tripped";
  EXPECT_GE(stats.partial_rows, stats.partial_builds)
      << "every partial pass re-enumerates at least one row";
  EXPECT_LT(stats.builds, stats.steps / 4)
      << "partial rebuilds failed to stretch the list lifetime";
}

TEST(VerletList, PartialStepDriftIsThreadInvariant) {
  // The accumulate path on a partial step = sharded chunk pass + serial
  // overlay postfix; both are width-invariant by construction. Pin that:
  // serial vs pooled drift must agree bitwise while overlays are active.
  const double cutoff = 2.5;
  const std::size_t n = 500;
  const InteractionModel model(ForceLawKind::kSpring, 3,
                               PairParams{1.0, 2.0, 1.0, 1.0});
  const PairScalingTable table(model);
  std::vector<sops::sim::TypeId> types;
  for (std::size_t i = 0; i < n; ++i) {
    types.push_back(static_cast<sops::sim::TypeId>(i % 3));
  }
  ParticleSystem serial_system(random_points(n, 16.0, 77), types);
  ParticleSystem pooled_system = serial_system;

  const auto configure = [](VerletListBackend& backend) {
    VerletListBackend::AdaptiveSkin adapt;
    adapt.enabled = true;
    backend.set_adaptive_skin(adapt);
    backend.set_partial_rebuild(true);
  };
  VerletListBackend serial_backend;
  VerletListBackend pooled_backend;
  configure(serial_backend);
  configure(pooled_backend);
  sops::support::TaskPool pool(4);
  sops::sim::IntegratorParams params;
  params.dt = 0.08;  // enough motion to trip runaways regularly
  sops::rng::Xoshiro256 serial_engine(11);
  sops::rng::Xoshiro256 pooled_engine(11);
  std::vector<Vec2> serial_drift;
  std::vector<Vec2> pooled_drift;

  for (int step = 0; step < 30; ++step) {
    accumulate_drift(serial_system, table, cutoff, serial_drift, serial_backend,
                     std::size_t{1});
    accumulate_drift(pooled_system, table, cutoff, pooled_drift, pooled_backend,
                     pool.executor());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(serial_drift[i], pooled_drift[i])
          << "step " << step << " i " << i;
    }
    sops::sim::apply_euler_maruyama_update(serial_system, serial_drift, params,
                                           serial_engine);
    sops::sim::apply_euler_maruyama_update(pooled_system, pooled_drift, params,
                                           pooled_engine);
  }
  EXPECT_GT(serial_backend.stats().partial_builds, 0u)
      << "the trajectory never took a partial step";
  EXPECT_EQ(serial_backend.stats().partial_builds,
            pooled_backend.stats().partial_builds);
}

TEST(VerletList, ModeResolutionIsExhaustiveAndAutoNeverPicksVerlet) {
  using sops::sim::resolve_neighbor_mode;
  // kAuto keeps its PR 1 rules: cell grid for finite r_c at n ≥ 64.
  EXPECT_EQ(resolve_neighbor_mode(NeighborMode::kAuto, 1024, 3.0),
            NeighborMode::kCellGrid);
  EXPECT_EQ(resolve_neighbor_mode(NeighborMode::kAuto, 1024,
                                  sops::sim::kUnboundedRadius),
            NeighborMode::kAllPairs);
  // The opt-in passes through; it is never auto-selected.
  EXPECT_EQ(resolve_neighbor_mode(NeighborMode::kVerletSkin, 1024, 3.0),
            NeighborMode::kVerletSkin);
  // A value outside the enum fails loudly instead of riding a default
  // branch into some backend.
  EXPECT_THROW(
      (void)resolve_neighbor_mode(static_cast<NeighborMode>(99), 64, 3.0),
      sops::PreconditionError);
  EXPECT_THROW((void)sops::sim::neighbor_backend_kind(NeighborMode::kAuto),
               sops::PreconditionError);
}

TEST(VerletList, VerletModeRequiresFiniteCutoff) {
  const InteractionModel model(ForceLawKind::kSpring, 1,
                               PairParams{1.0, 2.0, 1.0, 1.0});
  ParticleSystem system(random_points(32, 4.0, 3),
                        std::vector<sops::sim::TypeId>(32, 0));
  std::vector<Vec2> drift;
  EXPECT_THROW(accumulate_drift(system, model, sops::sim::kUnboundedRadius,
                                drift, NeighborMode::kVerletSkin),
               sops::PreconditionError);
}

TEST(VerletList, WorkspaceReuseNeverLeaksListHistoryAcrossRuns) {
  // A tight initial disc keeps every run's initial positions within skin/2
  // of wherever the previous run's reference build ended up, so a stale
  // list would pass the displacement check and leak its frozen enumeration
  // order into the next run. prepare() forces one build per run instead:
  // a warm workspace must reproduce a fresh one bitwise.
  sops::sim::SimulationConfig config(
      InteractionModel(ForceLawKind::kSpring, 1, PairParams{0.2, 0.1, 1.0, 1.0}));
  config.types.assign(40, 0);
  config.cutoff_radius = 2.0;
  config.init_disc_radius = 0.2;
  config.neighbor_mode = NeighborMode::kVerletSkin;
  config.verlet_skin = 1.0;
  config.integrator.dt = 0.001;
  config.integrator.noise_variance = 1e-6;
  config.steps = 15;
  config.seed = 23;

  // Warm the workspace on one run, then run a *different* sample (other
  // seed, same tight disc — its initial positions also sit within skin/2 of
  // the stale reference). Without the forced per-run build, the second run
  // would sum drifts in the first run's frozen row order and diverge
  // bitwise from a fresh workspace.
  sops::sim::SimulationWorkspace warm;
  (void)sops::sim::run_simulation(config, warm);
  sops::sim::SimulationConfig other = config;
  other.seed = 24;
  const sops::sim::Trajectory via_warm = sops::sim::run_simulation(other, warm);
  const sops::sim::Trajectory via_fresh = sops::sim::run_simulation(other);
  ASSERT_EQ(via_warm.frames.size(), via_fresh.frames.size());
  for (std::size_t f = 0; f < via_warm.frames.size(); ++f) {
    for (std::size_t i = 0; i < via_warm.frames[f].size(); ++i) {
      ASSERT_EQ(via_warm.frames[f][i], via_fresh.frames[f][i])
          << "f=" << f << " i=" << i;
    }
  }
}

TEST(VerletList, SimulationAndExperimentPlumbThroughStats) {
  sops::sim::SimulationConfig config(
      InteractionModel(ForceLawKind::kSpring, 2, PairParams{1.0, 2.0, 1.0, 1.0}));
  config.types = sops::sim::evenly_distributed_types(96, 2);
  config.cutoff_radius = 3.0;
  config.neighbor_mode = NeighborMode::kVerletSkin;
  config.verlet_skin = 1.2;
  config.steps = 40;
  config.seed = 17;

  sops::sim::SimulationWorkspace workspace;
  const sops::sim::Trajectory trajectory =
      sops::sim::run_simulation(config, workspace);
  EXPECT_EQ(trajectory.frame_count(), 41u);
  const sops::geom::VerletListBackend* backend = workspace.verlet_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_DOUBLE_EQ(backend->skin(), 1.2);
  // One refresh per drift evaluation: steps 0..40 inclusive.
  EXPECT_EQ(backend->stats().steps, 41u);
  EXPECT_GE(backend->stats().builds, 1u);

  sops::core::ExperimentConfig experiment(config);
  experiment.samples = 4;
  const sops::core::EnsembleSeries series = sops::core::run_experiment(experiment);
  EXPECT_EQ(series.rebuild_stats.steps, 4u * 41u);
  EXPECT_GE(series.rebuild_stats.rebuilds, 1u);
  EXPECT_LE(series.rebuild_stats.rebuilds, series.rebuild_stats.steps);

  // Every non-Verlet mode reports a full rebuild per step (skip rate 0).
  sops::core::ExperimentConfig grid_experiment(config);
  grid_experiment.simulation.neighbor_mode = NeighborMode::kAuto;
  grid_experiment.samples = 2;
  const sops::core::EnsembleSeries grid_series =
      sops::core::run_experiment(grid_experiment);
  EXPECT_EQ(grid_series.rebuild_stats.rebuilds, grid_series.rebuild_stats.steps);
  EXPECT_DOUBLE_EQ(grid_series.rebuild_stats.skip_rate(), 0.0);
}

}  // namespace
