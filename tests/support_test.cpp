// Tests for sops::support — the parallel_for primitive and error handling.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace {

using sops::support::expect;
using sops::support::parallel_for;
using sops::support::parallel_for_chunked;

TEST(Expect, PassesOnTrue) { EXPECT_NO_THROW(expect(true, "never")); }

TEST(Expect, ThrowsPreconditionErrorOnFalse) {
  EXPECT_THROW(expect(false, "boom"), sops::PreconditionError);
}

TEST(Expect, MessagePropagates) {
  try {
    expect(false, "the message");
    FAIL() << "expected throw";
  } catch (const sops::PreconditionError& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw sops::PreconditionError("x"), sops::Error);
  EXPECT_THROW(throw sops::NumericalError("x"), sops::Error);
  EXPECT_THROW(throw sops::Error("x"), std::runtime_error);
}

class ParallelForThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForThreads, VisitsEveryIndexExactlyOnce) {
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> visits(count);
  parallel_for(
      0, count, [&](std::size_t i) { visits[i].fetch_add(1); }, GetParam());
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForThreads, ChunksPartitionTheRange) {
  const std::size_t count = 777;
  std::vector<std::atomic<int>> visits(count);
  parallel_for_chunked(
      0, count,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
      },
      GetParam());
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForThreads, NonZeroBegin) {
  std::atomic<int> sum{0};
  parallel_for(
      10, 20, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); },
      GetParam());
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + … + 19
}

TEST_P(ParallelForThreads, ResultsMatchSerialReference) {
  const std::size_t count = 257;
  std::vector<double> out(count, 0.0);
  parallel_for(
      0, count,
      [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5 + 1.0; },
      GetParam());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 1.5 + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForThreads,
                         ::testing::Values(1, 2, 3, 8, 0));

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ReversedRangeIsNoop) {
  bool called = false;
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElementRunsInline) {
  std::thread::id body_thread;
  parallel_for(0, 1, [&](std::size_t) { body_thread = std::this_thread::get_id(); },
               4);
  EXPECT_TRUE(body_thread == std::this_thread::get_id());
}

TEST(ParallelFor, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel_for(
                   0, 100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelFor, ExceptionAbandonsOnlyTheThrowingChunk) {
  // An exception ends the throwing worker's chunk; other workers are joined
  // normally and complete their chunks. With 2 workers over [0, 100) the
  // contiguous partition is [0, 50) and [50, 100); a throw at index 0 must
  // leave the second chunk fully processed.
  std::vector<std::atomic<int>> visits(100);
  try {
    parallel_for(
        0, 100,
        [&](std::size_t i) {
          visits[i].fetch_add(1);
          if (i == 0) throw std::runtime_error("boom");
        },
        2);
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
  EXPECT_EQ(visits[0].load(), 1);
}

TEST(ParallelFor, MoreThreadsThanWorkIsSafe) {
  std::atomic<int> count{0};
  parallel_for(
      0, 3, [&](std::size_t) { count.fetch_add(1); }, 64);
  EXPECT_EQ(count.load(), 3);
}

TEST(ExplicitPartition, ChunksFollowCallerBoundaries) {
  const std::vector<std::uint32_t> bounds{0, 3, 3, 10, 40};
  std::vector<std::atomic<int>> visits(40);
  std::mutex chunks_mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(std::span<const std::uint32_t>(bounds),
                       [&](std::size_t begin, std::size_t end) {
                         {
                           const std::lock_guard<std::mutex> lock(chunks_mutex);
                           chunks.emplace_back(begin, end);
                         }
                         for (std::size_t i = begin; i < end; ++i) {
                           visits[i].fetch_add(1);
                         }
                       });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
  // The empty chunk [3, 3) is skipped; the three non-empty ones run as given.
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(ExplicitPartition, SingleChunkRunsInline) {
  const std::vector<std::uint32_t> bounds{0, 0, 5, 5};
  std::thread::id body_thread;
  parallel_for_chunked(std::span<const std::uint32_t>(bounds),
                       [&](std::size_t, std::size_t) {
                         body_thread = std::this_thread::get_id();
                       });
  EXPECT_TRUE(body_thread == std::this_thread::get_id());
}

TEST(ExplicitPartition, DegenerateBoundsAreNoops) {
  bool called = false;
  const auto body = [&](std::size_t, std::size_t) { called = true; };
  parallel_for_chunked(std::span<const std::uint32_t>(), body);
  const std::vector<std::uint32_t> single{7};
  parallel_for_chunked(std::span<const std::uint32_t>(single), body);
  const std::vector<std::uint32_t> all_empty{4, 4, 4};
  parallel_for_chunked(std::span<const std::uint32_t>(all_empty), body);
  EXPECT_FALSE(called);
}

TEST(ExplicitPartition, ExceptionsPropagateToCaller) {
  const std::vector<std::uint32_t> bounds{0, 10, 20, 30};
  EXPECT_THROW(
      parallel_for_chunked(std::span<const std::uint32_t>(bounds),
                           [](std::size_t begin, std::size_t) {
                             if (begin == 10) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
}

TEST(DefaultThreadCount, IsPositive) {
  EXPECT_GE(sops::support::default_thread_count(), 1u);
}

}  // namespace
