// Drift-accumulation tests: analytic two-body cases, action–reaction
// symmetry, cut-off semantics, and agreement between neighbor strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/forces.hpp"
#include "rng/samplers.hpp"
#include "sim/generators.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::accumulate_drift;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::kUnboundedRadius;
using sops::sim::NeighborMode;
using sops::sim::PairParams;
using sops::sim::ParticleSystem;
using sops::sim::total_drift_norm;

InteractionModel spring_model(double k, double r, std::size_t types = 1) {
  return InteractionModel(ForceLawKind::kSpring, types, PairParams{k, r, 1, 1});
}

TEST(AccumulateDrift, TwoBodySpringAnalytic) {
  // Particles at distance x on the x-axis: drift on particle 0 is
  // −k(1 − r/x)·(z0 − z1) = −k(x − r) in the +x direction when x < r.
  const double k = 2.0;
  const double r = 3.0;
  const double x = 2.0;
  ParticleSystem system({{0.0, 0.0}, {x, 0.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(k, r), kUnboundedRadius, drift);

  const double expected = -k * (1.0 - r / x) * (0.0 - x);  // on particle 0
  EXPECT_NEAR(drift[0].x, expected, 1e-12);
  EXPECT_NEAR(drift[0].y, 0.0, 1e-12);
  // x < r ⇒ repulsion: particle 0 pushed toward −x.
  EXPECT_LT(drift[0].x, 0.0);
}

TEST(AccumulateDrift, TwoBodyAttractionBeyondPreferredDistance) {
  ParticleSystem system({{0.0, 0.0}, {5.0, 0.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(1.0, 2.0), kUnboundedRadius, drift);
  EXPECT_GT(drift[0].x, 0.0);  // pulled toward the neighbor
  EXPECT_LT(drift[1].x, 0.0);
}

TEST(AccumulateDrift, ActionReactionWithSymmetricMatrices) {
  // Symmetric parameters ⇒ pair drift contributions are equal and opposite,
  // so the total drift sums to zero for any configuration.
  sops::rng::Xoshiro256 engine(5);
  sops::sim::RandomModelRanges ranges;
  ranges.k_min = 0.5;
  ranges.k_max = 2.0;
  const InteractionModel model = sops::sim::random_spring_model(3, ranges, engine);

  std::vector<Vec2> positions;
  std::vector<sops::sim::TypeId> types;
  for (int i = 0; i < 30; ++i) {
    positions.push_back(sops::rng::uniform_disc(engine, 5.0));
    types.push_back(static_cast<sops::sim::TypeId>(i % 3));
  }
  ParticleSystem system(positions, types);
  std::vector<Vec2> drift;
  accumulate_drift(system, model, kUnboundedRadius, drift);

  Vec2 total{};
  for (const Vec2 d : drift) total += d;
  EXPECT_NEAR(total.x, 0.0, 1e-9);
  EXPECT_NEAR(total.y, 0.0, 1e-9);
}

TEST(AccumulateDrift, CutoffExcludesFarPairs) {
  ParticleSystem system({{0.0, 0.0}, {10.0, 0.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(1.0, 2.0), 5.0, drift);
  EXPECT_DOUBLE_EQ(drift[0].x, 0.0);
  EXPECT_DOUBLE_EQ(drift[1].x, 0.0);
}

TEST(AccumulateDrift, CutoffIsStrict) {
  ParticleSystem system({{0.0, 0.0}, {5.0, 0.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(1.0, 2.0), 5.0, drift);
  EXPECT_DOUBLE_EQ(drift[0].x, 0.0);  // exactly at r_c: excluded
  accumulate_drift(system, spring_model(1.0, 2.0), 5.0 + 1e-9, drift);
  EXPECT_NE(drift[0].x, 0.0);
}

TEST(AccumulateDrift, CoincidentParticlesContributeNothing) {
  ParticleSystem system({{1.0, 1.0}, {1.0, 1.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(1.0, 2.0), kUnboundedRadius, drift);
  EXPECT_DOUBLE_EQ(drift[0].x, 0.0);
  EXPECT_DOUBLE_EQ(drift[0].y, 0.0);
}

TEST(AccumulateDrift, TypeDependentInteractions) {
  InteractionModel model(ForceLawKind::kSpring, 2, PairParams{1.0, 1.0, 1, 1});
  model.set_k(0, 1, 0.0);  // cross-type interactions disabled
  ParticleSystem system({{0.0, 0.0}, {2.0, 0.0}}, {0, 1});
  std::vector<Vec2> drift;
  accumulate_drift(system, model, kUnboundedRadius, drift);
  EXPECT_DOUBLE_EQ(drift[0].x, 0.0);
  EXPECT_DOUBLE_EQ(drift[1].x, 0.0);
}

class StrategyAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StrategyAgreement, GridMatchesAllPairsExactly) {
  const std::size_t n = GetParam();
  sops::rng::Xoshiro256 engine(n);
  std::vector<Vec2> positions;
  std::vector<sops::sim::TypeId> types;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(sops::rng::uniform_disc(engine, 8.0));
    types.push_back(static_cast<sops::sim::TypeId>(i % 4));
  }
  sops::sim::RandomModelRanges ranges;
  const InteractionModel model = sops::sim::random_spring_model(4, ranges, engine);
  ParticleSystem system(positions, types);

  const double cutoff = 3.0;
  std::vector<Vec2> brute;
  std::vector<Vec2> grid;
  accumulate_drift(system, model, cutoff, brute, NeighborMode::kAllPairs);
  accumulate_drift(system, model, cutoff, grid, NeighborMode::kCellGrid);

  for (std::size_t i = 0; i < n; ++i) {
    // Same pair set; only summation order may differ.
    EXPECT_NEAR(brute[i].x, grid[i].x, 1e-12) << i;
    EXPECT_NEAR(brute[i].y, grid[i].y, 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrategyAgreement,
                         ::testing::Values(2, 10, 63, 64, 150, 300));

TEST(AccumulateDrift, AutoModeHandlesUnboundedRadius) {
  ParticleSystem system({{0.0, 0.0}, {100.0, 0.0}}, {0, 0});
  std::vector<Vec2> drift;
  accumulate_drift(system, spring_model(1.0, 2.0), kUnboundedRadius, drift,
                   NeighborMode::kAuto);
  EXPECT_GT(drift[0].x, 0.0);  // long-range attraction reaches
}

TEST(AccumulateDrift, GridWithUnboundedRadiusThrows) {
  ParticleSystem system({{0.0, 0.0}}, {0});
  std::vector<Vec2> drift;
  EXPECT_THROW(accumulate_drift(system, spring_model(1.0, 1.0), kUnboundedRadius,
                                drift, NeighborMode::kCellGrid),
               sops::PreconditionError);
}

TEST(AccumulateDrift, TypeOutsideModelThrows) {
  ParticleSystem system({{0.0, 0.0}}, {5});
  std::vector<Vec2> drift;
  EXPECT_THROW(
      accumulate_drift(system, spring_model(1.0, 1.0), 1.0, drift),
      sops::PreconditionError);
}

TEST(TotalDriftNorm, SumsL2Norms) {
  const std::vector<Vec2> drift{{3.0, 4.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(total_drift_norm(drift), 6.0);
}

TEST(TotalDriftNorm, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(total_drift_norm(std::vector<Vec2>{}), 0.0);
}

}  // namespace
