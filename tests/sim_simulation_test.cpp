// Simulation-driver tests: reproducibility, recording bookkeeping, initial
// conditions, stopping, and qualitative equilibrium properties.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/generators.hpp"
#include "sim/simulation.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::PairParams;
using sops::sim::run_simulation;
using sops::sim::SimulationConfig;
using sops::sim::Trajectory;

SimulationConfig small_config(std::uint64_t seed = 1) {
  SimulationConfig config(InteractionModel(ForceLawKind::kSpring, 1,
                                           PairParams{1.0, 2.0, 1.0, 1.0}));
  config.types = sops::sim::evenly_distributed_types(12, 1);
  config.cutoff_radius = sops::sim::kUnboundedRadius;
  config.init_disc_radius = 3.0;
  config.steps = 40;
  config.seed = seed;
  return config;
}

TEST(EvenTypes, DistributesEvenly) {
  const auto types = sops::sim::evenly_distributed_types(10, 3);
  const auto histogram = sops::sim::type_histogram(types, 3);
  EXPECT_EQ(histogram, (std::vector<std::size_t>{4, 3, 3}));
}

TEST(EvenTypes, SingleType) {
  const auto types = sops::sim::evenly_distributed_types(5, 1);
  EXPECT_EQ(types, (std::vector<sops::sim::TypeId>{0, 0, 0, 0, 0}));
}

TEST(EvenTypes, MoreTypesThanParticles) {
  const auto types = sops::sim::evenly_distributed_types(2, 5);
  const auto histogram = sops::sim::type_histogram(types, 5);
  EXPECT_EQ(histogram, (std::vector<std::size_t>{1, 1, 0, 0, 0}));
}

TEST(TypeHistogram, OutOfRangeThrows) {
  const std::vector<sops::sim::TypeId> types{0, 3};
  EXPECT_THROW((void)sops::sim::type_histogram(types, 2),
               sops::PreconditionError);
}

TEST(InitialDisc, AllWithinRadius) {
  sops::rng::Xoshiro256 engine(3);
  const auto points = sops::sim::sample_initial_disc(500, 2.5, engine);
  ASSERT_EQ(points.size(), 500u);
  for (const Vec2 p : points) EXPECT_LE(norm(p), 2.5);
}

TEST(Simulation, SameSeedBitwiseIdentical) {
  const Trajectory a = run_simulation(small_config(7));
  const Trajectory b = run_simulation(small_config(7));
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    for (std::size_t i = 0; i < a.frames[f].size(); ++i) {
      EXPECT_EQ(a.frames[f][i], b.frames[f][i]);
    }
  }
}

TEST(Simulation, DifferentSeedsDiffer) {
  const Trajectory a = run_simulation(small_config(1));
  const Trajectory b = run_simulation(small_config(2));
  EXPECT_NE(a.frames[0][0], b.frames[0][0]);
}

TEST(Simulation, DifferentStreamsDiffer) {
  SimulationConfig config = small_config(1);
  const Trajectory a = run_simulation(config);
  config.stream = 1;
  const Trajectory b = run_simulation(config);
  EXPECT_NE(a.frames[0][0], b.frames[0][0]);
}

TEST(Simulation, RecordingGridWithStrideOne) {
  SimulationConfig config = small_config();
  config.steps = 10;
  config.record_stride = 1;
  const Trajectory t = run_simulation(config);
  ASSERT_EQ(t.frames.size(), 11u);  // initial + 10
  for (std::size_t f = 0; f < t.frame_steps.size(); ++f) {
    EXPECT_EQ(t.frame_steps[f], f);
  }
  EXPECT_EQ(t.residual_norms.size(), t.frames.size());
}

TEST(Simulation, RecordingGridWithStride) {
  SimulationConfig config = small_config();
  config.steps = 10;
  config.record_stride = 4;
  const Trajectory t = run_simulation(config);
  EXPECT_EQ(t.frame_steps, (std::vector<std::size_t>{0, 4, 8, 10}));
}

TEST(Simulation, StrideLargerThanStepsRecordsEndpoints) {
  SimulationConfig config = small_config();
  config.steps = 5;
  config.record_stride = 100;
  const Trajectory t = run_simulation(config);
  EXPECT_EQ(t.frame_steps, (std::vector<std::size_t>{0, 5}));
}

TEST(Simulation, FramesCarryTypes) {
  const Trajectory t = run_simulation(small_config());
  EXPECT_EQ(t.types.size(), 12u);
  EXPECT_EQ(t.particle_count(), 12u);
  EXPECT_EQ(t.frame_count(), t.frames.size());
}

TEST(Simulation, SpringCollectiveReachesLowResidual) {
  // A single-type F¹ system relaxes: the residual at the end is far below
  // the initial one (noise keeps it from vanishing entirely).
  SimulationConfig config = small_config();
  config.steps = 300;
  config.integrator.noise_variance = 0.01;
  const Trajectory t = run_simulation(config);
  EXPECT_LT(t.residual_norms.back(), t.residual_norms.front() * 0.5);
}

TEST(Simulation, StopAtEquilibriumEndsEarly) {
  SimulationConfig config = small_config();
  config.steps = 5000;
  config.integrator.noise_variance = 0.0;
  config.stop_at_equilibrium = true;
  config.equilibrium.threshold = 0.05;
  config.equilibrium.hold_steps = 5;
  const Trajectory t = run_simulation(config);
  ASSERT_TRUE(t.equilibrium_step.has_value());
  EXPECT_LT(*t.equilibrium_step, 5000u);
  EXPECT_EQ(t.frame_steps.back(), *t.equilibrium_step);
}

TEST(Simulation, SingleTypeSpringFormsRoundCollective) {
  // Qualitative Fig. 3 check: the equilibrium of a single-type F¹ system is
  // disc-like — max pairwise distance stays within a small factor of the
  // preferred distance scale, and no particle escapes.
  SimulationConfig config = small_config();
  config.steps = 500;
  config.integrator.noise_variance = 0.005;
  const Trajectory t = run_simulation(config);
  const auto& final_frame = t.frames.back();
  double max_dist = 0.0;
  for (std::size_t i = 0; i < final_frame.size(); ++i) {
    for (std::size_t j = i + 1; j < final_frame.size(); ++j) {
      max_dist = std::max(max_dist, dist(final_frame[i], final_frame[j]));
    }
  }
  // 12 particles at preferred distance 2: diameter ~2–4 spacings.
  EXPECT_LT(max_dist, 10.0);
  EXPECT_GT(max_dist, 1.0);
}

TEST(Simulation, InvalidConfigsThrow) {
  SimulationConfig config = small_config();
  config.types.clear();
  EXPECT_THROW((void)run_simulation(config), sops::PreconditionError);

  config = small_config();
  config.record_stride = 0;
  EXPECT_THROW((void)run_simulation(config), sops::PreconditionError);

  config = small_config();
  config.steps = 0;
  EXPECT_THROW((void)run_simulation(config), sops::PreconditionError);

  config = small_config();
  config.types[0] = 7;  // outside the 1-type model
  EXPECT_THROW((void)run_simulation(config), sops::PreconditionError);
}

TEST(Generators, SpringModelWithinRanges) {
  sops::rng::Xoshiro256 engine(5);
  sops::sim::RandomModelRanges ranges;
  ranges.k_min = 1.0;
  ranges.k_max = 3.0;
  ranges.r_min = 2.0;
  ranges.r_max = 8.0;
  const InteractionModel model = sops::sim::random_spring_model(4, ranges, engine);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_GE(model.pair(a, b).k, 1.0);
      EXPECT_LE(model.pair(a, b).k, 3.0);
      EXPECT_GE(model.pair(a, b).r, 2.0);
      EXPECT_LE(model.pair(a, b).r, 8.0);
      // Symmetry.
      EXPECT_DOUBLE_EQ(model.pair(a, b).k, model.pair(b, a).k);
      EXPECT_DOUBLE_EQ(model.pair(a, b).r, model.pair(b, a).r);
    }
  }
}

TEST(Generators, DoubleGaussianRealizesPreferredDistances) {
  sops::rng::Xoshiro256 engine(6);
  sops::sim::RandomModelRanges ranges;
  ranges.r_min = 1.0;
  ranges.r_max = 5.0;
  ranges.tau_min = 1.0;
  ranges.tau_max = 3.0;
  const InteractionModel model =
      sops::sim::random_double_gaussian_model(3, ranges, engine);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a; b < 3; ++b) {
      const auto crossing = sops::sim::preferred_distance(
          ForceLawKind::kDoubleGaussian, model.pair(a, b));
      ASSERT_TRUE(crossing.has_value());
      EXPECT_NEAR(*crossing, model.pair(a, b).r, 1e-5);
      EXPECT_GE(model.pair(a, b).r, 1.0);
      EXPECT_LE(model.pair(a, b).r, 5.0);
    }
  }
}

TEST(Generators, LiteralF2HasSigmaOne) {
  sops::rng::Xoshiro256 engine(7);
  sops::sim::RandomModelRanges ranges;
  const InteractionModel model =
      sops::sim::random_literal_f2_model(2, ranges, engine);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      EXPECT_DOUBLE_EQ(model.pair(a, b).sigma, 1.0);
      EXPECT_GE(model.pair(a, b).tau, 1.0);
      EXPECT_LE(model.pair(a, b).tau, 10.0);
    }
  }
}

TEST(Generators, DeterministicInEngineState) {
  sops::rng::Xoshiro256 e1(9);
  sops::rng::Xoshiro256 e2(9);
  sops::sim::RandomModelRanges ranges;
  const InteractionModel a = sops::sim::random_spring_model(3, ranges, e1);
  const InteractionModel b = sops::sim::random_spring_model(3, ranges, e2);
  EXPECT_EQ(a.r_matrix(), b.r_matrix());
  EXPECT_EQ(a.k_matrix(), b.k_matrix());
}

TEST(Generators, InvalidRangesThrow) {
  sops::rng::Xoshiro256 engine(1);
  sops::sim::RandomModelRanges bad;
  bad.r_min = 5.0;
  bad.r_max = 2.0;
  EXPECT_THROW((void)sops::sim::random_spring_model(2, bad, engine),
               sops::PreconditionError);
}

}  // namespace
