// Shard manifest codec: round-trips, incremental completion durability,
// and rejection of truncated/foreign/corrupt files. The manifest is the
// crash-safety commit log of a shard run, so the failure paths matter as
// much as the happy one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "io/shard_manifest.hpp"
#include "support/error.hpp"

namespace {

using sops::io::kNoEquilibriumStep;
using sops::io::ShardManifest;
using sops::io::ShardManifestFile;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

ShardManifest sample_manifest() {
  ShardManifest m;
  m.frames = 4;
  m.samples_total = 10;
  m.particles = 30;
  m.slot_begin = 3;
  m.slot_end = 8;
  m.master_seed = 0xfeedbeefu;
  m.config_hash = 0x123456789abcdef0ull;
  m.frame_steps = {0, 5, 10, 15};
  m.equilibrium_steps.assign(m.slots(), kNoEquilibriumStep);
  m.completed.assign(ShardManifest::words_for(m.slots()), 0);
  return m;
}

TEST(ShardManifest, CreateLoadRoundTrip) {
  const std::string path = temp_path("manifest_roundtrip.manifest");
  ShardManifest original = sample_manifest();
  original.set_complete(1);
  original.equilibrium_steps[1] = 7;
  { auto file = ShardManifestFile::create(path, original); }

  const ShardManifest loaded = ShardManifestFile::load(path);
  EXPECT_EQ(loaded.frames, original.frames);
  EXPECT_EQ(loaded.samples_total, original.samples_total);
  EXPECT_EQ(loaded.particles, original.particles);
  EXPECT_EQ(loaded.slot_begin, original.slot_begin);
  EXPECT_EQ(loaded.slot_end, original.slot_end);
  EXPECT_EQ(loaded.master_seed, original.master_seed);
  EXPECT_EQ(loaded.config_hash, original.config_hash);
  EXPECT_EQ(loaded.frame_steps, original.frame_steps);
  EXPECT_EQ(loaded.equilibrium_steps, original.equilibrium_steps);
  EXPECT_EQ(loaded.completed, original.completed);
  EXPECT_EQ(loaded.complete_count(), 1u);
  std::filesystem::remove(path);
}

TEST(ShardManifest, MarkCompletePersistsIncrementally) {
  const std::string path = temp_path("manifest_marks.manifest");
  {
    auto file = ShardManifestFile::create(path, sample_manifest());
    file.mark_complete(0, std::nullopt);
    file.mark_complete(2, std::uint64_t{42});
    // Loading through a *separate* handle while the writer is still open
    // proves each mark went to the file, not just the in-memory image —
    // exactly what a resuming process after SIGKILL would read.
    const ShardManifest snapshot = ShardManifestFile::load(path);
    EXPECT_TRUE(snapshot.is_complete(0));
    EXPECT_FALSE(snapshot.is_complete(1));
    EXPECT_TRUE(snapshot.is_complete(2));
    EXPECT_EQ(snapshot.equilibrium_steps[0], kNoEquilibriumStep);
    EXPECT_EQ(snapshot.equilibrium_steps[2], 42u);
    EXPECT_EQ(snapshot.complete_count(), 2u);
    EXPECT_FALSE(snapshot.all_complete());
  }
  std::filesystem::remove(path);
}

TEST(ShardManifest, AllCompleteAfterEverySlot) {
  const std::string path = temp_path("manifest_all.manifest");
  auto file = ShardManifestFile::create(path, sample_manifest());
  for (std::size_t s = 0; s < file.manifest().slots(); ++s) {
    file.mark_complete(s, std::uint64_t{s});
  }
  EXPECT_TRUE(ShardManifestFile::load(path).all_complete());
  std::filesystem::remove(path);
}

TEST(ShardManifest, RejectsTruncatedFile) {
  const std::string path = temp_path("manifest_truncated.manifest");
  { auto file = ShardManifestFile::create(path, sample_manifest()); }
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(ShardManifestFile::load(path), sops::Error);
  std::filesystem::remove(path);
}

TEST(ShardManifest, RejectsForeignAndCorruptHeaders) {
  const std::string path = temp_path("manifest_bad.manifest");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a shard manifest, long enough to read";
  }
  EXPECT_THROW(ShardManifestFile::load(path), sops::Error);

  // Valid magic, corrupted version field.
  { auto file = ShardManifestFile::create(path, sample_manifest()); }
  {
    std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(8);  // first header field: version
    const std::uint64_t bogus = 999;
    out.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(ShardManifestFile::load(path), sops::Error);

  // Valid magic/version, nonsense slot range (begin >= end).
  { auto file = ShardManifestFile::create(path, sample_manifest()); }
  {
    std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(8 + 4 * 8);  // header field 4: slot_begin
    const std::uint64_t bogus = 100;
    out.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(ShardManifestFile::load(path), sops::Error);
  std::filesystem::remove(path);
}

TEST(ShardManifest, RejectsMissingFile) {
  EXPECT_THROW(ShardManifestFile::load(temp_path("does_not_exist.manifest")),
               sops::Error);
  EXPECT_THROW(ShardManifestFile::open(temp_path("does_not_exist.manifest")),
               sops::Error);
}

TEST(ShardManifest, FileBytesMatchesOnDiskSize) {
  const std::string path = temp_path("manifest_size.manifest");
  const ShardManifest m = sample_manifest();
  { auto file = ShardManifestFile::create(path, m); }
  EXPECT_EQ(std::filesystem::file_size(path), m.file_bytes());
  std::filesystem::remove(path);
}

}  // namespace
