// Stopping-detector tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/detectors.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::EquilibriumDetector;
using sops::sim::LimitCycleDetector;

TEST(EquilibriumDetector, TriggersAfterHoldSteps) {
  EquilibriumDetector detector(1.0, 3);
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_TRUE(detector.update(0.5));
  EXPECT_TRUE(detector.triggered());
}

TEST(EquilibriumDetector, StreakResetsOnSpike) {
  EquilibriumDetector detector(1.0, 3);
  detector.update(0.5);
  detector.update(0.5);
  detector.update(2.0);  // spike resets the streak
  EXPECT_EQ(detector.streak(), 0u);
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_TRUE(detector.update(0.5));
}

TEST(EquilibriumDetector, ThresholdIsStrict) {
  EquilibriumDetector detector(1.0, 1);
  EXPECT_FALSE(detector.update(1.0));  // equal is not below
  EXPECT_TRUE(detector.update(0.999));
}

TEST(EquilibriumDetector, StaysTriggered) {
  EquilibriumDetector detector(1.0, 1);
  detector.update(0.1);
  EXPECT_TRUE(detector.update(100.0));  // latched
}

TEST(EquilibriumDetector, ResetClears) {
  EquilibriumDetector detector(1.0, 1);
  detector.update(0.1);
  detector.reset();
  EXPECT_FALSE(detector.triggered());
}

TEST(EquilibriumDetector, InvalidParamsThrow) {
  EXPECT_THROW(EquilibriumDetector(0.0, 1), sops::PreconditionError);
  EXPECT_THROW(EquilibriumDetector(1.0, 0), sops::PreconditionError);
}

std::vector<Vec2> ring_configuration(double phase) {
  std::vector<Vec2> points;
  for (int i = 0; i < 6; ++i) {
    const double a = phase + i * std::numbers::pi / 3.0;
    points.push_back({std::cos(a), std::sin(a)});
  }
  return points;
}

TEST(LimitCycleDetector, DetectsPeriodicMotion) {
  // A rotating ring that returns to its configuration every 8 snapshots.
  LimitCycleDetector detector(1e-9, 2, 32);
  std::optional<sops::sim::CycleMatch> match;
  for (int t = 0; t < 20 && !match; ++t) {
    match = detector.update(
        ring_configuration(2.0 * std::numbers::pi * (t % 8) / 8.0));
  }
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->period, 8u);
  EXPECT_LT(match->mean_error, 1e-9);
}

TEST(LimitCycleDetector, IgnoresDriftingCycle) {
  // Same cycle plus a uniform translation per step: centroid removal makes
  // the recurrence visible anyway.
  LimitCycleDetector detector(1e-9, 2, 32);
  std::optional<sops::sim::CycleMatch> match;
  for (int t = 0; t < 20 && !match; ++t) {
    auto config = ring_configuration(2.0 * std::numbers::pi * (t % 8) / 8.0);
    for (Vec2& p : config) p += Vec2{0.5 * t, -0.25 * t};
    match = detector.update(config);
  }
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->period, 8u);
}

TEST(LimitCycleDetector, NoFalsePositiveOnExpansion) {
  LimitCycleDetector detector(1e-6, 2, 64);
  for (int t = 0; t < 50; ++t) {
    auto config = ring_configuration(0.0);
    for (Vec2& p : config) p *= (1.0 + 0.05 * t);  // steadily expanding
    EXPECT_FALSE(detector.update(config).has_value()) << t;
  }
}

TEST(LimitCycleDetector, RespectsMinPeriod) {
  // A static configuration recurs at lag 1; min_period = 5 must report 5.
  LimitCycleDetector detector(1e-9, 5, 32);
  std::optional<sops::sim::CycleMatch> match;
  for (int t = 0; t < 10 && !match; ++t) {
    match = detector.update(ring_configuration(0.0));
  }
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->period, 5u);
}

TEST(LimitCycleDetector, WindowBoundsMemory) {
  // Cycle period 10 with window 8: recurrence is never observed.
  LimitCycleDetector detector(1e-9, 2, 8);
  for (int t = 0; t < 40; ++t) {
    const auto match = detector.update(
        ring_configuration(2.0 * std::numbers::pi * (t % 10) / 10.0));
    EXPECT_FALSE(match.has_value()) << t;
  }
}

TEST(LimitCycleDetector, InvalidParamsThrow) {
  EXPECT_THROW(LimitCycleDetector(0.0, 1, 8), sops::PreconditionError);
  EXPECT_THROW(LimitCycleDetector(1.0, 0, 8), sops::PreconditionError);
  EXPECT_THROW(LimitCycleDetector(1.0, 8, 8), sops::PreconditionError);
}

}  // namespace
