// Job layer tests: the JobManager must be a pure scheduler — whatever mix
// of concurrent jobs, admission stalls, shared-pool slices, and cancels it
// runs under, every job that completes must hand back the exact bits a solo
// batch run of the same config produces. Cancellation must reclaim
// everything it touched (spill files, pool slices, budget charges) and
// leave durable shards resumable.
//
// Named core_job_* so the CI TSan leg picks the whole suite up (see
// .github/workflows/ci.yml): the manager's driver threads, sample workers,
// and event callbacks are exactly the kind of concurrency TSan exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/job_manager.hpp"
#include "core/presets.hpp"
#include "sim/parallel_policy.hpp"
#include "support/cancel.hpp"

namespace {

using sops::CancelledError;
using sops::Error;
using sops::core::AnalysisResult;
using sops::core::analyze_self_organization;
using sops::core::ConfiguredExperiment;
using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::JobAnalysis;
using sops::core::JobLimits;
using sops::core::JobManager;
using sops::core::JobOptions;
using sops::core::JobOutcome;
using sops::core::JobState;
using sops::core::JobStatus;
using sops::core::run_experiment;
using sops::core::StorageMode;

ConfiguredExperiment small_job(std::uint64_t seed, std::size_t samples = 8,
                               std::size_t steps = 20) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = steps;
  simulation.record_stride = steps / 2;
  simulation.seed = seed;
  ConfiguredExperiment configured{ExperimentConfig(simulation), {}};
  configured.experiment.samples = samples;
  return configured;
}

bool stores_bitwise_equal(const EnsembleSeries& a, const EnsembleSeries& b) {
  if (a.frame_count() != b.frame_count() ||
      a.sample_count() != b.sample_count() ||
      a.particle_count() != b.particle_count()) {
    return false;
  }
  for (std::size_t f = 0; f < a.frame_count(); ++f) {
    for (std::size_t s = 0; s < a.sample_count(); ++s) {
      const auto lhs = a.frames.sample(f, s);
      const auto rhs = b.frames.sample(f, s);
      if (std::memcmp(lhs.data(), rhs.data(), lhs.size_bytes()) != 0) {
        return false;
      }
    }
  }
  return true;
}

std::size_t spill_files_in(const std::string& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") ++count;
  }
  return count;
}

// ---------------------------------------------------------------- policy

TEST(CoreJobPolicy, JobThreadSharesPartitionTheMachine) {
  // The shares must tile the machine budget exactly (modulo the floor at
  // one thread per job) and every slot must get at least one runner.
  EXPECT_EQ(sops::sim::resolve_job_threads(0, 2, 8), 4u);
  EXPECT_EQ(sops::sim::resolve_job_threads(1, 2, 8), 4u);
  EXPECT_EQ(sops::sim::resolve_job_threads(0, 3, 8), 3u);
  EXPECT_EQ(sops::sim::resolve_job_threads(1, 3, 8), 3u);
  EXPECT_EQ(sops::sim::resolve_job_threads(2, 3, 8), 2u);
  // More slots than threads: the floor keeps every slot runnable.
  EXPECT_EQ(sops::sim::resolve_job_threads(0, 2, 1), 1u);
  EXPECT_EQ(sops::sim::resolve_job_threads(1, 2, 1), 1u);
  EXPECT_EQ(sops::sim::resolve_job_threads(3, 4, 2), 1u);
}

// ---------------------------------------------------------- single job

TEST(CoreJobManager, SingleJobMatchesDirectRun) {
  const ConfiguredExperiment reference_config = small_job(1234);
  const EnsembleSeries reference =
      run_experiment(reference_config.experiment);
  const AnalysisResult reference_analysis =
      analyze_self_organization(reference, reference_config.analysis);

  JobManager manager(JobLimits{.machine_threads = 2, .job_slots = 1});
  JobOptions options;
  options.analysis = JobAnalysis::kPostHoc;
  const std::uint64_t id = manager.submit(small_job(1234), options);
  const JobOutcome outcome = manager.wait(id);

  EXPECT_TRUE(stores_bitwise_equal(reference, outcome.series));
  ASSERT_TRUE(outcome.analysis.has_value());
  ASSERT_EQ(outcome.analysis->points.size(), reference_analysis.points.size());
  for (std::size_t f = 0; f < reference_analysis.points.size(); ++f) {
    EXPECT_EQ(outcome.analysis->points[f].multi_information,
              reference_analysis.points[f].multi_information);
  }

  const JobStatus status = manager.status(id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.samples_done, status.samples_total);
  EXPECT_TRUE(status.analyzed);
  EXPECT_EQ(status.delta_mi, reference_analysis.delta_mi());
}

TEST(CoreJobManager, StreamedAnalysisMatchesPostHoc) {
  JobManager manager(JobLimits{.machine_threads = 2, .job_slots = 1});
  JobOptions post_hoc;
  post_hoc.analysis = JobAnalysis::kPostHoc;
  JobOptions streamed;
  streamed.analysis = JobAnalysis::kStreamed;
  const std::uint64_t a = manager.submit(small_job(77, 12), post_hoc);
  const JobOutcome post = manager.wait(a);
  const std::uint64_t b = manager.submit(small_job(77, 12), streamed);
  const JobOutcome live = manager.wait(b);
  ASSERT_TRUE(post.analysis.has_value());
  ASSERT_TRUE(live.analysis.has_value());
  ASSERT_EQ(post.analysis->points.size(), live.analysis->points.size());
  for (std::size_t f = 0; f < post.analysis->points.size(); ++f) {
    EXPECT_EQ(post.analysis->points[f].multi_information,
              live.analysis->points[f].multi_information);
  }
}

TEST(CoreJobManager, PerSampleEventsCoverEverySample) {
  JobManager manager(JobLimits{.machine_threads = 4, .job_slots = 1});
  std::atomic<std::size_t> samples_seen{0};
  std::atomic<std::size_t> last_done{0};
  JobOptions options;
  options.analysis = JobAnalysis::kNone;
  options.events.on_sample_done =
      [&](const sops::core::JobSampleEvent& event) {
        ++samples_seen;
        last_done.store(event.samples_done);
        // The announced sample's slots are final: reading them here, off a
        // worker thread mid-run, is part of the contract.
        EXPECT_EQ(event.series->frames.sample(0, event.local_sample).size(),
                  event.series->particle_count());
      };
  const std::uint64_t id = manager.submit(small_job(5, 10), options);
  (void)manager.wait(id);
  EXPECT_EQ(samples_seen.load(), 10u);
  EXPECT_EQ(last_done.load(), 10u);
}

// ------------------------------------------------- concurrent bit parity

TEST(CoreJobManager, TwoConcurrentJobsMatchSequentialBatchRuns) {
  // The satellite acceptance test: two jobs sharing one machine pool under
  // admission control must produce recordings and curves bitwise-identical
  // to running each config alone, sequentially, in batch.
  const ConfiguredExperiment config_a = small_job(100, 10);
  const ConfiguredExperiment config_b = small_job(200, 6, 30);
  const EnsembleSeries solo_a = run_experiment(config_a.experiment);
  const EnsembleSeries solo_b = run_experiment(config_b.experiment);
  const AnalysisResult solo_a_analysis =
      analyze_self_organization(solo_a, config_a.analysis);

  JobManager manager(JobLimits{.machine_threads = 4, .job_slots = 2});
  JobOptions streamed;
  streamed.analysis = JobAnalysis::kStreamed;
  JobOptions record_only;
  record_only.analysis = JobAnalysis::kNone;
  const std::uint64_t a = manager.submit(config_a, streamed);
  const std::uint64_t b = manager.submit(config_b, record_only);
  JobOutcome outcome_b = manager.wait(b);
  JobOutcome outcome_a = manager.wait(a);

  EXPECT_TRUE(stores_bitwise_equal(solo_a, outcome_a.series));
  EXPECT_TRUE(stores_bitwise_equal(solo_b, outcome_b.series));
  EXPECT_EQ(solo_a.equilibrium_steps, outcome_a.series.equilibrium_steps);
  ASSERT_TRUE(outcome_a.analysis.has_value());
  ASSERT_EQ(outcome_a.analysis->points.size(), solo_a_analysis.points.size());
  for (std::size_t f = 0; f < solo_a_analysis.points.size(); ++f) {
    EXPECT_EQ(outcome_a.analysis->points[f].multi_information,
              solo_a_analysis.points[f].multi_information);
  }
}

// ------------------------------------------------------------- admission

TEST(CoreJobManager, RejectsJobWhoseResidentFootprintExceedsBudget) {
  JobLimits limits;
  limits.machine_threads = 1;
  limits.job_slots = 1;
  limits.memory_budget_bytes = 1024;  // way below any heap recording
  JobManager manager(limits);

  EXPECT_THROW((void)manager.submit(small_job(1)), Error);

  // The same payload spilled to a mapped store projects to ~zero resident
  // bytes and must be admitted.
  ConfiguredExperiment mapped = small_job(1);
  mapped.experiment.storage.mode = StorageMode::kMapped;
  mapped.experiment.storage.spill_dir = ::testing::TempDir();
  JobOptions options;
  options.analysis = JobAnalysis::kNone;
  const std::uint64_t id = manager.submit(mapped, options);
  const JobOutcome outcome = manager.wait(id);
  EXPECT_EQ(outcome.series.sample_count(), 8u);
}

TEST(CoreJobManager, QueuesJobsUntilResidentBudgetFrees) {
  const ConfiguredExperiment config = small_job(9, 6);
  const std::size_t resident =
      JobManager::projected_resident_bytes(config.experiment);
  ASSERT_GT(resident, 0u);

  // Two slots but a budget that fits exactly one job: they must run one
  // after the other, and both must still complete.
  JobLimits limits;
  limits.machine_threads = 2;
  limits.job_slots = 2;
  limits.memory_budget_bytes = resident;
  JobManager manager(limits);
  JobOptions options;
  options.analysis = JobAnalysis::kNone;
  const std::uint64_t a = manager.submit(config, options);
  const std::uint64_t b = manager.submit(small_job(9, 6), options);
  const JobOutcome outcome_a = manager.wait(a);
  const JobOutcome outcome_b = manager.wait(b);
  EXPECT_TRUE(stores_bitwise_equal(outcome_a.series, outcome_b.series));
}

// ---------------------------------------------------------- cancellation

TEST(CoreJobManager, CancelQueuedJobTerminatesImmediately) {
  const ConfiguredExperiment config = small_job(3, 6);
  const std::size_t resident =
      JobManager::projected_resident_bytes(config.experiment);
  JobLimits limits;
  limits.machine_threads = 1;
  limits.job_slots = 1;
  limits.memory_budget_bytes = resident;  // second job must queue
  JobManager manager(limits);
  JobOptions options;
  options.analysis = JobAnalysis::kNone;
  const std::uint64_t running = manager.submit(config, options);
  const std::uint64_t queued = manager.submit(small_job(4, 6), options);
  EXPECT_TRUE(manager.cancel(queued));
  EXPECT_THROW((void)manager.wait(queued), CancelledError);
  EXPECT_EQ(manager.status(queued).state, JobState::kCancelled);
  (void)manager.wait(running);
  EXPECT_FALSE(manager.cancel(queued));  // already terminal
  EXPECT_FALSE(manager.cancel(999));     // unknown id
}

TEST(CoreJobManager, CancellationFuzzReclaimsEverything) {
  // Cancel at staggered points across storage modes × thread counts. At
  // every cut point: the spill directory ends empty (scratch files
  // unlinked during unwind), the manager keeps serving (slices returned),
  // and a follow-up job on the same manager still matches a solo run
  // bitwise — cancellation must never bleed into later jobs.
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "job_fuzz_spill")
          .string();
  std::filesystem::create_directories(spill_dir);
  const EnsembleSeries reference =
      run_experiment(small_job(42, 6).experiment);

  const std::vector<StorageMode> modes{StorageMode::kHeap,
                                       StorageMode::kMapped,
                                       StorageMode::kAuto};
  const std::vector<std::size_t> thread_counts{1, 4};
  std::size_t cut = 0;
  for (const StorageMode mode : modes) {
    for (const std::size_t threads : thread_counts) {
      JobManager manager(
          JobLimits{.machine_threads = threads, .job_slots = 2});
      // A long job: enough steps that every staggered cancel lands mid-run.
      ConfiguredExperiment victim = small_job(7, 8, 4000);
      victim.experiment.storage.mode = mode;
      victim.experiment.storage.spill_dir = spill_dir;
      victim.experiment.storage.auto_spill_bytes = 1;  // kAuto: force spill
      JobOptions options;
      options.analysis = JobAnalysis::kNone;
      const std::uint64_t id = manager.submit(victim, options);
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + 7 * cut));
      ++cut;
      manager.cancel(id);
      try {
        (void)manager.wait(id);
        // The job may legitimately win the race and complete.
        EXPECT_EQ(manager.status(id).state, JobState::kDone);
      } catch (const CancelledError&) {
        EXPECT_EQ(manager.status(id).state, JobState::kCancelled);
      }
      EXPECT_EQ(spill_files_in(spill_dir), 0u)
          << "leaked spill file after cancel (mode " << static_cast<int>(mode)
          << ", threads " << threads << ")";

      // The same manager must still run a clean job to the exact
      // reference bits.
      const std::uint64_t follow_up = manager.submit(small_job(42, 6), options);
      const JobOutcome outcome = manager.wait(follow_up);
      EXPECT_TRUE(stores_bitwise_equal(reference, outcome.series));
    }
  }
  std::filesystem::remove_all(spill_dir);
}

TEST(CoreJobManager, CancelledShardKeepsValidManifestAndResumes) {
  const std::string shard_path =
      (std::filesystem::path(::testing::TempDir()) / "job_cancel.shard")
          .string();
  std::filesystem::remove(shard_path);
  std::filesystem::remove(shard_path + ".manifest");

  ConfiguredExperiment sharded = small_job(11, 10, 400);
  sharded.experiment.shard.path = shard_path;
  JobOptions options;
  options.analysis = JobAnalysis::kNone;

  {
    JobManager manager(JobLimits{.machine_threads = 2, .job_slots = 1});
    const std::uint64_t id = manager.submit(sharded, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    manager.cancel(id);
    try {
      (void)manager.wait(id);
    } catch (const CancelledError&) {
    }
  }

  // Whatever the cancel left behind, a resume must complete the shard and
  // match an uninterrupted run bitwise — the manifest only ever marks
  // samples whose bytes reached disk.
  ConfiguredExperiment resumed_config = sharded;
  resumed_config.experiment.shard.resume = true;
  JobManager manager(JobLimits{.machine_threads = 2, .job_slots = 1});
  const std::uint64_t id = manager.submit(resumed_config, options);
  const JobOutcome resumed = manager.wait(id);

  ConfiguredExperiment reference_config = small_job(11, 10, 400);
  const EnsembleSeries reference =
      run_experiment(reference_config.experiment);
  EXPECT_TRUE(stores_bitwise_equal(reference, resumed.series));

  std::filesystem::remove(shard_path);
  std::filesystem::remove(shard_path + ".manifest");
}

TEST(CoreJobManager, ShutdownTokenCancelsRunningJobs) {
  JobManager manager(JobLimits{.machine_threads = 2, .job_slots = 2});
  JobOptions options;
  options.analysis = JobAnalysis::kNone;
  const std::uint64_t id = manager.submit(small_job(2, 8, 4000), options);
  manager.shutdown_token().request();  // what a SIGINT handler does
  EXPECT_THROW((void)manager.wait(id), CancelledError);
}

// --------------------------------------------------------- serialization

TEST(CoreJobSerialization, SampleCsvIsTheExactRecordedGrid) {
  const EnsembleSeries series = run_experiment(small_job(8, 4).experiment);
  const std::string csv = sops::core::sample_recording_csv(series, 2);
  // Header plus one row per (frame, particle).
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, 1 + series.frame_count() * series.particle_count());
  EXPECT_EQ(csv.rfind("frame,step,particle,x,y\n", 0), 0u);
  // Spot-check the first data row against the store, max precision.
  char expected[128];
  const auto positions = series.frames.sample(0, 2);
  std::snprintf(expected, sizeof expected, "%zu,%zu,%zu,%.17g,%.17g\n",
                std::size_t{0}, series.frame_steps[0], std::size_t{0},
                positions[0].x, positions[0].y);
  EXPECT_NE(csv.find(expected), std::string::npos);
}

TEST(CoreJobSerialization, StatusJsonEscapesAndRoundsTrip) {
  JobStatus status;
  status.id = 7;
  status.state = JobState::kFailed;
  status.samples_done = 3;
  status.samples_total = 9;
  status.error = "bad \"path\"\nline2";
  const std::string json = sops::core::job_status_json(status);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_NE(json.find("\\\"path\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must stay one line";
}

TEST(CoreJobSerialization, FootprintProjection) {
  const ConfiguredExperiment config = small_job(1, 8, 20);
  const std::size_t n = config.experiment.simulation.types.size();
  // steps=20, stride=10 → frames {0, 10, 20} = 3 recorded frames.
  const std::size_t expected = 3 * 8 * n * sizeof(sops::geom::Vec2);
  EXPECT_EQ(JobManager::projected_payload_bytes(config.experiment), expected);
  EXPECT_EQ(JobManager::projected_resident_bytes(config.experiment), expected);

  ConfiguredExperiment mapped = config;
  mapped.experiment.storage.mode = StorageMode::kMapped;
  EXPECT_EQ(JobManager::projected_resident_bytes(mapped.experiment), 0u);

  ConfiguredExperiment sharded = config;
  sharded.experiment.shard.path = "x.shard";
  sharded.experiment.shard.index = 1;
  sharded.experiment.shard.count = 3;
  // Shard: slots chunk_range(1, 8, 3) → 3 samples, resident-free.
  EXPECT_EQ(JobManager::projected_payload_bytes(sharded.experiment),
            3 * 3 * n * sizeof(sops::geom::Vec2));
  EXPECT_EQ(JobManager::projected_resident_bytes(sharded.experiment), 0u);
}

}  // namespace
