// KDE multi-information tests (the paper's slow/high-variance baseline).
#include <gtest/gtest.h>

#include <cmath>

#include "info/entropy.hpp"
#include "info/kde.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace {

using sops::info::Block;
using sops::info::gaussian_mi_bits;
using sops::info::KdeOptions;
using sops::info::kde_log2_density;
using sops::info::multi_information_kde;
using sops::info::SampleMatrix;
using sops::rng::Xoshiro256;

SampleMatrix correlated_pair(std::size_t m, double rho, std::uint64_t seed) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, 2);
  for (std::size_t s = 0; s < m; ++s) {
    const double x = sops::rng::standard_normal(engine);
    samples(s, 0) = x;
    samples(s, 1) = rho * x + std::sqrt(1 - rho * rho) *
                                  sops::rng::standard_normal(engine);
  }
  return samples;
}

TEST(KdeDensity, IntegratesToRoughlyOne) {
  // Mean density over samples of a standard normal ≈ E[p(X)] = 1/(2√π).
  Xoshiro256 engine(3);
  SampleMatrix samples(1500, 1);
  for (std::size_t s = 0; s < 1500; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
  }
  const auto log_density = kde_log2_density(samples, Block{0, 1});
  double mean_density = 0.0;
  for (const double v : log_density) mean_density += std::exp2(v);
  mean_density /= static_cast<double>(log_density.size());
  EXPECT_NEAR(mean_density, 1.0 / (2.0 * std::sqrt(std::numbers::pi)), 0.02);
}

TEST(KdeDensity, HigherAtTheMode) {
  Xoshiro256 engine(5);
  SampleMatrix samples(500, 1);
  for (std::size_t s = 0; s < 500; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
  }
  // Compare the density at the sample nearest 0 and nearest 2.5.
  std::size_t near_mode = 0;
  std::size_t near_tail = 0;
  for (std::size_t s = 0; s < 500; ++s) {
    if (std::abs(samples(s, 0)) < std::abs(samples(near_mode, 0))) near_mode = s;
    if (std::abs(samples(s, 0) - 2.5) < std::abs(samples(near_tail, 0) - 2.5)) {
      near_tail = s;
    }
  }
  const auto log_density = kde_log2_density(samples, Block{0, 1});
  EXPECT_GT(log_density[near_mode], log_density[near_tail]);
}

TEST(KdeMi, IndependentNearZero) {
  Xoshiro256 engine(7);
  SampleMatrix samples(800, 2);
  for (std::size_t s = 0; s < 800; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
    samples(s, 1) = sops::rng::standard_normal(engine);
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_kde(samples, blocks), 0.0, 0.15);
}

class KdeGaussianMi : public ::testing::TestWithParam<double> {};

TEST_P(KdeGaussianMi, TracksClosedFormLoosely) {
  // KDE MI is biased (bandwidth smoothing); require the right order and
  // rough magnitude rather than tight agreement — the tight estimator is
  // KSG, which is the point of the paper's comparison.
  const double rho = GetParam();
  const SampleMatrix samples = correlated_pair(1000, rho, 11);
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  const double estimated = multi_information_kde(samples, blocks);
  const double expected = gaussian_mi_bits(rho);
  EXPECT_NEAR(estimated, expected, 0.25 + 0.3 * expected) << rho;
}

INSTANTIATE_TEST_SUITE_P(Correlations, KdeGaussianMi,
                         ::testing::Values(0.3, 0.6, 0.9));

TEST(KdeMi, MonotoneInCorrelation) {
  double previous = -1.0;
  for (const double rho : {0.0, 0.5, 0.9}) {
    const SampleMatrix samples = correlated_pair(600, rho, 13);
    const std::vector<Block> blocks{{0, 1}, {1, 1}};
    const double mi = multi_information_kde(samples, blocks);
    EXPECT_GT(mi, previous) << rho;
    previous = mi;
  }
}

TEST(KdeMi, DegenerateConstantBlockStaysFinite) {
  // A zero-variance marginal gets a nominal bandwidth; the estimate is then
  // biased (the joint and marginal normalizations no longer cancel) but must
  // remain finite — no NaN/Inf from log(0).
  SampleMatrix samples(100, 2);
  Xoshiro256 engine(17);
  for (std::size_t s = 0; s < 100; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
    samples(s, 1) = 42.0;  // constant marginal
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_TRUE(std::isfinite(multi_information_kde(samples, blocks)));
}

TEST(KdeMi, PreconditionsEnforced) {
  SampleMatrix samples(1, 2);
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_THROW((void)multi_information_kde(samples, blocks),
               sops::PreconditionError);

  SampleMatrix ok = correlated_pair(50, 0.5, 19);
  KdeOptions bad;
  bad.bandwidth_scale = 0.0;
  EXPECT_THROW((void)multi_information_kde(ok, blocks, bad),
               sops::PreconditionError);
}

TEST(KdeMultiInformation, LentExecutorMatchesThreadsForm) {
  // KdeOptions::executor mirrors KsgOptions::executor: a lent persistent
  // pool replaces per-call forks and never changes the estimate.
  const SampleMatrix samples = correlated_pair(400, 0.8, 21);
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  KdeOptions threaded;
  threaded.threads = 2;
  sops::support::TaskPool pool(3);
  KdeOptions pooled;
  pooled.executor = &pool.executor();
  EXPECT_DOUBLE_EQ(multi_information_kde(samples, blocks, threaded),
                   multi_information_kde(samples, blocks, pooled));
}

}  // namespace
