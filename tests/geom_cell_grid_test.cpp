// Cell-grid tests: neighbor sets must match the brute-force oracle for any
// point distribution, including points far from the origin (hashed cells).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/cell_grid.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::CellGrid;
using sops::geom::Vec2;

std::vector<Vec2> random_cloud(std::size_t n, double extent, std::uint64_t seed,
                               Vec2 offset = {}) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(offset + Vec2{sops::rng::uniform(engine, -extent, extent),
                                   sops::rng::uniform(engine, -extent, extent)});
  }
  return points;
}

std::vector<std::size_t> brute_force_neighbors(const std::vector<Vec2>& points,
                                               std::size_t i, double radius) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j != i && dist_sq(points[j], points[i]) < radius * radius) {
      out.push_back(j);
    }
  }
  return out;
}

struct GridCase {
  std::size_t n;
  double extent;
  double radius;
  Vec2 offset;
};

class CellGridVsBruteForce : public ::testing::TestWithParam<GridCase> {};

TEST_P(CellGridVsBruteForce, NeighborSetsMatch) {
  const auto& param = GetParam();
  const auto points =
      random_cloud(param.n, param.extent, 1234, param.offset);
  const CellGrid grid(points, param.radius);

  for (std::size_t i = 0; i < points.size(); ++i) {
    auto expected = brute_force_neighbors(points, i, param.radius);
    auto actual = grid.neighbors_of(i, param.radius);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "particle " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CellGridVsBruteForce,
    ::testing::Values(GridCase{1, 1.0, 1.0, {}}, GridCase{2, 0.1, 1.0, {}},
                      GridCase{50, 5.0, 1.5, {}}, GridCase{200, 10.0, 2.0, {}},
                      GridCase{100, 3.0, 3.0, {1e6, -1e6}},
                      GridCase{150, 20.0, 0.5, {-17.3, 42.0}},
                      GridCase{64, 0.01, 2.0, {}}));  // all in one cell

TEST(CellGrid, ForEachWithinArbitraryQueryPoint) {
  const auto points = random_cloud(80, 5.0, 9);
  const double radius = 2.0;
  const CellGrid grid(points, radius);
  const Vec2 q{0.5, -0.25};

  std::vector<std::size_t> actual;
  grid.for_each_within(q, radius, [&](std::size_t j) { actual.push_back(j); });

  std::vector<std::size_t> expected;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (dist(points[j], q) < radius) expected.push_back(j);
  }
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(CellGrid, RadiusIsStrict) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}};
  const CellGrid grid(points, 1.0);
  EXPECT_TRUE(grid.neighbors_of(0, 1.0).empty());  // dist == radius excluded
}

TEST(CellGrid, RadiusLargerThanCellThrows) {
  const std::vector<Vec2> points{{0, 0}};
  const CellGrid grid(points, 1.0);
  EXPECT_THROW((void)grid.neighbors_of(0, 2.0), sops::PreconditionError);
}

TEST(CellGrid, QueryRadiusBelowCellSizeIsAllowed) {
  const auto points = random_cloud(40, 2.0, 13);
  const CellGrid grid(points, 5.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto expected = brute_force_neighbors(points, i, 1.0);
    auto actual = grid.neighbors_of(i, 1.0);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(CellGrid, InvalidCellSizeThrows) {
  const std::vector<Vec2> points{{0, 0}};
  EXPECT_THROW(CellGrid(points, 0.0), sops::PreconditionError);
  EXPECT_THROW(CellGrid(points, -1.0), sops::PreconditionError);
  EXPECT_THROW(
      CellGrid(points, std::numeric_limits<double>::infinity()),
      sops::PreconditionError);
}

TEST(CellGrid, IndexOutOfRangeThrows) {
  const std::vector<Vec2> points{{0, 0}};
  const CellGrid grid(points, 1.0);
  EXPECT_THROW((void)grid.neighbors_of(1, 1.0), sops::PreconditionError);
}

TEST(CellGrid, CoincidentPointsSeeEachOther) {
  const std::vector<Vec2> points{{1, 1}, {1, 1}, {1, 1}};
  const CellGrid grid(points, 1.0);
  EXPECT_EQ(grid.neighbors_of(0, 1.0).size(), 2u);
}

TEST(CellGridRebuild, UnbuiltGridRejectsQueriesAndSizelessRebuild) {
  CellGrid grid;
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 0.0);
  // Queries on an unbuilt grid see no candidates (no UB, no probe loop).
  bool called = false;
  grid.for_each_within({0.5, 0.5}, 1.0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const std::vector<Vec2> points{{0, 0}};
  EXPECT_THROW(grid.rebuild(points), sops::PreconditionError);
  grid.rebuild(points, 1.0);
  EXPECT_EQ(grid.size(), 1u);
}

TEST(CellGridRebuild, MatchesFreshConstructionOnMovingPoints) {
  // Rebuilding in place over a drifting cloud must agree with a freshly
  // constructed grid at every step — same neighbor sets AND the same
  // enumeration order (the engine's bitwise contract).
  sops::rng::Xoshiro256 engine(77);
  auto points = random_cloud(120, 6.0, 77);
  CellGrid reused(points, 1.5);
  for (int step = 0; step < 130; ++step) {  // crosses the pruning interval
    for (Vec2& p : points) {
      p += Vec2{sops::rng::uniform(engine, -0.3, 0.3),
                sops::rng::uniform(engine, -0.3, 0.3)};
    }
    reused.rebuild(points);
    const CellGrid fresh(points, 1.5);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::vector<std::size_t> from_reused;
      std::vector<std::size_t> from_fresh;
      reused.for_each_neighbor(i, 1.5,
                               [&](std::size_t j) { from_reused.push_back(j); });
      fresh.for_each_neighbor(i, 1.5,
                              [&](std::size_t j) { from_fresh.push_back(j); });
      ASSERT_EQ(from_reused, from_fresh) << "step " << step << " particle " << i;
    }
  }
}

TEST(CellGridRebuild, RebuildCanChangeCellSizeAndPointCount) {
  CellGrid grid(random_cloud(50, 5.0, 3), 2.0);
  const auto more_points = random_cloud(200, 8.0, 4);
  grid.rebuild(more_points, 1.0);
  EXPECT_EQ(grid.size(), 200u);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 1.0);
  for (std::size_t i = 0; i < more_points.size(); ++i) {
    auto expected = brute_force_neighbors(more_points, i, 1.0);
    auto actual = grid.neighbors_of(i, 1.0);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(CellGridRebuild, OccupiedCellCountIsReported) {
  // Four points in four distinct cells, then all in one cell.
  CellGrid grid(std::vector<Vec2>{{0.5, 0.5}, {1.5, 0.5}, {0.5, 1.5}, {1.5, 1.5}},
                1.0);
  EXPECT_EQ(grid.cell_count(), 4u);
  const std::vector<Vec2> clustered{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}, {0.4, 0.4}};
  grid.rebuild(clustered);
  EXPECT_EQ(grid.cell_count(), 1u);
}

}  // namespace
