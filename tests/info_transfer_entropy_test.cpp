// Transfer-entropy tests: directionality on coupled autoregressive
// processes with known coupling structure.
#include <gtest/gtest.h>

#include <cmath>

#include "info/transfer_entropy.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace {

using sops::info::Block;
using sops::info::conditional_mutual_information_ksg;
using sops::info::SampleMatrix;
using sops::info::transfer_entropy;
using sops::info::TransferEntropyOptions;
using sops::rng::Xoshiro256;

// X drives Y: x_{t+1} = a·x_t + ξ, y_{t+1} = b·y_t + c·x_t + η.
struct CoupledSeries {
  std::vector<double> x;
  std::vector<double> y;
};

CoupledSeries coupled_ar(std::size_t steps, double coupling,
                         std::uint64_t seed) {
  Xoshiro256 engine(seed);
  CoupledSeries series;
  double x = 0.0;
  double y = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    series.x.push_back(x);
    series.y.push_back(y);
    const double x_next = 0.5 * x + sops::rng::standard_normal(engine);
    y = 0.4 * y + coupling * x + 0.5 * sops::rng::standard_normal(engine);
    x = x_next;
  }
  return series;
}

TEST(ConditionalMi, ZeroWhenAIndependentOfBGivenC) {
  // A ⊥ B, both independent of C: I(A;B|C) ≈ 0.
  Xoshiro256 engine(3);
  const std::size_t m = 800;
  SampleMatrix samples(m, 3);
  for (std::size_t s = 0; s < m; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
    samples(s, 1) = sops::rng::standard_normal(engine);
    samples(s, 2) = sops::rng::standard_normal(engine);
  }
  const double cmi = conditional_mutual_information_ksg(
      samples, Block{0, 1}, Block{1, 1}, Block{2, 1});
  EXPECT_NEAR(cmi, 0.0, 0.1);
}

TEST(ConditionalMi, RecoversDirectDependence) {
  // B = A + noise, C independent: I(A;B|C) = I(A;B) > 0.
  Xoshiro256 engine(5);
  const std::size_t m = 800;
  SampleMatrix samples(m, 3);
  for (std::size_t s = 0; s < m; ++s) {
    const double a = sops::rng::standard_normal(engine);
    samples(s, 0) = a;
    samples(s, 1) = a + 0.3 * sops::rng::standard_normal(engine);
    samples(s, 2) = sops::rng::standard_normal(engine);
  }
  EXPECT_GT(conditional_mutual_information_ksg(samples, Block{0, 1},
                                               Block{1, 1}, Block{2, 1}),
            1.0);
}

TEST(ConditionalMi, ExplainsAwayMediatedDependence) {
  // A → C → B chain: A and B are dependent, but conditionally independent
  // given the mediator C, so I(A;B|C) ≈ 0 while I(A;B) > 0.
  Xoshiro256 engine(7);
  const std::size_t m = 1000;
  SampleMatrix samples(m, 3);
  for (std::size_t s = 0; s < m; ++s) {
    const double a = sops::rng::standard_normal(engine);
    const double c = a + 0.4 * sops::rng::standard_normal(engine);
    const double b = c + 0.4 * sops::rng::standard_normal(engine);
    samples(s, 0) = a;
    samples(s, 1) = b;
    samples(s, 2) = c;
  }
  const double cmi = conditional_mutual_information_ksg(
      samples, Block{0, 1}, Block{1, 1}, Block{2, 1});
  EXPECT_NEAR(cmi, 0.0, 0.12);
}

TEST(TransferEntropy, DetectsCouplingDirection) {
  const CoupledSeries series = coupled_ar(3000, 0.8, 11);
  const double forward = transfer_entropy(series.x, series.y, 1);
  const double backward = transfer_entropy(series.y, series.x, 1);
  EXPECT_GT(forward, 0.25);
  EXPECT_LT(backward, forward * 0.4);
  EXPECT_NEAR(backward, 0.0, 0.1);
}

TEST(TransferEntropy, ZeroForUncoupledProcesses) {
  const CoupledSeries series = coupled_ar(3000, 0.0, 13);
  EXPECT_NEAR(transfer_entropy(series.x, series.y, 1), 0.0, 0.08);
  EXPECT_NEAR(transfer_entropy(series.y, series.x, 1), 0.0, 0.08);
}

TEST(TransferEntropy, GrowsWithCouplingStrength) {
  double previous = -1.0;
  for (const double coupling : {0.0, 0.4, 0.9}) {
    const CoupledSeries series = coupled_ar(2000, coupling, 17);
    const double te = transfer_entropy(series.x, series.y, 1);
    EXPECT_GT(te, previous - 0.05) << coupling;
    previous = te;
  }
}

TEST(TransferEntropy, VectorValuedSeries) {
  // 2-D processes (like particle positions): x drives y in both components.
  Xoshiro256 engine(19);
  std::vector<double> x;
  std::vector<double> y;
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  for (std::size_t t = 0; t < 1500; ++t) {
    x.push_back(x0);
    x.push_back(x1);
    y.push_back(y0);
    y.push_back(y1);
    const double nx0 = 0.5 * x0 + sops::rng::standard_normal(engine);
    const double nx1 = 0.5 * x1 + sops::rng::standard_normal(engine);
    y0 = 0.4 * y0 + 0.7 * x0 + 0.4 * sops::rng::standard_normal(engine);
    y1 = 0.4 * y1 + 0.7 * x1 + 0.4 * sops::rng::standard_normal(engine);
    x0 = nx0;
    x1 = nx1;
  }
  const double forward = transfer_entropy(x, y, 2);
  const double backward = transfer_entropy(y, x, 2);
  EXPECT_GT(forward, backward + 0.3);
}

TEST(TransferEntropy, ThreadCountDoesNotChangeResult) {
  const CoupledSeries series = coupled_ar(800, 0.6, 23);
  TransferEntropyOptions serial;
  serial.threads = 1;
  TransferEntropyOptions parallel;
  parallel.threads = 4;
  EXPECT_DOUBLE_EQ(transfer_entropy(series.x, series.y, 1, serial),
                   transfer_entropy(series.x, series.y, 1, parallel));
}

TEST(TransferEntropy, LagTwoCoupling) {
  // Coupling with delay 2: TE at lag 2 sees it, lag 1 sees less.
  Xoshiro256 engine(29);
  std::vector<double> x(3000);
  std::vector<double> y(3000);
  for (std::size_t t = 0; t < 3000; ++t) {
    x[t] = 0.5 * (t > 0 ? x[t - 1] : 0.0) + sops::rng::standard_normal(engine);
    y[t] = 0.3 * (t > 0 ? y[t - 1] : 0.0) +
           (t >= 2 ? 0.8 * x[t - 2] : 0.0) +
           0.5 * sops::rng::standard_normal(engine);
  }
  TransferEntropyOptions lag2;
  lag2.lag = 2;
  const double te_lag2 = transfer_entropy(x, y, 1, lag2);
  EXPECT_GT(te_lag2, 0.1);
}

TEST(TransferEntropy, ParticleHelpers) {
  // Two "particles": particle 0 random walk, particle 1 chases particle 0.
  Xoshiro256 engine(31);
  std::vector<std::vector<sops::geom::Vec2>> frames;
  sops::geom::Vec2 leader{0, 0};
  sops::geom::Vec2 follower{1, 1};
  for (std::size_t t = 0; t < 1200; ++t) {
    frames.push_back({leader, follower});
    follower += (leader - follower) * 0.3 +
                sops::rng::normal_vec2(engine, 0.05);
    leader += sops::rng::normal_vec2(engine, 0.3);
  }
  const double forward =
      sops::info::particle_transfer_entropy(frames, 0, 1);
  const double backward =
      sops::info::particle_transfer_entropy(frames, 1, 0);
  EXPECT_GT(forward, backward);

  const auto matrix = sops::info::transfer_entropy_matrix(frames);
  EXPECT_DOUBLE_EQ(matrix[0][0], 0.0);
  EXPECT_DOUBLE_EQ(matrix[0][1], forward);
  EXPECT_DOUBLE_EQ(matrix[1][0], backward);
}

TEST(TransferEntropy, PreconditionsEnforced) {
  const std::vector<double> short_series{1.0, 2.0, 3.0};
  EXPECT_THROW((void)transfer_entropy(short_series, short_series, 1),
               sops::PreconditionError);
  const std::vector<double> a(100, 0.0);
  const std::vector<double> b(99, 0.0);
  EXPECT_THROW((void)transfer_entropy(a, b, 1), sops::PreconditionError);
  EXPECT_THROW((void)transfer_entropy(a, a, 3), sops::PreconditionError);
  TransferEntropyOptions zero_lag;
  zero_lag.lag = 0;
  EXPECT_THROW((void)transfer_entropy(a, a, 1, zero_lag),
               sops::PreconditionError);
}


TEST(ActiveInformationStorage, HigherForPersistentProcess) {
  // Strongly autocorrelated AR(1) stores more information than white noise.
  Xoshiro256 engine(41);
  std::vector<double> persistent;
  std::vector<double> white;
  double x = 0.0;
  for (std::size_t t = 0; t < 2500; ++t) {
    persistent.push_back(x);
    x = 0.9 * x + sops::rng::standard_normal(engine);
    white.push_back(sops::rng::standard_normal(engine));
  }
  const double ais_persistent =
      sops::info::active_information_storage(persistent, 1);
  const double ais_white = sops::info::active_information_storage(white, 1);
  EXPECT_GT(ais_persistent, 0.5);
  EXPECT_NEAR(ais_white, 0.0, 0.08);
  EXPECT_GT(ais_persistent, ais_white + 0.4);
}

TEST(ActiveInformationStorage, MatchesGaussianClosedForm) {
  // AR(1) with coefficient a: I(X_{t+1}; X_t) = -1/2 log2(1 - a^2).
  Xoshiro256 engine(43);
  const double a = 0.7;
  std::vector<double> series;
  double x = 0.0;
  for (std::size_t t = 0; t < 4000; ++t) {
    series.push_back(x);
    x = a * x + std::sqrt(1 - a * a) * sops::rng::standard_normal(engine);
  }
  const double expected = -0.5 * std::log2(1.0 - a * a);
  EXPECT_NEAR(sops::info::active_information_storage(series, 1), expected,
              0.1);
}

TEST(ActiveInformationStorage, ParticleHelperRuns) {
  Xoshiro256 engine(47);
  std::vector<std::vector<sops::geom::Vec2>> frames;
  sops::geom::Vec2 p{0, 0};
  for (std::size_t t = 0; t < 800; ++t) {
    frames.push_back({p});
    p = p * 0.8 + sops::rng::normal_vec2(engine, 0.5);
  }
  EXPECT_GT(sops::info::particle_active_information_storage(frames, 0), 0.3);
}

TEST(TransferEntropy, LentExecutorMatchesThreadsForm) {
  // TransferEntropyOptions::executor mirrors KsgOptions::executor; the
  // estimate never depends on who runs the per-sample queries.
  const CoupledSeries series = coupled_ar(400, 0.8, 9);
  TransferEntropyOptions threaded;
  threaded.threads = 2;
  sops::support::TaskPool pool(3);
  TransferEntropyOptions pooled;
  pooled.executor = &pool.executor();
  EXPECT_DOUBLE_EQ(transfer_entropy(series.x, series.y, 1, threaded),
                   transfer_entropy(series.x, series.y, 1, pooled));
  EXPECT_DOUBLE_EQ(
      sops::info::active_information_storage(series.y, 1, threaded),
      sops::info::active_information_storage(series.y, 1, pooled));
}

}  // namespace
