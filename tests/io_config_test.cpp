// Config parsing and experiment-builder tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/config_builder.hpp"
#include "io/config.hpp"
#include "support/error.hpp"

namespace {

using sops::core::build_experiment;
using sops::io::Config;

TEST(Config, ParsesKeysValuesCommentsBlanks) {
  const Config config = Config::parse(
      "# experiment\n"
      "samples = 100\n"
      "\n"
      "name = fig4 run   # trailing comment\n"
      "rc=5.5\n");
  EXPECT_EQ(config.get_size("samples", 0), 100u);
  EXPECT_EQ(config.get_string("name", ""), "fig4 run");
  EXPECT_DOUBLE_EQ(config.get_double("rc", 0.0), 5.5);
}

TEST(Config, FallbacksForMissingKeys) {
  const Config config = Config::parse("a = 1\n");
  EXPECT_EQ(config.get_string("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(config.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(config.get_size("missing", 7u), 7u);
  EXPECT_TRUE(config.get_bool("missing", true));
  EXPECT_TRUE(config.get_list("missing").empty());
  EXPECT_TRUE(config.get_matrix("missing").empty());
}

TEST(Config, LaterDuplicateWins) {
  const Config config = Config::parse("x = 1\nx = 2\n");
  EXPECT_DOUBLE_EQ(config.get_double("x", 0.0), 2.0);
}

TEST(Config, InfinityValue) {
  const Config config = Config::parse("rc = inf\n");
  EXPECT_TRUE(std::isinf(config.get_double("rc", 0.0)));
}

TEST(Config, Booleans) {
  const Config config = Config::parse("a = true\nb = 0\nc = yes\nd = false\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
  const Config bad = Config::parse("e = maybe\n");
  EXPECT_THROW((void)bad.get_bool("e", false), sops::Error);
}

TEST(Config, ListsAndMatrices) {
  const Config config = Config::parse(
      "list = 1.0 2.5 -3\n"
      "matrix = 1 2 ; 2 4\n");
  EXPECT_EQ(config.get_list("list"), (std::vector<double>{1.0, 2.5, -3.0}));
  const auto matrix = config.get_matrix("matrix");
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_EQ(matrix[0], (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(matrix[1], (std::vector<double>{2.0, 4.0}));
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW((void)Config::parse("no equals sign\n"), sops::Error);
  EXPECT_THROW((void)Config::parse("= value\n"), sops::Error);
}

TEST(Config, NonNumericValueThrows) {
  const Config config = Config::parse("x = not-a-number\n");
  EXPECT_THROW((void)config.get_double("x", 0.0), sops::Error);
}

TEST(Config, TrailingGarbageThrows) {
  // A half-parsed number is almost always a typo; "0.5abc" must not
  // silently become 0.5.
  const Config config = Config::parse("x = 0.5abc\nlist = 1.0 2.0zz\n");
  EXPECT_THROW((void)config.get_double("x", 0.0), sops::Error);
  EXPECT_THROW((void)config.get_size("x", 0), sops::Error);
  EXPECT_THROW((void)config.get_list("list"), sops::Error);
}

TEST(Config, RejectsStrtodLeniencies) {
  // strtod accepts hex floats and nan; neither belongs in experiment files.
  const Config config = Config::parse("a = 0x10\nb = nan\nc = NAN\n");
  for (const char* key : {"a", "b", "c"}) {
    EXPECT_THROW((void)config.get_double(key, 0.0), sops::Error) << key;
  }
  // The infinity spellings strtod always accepted still parse: any case,
  // optionally signed.
  for (const char* spelling : {"inf", "Inf", "INF", "infinity", "Infinity",
                               "+inf", "+Infinity"}) {
    const double parsed = Config::parse(std::string("rc = ") + spelling + "\n")
                              .get_double("rc", 0);
    EXPECT_TRUE(std::isinf(parsed) && parsed > 0) << spelling;
  }
  const double negative =
      Config::parse("x = -INF\n").get_double("x", 0);
  EXPECT_TRUE(std::isinf(negative) && negative < 0);
}

TEST(Config, OutOfRangeValuesThrow) {
  const Config config = Config::parse("big = 1e999\nneg = -1e999\n");
  EXPECT_THROW((void)config.get_double("big", 0.0), sops::Error);
  EXPECT_THROW((void)config.get_double("neg", 0.0), sops::Error);
  // Underflow-to-zero is not an error.
  EXPECT_DOUBLE_EQ(Config::parse("tiny = 1e-400\n").get_double("tiny", 1.0),
                   0.0);
}

TEST(Config, NonIntegerSizeThrows) {
  const Config config = Config::parse("n = 2.5\nm = -1\n");
  EXPECT_THROW((void)config.get_size("n", 0), sops::Error);
  EXPECT_THROW((void)config.get_size("m", 0), sops::Error);
}

TEST(Config, SizeBeyondSizeTypeThrows) {
  // These passed the integrality check and then hit an undefined
  // double-to-size_t cast; now they fail with the key named.
  const Config config = Config::parse("n = 1e30\nm = inf\n");
  EXPECT_THROW((void)config.get_size("n", 0), sops::Error);
  EXPECT_THROW((void)config.get_size("m", 0), sops::Error);
  // The largest exactly-representable values below 2^64 still parse.
  EXPECT_EQ(Config::parse("k = 1e15\n").get_size("k", 0),
            1000000000000000ull);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW((void)Config::load("/nonexistent/path.conf"), sops::Error);
}

TEST(ConfigBuilder, PresetWithOverrides) {
  const Config config = Config::parse(
      "preset = fig4\n"
      "samples = 123\n"
      "steps = 77\n"
      "stride = 11\n"
      "seed = 99\n");
  const auto configured = build_experiment(config);
  EXPECT_EQ(configured.experiment.samples, 123u);
  EXPECT_EQ(configured.experiment.simulation.steps, 77u);
  EXPECT_EQ(configured.experiment.simulation.record_stride, 11u);
  EXPECT_EQ(configured.experiment.simulation.seed, 99u);
  // Preset fields retained when not overridden.
  EXPECT_EQ(configured.experiment.simulation.types.size(), 50u);
  EXPECT_DOUBLE_EQ(configured.experiment.simulation.cutoff_radius, 5.0);
}

TEST(ConfigBuilder, CustomSystemWithMatrix) {
  const Config config = Config::parse(
      "force = spring\n"
      "types = 2\n"
      "particles = 10\n"
      "k = 2.0\n"
      "r = 1 3 ; 3 2\n"
      "rc = inf\n");
  const auto configured = build_experiment(config);
  const auto& model = configured.experiment.simulation.model;
  EXPECT_EQ(model.types(), 2u);
  EXPECT_DOUBLE_EQ(model.pair(0, 0).k, 2.0);
  EXPECT_DOUBLE_EQ(model.pair(0, 1).r, 3.0);
  EXPECT_DOUBLE_EQ(model.pair(1, 1).r, 2.0);
  EXPECT_TRUE(
      std::isinf(configured.experiment.simulation.cutoff_radius));
  EXPECT_EQ(configured.experiment.simulation.types.size(), 10u);
}

TEST(ConfigBuilder, NeighborModes) {
  for (const auto& [name, mode] :
       std::vector<std::pair<std::string, sops::sim::NeighborMode>>{
           {"auto", sops::sim::NeighborMode::kAuto},
           {"all_pairs", sops::sim::NeighborMode::kAllPairs},
           {"cell_grid", sops::sim::NeighborMode::kCellGrid},
           {"delaunay", sops::sim::NeighborMode::kDelaunay},
           {"verlet", sops::sim::NeighborMode::kVerletSkin}}) {
    // rc given because neighbor = verlet requires a finite positive cut-off.
    const Config config = Config::parse("neighbor = " + name + "\nrc = 3\n");
    EXPECT_EQ(build_experiment(config).experiment.simulation.neighbor_mode,
              mode)
        << name;
  }
  const Config bad = Config::parse("neighbor = quantum\n");
  EXPECT_THROW((void)build_experiment(bad), sops::Error);

  const Config skinned =
      Config::parse("neighbor = verlet\nrc = 3\nverlet_skin = 0.75\n");
  EXPECT_DOUBLE_EQ(build_experiment(skinned).experiment.simulation.verlet_skin,
                   0.75);
}

TEST(ConfigBuilder, RejectsInvalidVerletSetups) {
  // Zero/negative skin builds a backend that never skips a rebuild (or
  // misses pairs); catch it at config-build time with the key named.
  for (const char* skin : {"0", "-0.5", "inf"}) {
    const Config config = Config::parse(
        std::string("neighbor = verlet\nrc = 3\nverlet_skin = ") + skin + "\n");
    EXPECT_THROW((void)build_experiment(config), sops::Error) << skin;
  }
  // A bad skin is rejected even when another mode ignores it (typo guard).
  EXPECT_THROW((void)build_experiment(Config::parse(
                   "neighbor = cell_grid\nrc = 3\nverlet_skin = -1\n")),
               sops::Error);
  // verlet needs a finite positive rc: the candidate grid is built at
  // rc + skin.
  for (const char* rc : {"0", "-2", "inf"}) {
    const Config config = Config::parse(
        std::string("neighbor = verlet\nrc = ") + rc + "\n");
    EXPECT_THROW((void)build_experiment(config), sops::Error) << rc;
  }
  // The same rc values stay legal for other modes (rc = inf is the
  // documented unbounded all-pairs setup).
  EXPECT_EQ(build_experiment(Config::parse("neighbor = all_pairs\nrc = inf\n"))
                .experiment.simulation.neighbor_mode,
            sops::sim::NeighborMode::kAllPairs);
}

TEST(ConfigBuilder, FrameStorageModes) {
  using sops::core::StorageMode;
  EXPECT_EQ(build_experiment(Config::parse("")).experiment.storage.mode,
            StorageMode::kHeap);
  EXPECT_EQ(build_experiment(Config::parse("frame_storage = mapped\n"))
                .experiment.storage.mode,
            StorageMode::kMapped);
  EXPECT_EQ(build_experiment(Config::parse("frame_storage = auto\n"))
                .experiment.storage.mode,
            StorageMode::kAuto);
  EXPECT_THROW((void)build_experiment(Config::parse("frame_storage = disk\n")),
               sops::Error);

  const auto configured = build_experiment(Config::parse(
      "frame_storage = auto\n"
      "spill_dir = /tmp/spills\n"
      "spill_threshold_mb = 2\n"));
  EXPECT_EQ(configured.experiment.storage.spill_dir, "/tmp/spills");
  EXPECT_EQ(configured.experiment.storage.auto_spill_bytes, 2u << 20);

  // 'inf' disables auto spilling instead of hitting an undefined cast.
  EXPECT_EQ(build_experiment(Config::parse("spill_threshold_mb = inf\n"))
                .experiment.storage.auto_spill_bytes,
            std::numeric_limits<std::size_t>::max());
  EXPECT_THROW((void)build_experiment(
                   Config::parse("spill_threshold_mb = -1\n")),
               sops::Error);
}

TEST(ConfigBuilder, AnalysisOptions) {
  const Config config = Config::parse(
      "analysis_k = 7\n"
      "entropies = true\n"
      "decomposition = true\n"
      "kmeans_per_type = 3\n"
      "coarse_grain_above = 40\n");
  const auto configured = build_experiment(config);
  EXPECT_EQ(configured.analysis.ksg.k, 7u);
  EXPECT_TRUE(configured.analysis.compute_entropies);
  EXPECT_TRUE(configured.analysis.compute_decomposition);
  EXPECT_EQ(configured.analysis.kmeans_per_type, 3u);
  EXPECT_EQ(configured.analysis.coarse_grain_above, 40u);
}

TEST(ConfigBuilder, InvalidInputsThrow) {
  EXPECT_THROW((void)build_experiment(Config::parse("preset = fig99\n")),
               sops::Error);
  EXPECT_THROW((void)build_experiment(Config::parse("force = gravity\n")),
               sops::Error);
  EXPECT_THROW((void)build_experiment(Config::parse(
                   "types = 3\nr = 1 2 ; 2 1\n")),  // wrong matrix shape
               sops::Error);
  EXPECT_THROW((void)build_experiment(Config::parse(
                   "types = 2\nr = 1 2 ; 3 1\n")),  // asymmetric
               sops::Error);
}

TEST(ConfigBuilder, BuiltExperimentActuallyRuns) {
  const Config config = Config::parse(
      "preset = fig5\n"
      "samples = 6\n"
      "steps = 5\n"
      "stride = 5\n");
  const auto configured = build_experiment(config);
  const auto series = sops::core::run_experiment(configured.experiment);
  EXPECT_EQ(series.sample_count(), 6u);
  EXPECT_EQ(series.frame_steps.back(), 5u);
}

TEST(ConfigBuilder, KnownKeysNonEmptyAndContainCore) {
  const auto& keys = sops::core::known_config_keys();
  EXPECT_FALSE(keys.empty());
  for (const char* required : {"preset", "samples", "steps", "rc"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), required) != keys.end())
        << required;
  }
}

}  // namespace
