// Tests for rigid transforms, centroiding, and the Procrustes fit.
#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "geom/rigid_transform.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::centered;
using sops::geom::centroid;
using sops::geom::fit_rigid;
using sops::geom::mean_squared_error;
using sops::geom::optimal_rotation;
using sops::geom::RigidTransform2;
using sops::geom::Vec2;

constexpr double kPi = std::numbers::pi;

std::vector<Vec2> random_cloud(std::size_t n, std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({sops::rng::uniform(engine, -5, 5),
                      sops::rng::uniform(engine, -5, 5)});
  }
  return points;
}

TEST(Centroid, OfKnownPoints) {
  const std::vector<Vec2> points{{0, 0}, {2, 0}, {1, 3}};
  EXPECT_EQ(centroid(points), Vec2(1.0, 1.0));
}

TEST(Centroid, EmptyThrows) {
  EXPECT_THROW((void)centroid(std::vector<Vec2>{}), sops::PreconditionError);
}

TEST(Centered, HasZeroCentroid) {
  const auto out = centered(random_cloud(17, 1));
  const Vec2 c = centroid(out);
  EXPECT_NEAR(c.x, 0.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(RigidTransform, IdentityLeavesPointsFixed) {
  const auto identity = RigidTransform2::identity();
  EXPECT_EQ(identity.apply(Vec2{3, 4}), Vec2(3, 4));
}

TEST(RigidTransform, ApplyMatchesRotatePlusTranslate) {
  const RigidTransform2 g{kPi / 3.0, {1.0, -2.0}};
  const Vec2 p{2.0, 0.5};
  const Vec2 expected = rotated(p, kPi / 3.0) + Vec2{1.0, -2.0};
  const Vec2 actual = g.apply(p);
  EXPECT_NEAR(actual.x, expected.x, 1e-12);
  EXPECT_NEAR(actual.y, expected.y, 1e-12);
}

TEST(RigidTransform, InverseUndoes) {
  const RigidTransform2 g{0.8, {2.5, -1.0}};
  const Vec2 p{1.0, 7.0};
  const Vec2 back = g.inverse().apply(g.apply(p));
  EXPECT_NEAR(back.x, p.x, 1e-12);
  EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(RigidTransform, ComposeAppliesRightThenLeft) {
  const RigidTransform2 a{0.3, {1, 0}};
  const RigidTransform2 b{-0.9, {0, 2}};
  const Vec2 p{0.7, 0.1};
  const Vec2 via_compose = compose(a, b).apply(p);
  const Vec2 via_sequential = a.apply(b.apply(p));
  EXPECT_NEAR(via_compose.x, via_sequential.x, 1e-12);
  EXPECT_NEAR(via_compose.y, via_sequential.y, 1e-12);
}

class OptimalRotationAngles : public ::testing::TestWithParam<double> {};

TEST_P(OptimalRotationAngles, RecoversAppliedAngle) {
  const double angle = GetParam();
  const auto source = centered(random_cloud(25, 7));
  std::vector<Vec2> target;
  for (const Vec2 p : source) target.push_back(rotated(p, angle));
  const double recovered = optimal_rotation(source, target);
  // Compare as directions (angles wrap at ±π).
  EXPECT_NEAR(std::cos(recovered), std::cos(angle), 1e-10);
  EXPECT_NEAR(std::sin(recovered), std::sin(angle), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Angles, OptimalRotationAngles,
                         ::testing::Values(0.0, 0.2, kPi / 2, 2.0, kPi - 0.01,
                                           -0.4, -2.9));

TEST(OptimalRotation, SizeMismatchThrows) {
  const std::vector<Vec2> a{{1, 0}};
  const std::vector<Vec2> b{{1, 0}, {0, 1}};
  EXPECT_THROW((void)optimal_rotation(a, b), sops::PreconditionError);
}

TEST(OptimalRotation, DegenerateAllZeroGivesZero) {
  const std::vector<Vec2> zeros(4, Vec2{});
  EXPECT_DOUBLE_EQ(optimal_rotation(zeros, zeros), 0.0);
}

class FitRigidCase : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FitRigidCase, RecoversFullIsometry) {
  const auto [angle, tx, ty] = GetParam();
  const RigidTransform2 truth{angle, {tx, ty}};
  const auto source = random_cloud(30, 11);
  const auto target = truth.apply(source);

  const RigidTransform2 fitted = fit_rigid(source, target);
  const auto moved = fitted.apply(source);
  EXPECT_LT(mean_squared_error(moved, target), 1e-18);
}

INSTANTIATE_TEST_SUITE_P(
    Isometries, FitRigidCase,
    ::testing::Values(std::tuple{0.0, 0.0, 0.0}, std::tuple{1.1, 3.0, -2.0},
                      std::tuple{-2.7, 100.0, 50.0}, std::tuple{kPi, -1.0, 1.0},
                      std::tuple{0.001, 0.0, 10.0}));

TEST(FitRigid, NoiseGivesLeastSquaresFit) {
  // With symmetric noise the fit error must stay near the noise floor.
  const RigidTransform2 truth{0.6, {2, 1}};
  auto source = random_cloud(200, 13);
  auto target = truth.apply(source);
  sops::rng::Xoshiro256 engine(99);
  for (Vec2& p : target) p += sops::rng::normal_vec2(engine, 0.01);

  const RigidTransform2 fitted = fit_rigid(source, target);
  EXPECT_NEAR(fitted.angle, truth.angle, 0.01);
  EXPECT_LT(mean_squared_error(fitted.apply(source), target), 4e-4);
}

TEST(MeanSquaredError, KnownValue) {
  const std::vector<Vec2> a{{0, 0}, {1, 0}};
  const std::vector<Vec2> b{{0, 1}, {1, 2}};
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b), (1.0 + 4.0) / 2.0);
}

TEST(MeanSquaredError, MismatchThrows) {
  const std::vector<Vec2> a{{0, 0}};
  const std::vector<Vec2> b;
  EXPECT_THROW((void)mean_squared_error(a, b), sops::PreconditionError);
}

}  // namespace
