// SymmetricMatrix tests.
#include <gtest/gtest.h>

#include "sim/symmetric_matrix.hpp"
#include "support/error.hpp"

namespace {

using sops::sim::SymmetricMatrix;

TEST(SymmetricMatrix, FillConstructor) {
  const SymmetricMatrix m(3, 2.5);
  EXPECT_EQ(m.types(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) EXPECT_DOUBLE_EQ(m(a, b), 2.5);
  }
}

TEST(SymmetricMatrix, SetIsSymmetric) {
  SymmetricMatrix m(4);
  m.set(1, 3, 7.0);
  EXPECT_DOUBLE_EQ(m(1, 3), 7.0);
  EXPECT_DOUBLE_EQ(m(3, 1), 7.0);
  m.set(3, 1, -2.0);  // reversed order writes the same entry
  EXPECT_DOUBLE_EQ(m(1, 3), -2.0);
}

TEST(SymmetricMatrix, DiagonalEntries) {
  SymmetricMatrix m(2);
  m.set(0, 0, 1.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(SymmetricMatrix, EntriesAreIndependent) {
  SymmetricMatrix m(3, 0.0);
  // Write a distinct value per unordered pair and verify no aliasing.
  double v = 1.0;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a; b < 3; ++b) m.set(a, b, v++);
  }
  v = 1.0;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a; b < 3; ++b) EXPECT_DOUBLE_EQ(m(a, b), v++);
  }
}

TEST(SymmetricMatrix, FromFullAcceptsSymmetric) {
  const SymmetricMatrix m = SymmetricMatrix::from_full(
      {{1.0, 2.0}, {2.0, 3.0}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
}

TEST(SymmetricMatrix, FromFullRejectsAsymmetric) {
  EXPECT_THROW(SymmetricMatrix::from_full({{1.0, 2.0}, {2.5, 3.0}}),
               sops::PreconditionError);
}

TEST(SymmetricMatrix, FromFullRejectsRagged) {
  EXPECT_THROW(SymmetricMatrix::from_full({{1.0, 2.0}, {2.0}}),
               sops::PreconditionError);
}

TEST(SymmetricMatrix, MinMaxEntry) {
  SymmetricMatrix m(2, 1.0);
  m.set(0, 1, -4.0);
  m.set(1, 1, 9.0);
  EXPECT_DOUBLE_EQ(m.min_entry(), -4.0);
  EXPECT_DOUBLE_EQ(m.max_entry(), 9.0);
}

TEST(SymmetricMatrix, EmptyMatrixMinMaxIsZero) {
  const SymmetricMatrix m;
  EXPECT_DOUBLE_EQ(m.min_entry(), 0.0);
  EXPECT_DOUBLE_EQ(m.max_entry(), 0.0);
}

TEST(SymmetricMatrix, OutOfRangeThrows) {
  const SymmetricMatrix m(2);
  EXPECT_THROW((void)m(0, 2), sops::PreconditionError);
  EXPECT_THROW((void)m(2, 0), sops::PreconditionError);
}

TEST(SymmetricMatrix, Equality) {
  SymmetricMatrix a(2, 1.0);
  SymmetricMatrix b(2, 1.0);
  EXPECT_EQ(a, b);
  b.set(0, 1, 2.0);
  EXPECT_NE(a, b);
}

}  // namespace
