// Wire-level tests for the sopsd frame protocol: length-prefixed frames
// over local sockets. The framing layer must round-trip arbitrary payloads
// byte-exactly, distinguish a clean hang-up (EOF at a frame boundary →
// nullopt) from a torn one (EOF mid-frame → named error), and refuse
// absurd length prefixes instead of allocating them.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "io/frame_protocol.hpp"
#include "support/error.hpp"

namespace {

using sops::Error;
using sops::io::Frame;
using sops::io::FrameType;

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

std::string temp_socket_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(IoFrameProtocol, RoundTripsPayloadBytes) {
  SocketPair pair;
  const std::string payload = "samples = 12\nsteps = 20\n";
  sops::io::write_frame(pair.a, FrameType::kSubmit, payload);
  const auto frame = sops::io::read_frame(pair.b);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kSubmit);
  EXPECT_EQ(frame->payload, payload);
}

TEST(IoFrameProtocol, RoundTripsEmptyAndBinaryPayloads) {
  SocketPair pair;
  sops::io::write_frame(pair.a, FrameType::kStatus, "");
  std::string binary(1024, '\0');
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<char>(i * 31);  // includes NULs and high bytes
  }
  sops::io::write_frame(pair.a, FrameType::kSampleCsv, binary);

  const auto empty = sops::io::read_frame(pair.b);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->type, FrameType::kStatus);
  EXPECT_TRUE(empty->payload.empty());

  const auto blob = sops::io::read_frame(pair.b);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->payload, binary);
}

TEST(IoFrameProtocol, LargePayloadSurvivesPartialWrites) {
  // 4 MiB forces the writer through many short socket writes; a reader
  // thread drains concurrently so neither side deadlocks on buffers.
  SocketPair pair;
  std::string large(4u << 20, 'x');
  for (std::size_t i = 0; i < large.size(); i += 4097) {
    large[i] = static_cast<char>('a' + (i % 26));
  }
  std::optional<Frame> received;
  std::thread reader([&] { received = sops::io::read_frame(pair.b); });
  sops::io::write_frame(pair.a, FrameType::kCurveCsv, large);
  reader.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, FrameType::kCurveCsv);
  EXPECT_TRUE(received->payload == large);
}

TEST(IoFrameProtocol, CleanEofAtBoundaryIsNullopt) {
  SocketPair pair;
  pair.close_a();  // peer hangs up without sending anything
  const auto frame = sops::io::read_frame(pair.b);
  EXPECT_FALSE(frame.has_value());
}

TEST(IoFrameProtocol, EofMidFrameThrows) {
  SocketPair pair;
  // A header promising 100 payload bytes, then hang up after 3.
  const unsigned char header[5] = {100, 0, 0, 0,
                                   static_cast<unsigned char>(FrameType::kSubmit)};
  ASSERT_EQ(::send(pair.a, header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  ASSERT_EQ(::send(pair.a, "abc", 3, 0), 3);
  pair.close_a();
  EXPECT_THROW((void)sops::io::read_frame(pair.b), Error);
}

TEST(IoFrameProtocol, TruncatedHeaderThrows) {
  SocketPair pair;
  const unsigned char partial[2] = {1, 0};
  ASSERT_EQ(::send(pair.a, partial, sizeof partial, 0), 2);
  pair.close_a();
  EXPECT_THROW((void)sops::io::read_frame(pair.b), Error);
}

TEST(IoFrameProtocol, OversizedLengthPrefixRejectedBeforeAllocating) {
  SocketPair pair;
  // 0xFFFFFFFF-byte payload claim — must be rejected by the cap check, not
  // attempted.
  const unsigned char header[5] = {0xff, 0xff, 0xff, 0xff,
                                   static_cast<unsigned char>(FrameType::kWatch)};
  ASSERT_EQ(::send(pair.a, header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  EXPECT_THROW((void)sops::io::read_frame(pair.b), Error);
}

TEST(IoFrameProtocol, ListenConnectRoundTrip) {
  const std::string path = temp_socket_path("frame_proto_test.sock");
  const int listener = sops::io::listen_unix(path);
  ASSERT_GE(listener, 0);

  std::thread server([&] {
    const int client = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(client, 0);
    const auto request = sops::io::read_frame(client);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->type, FrameType::kStatus);
    sops::io::write_frame(client, FrameType::kStatusReport,
                          "{\"id\":1}\n" + request->payload);
    ::close(client);
  });

  const int fd = sops::io::connect_unix(path);
  ASSERT_GE(fd, 0);
  sops::io::write_frame(fd, FrameType::kStatus, "42");
  const auto reply = sops::io::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kStatusReport);
  EXPECT_EQ(reply->payload, "{\"id\":1}\n42");
  // Server closed after one exchange: next read is a clean EOF.
  EXPECT_FALSE(sops::io::read_frame(fd).has_value());
  ::close(fd);

  server.join();
  ::close(listener);
  std::filesystem::remove(path);
}

TEST(IoFrameProtocol, ListenReplacesStaleSocketFile) {
  const std::string path = temp_socket_path("frame_proto_stale.sock");
  const int first = sops::io::listen_unix(path);
  ASSERT_GE(first, 0);
  ::close(first);
  // The file is still on disk; a restarted daemon must be able to rebind.
  const int second = sops::io::listen_unix(path);
  ASSERT_GE(second, 0);
  ::close(second);
  std::filesystem::remove(path);
}

TEST(IoFrameProtocol, RejectsOverlongSocketPath) {
  const std::string path(200, 'p');  // exceeds sun_path on every platform
  EXPECT_THROW((void)sops::io::listen_unix(path), Error);
  EXPECT_THROW((void)sops::io::connect_unix(path), Error);
}

TEST(IoFrameProtocol, ConnectToMissingSocketThrows) {
  EXPECT_THROW(
      (void)sops::io::connect_unix(temp_socket_path("no_such_daemon.sock")),
      Error);
}

TEST(IoFrameProtocol, FrameTypeNamesAreStable) {
  EXPECT_STREQ(sops::io::to_string(FrameType::kSubmit), "submit");
  EXPECT_STREQ(sops::io::to_string(FrameType::kJobDone), "job_done");
}

}  // namespace
