// Cross-cutting integration sweeps: the full pipeline under every
// combination of force law and neighbor strategy, estimator-convention
// robustness, and end-to-end determinism of the whole measurement.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sops.hpp"

namespace {

using namespace sops;

struct PipelineCase {
  sim::ForceLawKind kind;
  sim::NeighborMode mode;
  double cutoff;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSweep, RunsCleanAndFinite) {
  const auto& param = GetParam();
  sim::InteractionModel model =
      param.kind == sim::ForceLawKind::kSpring
          ? sim::InteractionModel(sim::ForceLawKind::kSpring, 2,
                                  sim::PairParams{1.0, 1.5, 1.0, 1.0})
          : sim::InteractionModel(sim::ForceLawKind::kDoubleGaussian, 2,
                                  sim::PairParams{2.0, 1.0, 1.0, 3.0});
  sim::SimulationConfig simulation(std::move(model));
  simulation.types = sim::evenly_distributed_types(14, 2);
  simulation.cutoff_radius = param.cutoff;
  simulation.neighbor_mode = param.mode;
  simulation.steps = 25;
  simulation.record_stride = 25;
  simulation.init_disc_radius = 3.0;
  simulation.seed = 0xABC;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = 20;
  const core::AnalysisResult result =
      core::analyze_self_organization(core::run_experiment(experiment));
  for (const auto& point : result.points) {
    EXPECT_TRUE(std::isfinite(point.multi_information));
  }
  EXPECT_EQ(result.points.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Combinations, PipelineSweep,
    ::testing::Values(
        PipelineCase{sim::ForceLawKind::kSpring, sim::NeighborMode::kAllPairs,
                     sim::kUnboundedRadius},
        PipelineCase{sim::ForceLawKind::kSpring, sim::NeighborMode::kCellGrid,
                     4.0},
        PipelineCase{sim::ForceLawKind::kSpring, sim::NeighborMode::kDelaunay,
                     sim::kUnboundedRadius},
        PipelineCase{sim::ForceLawKind::kDoubleGaussian,
                     sim::NeighborMode::kAllPairs, sim::kUnboundedRadius},
        PipelineCase{sim::ForceLawKind::kDoubleGaussian,
                     sim::NeighborMode::kCellGrid, 4.0},
        PipelineCase{sim::ForceLawKind::kDoubleGaussian,
                     sim::NeighborMode::kDelaunay, 4.0}));

class ConventionSweep : public ::testing::TestWithParam<info::KsgConvention> {};

TEST_P(ConventionSweep, VerdictStableAcrossPsiConventions) {
  // The organizing verdict must not depend on the Eq.-18 ψ-convention
  // (DESIGN.md documents both).
  sim::SimulationConfig simulation = core::presets::fig4_three_type_collective();
  simulation.steps = 60;
  simulation.record_stride = 60;
  core::ExperimentConfig experiment(simulation);
  experiment.samples = 50;
  core::AnalysisOptions options;
  options.ksg.convention = GetParam();
  const core::AnalysisResult result =
      core::analyze_self_organization(core::run_experiment(experiment), options);
  EXPECT_GT(result.delta_mi(), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Conventions, ConventionSweep,
                         ::testing::Values(info::KsgConvention::kStandard,
                                           info::KsgConvention::kPaperLiteral));

TEST(EndToEnd, WholeMeasurementIsDeterministic) {
  // Simulation → alignment → estimation, twice, bit-identical.
  sim::SimulationConfig simulation = core::presets::fig12_enclosed_structure();
  simulation.steps = 30;
  simulation.record_stride = 15;
  core::ExperimentConfig experiment(simulation);
  experiment.samples = 25;

  const core::AnalysisResult a =
      core::analyze_self_organization(core::run_experiment(experiment));
  const core::AnalysisResult b =
      core::analyze_self_organization(core::run_experiment(experiment));
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.points[f].multi_information,
                     b.points[f].multi_information);
  }
}

TEST(EndToEnd, HugeNoiseStaysFiniteUnderClamp) {
  // Failure injection: absurd noise and stiff springs; the clamp and the
  // estimator must keep everything finite.
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 1,
                              sim::PairParams{50.0, 1.0, 1.0, 1.0});
  sim::SimulationConfig simulation(std::move(model));
  simulation.types = sim::evenly_distributed_types(10, 1);
  simulation.cutoff_radius = 5.0;
  simulation.integrator.noise_variance = 10.0;
  simulation.integrator.max_step = 1.0;
  simulation.steps = 20;
  simulation.record_stride = 20;
  simulation.seed = 0xBAD;

  core::ExperimentConfig experiment(simulation);
  experiment.samples = 15;
  const core::AnalysisResult result =
      core::analyze_self_organization(core::run_experiment(experiment));
  for (const auto& point : result.points) {
    EXPECT_TRUE(std::isfinite(point.multi_information));
  }
}

TEST(EndToEnd, TinyEnsembleAtEstimatorFloorWorks) {
  // m = k + 1, the minimum the estimator accepts.
  sim::SimulationConfig simulation = core::presets::fig5_single_type_rings();
  simulation.steps = 5;
  simulation.record_stride = 5;
  core::ExperimentConfig experiment(simulation);
  experiment.samples = 5;
  core::AnalysisOptions options;
  options.ksg.k = 4;
  EXPECT_NO_THROW(
      (void)core::analyze_self_organization(core::run_experiment(experiment),
                                            options));
}

TEST(EndToEnd, TwoParticleCollectiveWorks) {
  // The smallest meaningful collective.
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 1,
                              sim::PairParams{1.0, 2.0, 1.0, 1.0});
  sim::SimulationConfig simulation(std::move(model));
  simulation.types = sim::evenly_distributed_types(2, 1);
  simulation.steps = 10;
  simulation.record_stride = 10;
  core::ExperimentConfig experiment(simulation);
  experiment.samples = 20;
  const core::AnalysisResult result =
      core::analyze_self_organization(core::run_experiment(experiment));
  EXPECT_EQ(result.observer_count, 2u);
  EXPECT_TRUE(std::isfinite(result.delta_mi()));
}

TEST(EndToEnd, ManyTypesEachParticleDistinct) {
  // l = n edge case (every particle its own type) through the full
  // pipeline, including the permutation step (all permutations trivial).
  sim::SimulationConfig simulation = core::presets::fig9_random_types(
      /*type_count=*/12, /*cutoff_radius=*/10.0, /*matrix_index=*/0);
  simulation.types = sim::evenly_distributed_types(12, 12);
  simulation.steps = 15;
  simulation.record_stride = 15;
  core::ExperimentConfig experiment(simulation);
  experiment.samples = 15;
  const core::AnalysisResult result =
      core::analyze_self_organization(core::run_experiment(experiment));
  EXPECT_EQ(result.observer_count, 12u);
}

}  // namespace
