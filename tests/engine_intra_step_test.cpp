// Intra-step parallelism: thread-invariance matrix and golden pins.
//
// The cell-sharded drift path must be bitwise-identical for any thread
// count and any ParallelPolicy — sharding only redistributes which worker
// computes which particle; every particle keeps its serial neighbor
// enumeration order. These tests pin that contract at three levels: raw
// drift sums, full fixed-seed trajectories, and whole recorded ensembles,
// plus hex-literal golden values for the sharded path at n = 1024.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "geom/cell_grid.hpp"
#include "geom/neighbor_backend.hpp"
#include "geom/position_lanes.hpp"
#include "rng/samplers.hpp"
#include "sim/drift_kernel.hpp"
#include "sim/parallel_policy.hpp"
#include "sim/simulation.hpp"
#include "support/executor.hpp"
#include "support/parallel_for.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::accumulate_drift;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::PairParams;
using sops::sim::PairScalingTable;
using sops::sim::ParallelPolicy;
using sops::sim::ParticleSystem;
using sops::sim::resolve_parallel_policy;
using sops::sim::run_simulation;
using sops::sim::SimulationConfig;
using sops::sim::ThreadBudget;
using sops::sim::Trajectory;

constexpr std::size_t kThreadMatrix[] = {1, 2, 3, 8};

ParticleSystem random_system(std::size_t n, double radius, std::size_t types,
                             std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<Vec2> positions;
  std::vector<sops::sim::TypeId> type_ids;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(sops::rng::uniform_disc(engine, radius));
    type_ids.push_back(static_cast<sops::sim::TypeId>(i % types));
  }
  return {std::move(positions), std::move(type_ids)};
}

InteractionModel spring_model(std::size_t types) {
  return InteractionModel(ForceLawKind::kSpring, types,
                          PairParams{1.0, 2.0, 1.0, 1.0});
}

// ------------------------------------------------------ drift invariance

TEST(IntraStepInvariance, DriftBitwiseAcrossThreadCounts) {
  const auto system = random_system(500, 17.0, 3, 91);
  const auto model = spring_model(3);
  const PairScalingTable table(model);
  for (const sops::geom::NeighborBackendKind kind :
       {sops::geom::NeighborBackendKind::kAllPairs,
        sops::geom::NeighborBackendKind::kCellGrid,
        sops::geom::NeighborBackendKind::kDelaunay}) {
    std::vector<Vec2> reference;
    {
      const auto backend = sops::geom::make_neighbor_backend(kind);
      accumulate_drift(system, table, 3.0, reference, *backend, 1);
    }
    for (const std::size_t threads : kThreadMatrix) {
      const auto backend = sops::geom::make_neighbor_backend(kind);
      std::vector<Vec2> sharded;
      accumulate_drift(system, table, 3.0, sharded, *backend, threads);
      ASSERT_EQ(reference.size(), sharded.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i], sharded[i])
            << "kind " << static_cast<int>(kind) << " threads " << threads
            << " i " << i;
      }
    }
  }
}

TEST(IntraStepInvariance, PooledDriftBitwiseMatchesSerialAndSpawn) {
  // The pooled dispatch (the engine's path) against the serial loop and the
  // fork-per-call path, across pool widths — including widths far above the
  // core count and a worker-starved pool against a wide shard partition.
  const auto system = random_system(700, 19.0, 3, 123);
  const auto model = spring_model(3);
  const PairScalingTable table(model);
  std::vector<Vec2> reference;
  {
    sops::geom::CellGridBackend backend;
    accumulate_drift(system, table, 3.0, reference, backend, 1);
  }
  for (const std::size_t width : {2u, 3u, 8u, 32u}) {
    sops::support::TaskPool pool(width);
    sops::geom::CellGridBackend backend;
    std::vector<Vec2> pooled;
    accumulate_drift(system, table, 3.0, pooled, backend, pool.executor());
    ASSERT_EQ(reference.size(), pooled.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], pooled[i]) << "width " << width << " i " << i;
    }
  }
}

TEST(IntraStepInvariance, DriftAfterPartitionedThrowIsBitwiseUnaffected) {
  // Engine-shaped exception safety: the sample × step fan-out
  // (run_partitioned lending inner executors) throws in several chunks at
  // once — the shape of a failing sync_samples aborting a shard run. The
  // pool must come back clean, and a real drift dispatch on the *same*
  // pool must match the serial bits exactly (a worker wedged or a shard
  // skipped by the aborted round would show up here).
  const auto system = random_system(600, 18.0, 3, 55);
  const auto model = spring_model(3);
  const PairScalingTable table(model);
  std::vector<Vec2> reference;
  {
    sops::geom::CellGridBackend backend;
    accumulate_drift(system, table, 3.0, reference, backend, 1);
  }
  sops::support::TaskPool pool(6);
  EXPECT_THROW(
      pool.run_partitioned(3, 2,
                           [&](std::size_t k, sops::support::Executor& inner) {
                             sops::geom::CellGridBackend backend;
                             std::vector<Vec2> scratch;
                             accumulate_drift(system, table, 3.0, scratch,
                                              backend, inner);
                             if (k != 0) {
                               throw std::runtime_error("chunk aborted");
                             }
                           }),
      std::runtime_error);
  pool.run_partitioned(2, 3, [&](std::size_t,
                                 sops::support::Executor& inner) {
    sops::geom::CellGridBackend backend;
    std::vector<Vec2> pooled;
    accumulate_drift(system, table, 3.0, pooled, backend, inner);
    ASSERT_EQ(reference.size(), pooled.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], pooled[i]) << i;
    }
  });
}

TEST(IntraStepInvariance, WorkerStarvedPoolMatchesSerialOnManyShards) {
  // More shards than pool workers: chunks queue and drain through the cap;
  // the partition (not the worker count) fixes the bits.
  const auto system = random_system(900, 21.0, 2, 77);
  const auto model = spring_model(2);
  const PairScalingTable table(model);
  std::vector<Vec2> reference;
  sops::geom::CellGridBackend serial_backend;
  accumulate_drift(system, table, 3.0, reference, serial_backend, 1);

  sops::geom::CellGridBackend backend;
  backend.rebuild(system.lanes(), 3.0);
  const auto bounds = backend.shard_bounds(64);  // many more than 2 workers
  ASSERT_GT(bounds.size(), 3u);
  // Same gather and kernel as the engine's fused cell-grid path: one block
  // candidate gather per cell, then the runtime-selected dense kernel per
  // bucket particle — each worker carries its own scratch, so the starved
  // pool reproduces the engine's bits shard by shard.
  const auto& grid = backend.grid();
  const auto starts = grid.bucket_starts();
  const auto order = backend.shard_order();
  const auto& kernels = sops::sim::select_drift_kernels();
  const double cutoff_sq = 3.0 * 3.0;
  sops::support::TaskPool pool(2);
  std::vector<Vec2> pooled(system.size());
  sops::support::parallel_for_chunked(
      pool.executor(), bounds, [&](std::size_t begin, std::size_t end) {
        sops::geom::GatherScratch s;
        std::size_t c = static_cast<std::size_t>(
                            std::upper_bound(starts.begin(), starts.end(),
                                             static_cast<std::uint32_t>(begin)) -
                            starts.begin()) -
                        1;
        for (; c + 1 < starts.size() && starts[c] < end; ++c) {
          s.idx.clear();
          grid.append_block_candidates(c, s.idx);
          const std::size_t m = s.idx.size();
          s.x.resize(m);
          s.y.resize(m);
          s.tag.resize(m);
          for (std::size_t t = 0; t < m; ++t) s.x[t] = system.x[s.idx[t]];
          for (std::size_t t = 0; t < m; ++t) s.y[t] = system.y[s.idx[t]];
          for (std::size_t t = 0; t < m; ++t) s.tag[t] = system.types[s.idx[t]];
          for (std::uint32_t k = starts[c]; k < starts[c + 1]; ++k) {
            const std::size_t i = order[k];
            const sops::sim::DenseRow row{
                system.x[i],  system.y[i],  system.types[i], s.x.data(),
                s.y.data(),   s.tag.data(), m,               cutoff_sq};
            pooled[i] = kernels.dense(table, row);
          }
        }
      });
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], pooled[i]) << i;
  }
}

TEST(IntraStepInvariance, ShardPartitionCoversEveryParticleOnce) {
  const auto system = random_system(300, 11.0, 2, 5);
  sops::geom::CellGridBackend backend;
  backend.rebuild(system.lanes(), 3.0);
  for (const std::size_t max_shards : {1u, 2u, 3u, 8u, 64u}) {
    const auto bounds = backend.shard_bounds(max_shards);
    const auto order = backend.shard_order();
    ASSERT_GE(bounds.size(), 2u);
    ASSERT_LE(bounds.size(), max_shards + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), system.size());
    std::vector<int> seen(system.size(), 0);
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      ASSERT_LE(bounds[k], bounds[k + 1]);
      for (std::uint32_t p = bounds[k]; p < bounds[k + 1]; ++p) {
        ++seen[order[p]];
      }
    }
    for (std::size_t i = 0; i < system.size(); ++i) {
      EXPECT_EQ(seen[i], 1) << "max_shards " << max_shards << " i " << i;
    }
  }
}

// ------------------------------------------------- trajectory invariance

SimulationConfig matrix_config() {
  SimulationConfig config(spring_model(3));
  config.types = sops::sim::evenly_distributed_types(260, 3);
  config.cutoff_radius = 3.0;
  config.init_disc_radius = 12.0;
  config.steps = 12;
  config.record_stride = 4;
  config.seed = 314;
  return config;
}

void expect_bitwise_equal(const Trajectory& a, const Trajectory& b) {
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_EQ(a.residual_norms, b.residual_norms);
  EXPECT_EQ(a.equilibrium_step, b.equilibrium_step);
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    ASSERT_EQ(a.frames[f].size(), b.frames[f].size());
    for (std::size_t i = 0; i < a.frames[f].size(); ++i) {
      ASSERT_EQ(a.frames[f][i], b.frames[f][i]) << "f " << f << " i " << i;
    }
  }
}

TEST(IntraStepInvariance, TrajectoriesBitwiseAcrossThreadsAndPolicies) {
  const Trajectory reference = run_simulation(matrix_config());
  for (const ParallelPolicy policy :
       {ParallelPolicy::kAuto, ParallelPolicy::kAcrossSamples,
        ParallelPolicy::kWithinStep, ParallelPolicy::kHybrid}) {
    for (const std::size_t threads : kThreadMatrix) {
      SimulationConfig config = matrix_config();
      config.parallel_policy = policy;
      config.threads = threads;
      expect_bitwise_equal(reference, run_simulation(config));
    }
  }
}

TEST(IntraStepInvariance, EnsemblesBitwiseAcrossPolicies) {
  sops::core::ExperimentConfig reference_config(matrix_config());
  reference_config.samples = 6;
  reference_config.threads = 1;
  reference_config.parallel = ParallelPolicy::kAcrossSamples;
  const auto reference = sops::core::run_experiment(reference_config);

  for (const ParallelPolicy policy :
       {ParallelPolicy::kAuto, ParallelPolicy::kAcrossSamples,
        ParallelPolicy::kWithinStep, ParallelPolicy::kHybrid}) {
    for (const std::size_t threads : kThreadMatrix) {
      sops::core::ExperimentConfig config = reference_config;
      config.parallel = policy;
      config.threads = threads;
      const auto series = sops::core::run_experiment(config);
      ASSERT_EQ(series.frame_count(), reference.frame_count());
      EXPECT_EQ(series.equilibrium_steps, reference.equilibrium_steps);
      for (std::size_t f = 0; f < reference.frame_count(); ++f) {
        for (std::size_t s = 0; s < reference.sample_count(); ++s) {
          for (std::size_t i = 0; i < reference.particle_count(); ++i) {
            ASSERT_EQ(series.frames[f][s][i], reference.frames[f][s][i])
                << "f " << f << " s " << s << " i " << i;
          }
        }
      }
    }
  }
}

TEST(ExecutorLifecycle, ConsecutiveExperimentsAreBitwiseIdentical) {
  // Each run_experiment sizes and tears down its own TaskPool; back-to-back
  // experiments (and their pools) must neither interfere nor drift.
  sops::core::ExperimentConfig config(matrix_config());
  config.samples = 5;
  config.threads = 4;
  config.parallel = ParallelPolicy::kHybrid;
  const auto first = sops::core::run_experiment(config);
  const auto second = sops::core::run_experiment(config);
  ASSERT_EQ(first.frame_count(), second.frame_count());
  EXPECT_EQ(first.equilibrium_steps, second.equilibrium_steps);
  for (std::size_t f = 0; f < first.frame_count(); ++f) {
    for (std::size_t s = 0; s < first.sample_count(); ++s) {
      for (std::size_t i = 0; i < first.particle_count(); ++i) {
        ASSERT_EQ(first.frames[f][s][i], second.frames[f][s][i])
            << "f " << f << " s " << s << " i " << i;
      }
    }
  }
}

TEST(ExecutorLifecycle, WorkspacePoolPersistsAcrossRuns) {
  // A reused workspace keeps its owned pool between runs; repeated runs
  // through one workspace must match fresh-workspace runs bit for bit.
  SimulationConfig config = matrix_config();
  config.parallel_policy = ParallelPolicy::kWithinStep;
  config.threads = 4;
  const Trajectory fresh = run_simulation(config);
  sops::sim::SimulationWorkspace workspace;
  const Trajectory first = run_simulation(config, workspace);
  const Trajectory second = run_simulation(config, workspace);
  expect_bitwise_equal(fresh, first);
  expect_bitwise_equal(fresh, second);
}

// --------------------------------------------------- policy resolution

TEST(ParallelPolicyResolution, BudgetNeverExceedsThreadsAndNeverNests) {
  for (const std::size_t n : {16u, 2048u, 16384u}) {
    for (const std::size_t m : {1u, 2u, 8u, 500u}) {
      for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
        for (const ParallelPolicy policy :
             {ParallelPolicy::kAuto, ParallelPolicy::kAcrossSamples,
              ParallelPolicy::kWithinStep, ParallelPolicy::kHybrid}) {
          const ThreadBudget budget =
              resolve_parallel_policy(policy, n, m, threads);
          EXPECT_GE(budget.sample_threads, 1u);
          EXPECT_GE(budget.step_threads, 1u);
          EXPECT_LE(budget.sample_threads * budget.step_threads, threads);
        }
      }
    }
  }
}

TEST(ParallelPolicyResolution, AutoPicksTheExpectedAxis) {
  // Paper-sized ensemble: samples swallow the whole budget.
  EXPECT_EQ(resolve_parallel_policy(ParallelPolicy::kAuto, 50, 500, 8)
                .sample_threads,
            8u);
  EXPECT_EQ(
      resolve_parallel_policy(ParallelPolicy::kAuto, 50, 500, 8).step_threads,
      1u);
  // Single huge collective: the budget moves inside the step.
  EXPECT_EQ(resolve_parallel_policy(ParallelPolicy::kAuto, 16384, 1, 8)
                .step_threads,
            8u);
  // Small single collective: serial — the fork would cost more than it buys.
  EXPECT_EQ(
      resolve_parallel_policy(ParallelPolicy::kAuto, 256, 1, 8).step_threads,
      1u);
  // Few samples of a huge collective: hybrid split.
  const ThreadBudget hybrid =
      resolve_parallel_policy(ParallelPolicy::kAuto, 16384, 2, 8);
  EXPECT_EQ(hybrid.sample_threads, 2u);
  EXPECT_EQ(hybrid.step_threads, 4u);
  // Hybrid prefers the split that strands the least budget: m = 5 samples
  // over 8 threads runs 4×2, not 5×1.
  const ThreadBudget uneven =
      resolve_parallel_policy(ParallelPolicy::kAuto, 16384, 5, 8);
  EXPECT_EQ(uneven.sample_threads, 4u);
  EXPECT_EQ(uneven.step_threads, 2u);
}

// ------------------------------------------------------- golden (bitwise)

// Golden values for the sharded path at n = 1024, captured from the serial
// engine (threads = 1): the sharded run must reproduce them bit for bit at
// every tested thread count. Any change to neighbor enumeration order,
// shard layout leaking into summation order, or RNG draw order lands here.

SimulationConfig golden_sharded_config() {
  SimulationConfig config(spring_model(3));
  config.types = sops::sim::evenly_distributed_types(1024, 3);
  config.cutoff_radius = 3.0;
  config.init_disc_radius = 48.0;
  config.steps = 5;
  config.record_stride = 5;
  config.seed = 2024;
  config.parallel_policy = ParallelPolicy::kWithinStep;
  return config;
}

TEST(GoldenSharded, N1024BitwiseStableAcrossThreadCounts) {
  const std::vector<double> residuals{
      0x1.1f20db8c0a9e9p+10,
      0x1.44cf91919c4c3p+9,
  };
  const Vec2 expected_p0{0x1.1f7fb79693556p+5, -0x1.7cbb4277ce2fep+3};
  const Vec2 expected_p511{0x1.97ceb1e180d78p+3, -0x1.dbd1744fdf6dep+3};
  const Vec2 expected_p1023{-0x1.c4597914cc6f6p+1, -0x1.7b1ed548d7d35p+5};

  for (const std::size_t threads : kThreadMatrix) {
    SimulationConfig config = golden_sharded_config();
    config.threads = threads;
    const Trajectory trajectory = run_simulation(config);
    ASSERT_EQ(trajectory.residual_norms.size(), residuals.size());
    for (std::size_t f = 0; f < residuals.size(); ++f) {
      EXPECT_EQ(trajectory.residual_norms[f], residuals[f])
          << "threads " << threads << " frame " << f;
    }
    ASSERT_EQ(trajectory.frames.back().size(), 1024u);
    EXPECT_EQ(trajectory.frames.back()[0], expected_p0) << threads;
    EXPECT_EQ(trajectory.frames.back()[511], expected_p511) << threads;
    EXPECT_EQ(trajectory.frames.back()[1023], expected_p1023) << threads;
  }
}

}  // namespace
