// End-to-end crash recovery: a child process recording a shard is
// SIGKILL'd mid-ensemble — no destructors, no flushes, pages left dirty —
// and a resumed run must produce a recording bitwise-identical to one
// that was never interrupted. This is the whole point of the manifest's
// sync-before-bit-flip protocol, exercised with a real dead process.
//
// Named integration_* (not engine_*) deliberately: the TSan ctest filter
// must not pick this up — fork() from a test binary under TSan, with the
// child spawning threads, is undefined enough to hang.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "io/shard_manifest.hpp"

namespace {

using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::run_experiment;
using sops::io::ShardManifest;
using sops::io::ShardManifestFile;

// Enough samples that SIGKILL lands mid-ensemble, small enough to finish
// in well under a second per sample.
ExperimentConfig kill_experiment(const std::string& shard_path, bool resume) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 40;
  simulation.record_stride = 8;
  ExperimentConfig experiment(simulation);
  experiment.samples = 24;
  experiment.shard.path = shard_path;
  experiment.shard.resume = resume;
  return experiment;
}

bool stores_bitwise_equal(const EnsembleSeries& a, const EnsembleSeries& b) {
  if (a.frame_count() != b.frame_count() ||
      a.sample_count() != b.sample_count() ||
      a.particle_count() != b.particle_count()) {
    return false;
  }
  for (std::size_t f = 0; f < a.frame_count(); ++f) {
    for (std::size_t s = 0; s < a.sample_count(); ++s) {
      const auto lhs = a.frames.sample(f, s);
      const auto rhs = b.frames.sample(f, s);
      if (std::memcmp(lhs.data(), rhs.data(), lhs.size_bytes()) != 0) {
        return false;
      }
    }
  }
  return true;
}

TEST(KillResume, SigkilledShardResumesBitwiseIdentical) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "kill_resume.shard")
          .string();
  const std::string manifest_path = path + ".manifest";
  std::filesystem::remove(path);
  std::filesystem::remove(manifest_path);

  // Fork while this process is still single-threaded (gtest main thread
  // only) — the child is then free to spawn its own pool.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork: " << std::strerror(errno);
  if (child == 0) {
    // In the child: record the shard serially and exit. _exit, never
    // return — running the parent's gtest teardown twice corrupts both.
    try {
      (void)run_experiment(kill_experiment(path, /*resume=*/false));
    } catch (...) {
      ::_exit(3);
    }
    ::_exit(0);
  }

  // Wait until the child has durably completed at least one sample, then
  // SIGKILL it mid-ensemble. The manifest may not exist yet or be
  // mid-create on the first polls — retry on throw. If the child outruns
  // the poll and finishes first, the test degrades to the all-complete
  // resume case, which must still hold bitwise.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool reaped = false;
  bool signalled = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::size_t complete = 0;
    try {
      complete = ShardManifestFile::load(manifest_path).complete_count();
    } catch (...) {
      // not created yet
    }
    if (complete >= 1) {
      ::kill(child, SIGKILL);
      signalled = true;
      break;
    }
    int probe_status = 0;
    if (::waitpid(child, &probe_status, WNOHANG) == child) {
      // Child finished before we could kill it.
      ASSERT_TRUE(WIFEXITED(probe_status) && WEXITSTATUS(probe_status) == 0)
          << "child failed before it could be killed";
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(signalled || reaped)
      << "child never completed a sample within the deadline";
  if (!reaped) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
  }

  // The dead child's manifest must load clean (fixed-layout, in-place
  // updates) and under-report at worst — never claim a sample whose bytes
  // did not reach disk.
  const ShardManifest after_kill = ShardManifestFile::load(manifest_path);
  EXPECT_EQ(after_kill.samples_total, 24u);

  // Resume in this process and compare against an uninterrupted in-memory
  // run: (seed, stream) determinism makes completed-then-kept samples and
  // redone samples indistinguishable.
  const EnsembleSeries resumed =
      run_experiment(kill_experiment(path, /*resume=*/true));
  EXPECT_EQ(resumed.resumed_samples, after_kill.complete_count());

  ExperimentConfig reference_config = kill_experiment(path, false);
  reference_config.shard = {};
  const EnsembleSeries reference = run_experiment(reference_config);
  EXPECT_TRUE(stores_bitwise_equal(reference, resumed));
  EXPECT_EQ(reference.equilibrium_steps, resumed.equilibrium_steps);

  std::filesystem::remove(path);
  std::filesystem::remove(manifest_path);
}

}  // namespace

#else  // !(__unix__ || __APPLE__)

TEST(KillResume, SkippedWithoutPosix) {
  GTEST_SKIP() << "fork/SIGKILL crash recovery needs POSIX";
}

#endif
