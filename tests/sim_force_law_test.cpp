// Force-law tests: Eq. (7)/(8) values, sign structure, preferred distances,
// the F² parameter solver, and InteractionModel validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/force_law.hpp"
#include "support/error.hpp"

namespace {

using sops::sim::f2_params_for_preferred_distance;
using sops::sim::force_scaling;
using sops::sim::force_scaling_derivative;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::PairParams;
using sops::sim::preferred_distance;

TEST(SpringLaw, ZeroExactlyAtPreferredDistance) {
  const PairParams p{2.0, 1.5, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(force_scaling(ForceLawKind::kSpring, p, 1.5), 0.0);
}

TEST(SpringLaw, RepulsiveBelowAttractiveAbove) {
  const PairParams p{2.0, 1.5, 1.0, 1.0};
  EXPECT_LT(force_scaling(ForceLawKind::kSpring, p, 1.0), 0.0);   // repulsion
  EXPECT_GT(force_scaling(ForceLawKind::kSpring, p, 3.0), 0.0);   // attraction
}

TEST(SpringLaw, AsymptotesToK) {
  const PairParams p{3.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(force_scaling(ForceLawKind::kSpring, p, 1e6), 3.0, 1e-5);
}

TEST(SpringLaw, ExactFormula) {
  const PairParams p{2.5, 0.8, 1.0, 1.0};
  for (const double x : {0.1, 0.5, 1.0, 4.0}) {
    EXPECT_DOUBLE_EQ(force_scaling(ForceLawKind::kSpring, p, x),
                     2.5 * (1.0 - 0.8 / x));
  }
}

TEST(SpringLaw, VelocityContributionBoundedNearContact) {
  // F¹ diverges but F¹(x)·x → −k·r: the drift the integrator applies stays
  // bounded (see forces.hpp); verify the product.
  const PairParams p{2.0, 1.5, 1.0, 1.0};
  const double x = 1e-9;
  EXPECT_NEAR(force_scaling(ForceLawKind::kSpring, p, x) * x, -2.0 * 1.5, 1e-6);
}

TEST(DoubleGaussianLaw, ExactFormula) {
  const PairParams p{2.0, 0.0, 1.5, 4.0};
  for (const double x : {0.3, 1.0, 2.5}) {
    const double expected =
        2.0 * (std::exp(-x * x / (2.0 * 1.5)) / (1.5 * 1.5) -
               std::exp(-x * x / (2.0 * 4.0)));
    EXPECT_DOUBLE_EQ(force_scaling(ForceLawKind::kDoubleGaussian, p, x), expected);
  }
}

TEST(DoubleGaussianLaw, LiteralPaperRegimeIsPurelyRepulsive) {
  // σ = 1 ≤ τ: the printed Eq. (8) never becomes positive (see DESIGN.md).
  const PairParams p{1.0, 0.0, 1.0, 5.0};
  for (double x = 0.05; x < 20.0; x += 0.05) {
    EXPECT_LE(force_scaling(ForceLawKind::kDoubleGaussian, p, x), 0.0) << x;
  }
}

TEST(DoubleGaussianLaw, DecaysToZeroAtLongRange) {
  const PairParams p{1.0, 0.0, 1.0, 5.0};
  EXPECT_NEAR(force_scaling(ForceLawKind::kDoubleGaussian, p, 30.0), 0.0, 1e-12);
}

TEST(DoubleGaussianLaw, SigmaAboveTauHasAttractiveTail) {
  const PairParams p{1.0, 0.0, 4.0, 1.0};
  EXPECT_LT(force_scaling(ForceLawKind::kDoubleGaussian, p, 0.5), 0.0);
  EXPECT_GT(force_scaling(ForceLawKind::kDoubleGaussian, p, 5.0), 0.0);
}

class DerivativeCheck
    : public ::testing::TestWithParam<std::tuple<ForceLawKind, double>> {};

TEST_P(DerivativeCheck, MatchesFiniteDifference) {
  const auto [kind, x] = GetParam();
  const PairParams p{2.0, 1.5, 3.0, 1.2};
  const double h = 1e-6;
  const double numeric = (force_scaling(kind, p, x + h) -
                          force_scaling(kind, p, x - h)) /
                         (2.0 * h);
  EXPECT_NEAR(force_scaling_derivative(kind, p, x), numeric,
              1e-4 * std::max(1.0, std::abs(numeric)));
}

INSTANTIATE_TEST_SUITE_P(
    Laws, DerivativeCheck,
    ::testing::Combine(::testing::Values(ForceLawKind::kSpring,
                                         ForceLawKind::kDoubleGaussian),
                       ::testing::Values(0.3, 1.0, 2.0, 5.0)));

TEST(ForceScaling, NonPositiveDistanceThrows) {
  const PairParams p;
  EXPECT_THROW((void)force_scaling(ForceLawKind::kSpring, p, 0.0),
               sops::PreconditionError);
  EXPECT_THROW((void)force_scaling(ForceLawKind::kDoubleGaussian, p, -1.0),
               sops::PreconditionError);
}

TEST(PreferredDistance, SpringReturnsR) {
  const PairParams p{1.0, 2.75, 1.0, 1.0};
  const auto r = preferred_distance(ForceLawKind::kSpring, p);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 2.75);
}

TEST(PreferredDistance, F2PurelyRepulsiveHasNone) {
  const PairParams p{1.0, 0.0, 1.0, 5.0};
  EXPECT_FALSE(preferred_distance(ForceLawKind::kDoubleGaussian, p).has_value());
}

TEST(PreferredDistance, F2SigmaEqualsTauHasNone) {
  const PairParams p{1.0, 0.0, 2.0, 2.0};
  EXPECT_FALSE(preferred_distance(ForceLawKind::kDoubleGaussian, p).has_value());
}

TEST(PreferredDistance, F2CrossingIsARoot) {
  const PairParams p{1.0, 0.0, 4.0, 1.0};
  const auto r = preferred_distance(ForceLawKind::kDoubleGaussian, p);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(force_scaling(ForceLawKind::kDoubleGaussian, p, *r), 0.0, 1e-12);
  // Repulsion below, attraction above.
  EXPECT_LT(force_scaling(ForceLawKind::kDoubleGaussian, p, *r * 0.9), 0.0);
  EXPECT_GT(force_scaling(ForceLawKind::kDoubleGaussian, p, *r * 1.1), 0.0);
}

class F2Solver : public ::testing::TestWithParam<double> {};

TEST_P(F2Solver, RealizesRequestedPreferredDistance) {
  const double target = GetParam();
  const PairParams p = f2_params_for_preferred_distance(target, 1.5);
  EXPECT_DOUBLE_EQ(p.k, 1.5);
  const auto r = preferred_distance(ForceLawKind::kDoubleGaussian, p);
  ASSERT_TRUE(r.has_value()) << "no crossing for target " << target;
  EXPECT_NEAR(*r, target, 1e-6 * target);
}

INSTANTIATE_TEST_SUITE_P(Radii, F2Solver,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0, 8.0));

TEST(F2Solver, InvalidTargetThrows) {
  EXPECT_THROW((void)f2_params_for_preferred_distance(0.0),
               sops::PreconditionError);
  EXPECT_THROW((void)f2_params_for_preferred_distance(-1.0),
               sops::PreconditionError);
}

TEST(InteractionModel, DefaultsApplyToAllPairs) {
  const InteractionModel model(ForceLawKind::kSpring, 3,
                               PairParams{2.0, 1.0, 1.0, 1.0});
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(model.pair(a, b).k, 2.0);
      EXPECT_DOUBLE_EQ(model.pair(a, b).r, 1.0);
    }
  }
}

TEST(InteractionModel, SettersAreSymmetric) {
  InteractionModel model(ForceLawKind::kSpring, 2);
  model.set_k(0, 1, 5.0).set_r(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(model.pair(1, 0).k, 5.0);
  EXPECT_DOUBLE_EQ(model.pair(1, 0).r, 2.0);
}

TEST(InteractionModel, ScalingDelegatesToForceScaling) {
  InteractionModel model(ForceLawKind::kSpring, 2,
                         PairParams{1.0, 2.0, 1.0, 1.0});
  model.set_r(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(model.scaling(0, 0, 2.0), 0.0);   // at r_00
  EXPECT_DOUBLE_EQ(model.scaling(0, 1, 4.0), 0.0);   // at r_01
  EXPECT_LT(model.scaling(0, 1, 2.0), 0.0);
}

TEST(InteractionModel, InvalidParametersThrow) {
  EXPECT_THROW(InteractionModel(ForceLawKind::kDoubleGaussian, 2,
                                PairParams{1.0, 1.0, 0.0, 1.0}),
               sops::PreconditionError);  // sigma = 0 with F2
  InteractionModel model(ForceLawKind::kSpring, 2);
  EXPECT_THROW(model.set_r(0, 1, -1.0), sops::PreconditionError);
  EXPECT_THROW(model.set_sigma(0, 1, 0.0), sops::PreconditionError);
  EXPECT_THROW(model.set_tau(0, 1, -2.0), sops::PreconditionError);
}

TEST(InteractionModel, ZeroTypesThrows) {
  EXPECT_THROW(InteractionModel(ForceLawKind::kSpring, 0),
               sops::PreconditionError);
}

}  // namespace
