// k-means tests: recovery of separated blobs, determinism, degenerate cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/kmeans.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::cluster::kmeans;
using sops::cluster::kmeans_plus_plus_seeds;
using sops::cluster::KMeansOptions;
using sops::cluster::KMeansResult;
using sops::geom::Vec2;
using sops::rng::Xoshiro256;

std::vector<Vec2> blobs(std::span<const Vec2> centers, std::size_t per_blob,
                        double spread, std::uint64_t seed) {
  Xoshiro256 engine(seed);
  std::vector<Vec2> points;
  for (const Vec2 c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points.push_back(c + sops::rng::normal_vec2(engine, spread));
    }
  }
  return points;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const std::vector<Vec2> centers{{0, 0}, {20, 0}, {0, 20}};
  const auto points = blobs(centers, 40, 0.5, 3);
  Xoshiro256 engine(5);
  KMeansOptions options;
  options.restarts = 4;
  const KMeansResult result = kmeans(points, 3, engine, options);

  // Each recovered centroid must be within 1 unit of a true center, and all
  // three true centers must be hit.
  std::set<std::size_t> matched;
  for (const Vec2 c : result.centroids) {
    for (std::size_t t = 0; t < centers.size(); ++t) {
      if (dist(c, centers[t]) < 1.0) matched.insert(t);
    }
  }
  EXPECT_EQ(matched.size(), 3u);
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, AssignmentsMatchNearestCentroid) {
  const auto points = blobs(std::vector<Vec2>{{0, 0}, {10, 10}}, 30, 1.0, 7);
  Xoshiro256 engine(9);
  const KMeansResult result = kmeans(points, 2, engine);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double assigned =
        dist_sq(points[i], result.centroids[result.assignment[i]]);
    for (const Vec2 c : result.centroids) {
      EXPECT_LE(assigned, dist_sq(points[i], c) + 1e-12);
    }
  }
}

TEST(KMeans, CentroidsAreClusterMeans) {
  const auto points = blobs(std::vector<Vec2>{{0, 0}, {10, 10}}, 30, 1.0, 11);
  Xoshiro256 engine(13);
  const KMeansResult result = kmeans(points, 2, engine);
  for (std::size_t c = 0; c < 2; ++c) {
    Vec2 sum{};
    std::size_t count = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.assignment[i] == c) {
        sum += points[i];
        ++count;
      }
    }
    ASSERT_GT(count, 0u);
    EXPECT_NEAR(result.centroids[c].x, sum.x / count, 1e-9);
    EXPECT_NEAR(result.centroids[c].y, sum.y / count, 1e-9);
  }
}

TEST(KMeans, DeterministicGivenEngineState) {
  const auto points = blobs(std::vector<Vec2>{{0, 0}, {5, 5}}, 25, 1.0, 17);
  Xoshiro256 e1(21);
  Xoshiro256 e2(21);
  const KMeansResult a = kmeans(points, 2, e1);
  const KMeansResult b = kmeans(points, 2, e2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaNonIncreasingInK) {
  const auto points = blobs(std::vector<Vec2>{{0, 0}, {8, 3}, {-4, 6}}, 30, 1.5, 23);
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
    Xoshiro256 engine(29);
    KMeansOptions options;
    options.restarts = 6;
    const KMeansResult result = kmeans(points, k, engine, options);
    EXPECT_LE(result.inertia, previous * 1.001) << "k=" << k;
    previous = result.inertia;
  }
}

TEST(KMeans, KOneGivesGlobalMean) {
  const auto points = blobs(std::vector<Vec2>{{2, 3}}, 50, 2.0, 31);
  Xoshiro256 engine(33);
  const KMeansResult result = kmeans(points, 1, engine);
  Vec2 mean{};
  for (const Vec2 p : points) mean += p;
  mean /= static_cast<double>(points.size());
  EXPECT_NEAR(result.centroids[0].x, mean.x, 1e-9);
  EXPECT_NEAR(result.centroids[0].y, mean.y, 1e-9);
}

TEST(KMeans, KEqualsNPinsEveryPoint) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}, {2, 0}, {5, 5}};
  Xoshiro256 engine(37);
  KMeansOptions options;
  options.restarts = 8;
  const KMeansResult result = kmeans(points, 4, engine, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KMeans, DuplicatePointsHandled) {
  const std::vector<Vec2> points(10, Vec2{1, 1});
  Xoshiro256 engine(41);
  const KMeansResult result = kmeans(points, 3, engine);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KMeans, InvalidArgumentsThrow) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}};
  Xoshiro256 engine(43);
  EXPECT_THROW((void)kmeans(points, 0, engine), sops::PreconditionError);
  EXPECT_THROW((void)kmeans(points, 3, engine), sops::PreconditionError);
  KMeansOptions bad;
  bad.restarts = 0;
  EXPECT_THROW((void)kmeans(points, 1, engine, bad), sops::PreconditionError);
}

TEST(KMeansPlusPlus, ReturnsKSeedsFromThePointSet) {
  const auto points = blobs(std::vector<Vec2>{{0, 0}, {9, 9}}, 20, 1.0, 47);
  Xoshiro256 engine(49);
  const auto seeds = kmeans_plus_plus_seeds(points, 5, engine);
  ASSERT_EQ(seeds.size(), 5u);
  for (const Vec2 s : seeds) {
    EXPECT_TRUE(std::any_of(points.begin(), points.end(),
                            [&](Vec2 p) { return p == s; }));
  }
}

TEST(KMeansPlusPlus, SpreadsAcrossSeparatedBlobs) {
  // With two far blobs and k = 2, the D² weighting virtually always places
  // the seeds in different blobs.
  const std::vector<Vec2> centers{{0, 0}, {100, 100}};
  const auto points = blobs(centers, 25, 0.5, 53);
  Xoshiro256 engine(59);
  const auto seeds = kmeans_plus_plus_seeds(points, 2, engine);
  const bool split = (dist(seeds[0], centers[0]) < 5.0) !=
                     (dist(seeds[1], centers[0]) < 5.0);
  EXPECT_TRUE(split);
}

}  // namespace
