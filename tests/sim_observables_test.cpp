// Observable tests: g(r) on lattices and gases, MSD on known motions,
// sorting/mixing indices, and Delaunay-limited force accumulation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rng/samplers.hpp"
#include "sim/forces.hpp"
#include "sim/observables.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::cross_type_neighbor_fraction;
using sops::sim::first_peak_height;
using sops::sim::mean_radius_by_type;
using sops::sim::mean_squared_displacement;
using sops::sim::radial_distribution;
using sops::sim::radius_of_gyration;
using sops::sim::TypeId;

std::vector<Vec2> square_lattice(std::size_t side, double spacing) {
  std::vector<Vec2> points;
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      points.push_back({spacing * static_cast<double>(i),
                        spacing * static_cast<double>(j)});
    }
  }
  return points;
}

TEST(Rdf, LatticePeaksAtSpacing) {
  const auto points = square_lattice(8, 1.0);
  const auto rdf = radial_distribution(points, 3.0, 60);
  // Find the bin with maximal g; it must sit at r ≈ 1 (the lattice spacing).
  std::size_t best = 0;
  for (std::size_t b = 1; b < rdf.g.size(); ++b) {
    if (rdf.g[b] > rdf.g[best]) best = b;
  }
  EXPECT_NEAR(rdf.r[best], 1.0, 0.1);
  EXPECT_GT(first_peak_height(rdf), 2.0);  // sharp crystalline peak
}

TEST(Rdf, DepletedCoreBelowSpacing) {
  const auto points = square_lattice(8, 1.0);
  const auto rdf = radial_distribution(points, 3.0, 60);
  // No pairs below the lattice spacing: g ≈ 0 in the core.
  for (std::size_t b = 0; b < rdf.g.size(); ++b) {
    if (rdf.r[b] < 0.9) {
      EXPECT_NEAR(rdf.g[b], 0.0, 1e-12) << rdf.r[b];
    }
  }
}

TEST(Rdf, GasIsFlat) {
  // Uniform points in a large box: g ≈ 1 at intermediate r (away from the
  // core and window-edge effects).
  sops::rng::Xoshiro256 engine(3);
  std::vector<Vec2> points;
  for (int i = 0; i < 3000; ++i) {
    points.push_back({sops::rng::uniform(engine, 0.0, 60.0),
                      sops::rng::uniform(engine, 0.0, 60.0)});
  }
  const auto rdf = radial_distribution(points, 3.0, 30);
  for (std::size_t b = 5; b < 25; ++b) {
    EXPECT_NEAR(rdf.g[b], 1.0, 0.25) << rdf.r[b];
  }
}

TEST(Rdf, PreconditionsEnforced) {
  const std::vector<Vec2> one{{0, 0}};
  EXPECT_THROW((void)radial_distribution(one, 1.0), sops::PreconditionError);
  const std::vector<Vec2> two{{0, 0}, {1, 0}};
  EXPECT_THROW((void)radial_distribution(two, 0.0), sops::PreconditionError);
  EXPECT_THROW((void)radial_distribution(two, 1.0, 0), sops::PreconditionError);
}

TEST(Msd, BallisticMotionQuadratic) {
  // Every particle moves with unit velocity: MSD(t) = t².
  std::vector<std::vector<Vec2>> frames;
  for (int t = 0; t < 5; ++t) {
    frames.push_back({{static_cast<double>(t), 0.0},
                      {0.0, static_cast<double>(t)}});
  }
  const auto msd = mean_squared_displacement(frames);
  for (int t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(msd[t], static_cast<double>(t) * t);
  }
}

TEST(Msd, StaticConfigurationIsZero) {
  const std::vector<std::vector<Vec2>> frames(4, {{1, 2}, {3, 4}});
  for (const double v : mean_squared_displacement(frames)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Msd, DiffusionIsLinear) {
  sops::rng::Xoshiro256 engine(7);
  const std::size_t particles = 3000;
  const std::size_t steps = 20;
  std::vector<std::vector<Vec2>> frames(steps,
                                        std::vector<Vec2>(particles));
  for (std::size_t t = 1; t < steps; ++t) {
    for (std::size_t i = 0; i < particles; ++i) {
      frames[t][i] = frames[t - 1][i] + sops::rng::normal_vec2(engine, 0.1);
    }
  }
  const auto msd = mean_squared_displacement(frames);
  // MSD(t) ≈ 2·σ²·t = 0.02·t per 2-D step.
  EXPECT_NEAR(msd[10] / 10.0, 0.02, 0.003);
  EXPECT_NEAR(msd[19] / 19.0, 0.02, 0.003);
}

TEST(RadiusOfGyration, UnitRing) {
  std::vector<Vec2> points;
  for (int i = 0; i < 12; ++i) {
    const double a = 2.0 * std::numbers::pi * i / 12.0;
    points.push_back({std::cos(a), std::sin(a)});
  }
  EXPECT_NEAR(radius_of_gyration(points), 1.0, 1e-12);
}

TEST(CrossTypeFraction, FullySortedIsZero) {
  // Two well-separated same-type blobs.
  std::vector<Vec2> points{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}};
  std::vector<TypeId> types{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(cross_type_neighbor_fraction(points, types), 0.0);
}

TEST(CrossTypeFraction, AlternatingIsOne) {
  std::vector<Vec2> points{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<TypeId> types{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(cross_type_neighbor_fraction(points, types), 1.0);
}

TEST(MeanRadiusByType, EnclosedGeometry) {
  // Type 0 at the center, type 1 on a ring of radius 3.
  std::vector<Vec2> points{{0.1, 0}, {-0.1, 0}};
  std::vector<TypeId> types{0, 0};
  for (int i = 0; i < 6; ++i) {
    const double a = 2.0 * std::numbers::pi * i / 6.0;
    points.push_back({3.0 * std::cos(a), 3.0 * std::sin(a)});
    types.push_back(1);
  }
  const auto radii = mean_radius_by_type(points, types, 2);
  EXPECT_LT(radii[0], 0.5);
  EXPECT_NEAR(radii[1], 3.0, 0.1);
}

TEST(DelaunayForces, OnlyTessellationNeighborsInteract) {
  // Collinear-ish diamond: particle 3 is far right; with Delaunay neighbors
  // only, forces on 0 come from its direct triangulation neighbors. Compare
  // against all-pairs to show the far interaction is present there but the
  // dynamics stay well-defined in both.
  using namespace sops::sim;
  InteractionModel model(ForceLawKind::kSpring, 1, PairParams{1.0, 2.0, 1, 1});
  ParticleSystem system({{0, 0}, {1, 1}, {1, -1}, {2, 0}, {30, 0}}, {0, 0, 0, 0, 0});

  std::vector<Vec2> delaunay;
  std::vector<Vec2> all_pairs;
  accumulate_drift(system, model, kUnboundedRadius, delaunay,
                   NeighborMode::kDelaunay);
  accumulate_drift(system, model, kUnboundedRadius, all_pairs,
                   NeighborMode::kAllPairs);
  // Particle 0 is not a Delaunay neighbor of particle 4 (separated by the
  // diamond) but interacts with it under all-pairs: drifts must differ.
  EXPECT_NE(delaunay[0].x, all_pairs[0].x);
  // Everything finite and nonzero where expected.
  for (const Vec2 d : delaunay) {
    EXPECT_TRUE(std::isfinite(d.x) && std::isfinite(d.y));
  }
}

TEST(DelaunayForces, CutoffPrunesLongTessellationEdges) {
  using namespace sops::sim;
  InteractionModel model(ForceLawKind::kSpring, 1, PairParams{1.0, 2.0, 1, 1});
  // Two distant pairs: the tessellation connects across the gap, a finite
  // cutoff removes the bridge.
  ParticleSystem system({{0, 0}, {0, 1}, {50, 0}, {50, 1}}, {0, 0, 0, 0});
  std::vector<Vec2> bounded;
  std::vector<Vec2> unbounded;
  accumulate_drift(system, model, 5.0, bounded, NeighborMode::kDelaunay);
  accumulate_drift(system, model, kUnboundedRadius, unbounded,
                   NeighborMode::kDelaunay);
  // Unbounded: particle 0 feels the distant pair (attraction, +x).
  EXPECT_GT(unbounded[0].x, 0.1);
  // Bounded at 5: only the local partner matters; no x-pull.
  EXPECT_NEAR(bounded[0].x, 0.0, 1e-12);
}

TEST(DelaunayForces, MatchesAllPairsOnATriangle) {
  using namespace sops::sim;
  InteractionModel model(ForceLawKind::kSpring, 1, PairParams{1.0, 2.0, 1, 1});
  ParticleSystem system({{0, 0}, {1, 0}, {0.5, 1.0}}, {0, 0, 0});
  std::vector<Vec2> delaunay;
  std::vector<Vec2> all_pairs;
  accumulate_drift(system, model, kUnboundedRadius, delaunay,
                   NeighborMode::kDelaunay);
  accumulate_drift(system, model, kUnboundedRadius, all_pairs,
                   NeighborMode::kAllPairs);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(delaunay[i].x, all_pairs[i].x, 1e-12);
    EXPECT_NEAR(delaunay[i].y, all_pairs[i].y, 1e-12);
  }
}

}  // namespace
