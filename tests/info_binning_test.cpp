// Binning/shrinkage estimator tests: exact values on discrete-support data,
// shrinkage direction, and the high-dimension overestimation failure mode
// the paper reports (§5.3).
#include <gtest/gtest.h>

#include <cmath>

#include "info/binning.hpp"
#include "info/ksg.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::info::binned_entropy;
using sops::info::BinningOptions;
using sops::info::Block;
using sops::info::multi_information_binned;
using sops::info::SampleMatrix;
using sops::info::shrinkage_entropy_bits;
using sops::rng::Xoshiro256;

BinningOptions no_shrinkage(std::size_t bins) {
  BinningOptions options;
  options.bins_per_dim = bins;
  options.james_stein_shrinkage = false;
  return options;
}

TEST(ShrinkageEntropy, UniformCountsGiveLogSupport) {
  const std::vector<std::size_t> counts{25, 25, 25, 25};
  EXPECT_NEAR(shrinkage_entropy_bits(counts, 4, false), 2.0, 1e-12);
  // Already uniform: shrinkage toward uniform changes nothing.
  EXPECT_NEAR(shrinkage_entropy_bits(counts, 4, true), 2.0, 1e-12);
}

TEST(ShrinkageEntropy, DegenerateSingleCell) {
  const std::vector<std::size_t> counts{100};
  EXPECT_NEAR(shrinkage_entropy_bits(counts, 1, false), 0.0, 1e-12);
}

TEST(ShrinkageEntropy, ShrinkagePullsTowardUniform) {
  // Skewed histogram over a large support: the shrunk estimate must lie
  // between the ML estimate and log₂(support).
  const std::vector<std::size_t> counts{9, 1};
  const double ml = shrinkage_entropy_bits(counts, 16, false);
  const double shrunk = shrinkage_entropy_bits(counts, 16, true);
  EXPECT_GT(shrunk, ml);
  EXPECT_LT(shrunk, 4.0);
}

TEST(ShrinkageEntropy, MoreDataLessShrinkage) {
  const std::vector<std::size_t> small{9, 1};
  const std::vector<std::size_t> large{900, 100};
  const double ml_small = shrinkage_entropy_bits(small, 8, false);
  const double ml_large = shrinkage_entropy_bits(large, 8, false);
  EXPECT_NEAR(ml_small, ml_large, 1e-12);  // same distribution
  const double bias_small = shrinkage_entropy_bits(small, 8, true) - ml_small;
  const double bias_large = shrinkage_entropy_bits(large, 8, true) - ml_large;
  EXPECT_GT(bias_small, bias_large);
}

TEST(ShrinkageEntropy, NoObservationsThrows) {
  const std::vector<std::size_t> counts;
  EXPECT_THROW((void)shrinkage_entropy_bits(counts, 4, false),
               sops::PreconditionError);
}

TEST(BinnedEntropy, TwoValueScalar) {
  // Half the samples at 0, half at 1, two bins: exactly 1 bit.
  SampleMatrix samples(100, 1);
  for (std::size_t s = 0; s < 100; ++s) samples(s, 0) = s < 50 ? 0.0 : 1.0;
  EXPECT_NEAR(binned_entropy(samples, Block{0, 1}, no_shrinkage(2)), 1.0, 1e-12);
}

TEST(BinnedEntropy, ConstantIsZero) {
  SampleMatrix samples(50, 1);
  for (std::size_t s = 0; s < 50; ++s) samples(s, 0) = 3.0;
  EXPECT_NEAR(binned_entropy(samples, Block{0, 1}, no_shrinkage(8)), 0.0, 1e-12);
}

TEST(BinnedMi, PerfectlyCoupledBits) {
  // Y = X over 4 distinct values: I = H(X) = 2 bits exactly.
  SampleMatrix samples(400, 2);
  for (std::size_t s = 0; s < 400; ++s) {
    const double v = static_cast<double>(s % 4);
    samples(s, 0) = v;
    samples(s, 1) = v;
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_binned(samples, blocks, no_shrinkage(4)), 2.0,
              1e-12);
}

TEST(BinnedMi, IndependentDiscreteIsZero) {
  SampleMatrix samples(400, 2);
  for (std::size_t s = 0; s < 400; ++s) {
    samples(s, 0) = static_cast<double>(s % 4);        // cycles 0..3
    samples(s, 1) = static_cast<double>((s / 4) % 4);  // all combinations
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_binned(samples, blocks, no_shrinkage(4)), 0.0,
              1e-12);
}

TEST(BinnedMi, ThreeVariableParity) {
  // Z = X ⊕ Y with fair bits: pairwise independent, multi-information of the
  // triple is exactly 1 bit.
  SampleMatrix samples(800, 3);
  std::size_t row = 0;
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      for (std::size_t rep = 0; rep < 200; ++rep) {
        samples(row, 0) = static_cast<double>(x);
        samples(row, 1) = static_cast<double>(y);
        samples(row, 2) = static_cast<double>(x ^ y);
        ++row;
      }
    }
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}, {2, 1}};
  EXPECT_NEAR(multi_information_binned(samples, blocks, no_shrinkage(2)), 1.0,
              1e-12);
}

TEST(BinnedMi, HighDimensionSparseSamplingOverestimates) {
  // The paper's §5.3 failure mode: independent data in moderately high
  // dimension with few samples — the plug-in binning estimate is grossly
  // positive while the truth (and KSG) are near zero.
  Xoshiro256 engine(13);
  const std::size_t m = 200;
  const std::size_t blocks_count = 6;
  SampleMatrix samples(m, blocks_count);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < blocks_count; ++d) {
      samples(s, d) = sops::rng::standard_normal(engine);
    }
  }
  const double binned =
      multi_information_binned(samples, sops::info::uniform_blocks(blocks_count, 1),
                               no_shrinkage(8));
  const double ksg = sops::info::multi_information_ksg(samples, 1);
  EXPECT_GT(binned, 2.0);       // large spurious information
  EXPECT_LT(std::abs(ksg), 0.5);  // KSG stays near the truth
}

TEST(BinnedMi, SingleBinGivesZero) {
  Xoshiro256 engine(17);
  SampleMatrix samples(100, 2);
  for (std::size_t s = 0; s < 100; ++s) {
    samples(s, 0) = sops::rng::standard_normal(engine);
    samples(s, 1) = sops::rng::standard_normal(engine);
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_binned(samples, blocks, no_shrinkage(1)), 0.0,
              1e-12);
}

}  // namespace
