// Peak-allocation contract of the streamed ensemble driver.
//
// The pre-refactor run_experiment staged m full Trajectory objects and then
// regrouped them into the series — thousands of per-frame vector
// allocations and a staging copy of the whole recording. The streamed
// driver writes every sample directly into the flat FrameStore, so the peak
// heap usage of a run must stay close to the store's own payload.
//
// This file overrides global operator new/delete to track live heap bytes;
// it is deliberately the only test binary that does.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/experiment.hpp"
#include "core/presets.hpp"

namespace {

std::atomic<std::size_t> g_live_bytes{0};
std::atomic<std::size_t> g_peak_bytes{0};

void track_alloc(std::size_t size) noexcept {
  const std::size_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::size_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

constexpr std::size_t kHeader = 16;  // keeps max_align_t alignment

void* tracked_new(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = size;
  track_alloc(size);
  return static_cast<char*>(raw) + kHeader;
}

void tracked_delete(void* ptr) noexcept {
  if (ptr == nullptr) return;
  void* raw = static_cast<char*>(ptr) - kHeader;
  g_live_bytes.fetch_sub(*static_cast<std::size_t*>(raw),
                         std::memory_order_relaxed);
  std::free(raw);
}

}  // namespace

void* operator new(std::size_t size) { return tracked_new(size); }
void* operator new[](std::size_t size) { return tracked_new(size); }
void operator delete(void* ptr) noexcept { tracked_delete(ptr); }
void operator delete[](void* ptr) noexcept { tracked_delete(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { tracked_delete(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { tracked_delete(ptr); }

namespace {

TEST(PeakAllocation, StreamedExperimentStaysNearStorePayload) {
  // Large-m configuration: 256 samples × 64 particles × 9 frames ≈ 2.3 MiB
  // of positions. The streamed driver's peak beyond the pre-run baseline
  // must stay close to that payload (workspaces and bookkeeping are small);
  // a staged driver would roughly double it.
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.types = sops::sim::evenly_distributed_types(64, 3);
  simulation.steps = 32;
  simulation.record_stride = 4;
  sops::core::ExperimentConfig experiment(simulation);
  experiment.samples = 256;

  const std::size_t frames = sops::sim::recording_steps(32, 4).size();
  const std::size_t store_bytes =
      frames * experiment.samples * 64 * sizeof(sops::geom::Vec2);

  const std::size_t baseline = g_live_bytes.load();
  g_peak_bytes.store(baseline);
  const sops::core::EnsembleSeries series =
      sops::core::run_experiment(experiment);
  const std::size_t peak_delta = g_peak_bytes.load() - baseline;

  EXPECT_EQ(series.frames.bytes(), store_bytes);
  // Allow 25% + 512 KiB headroom over the payload for workspaces, thread
  // stacks' heap use, and allocator bookkeeping.
  EXPECT_LT(peak_delta, store_bytes + store_bytes / 4 + (512u << 10))
      << "streamed run peaked at " << peak_delta << " bytes for a "
      << store_bytes << "-byte store";
  // Sanity: the run did allocate at least the store itself.
  EXPECT_GE(peak_delta, store_bytes);
}

}  // namespace
