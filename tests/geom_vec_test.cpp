// Tests for Vec2/Vec3 arithmetic and the Aabb helper.
#include <gtest/gtest.h>

#include <numbers>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"
#include "geom/vec3.hpp"

namespace {

using sops::geom::Aabb;
using sops::geom::Vec2;
using sops::geom::Vec3;

constexpr double kPi = std::numbers::pi;

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot(Vec2{1, 2}, Vec2{3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{1, 0}, Vec2{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{0, 1}, Vec2{1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{2, 3}, Vec2{2, 3}), 0.0);
}

TEST(Vec2, NormsAndDistances) {
  EXPECT_DOUBLE_EQ(norm_sq(Vec2{3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm(Vec2{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist(Vec2{1, 1}, Vec2{4, 5}), 5.0);
  EXPECT_DOUBLE_EQ(dist_sq(Vec2{1, 1}, Vec2{4, 5}), 25.0);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = rotated(Vec2{1, 0}, kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{3.7, -1.2};
  for (const double angle : {0.1, 1.0, 2.5, -0.7, 6.0}) {
    EXPECT_NEAR(norm(rotated(v, angle)), norm(v), 1e-12) << angle;
  }
}

TEST(Vec2, RotationComposes) {
  const Vec2 v{1.5, 0.25};
  const Vec2 once = rotated(rotated(v, 0.4), 0.7);
  const Vec2 combined = rotated(v, 1.1);
  EXPECT_NEAR(once.x, combined.x, 1e-12);
  EXPECT_NEAR(once.y, combined.y, 1e-12);
}

TEST(Vec3, BasicOps) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm_sq(a), 14.0);
  EXPECT_DOUBLE_EQ(dist_sq(a, b), 27.0);
}

TEST(Aabb, EmptyBox) {
  const Aabb box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.width(), 0.0);
  EXPECT_DOUBLE_EQ(box.height(), 0.0);
  EXPECT_DOUBLE_EQ(box.diagonal(), 0.0);
  EXPECT_EQ(box.center(), Vec2(0, 0));
}

TEST(Aabb, IncludeGrowsBox) {
  Aabb box;
  box.include({1, 2});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.min, Vec2(1, 2));
  EXPECT_EQ(box.max, Vec2(1, 2));
  box.include({-1, 5});
  EXPECT_EQ(box.min, Vec2(-1, 2));
  EXPECT_EQ(box.max, Vec2(1, 5));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

TEST(Aabb, ContainsBoundaryAndInterior) {
  Aabb box;
  box.include({0, 0});
  box.include({2, 2});
  EXPECT_TRUE(box.contains({1, 1}));
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({2, 2}));
  EXPECT_FALSE(box.contains({3, 1}));
  EXPECT_FALSE(box.contains({1, -0.001}));
}

TEST(Aabb, BoundingBoxOfPoints) {
  const std::vector<Vec2> points{{0, 0}, {3, -1}, {-2, 4}};
  const Aabb box = sops::geom::bounding_box(points);
  EXPECT_EQ(box.min, Vec2(-2, -1));
  EXPECT_EQ(box.max, Vec2(3, 4));
  EXPECT_NEAR(box.diagonal(), std::sqrt(25.0 + 25.0), 1e-12);
  EXPECT_EQ(box.center(), Vec2(0.5, 1.5));
}

}  // namespace
