// FrameStore tests: flat layout, span accessors, and agreement between the
// streamed ensemble driver and independently run single-sample trajectories.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/frame_store.hpp"
#include "core/presets.hpp"
#include "support/error.hpp"

namespace {

using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::FrameStore;
using sops::core::run_experiment;
using sops::geom::Vec2;

TEST(FrameStore, DefaultIsEmpty) {
  const FrameStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.frame_count(), 0u);
  EXPECT_EQ(store.sample_count(), 0u);
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_EQ(store.storage(), sops::core::StorageMode::kHeap);
}

TEST(FrameStore, FrontBackThrowOnEmptyStore) {
  // frames_ - 1 used to wrap at frames_ == 0 and hand out a wild view; an
  // empty store (default-constructed, or a zero-frame recording) must fail
  // loudly instead.
  const FrameStore store;
  EXPECT_THROW((void)store.front(), sops::PreconditionError);
  EXPECT_THROW((void)store.back(), sops::PreconditionError);
}

TEST(FrameStore, ShapeAndBytes) {
  const FrameStore store(3, 4, 5);
  EXPECT_EQ(store.frame_count(), 3u);
  EXPECT_EQ(store.sample_count(), 4u);
  EXPECT_EQ(store.particle_count(), 5u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.bytes(), 3u * 4u * 5u * sizeof(Vec2));
  EXPECT_EQ(store[1].size(), 4u);
  EXPECT_EQ(store[1].particle_count(), 5u);
  EXPECT_EQ(store.sample(2, 3).size(), 5u);
}

TEST(FrameStore, SlotsAreContiguousAndDisjoint) {
  FrameStore store(2, 3, 4);
  for (std::size_t f = 0; f < 2; ++f) {
    for (std::size_t s = 0; s < 3; ++s) {
      const auto slot = store.sample_slot(f, s);
      for (std::size_t i = 0; i < 4; ++i) {
        slot[i] = {static_cast<double>(f * 100 + s * 10 + i), 0.0};
      }
    }
  }
  // Reading back through every accessor sees the writes, and the whole
  // buffer is one [frame][sample][particle] stride.
  const Vec2* base = store.front().data();
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(store[f].data(), base + f * 3 * 4);
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(store.sample(f, s).data(), base + (f * 3 + s) * 4);
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(store[f][s][i].x, static_cast<double>(f * 100 + s * 10 + i));
      }
    }
  }
  EXPECT_EQ(store.back()[2][3].x, 123.0);
}

TEST(FrameStore, RejectsEmptyDimensions) {
  EXPECT_THROW(FrameStore(0, 1, 1), sops::PreconditionError);
  EXPECT_THROW(FrameStore(1, 0, 1), sops::PreconditionError);
  EXPECT_THROW(FrameStore(1, 1, 0), sops::PreconditionError);
  sops::core::FrameStoreOptions mapped;
  mapped.mode = sops::core::StorageMode::kMapped;
  EXPECT_THROW(FrameStore(0, 1, 1, mapped), sops::PreconditionError);
}

TEST(FrameStore, MappedStoreSameLayoutAndZeroed) {
  sops::core::FrameStoreOptions options;
  options.mode = sops::core::StorageMode::kMapped;
  options.spill_dir = ::testing::TempDir();
  FrameStore store(2, 3, 4, options);
  if (store.storage() != sops::core::StorageMode::kMapped) {
    GTEST_SKIP() << "mmap unavailable: " << store.spill_fallback_reason();
  }
  EXPECT_FALSE(store.spill_path().empty());
  EXPECT_EQ(store.bytes(), 2u * 3u * 4u * sizeof(Vec2));
  // Same flat [frame][sample][particle] stride as the heap backing, and
  // fresh file pages read as zero like a value-initialized vector.
  const Vec2* base = store.front().data();
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(store[f].data(), base + f * 3 * 4);
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(store.sample(f, s).data(), base + (f * 3 + s) * 4);
      for (const Vec2& v : store.sample(f, s)) {
        EXPECT_EQ(v.x, 0.0);
        EXPECT_EQ(v.y, 0.0);
      }
    }
  }
  // Writes land and survive a flush + page release round-trip.
  store.sample_slot(1, 2)[3] = {42.0, -1.0};
  store.flush_samples(0, 3);
  EXPECT_EQ(store.sample(1, 2)[3], (Vec2{42.0, -1.0}));
}

TEST(FrameStore, AutoModeSpillsOnThresholdOnly) {
  sops::core::FrameStoreOptions options;
  options.mode = sops::core::StorageMode::kAuto;
  options.spill_dir = ::testing::TempDir();
  options.auto_spill_bytes = 1;  // any payload crosses it
  const FrameStore spilled(2, 3, 4, options);
  options.auto_spill_bytes = std::size_t{1} << 40;
  const FrameStore kept(2, 3, 4, options);
  EXPECT_EQ(kept.storage(), sops::core::StorageMode::kHeap);
  EXPECT_TRUE(kept.spill_path().empty());
  if (spilled.storage() == sops::core::StorageMode::kMapped) {
    EXPECT_FALSE(spilled.spill_path().empty());
  }
}

TEST(FrameStore, UnwritableSpillDirFallsBackToHeap) {
  sops::core::FrameStoreOptions options;
  options.mode = sops::core::StorageMode::kMapped;
  options.spill_dir = "/nonexistent/sops-spill-dir";
  FrameStore store(2, 3, 4, options);
  EXPECT_EQ(store.storage(), sops::core::StorageMode::kHeap);
  EXPECT_TRUE(store.spill_path().empty());
  EXPECT_FALSE(store.spill_fallback_reason().empty());
  // The fallback is fully functional storage.
  store.sample_slot(0, 0)[0] = {1.0, 2.0};
  store.flush_samples(0, 3);  // no-op on heap
  EXPECT_EQ(store.sample(0, 0)[0], (Vec2{1.0, 2.0}));
  // An out-of-range flush is a caller bug, not a silent no-op.
  EXPECT_THROW(store.flush_samples(0, 4), sops::PreconditionError);
}

TEST(StreamedExperiment, StrideBeyondStepsStillRecordsFrames) {
  // The audit behind the empty-store guards: a recording grid always
  // contains step 0 and the final step, so even stride > steps yields a
  // two-frame store and front()/back() stay in bounds.
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 3;
  simulation.record_stride = 100;
  ExperimentConfig experiment(simulation);
  experiment.samples = 2;
  const EnsembleSeries series = run_experiment(experiment);
  EXPECT_EQ(series.frame_steps, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(series.frames.frame_count(), 2u);
  EXPECT_EQ(series.frames.front().size(), 2u);
  EXPECT_EQ(series.frames.back().particle_count(),
            simulation.types.size());
}

TEST(StreamedExperiment, MatchesIndependentSingleRuns) {
  // The flat store must contain, slot for slot, what m independent
  // run_simulation calls produce for the same streams.
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 9;
  simulation.record_stride = 4;
  ExperimentConfig experiment(simulation);
  experiment.samples = 4;
  const EnsembleSeries series = run_experiment(experiment);
  EXPECT_EQ(series.frame_steps, (std::vector<std::size_t>{0, 4, 8, 9}));

  for (std::size_t s = 0; s < experiment.samples; ++s) {
    sops::sim::SimulationConfig sample = simulation;
    sample.stream = s;
    const sops::sim::Trajectory trajectory = sops::sim::run_simulation(sample);
    ASSERT_EQ(trajectory.frame_steps, series.frame_steps);
    EXPECT_EQ(trajectory.equilibrium_step, series.equilibrium_steps[s]);
    for (std::size_t f = 0; f < series.frame_count(); ++f) {
      const auto slot = series.frames.sample(f, s);
      for (std::size_t i = 0; i < slot.size(); ++i) {
        EXPECT_EQ(slot[i], trajectory.frames[f][i]) << "f=" << f << " s=" << s;
      }
    }
  }
}

}  // namespace
