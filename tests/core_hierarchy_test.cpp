// Two-level hierarchical decomposition tests (paper §3.1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/hierarchy.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::align::AlignedEnsemble;
using sops::core::decompose_two_level;
using sops::core::HierarchicalDecomposition;
using sops::geom::Vec2;
using sops::sim::TypeId;

// Builds an aligned-style ensemble directly (no simulation): two types,
// each with two spatial clusters of two particles. Dependence is injected
// at chosen levels via shared latent factors.
AlignedEnsemble synthetic_ensemble(std::size_t m, double between_types,
                                   double between_clusters,
                                   double within_cluster, std::uint64_t seed) {
  const std::vector<TypeId> types{0, 0, 0, 0, 1, 1, 1, 1};
  // Cluster centers: type 0 at x = ±4 (two clusters), type 1 at y = ±4.
  const std::vector<Vec2> centers{{-4, 0}, {-4, 0}, {4, 0}, {4, 0},
                                  {0, -4}, {0, -4}, {0, 4}, {0, 4}};
  sops::rng::Xoshiro256 engine(seed);

  AlignedEnsemble ensemble;
  ensemble.samples = sops::info::SampleMatrix(m, 16);
  ensemble.blocks = sops::info::uniform_blocks(8, 2);
  ensemble.block_types = types;

  for (std::size_t s = 0; s < m; ++s) {
    const double global = sops::rng::standard_normal(engine);
    auto row = ensemble.samples.row(s);
    for (std::size_t type = 0; type < 2; ++type) {
      const double type_factor = sops::rng::standard_normal(engine);
      for (std::size_t cluster = 0; cluster < 2; ++cluster) {
        const double cluster_factor = sops::rng::standard_normal(engine);
        for (std::size_t p = 0; p < 2; ++p) {
          const std::size_t index = type * 4 + cluster * 2 + p;
          const double noise_x = sops::rng::standard_normal(engine);
          const double noise_y = sops::rng::standard_normal(engine);
          const double shared = between_types * global +
                                between_clusters * type_factor +
                                within_cluster * cluster_factor;
          const double residual = std::sqrt(std::max(
              0.0, 1.0 - between_types * between_types -
                       between_clusters * between_clusters -
                       within_cluster * within_cluster));
          row[2 * index] = centers[index].x + shared + residual * noise_x;
          row[2 * index + 1] = centers[index].y + shared + residual * noise_y;
        }
      }
    }
  }
  return ensemble;
}

TEST(Hierarchy, StructureOfResult) {
  const AlignedEnsemble ensemble = synthetic_ensemble(300, 0.3, 0.3, 0.3, 3);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 2);
  EXPECT_EQ(h.by_type.within_group.size(), 2u);  // two types
  ASSERT_EQ(h.within_types.size(), 2u);
  for (const auto& type_level : h.within_types) {
    // Two clusters of two particles each (k-means on well-separated blobs).
    EXPECT_EQ(type_level.cluster_sizes.size(), 2u);
    EXPECT_EQ(type_level.cluster_sizes[0] + type_level.cluster_sizes[1], 4u);
  }
}

TEST(Hierarchy, WithinClusterDependenceLandsAtTheLeaves) {
  // Only within-cluster coupling: between-types and between-clusters terms
  // must be near zero, within-cluster terms clearly positive.
  const AlignedEnsemble ensemble = synthetic_ensemble(600, 0.0, 0.0, 0.8, 5);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 2);
  EXPECT_NEAR(h.by_type.between_groups, 0.0, 0.35);
  for (const auto& type_level : h.within_types) {
    EXPECT_NEAR(type_level.by_cluster.between_groups, 0.0, 0.6);
    double within_total = 0.0;
    for (const double w : type_level.by_cluster.within_group) {
      within_total += w;
    }
    EXPECT_GT(within_total, 1.0);
  }
}

TEST(Hierarchy, BetweenTypeDependenceLandsAtTheRoot) {
  const AlignedEnsemble ensemble = synthetic_ensemble(600, 0.8, 0.0, 0.0, 7);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 2);
  EXPECT_GT(h.by_type.between_groups, 1.0);
}

TEST(Hierarchy, IndependentEnsembleAllTermsSmall) {
  const AlignedEnsemble ensemble = synthetic_ensemble(500, 0.0, 0.0, 0.0, 9);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 2);
  EXPECT_NEAR(h.by_type.total, 0.0, 0.5);
  EXPECT_NEAR(h.reconstructed(), 0.0, 1.2);
}

TEST(Hierarchy, ReconstructionTracksTotal) {
  const AlignedEnsemble ensemble = synthetic_ensemble(800, 0.4, 0.4, 0.4, 11);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 2);
  // Two stacked Eq.-(5) identities; allow the stacked estimator bias.
  EXPECT_NEAR(h.reconstructed(), h.by_type.total,
              0.25 * std::max(std::abs(h.by_type.total), 4.0));
}

TEST(Hierarchy, SingleClusterPerTypeReducesToLevelOne) {
  const AlignedEnsemble ensemble = synthetic_ensemble(300, 0.3, 0.0, 0.5, 13);
  const HierarchicalDecomposition h = decompose_two_level(ensemble, 1);
  for (const auto& type_level : h.within_types) {
    EXPECT_DOUBLE_EQ(type_level.by_cluster.between_groups, 0.0);
    ASSERT_EQ(type_level.by_cluster.within_group.size(), 1u);
  }
}

TEST(Hierarchy, PreconditionsEnforced) {
  const AlignedEnsemble ensemble = synthetic_ensemble(50, 0.2, 0.2, 0.2, 15);
  EXPECT_THROW((void)decompose_two_level(ensemble, 0),
               sops::PreconditionError);
}

}  // namespace
