// Core pipeline tests: ensemble experiments, the self-organization
// analyzer, presets, and the paper's central integration claims —
// an interacting collective self-organizes (ΔI > 0), a non-interacting
// one does not (§3.1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "support/error.hpp"

namespace {

using sops::core::AnalysisOptions;
using sops::core::AnalysisResult;
using sops::core::analyze_self_organization;
using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::run_experiment;

// Small-but-real experiment: Fig. 4 system scaled down for test budget.
ExperimentConfig small_experiment(std::size_t samples = 40,
                                  std::size_t steps = 30) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = steps;
  simulation.record_stride = steps;  // record only first and last frame
  ExperimentConfig experiment(simulation);
  experiment.samples = samples;
  return experiment;
}

TEST(Experiment, ShapeOfSeries) {
  const EnsembleSeries series = run_experiment(small_experiment(10, 20));
  EXPECT_EQ(series.sample_count(), 10u);
  EXPECT_EQ(series.particle_count(), 50u);
  EXPECT_EQ(series.frame_steps, (std::vector<std::size_t>{0, 20}));
  EXPECT_EQ(series.frames.size(), 2u);
  EXPECT_EQ(series.frames[0].size(), 10u);
  EXPECT_EQ(series.equilibrium_steps.size(), 10u);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const EnsembleSeries a = run_experiment(small_experiment(6, 10));
  const EnsembleSeries b = run_experiment(small_experiment(6, 10));
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    for (std::size_t s = 0; s < a.frames[f].size(); ++s) {
      for (std::size_t i = 0; i < a.frames[f][s].size(); ++i) {
        EXPECT_EQ(a.frames[f][s][i], b.frames[f][s][i]);
      }
    }
  }
}

TEST(Experiment, ThreadCountDoesNotChangeTrajectories) {
  ExperimentConfig serial = small_experiment(6, 10);
  serial.threads = 1;
  ExperimentConfig parallel = small_experiment(6, 10);
  parallel.threads = 4;
  const EnsembleSeries a = run_experiment(serial);
  const EnsembleSeries b = run_experiment(parallel);
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    for (std::size_t s = 0; s < a.frames[f].size(); ++s) {
      for (std::size_t i = 0; i < a.frames[f][s].size(); ++i) {
        EXPECT_EQ(a.frames[f][s][i], b.frames[f][s][i]);
      }
    }
  }
}

TEST(Experiment, SamplesDiffer) {
  const EnsembleSeries series = run_experiment(small_experiment(3, 5));
  EXPECT_NE(series.frames[0][0][0], series.frames[0][1][0]);
}

TEST(Experiment, StopAtEquilibriumRejected) {
  ExperimentConfig config = small_experiment(3, 5);
  config.simulation.stop_at_equilibrium = true;
  EXPECT_THROW((void)run_experiment(config), sops::PreconditionError);
}

TEST(Experiment, EquilibriumFractionInRange) {
  const EnsembleSeries series = run_experiment(small_experiment(8, 15));
  EXPECT_GE(series.equilibrium_fraction(), 0.0);
  EXPECT_LE(series.equilibrium_fraction(), 1.0);
}

TEST(Analyzer, InteractingCollectiveSelfOrganizes) {
  // The headline claim: the Fig. 4 system shows increasing
  // multi-information (§6).
  const EnsembleSeries series = run_experiment(small_experiment(80, 80));
  const AnalysisResult result = analyze_self_organization(series);
  EXPECT_EQ(result.observer_count, 50u);
  EXPECT_FALSE(result.coarse_grained);
  EXPECT_GT(result.delta_mi(), 0.5) << "expected self-organization";
  EXPECT_TRUE(result.self_organizing());
}

TEST(Analyzer, NonInteractingControlDoesNot) {
  // §3.1: "for a completely random process this measure never detects any
  // self-organization."
  sops::sim::SimulationConfig simulation =
      sops::core::presets::noninteracting_control(12);
  simulation.steps = 40;
  simulation.record_stride = 40;
  ExperimentConfig experiment(simulation);
  experiment.samples = 60;
  const AnalysisResult result =
      analyze_self_organization(run_experiment(experiment));
  EXPECT_LT(std::abs(result.delta_mi()), 0.6);
  EXPECT_FALSE(result.self_organizing(0.6));
}

TEST(Analyzer, PointsCarryStepsAndCurveHelpers) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 20;
  simulation.record_stride = 10;
  ExperimentConfig experiment(simulation);
  experiment.samples = 12;
  const AnalysisResult result =
      analyze_self_organization(run_experiment(experiment));
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.points[0].step, 0u);
  EXPECT_EQ(result.points[1].step, 10u);
  EXPECT_EQ(result.points[2].step, 20u);
  EXPECT_EQ(result.steps(), (std::vector<double>{0.0, 10.0, 20.0}));
  EXPECT_EQ(result.mi_values().size(), 3u);
}

TEST(Analyzer, EntropyCurvesOnRequest) {
  ExperimentConfig experiment = small_experiment(30, 20);
  AnalysisOptions options;
  options.compute_entropies = true;
  const AnalysisResult result =
      analyze_self_organization(run_experiment(experiment), options);
  for (const auto& point : result.points) {
    EXPECT_TRUE(std::isfinite(point.joint_entropy));
    EXPECT_TRUE(std::isfinite(point.marginal_entropy_sum));
  }
  // §6: "over time, the marginal entropies decrease". The 2-D marginal KL
  // estimates are reliable at this sample size (unlike the 100-D joint,
  // whose small-m bias dwarfs the signal — hence no joint-based assertion).
  EXPECT_LT(result.points.back().marginal_entropy_sum,
            result.points.front().marginal_entropy_sum);
}

TEST(Analyzer, DecompositionOnRequest) {
  ExperimentConfig experiment = small_experiment(30, 20);
  AnalysisOptions options;
  options.compute_decomposition = true;
  const AnalysisResult result =
      analyze_self_organization(run_experiment(experiment), options);
  const auto& d = result.points.back().decomposition;
  EXPECT_EQ(d.within_group.size(), 3u);  // three types
  EXPECT_TRUE(std::isfinite(d.between_groups));
  EXPECT_TRUE(std::isfinite(d.reconstructed()));
  // The exact Eq. (5) identity is verified in info_decomposition_test at a
  // proper m/n ratio; at m = 30 samples of 50 observers the per-term biases
  // dominate, so here we only require each term to be a plausible
  // information value (the within/between split not exploding).
  EXPECT_GT(d.reconstructed(), -1.0);
  EXPECT_LT(d.reconstructed(), 60.0);
}

TEST(Analyzer, CoarseGrainingKicksInAboveThreshold) {
  ExperimentConfig experiment = small_experiment(12, 10);
  AnalysisOptions options;
  options.coarse_grain_above = 10;  // n = 50 > 10 → coarse-grained
  options.kmeans_per_type = 3;
  const AnalysisResult result =
      analyze_self_organization(run_experiment(experiment), options);
  EXPECT_TRUE(result.coarse_grained);
  EXPECT_EQ(result.observer_count, 9u);  // 3 types × 3 clusters
}

TEST(Analyzer, DeltaHelpersOnSyntheticPoints) {
  AnalysisResult result;
  result.points = {{0, 1.0, 0, 0, {}}, {10, 3.0, 0, 0, {}}, {20, 2.0, 0, 0, {}}};
  EXPECT_DOUBLE_EQ(result.delta_mi(), 1.0);
  EXPECT_DOUBLE_EQ(result.peak_delta_mi(), 2.0);
  EXPECT_TRUE(result.self_organizing(0.5));
  EXPECT_FALSE(result.self_organizing(1.5));
}

TEST(Analyzer, PreconditionsEnforced) {
  const EnsembleSeries series = run_experiment(small_experiment(5, 5));
  AnalysisOptions options;
  options.ksg.k = 4;  // needs ≥ 5 samples
  EXPECT_NO_THROW((void)analyze_self_organization(series, options));
  options.ksg.k = 5;
  EXPECT_THROW((void)analyze_self_organization(series, options),
               sops::PreconditionError);
}

TEST(Presets, Fig4MatchesCaption) {
  const auto config = sops::core::presets::fig4_three_type_collective();
  EXPECT_EQ(config.types.size(), 50u);
  EXPECT_EQ(config.model.types(), 3u);
  EXPECT_DOUBLE_EQ(config.cutoff_radius, 5.0);
  EXPECT_DOUBLE_EQ(config.model.pair(0, 1).r, 5.0);
  EXPECT_DOUBLE_EQ(config.model.pair(1, 2).r, 2.0);
  EXPECT_DOUBLE_EQ(config.model.pair(0, 2).r, 4.0);
  EXPECT_DOUBLE_EQ(config.model.pair(0, 0).r, 2.5);
}

TEST(Presets, Fig5IsSingleTypeUnbounded) {
  const auto config = sops::core::presets::fig5_single_type_rings();
  EXPECT_EQ(config.model.types(), 1u);
  EXPECT_EQ(config.types.size(), 20u);
  EXPECT_FALSE(std::isfinite(config.cutoff_radius));
}

TEST(Presets, Fig9CutoffAndRangesHonored) {
  const auto config = sops::core::presets::fig9_random_types(20, 7.5, 0);
  EXPECT_EQ(config.model.types(), 20u);
  EXPECT_DOUBLE_EQ(config.cutoff_radius, 7.5);
  for (std::size_t a = 0; a < 20; ++a) {
    for (std::size_t b = a; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(config.model.pair(a, b).k, 1.0);
      EXPECT_GE(config.model.pair(a, b).r, 2.0);
      EXPECT_LE(config.model.pair(a, b).r, 8.0);
    }
  }
}

TEST(Presets, Fig9MatrixIndexChangesModel) {
  const auto a = sops::core::presets::fig9_random_types(5, 10.0, 0);
  const auto b = sops::core::presets::fig9_random_types(5, 10.0, 1);
  EXPECT_NE(a.model.r_matrix(), b.model.r_matrix());
}

TEST(Presets, Fig8RealizesPreferredDistances) {
  const auto config = sops::core::presets::fig8_f2_random_types(20, 4, 0);
  EXPECT_EQ(config.model.kind(), sops::sim::ForceLawKind::kDoubleGaussian);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a; b < 4; ++b) {
      const auto crossing = sops::sim::preferred_distance(
          sops::sim::ForceLawKind::kDoubleGaussian, config.model.pair(a, b));
      ASSERT_TRUE(crossing.has_value());
      EXPECT_GE(*crossing, 1.0 - 1e-6);
      EXPECT_LE(*crossing, 5.0 + 1e-6);
    }
  }
}

TEST(Presets, ControlHasZeroCoupling) {
  const auto config = sops::core::presets::noninteracting_control(10);
  EXPECT_DOUBLE_EQ(config.model.pair(0, 0).k, 0.0);
}

}  // namespace
