// Asymmetric-interaction tests: exact reduction to the symmetric path,
// the §4.1 cycling phenomenology, and model validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/asymmetric.hpp"
#include "sim/detectors.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::accumulate_drift;
using sops::sim::accumulate_drift_asymmetric;
using sops::sim::AsymmetricInteractionModel;
using sops::sim::ForceLawKind;
using sops::sim::FullMatrix;
using sops::sim::InteractionModel;
using sops::sim::kUnboundedRadius;
using sops::sim::make_chaser_evader_model;
using sops::sim::PairParams;
using sops::sim::ParticleSystem;

TEST(FullMatrix, StoresOrderedEntries) {
  FullMatrix m(2);
  m.set(0, 1, 3.0);
  m.set(1, 0, 7.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_FALSE(m.is_symmetric());
  m.set(1, 0, 3.0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(FullMatrix, OutOfRangeThrows) {
  FullMatrix m(2);
  EXPECT_THROW((void)m(0, 2), sops::PreconditionError);
  EXPECT_THROW(m.set(2, 0, 1.0), sops::PreconditionError);
}

TEST(AsymmetricModel, SymmetricSpecialCaseMatchesSymmetricPath) {
  // With symmetric parameters, the asymmetric drift must equal the
  // symmetric accumulate_drift exactly.
  InteractionModel symmetric(ForceLawKind::kSpring, 2,
                             PairParams{1.5, 2.0, 1.0, 1.0});
  symmetric.set_r(0, 1, 3.0);

  AsymmetricInteractionModel asymmetric(ForceLawKind::kSpring, 2,
                                        PairParams{1.5, 2.0, 1.0, 1.0});
  asymmetric.set_r(0, 1, 3.0);
  asymmetric.set_r(1, 0, 3.0);
  EXPECT_TRUE(asymmetric.is_symmetric());

  ParticleSystem system({{0, 0}, {1.2, 0.4}, {-0.7, 2.0}, {3.0, 1.0}},
                        {0, 1, 0, 1});
  std::vector<Vec2> a;
  std::vector<Vec2> b;
  accumulate_drift(system, symmetric, kUnboundedRadius, a);
  accumulate_drift_asymmetric(system, asymmetric, kUnboundedRadius, b);
  for (std::size_t i = 0; i < system.size(); ++i) {
    EXPECT_NEAR(a[i].x, b[i].x, 1e-12) << i;
    EXPECT_NEAR(a[i].y, b[i].y, 1e-12) << i;
  }
}

TEST(AsymmetricModel, OrderedPairsFeelDifferentForces) {
  const AsymmetricInteractionModel model = make_chaser_evader_model(1.0, 3.0);
  ParticleSystem system({{0, 0}, {2, 0}}, {0, 1});
  std::vector<Vec2> drift;
  accumulate_drift_asymmetric(system, model, kUnboundedRadius, drift);
  // Chaser (type 0) at distance 2 > chase r = 1: attracted (+x toward prey).
  EXPECT_GT(drift[0].x, 0.0);
  // Evader (type 1) at distance 2 < evade r = 3: repelled (+x away from 0).
  EXPECT_GT(drift[1].x, 0.0);
  // Net momentum is NOT conserved (no action–reaction): totals differ from 0.
  EXPECT_NE(drift[0].x + drift[1].x, 0.0);
}

TEST(AsymmetricModel, ChaserEvaderNeverEquilibrates) {
  // The §4.1 claim: mutually incompatible preferred distances produce
  // persistent motion — the equilibrium criterion never fires.
  const AsymmetricInteractionModel model = make_chaser_evader_model(1.0, 3.0);
  ParticleSystem system({{0, 0}, {2, 0}}, {0, 1});
  sops::rng::Xoshiro256 engine(3);
  sops::sim::IntegratorParams params;
  params.noise_variance = 0.0;  // cycling is deterministic, not noise-driven
  sops::sim::EquilibriumDetector detector(0.05, 10);
  std::vector<Vec2> scratch;
  bool equilibrated = false;
  for (int step = 0; step < 3000; ++step) {
    const double residual = sops::sim::euler_maruyama_step_asymmetric(
        system, model, kUnboundedRadius, params, engine, scratch);
    equilibrated |= detector.update(residual);
  }
  EXPECT_FALSE(equilibrated);
  // Yet the pair remains bounded (a chase, not an explosion): the distance
  // stays between the two preferred radii once the transient passes.
  const double d = dist(system.position(0), system.position(1));
  EXPECT_GT(d, 0.5);
  EXPECT_LT(d, 10.0);
}

TEST(AsymmetricModel, SymmetricSystemDoesEquilibrate) {
  // Control for the test above: the symmetric version of the same geometry
  // settles (showing it is the asymmetry that prevents equilibrium).
  AsymmetricInteractionModel model(ForceLawKind::kSpring, 2,
                                   PairParams{1.0, 2.0, 1.0, 1.0});
  ParticleSystem system({{0, 0}, {0.5, 0}}, {0, 1});
  sops::rng::Xoshiro256 engine(5);
  sops::sim::IntegratorParams params;
  params.noise_variance = 0.0;
  sops::sim::EquilibriumDetector detector(0.05, 10);
  std::vector<Vec2> scratch;
  bool equilibrated = false;
  for (int step = 0; step < 3000 && !equilibrated; ++step) {
    const double residual = sops::sim::euler_maruyama_step_asymmetric(
        system, model, kUnboundedRadius, params, engine, scratch);
    equilibrated = detector.update(residual);
  }
  EXPECT_TRUE(equilibrated);
}

TEST(AsymmetricModel, CutoffRespected) {
  const AsymmetricInteractionModel model = make_chaser_evader_model();
  ParticleSystem system({{0, 0}, {50, 0}}, {0, 1});
  std::vector<Vec2> drift;
  accumulate_drift_asymmetric(system, model, 5.0, drift);
  EXPECT_DOUBLE_EQ(drift[0].x, 0.0);
  EXPECT_DOUBLE_EQ(drift[1].x, 0.0);
}

TEST(AsymmetricModel, ValidationThrows) {
  EXPECT_THROW(AsymmetricInteractionModel(ForceLawKind::kSpring, 0),
               sops::PreconditionError);
  AsymmetricInteractionModel model(ForceLawKind::kSpring, 2);
  EXPECT_THROW(model.set_r(0, 1, -1.0), sops::PreconditionError);
  EXPECT_THROW(model.set_sigma(0, 1, 0.0), sops::PreconditionError);
  EXPECT_THROW((void)make_chaser_evader_model(3.0, 1.0),
               sops::PreconditionError);  // evade must exceed chase

  ParticleSystem system({{0, 0}}, {5});
  std::vector<Vec2> drift;
  EXPECT_THROW(accumulate_drift_asymmetric(system, model, 1.0, drift),
               sops::PreconditionError);
}

}  // namespace
