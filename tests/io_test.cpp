// I/O tests: CSV round-trip, chart/scatter/SVG rendering sanity.
#include <gtest/gtest.h>

#include <sstream>

#include "io/ascii_chart.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::io::ChartOptions;
using sops::io::CsvTable;
using sops::io::read_csv;
using sops::io::render_chart;
using sops::io::render_scatter;
using sops::io::render_svg;
using sops::io::Series;
using sops::io::write_csv;

TEST(Csv, RoundTrip) {
  CsvTable table;
  table.header = {"t", "mi", "entropy"};
  table.add_row({0.0, 1.5, -2.25});
  table.add_row({1.0, 2.5e-10, 1e17});

  std::stringstream stream;
  write_csv(stream, table);
  const CsvTable back = read_csv(stream);

  EXPECT_EQ(back.header, table.header);
  ASSERT_EQ(back.rows.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(back.rows[r][c], table.rows[r][c]);
    }
  }
}

TEST(Csv, ColumnLookup) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW((void)table.column("missing"), sops::Error);
}

TEST(Csv, RowWidthEnforced) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_THROW(table.add_row({1.0}), sops::PreconditionError);
}

TEST(Csv, RejectsNonNumericCell) {
  std::stringstream stream("a,b\n1.0,oops\n");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, RejectsRaggedRows) {
  std::stringstream stream("a,b\n1.0\n");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, RejectsEmptyInput) {
  std::stringstream stream("");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream stream("a\n1\n\n2\n");
  const CsvTable table = read_csv(stream);
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(Chart, RendersSeriesGlyphsAndLegend) {
  const Series series{"multi-information", {0, 1, 2, 3}, {0.0, 1.0, 2.0, 4.0}};
  const std::string chart = render_chart(std::vector<Series>{series});
  EXPECT_NE(chart.find('1'), std::string::npos);  // series glyph
  EXPECT_NE(chart.find("multi-information"), std::string::npos);
  EXPECT_NE(chart.find("[t]"), std::string::npos);
}

TEST(Chart, MultipleSeriesDistinctGlyphs) {
  const std::vector<Series> series{
      {"a", {0, 1}, {0.0, 1.0}},
      {"b", {0, 1}, {1.0, 0.0}},
  };
  const std::string chart = render_chart(series);
  EXPECT_NE(chart.find("1 = a"), std::string::npos);
  EXPECT_NE(chart.find("2 = b"), std::string::npos);
}

TEST(Chart, SkipsNaN) {
  const Series series{
      "x", {0, 1, 2}, {1.0, std::nan(""), 2.0}};
  EXPECT_NO_THROW((void)render_chart(std::vector<Series>{series}));
}

TEST(Chart, AllNaNThrows) {
  const Series series{"x", {0}, {std::nan("")}};
  EXPECT_THROW((void)render_chart(std::vector<Series>{series}),
               sops::PreconditionError);
}

TEST(Chart, ConstantSeriesRenders) {
  const Series series{"flat", {0, 1, 2}, {3.0, 3.0, 3.0}};
  EXPECT_NO_THROW((void)render_chart(std::vector<Series>{series}));
}

TEST(Chart, MismatchedXYThrows) {
  const Series series{"bad", {0, 1}, {1.0}};
  EXPECT_THROW((void)render_chart(std::vector<Series>{series}),
               sops::PreconditionError);
}

TEST(Scatter, ShowsTypeDigits) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}, {2, 0}};
  const std::vector<sops::sim::TypeId> types{0, 1, 2};
  const std::string plot = render_scatter(points, types);
  EXPECT_NE(plot.find('0'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
  EXPECT_NE(plot.find('2'), std::string::npos);
}

TEST(Scatter, EmptyConfiguration) {
  EXPECT_NE(render_scatter({}, {}).find("empty"), std::string::npos);
}

TEST(Scatter, SinglePointDegenerateBox) {
  const std::vector<Vec2> points{{5, 5}};
  const std::vector<sops::sim::TypeId> types{0};
  EXPECT_NO_THROW((void)render_scatter(points, types));
}

TEST(Scatter, MismatchThrows) {
  const std::vector<Vec2> points{{0, 0}};
  const std::vector<sops::sim::TypeId> types{0, 1};
  EXPECT_THROW((void)render_scatter(points, types), sops::PreconditionError);
}

TEST(Svg, WellFormedDocument) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}};
  const std::vector<sops::sim::TypeId> types{0, 1};
  const std::string svg = render_svg(points, types);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per particle.
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, 2u);
}

TEST(Svg, EmptyConfigurationStillValid) {
  const std::string svg = render_svg({}, {});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, TypeLabelsOptional) {
  const std::vector<Vec2> points{{0, 0}};
  const std::vector<sops::sim::TypeId> types{3};
  sops::io::SvgOptions options;
  options.label_types = false;
  EXPECT_EQ(render_svg(points, types, options).find("<text"), std::string::npos);
  options.label_types = true;
  EXPECT_NE(render_svg(points, types, options).find("<text"), std::string::npos);
}

TEST(TextFile, WriteFailsOnBadPath) {
  EXPECT_THROW(
      sops::io::write_text_file("/nonexistent-dir/x.svg", "content"),
      sops::Error);
}

}  // namespace
