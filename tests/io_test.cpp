// I/O tests: CSV round-trip, chart/scatter/SVG rendering sanity, and the
// MappedBuffer spill primitive.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "io/ascii_chart.hpp"
#include "io/csv.hpp"
#include "io/mapped_buffer.hpp"
#include "io/svg.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::io::ChartOptions;
using sops::io::CsvTable;
using sops::io::read_csv;
using sops::io::render_chart;
using sops::io::render_scatter;
using sops::io::render_svg;
using sops::io::Series;
using sops::io::write_csv;

TEST(Csv, RoundTrip) {
  CsvTable table;
  table.header = {"t", "mi", "entropy"};
  table.add_row({0.0, 1.5, -2.25});
  table.add_row({1.0, 2.5e-10, 1e17});

  std::stringstream stream;
  write_csv(stream, table);
  const CsvTable back = read_csv(stream);

  EXPECT_EQ(back.header, table.header);
  ASSERT_EQ(back.rows.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(back.rows[r][c], table.rows[r][c]);
    }
  }
}

TEST(Csv, ColumnLookup) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW((void)table.column("missing"), sops::Error);
}

TEST(Csv, RowWidthEnforced) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_THROW(table.add_row({1.0}), sops::PreconditionError);
}

TEST(Csv, RejectsNonNumericCell) {
  std::stringstream stream("a,b\n1.0,oops\n");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, RejectsRaggedRows) {
  std::stringstream stream("a,b\n1.0\n");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, RejectsEmptyInput) {
  std::stringstream stream("");
  EXPECT_THROW((void)read_csv(stream), sops::Error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream stream("a\n1\n\n2\n");
  const CsvTable table = read_csv(stream);
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(Chart, RendersSeriesGlyphsAndLegend) {
  const Series series{"multi-information", {0, 1, 2, 3}, {0.0, 1.0, 2.0, 4.0}};
  const std::string chart = render_chart(std::vector<Series>{series});
  EXPECT_NE(chart.find('1'), std::string::npos);  // series glyph
  EXPECT_NE(chart.find("multi-information"), std::string::npos);
  EXPECT_NE(chart.find("[t]"), std::string::npos);
}

TEST(Chart, MultipleSeriesDistinctGlyphs) {
  const std::vector<Series> series{
      {"a", {0, 1}, {0.0, 1.0}},
      {"b", {0, 1}, {1.0, 0.0}},
  };
  const std::string chart = render_chart(series);
  EXPECT_NE(chart.find("1 = a"), std::string::npos);
  EXPECT_NE(chart.find("2 = b"), std::string::npos);
}

TEST(Chart, SkipsNaN) {
  const Series series{
      "x", {0, 1, 2}, {1.0, std::nan(""), 2.0}};
  EXPECT_NO_THROW((void)render_chart(std::vector<Series>{series}));
}

TEST(Chart, AllNaNThrows) {
  const Series series{"x", {0}, {std::nan("")}};
  EXPECT_THROW((void)render_chart(std::vector<Series>{series}),
               sops::PreconditionError);
}

TEST(Chart, ConstantSeriesRenders) {
  const Series series{"flat", {0, 1, 2}, {3.0, 3.0, 3.0}};
  EXPECT_NO_THROW((void)render_chart(std::vector<Series>{series}));
}

TEST(Chart, MismatchedXYThrows) {
  const Series series{"bad", {0, 1}, {1.0}};
  EXPECT_THROW((void)render_chart(std::vector<Series>{series}),
               sops::PreconditionError);
}

TEST(Scatter, ShowsTypeDigits) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}, {2, 0}};
  const std::vector<sops::sim::TypeId> types{0, 1, 2};
  const std::string plot = render_scatter(points, types);
  EXPECT_NE(plot.find('0'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
  EXPECT_NE(plot.find('2'), std::string::npos);
}

TEST(Scatter, EmptyConfiguration) {
  EXPECT_NE(render_scatter({}, {}).find("empty"), std::string::npos);
}

TEST(Scatter, SinglePointDegenerateBox) {
  const std::vector<Vec2> points{{5, 5}};
  const std::vector<sops::sim::TypeId> types{0};
  EXPECT_NO_THROW((void)render_scatter(points, types));
}

TEST(Scatter, MismatchThrows) {
  const std::vector<Vec2> points{{0, 0}};
  const std::vector<sops::sim::TypeId> types{0, 1};
  EXPECT_THROW((void)render_scatter(points, types), sops::PreconditionError);
}

TEST(Svg, WellFormedDocument) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}};
  const std::vector<sops::sim::TypeId> types{0, 1};
  const std::string svg = render_svg(points, types);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per particle.
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, 2u);
}

TEST(Svg, EmptyConfigurationStillValid) {
  const std::string svg = render_svg({}, {});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, TypeLabelsOptional) {
  const std::vector<Vec2> points{{0, 0}};
  const std::vector<sops::sim::TypeId> types{3};
  sops::io::SvgOptions options;
  options.label_types = false;
  EXPECT_EQ(render_svg(points, types, options).find("<text"), std::string::npos);
  options.label_types = true;
  EXPECT_NE(render_svg(points, types, options).find("<text"), std::string::npos);
}

TEST(TextFile, WriteFailsOnBadPath) {
  EXPECT_THROW(
      sops::io::write_text_file("/nonexistent-dir/x.svg", "content"),
      sops::Error);
}

TEST(MappedBuffer, MapsWritesFlushesAndCleansUp) {
  using sops::io::MappedBuffer;
  const std::string path =
      ::testing::TempDir() + "sops_mapped_buffer_test.bin";
  std::filesystem::remove(path);
  {
    MappedBuffer buffer(path, 1 << 16);
    if (!buffer.mapped()) {
      GTEST_SKIP() << "mmap unavailable: " << buffer.fallback_reason();
    }
    EXPECT_EQ(buffer.size(), std::size_t{1} << 16);
    EXPECT_EQ(buffer.path(), path);
    EXPECT_TRUE(std::filesystem::exists(path));
    auto* bytes = static_cast<unsigned char*>(buffer.data());
    // Fresh file pages read as zero.
    EXPECT_EQ(bytes[0], 0);
    EXPECT_EQ(bytes[(1 << 16) - 1], 0);
    std::memset(bytes, 0xAB, 1 << 16);
    // Data survives a flush + page-release round-trip (release drops the
    // pages from the resident set; the file/page cache repopulates them).
    EXPECT_TRUE(buffer.flush(0, 1 << 16));
    EXPECT_TRUE(buffer.release(0, 1 << 16));
    EXPECT_EQ(bytes[0], 0xAB);
    EXPECT_EQ(bytes[(1 << 16) - 1], 0xAB);
    // Sub-page ranges round safely (flush widens, release shrinks to whole
    // interior pages — possibly to nothing).
    EXPECT_TRUE(buffer.flush(100, 50));
    EXPECT_TRUE(buffer.release(100, 50));
    // A second buffer refuses to clobber the live file (O_EXCL) and falls
    // back to heap.
    MappedBuffer collision(path, 4096);
    EXPECT_FALSE(collision.mapped());
    EXPECT_FALSE(collision.fallback_reason().empty());
    EXPECT_NE(collision.data(), nullptr);
    // Move transfers the mapping and the cleanup duty.
    MappedBuffer moved = std::move(buffer);
    EXPECT_TRUE(moved.mapped());
    EXPECT_EQ(static_cast<unsigned char*>(moved.data())[5], 0xAB);
  }
  // Scratch semantics: the backing file is unlinked with the buffer.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(MappedBuffer, FallsBackToHeapOnUnwritablePath) {
  sops::io::MappedBuffer buffer("/nonexistent-dir/spill.bin", 4096);
  EXPECT_FALSE(buffer.mapped());
  EXPECT_FALSE(buffer.fallback_reason().empty());
  EXPECT_TRUE(buffer.path().empty());
  ASSERT_NE(buffer.data(), nullptr);
  // The fallback is working zeroed storage; flush/release are no-ops.
  auto* bytes = static_cast<unsigned char*>(buffer.data());
  EXPECT_EQ(bytes[0], 0);
  bytes[0] = 7;
  EXPECT_TRUE(buffer.flush(0, 4096));
  EXPECT_TRUE(buffer.release(0, 4096));
  EXPECT_EQ(bytes[0], 7);

  // kEmpty: callers with their own fallback storage get no discarded
  // full-payload allocation, just the failure report.
  sops::io::MappedBuffer empty("/nonexistent-dir/spill.bin", 4096,
                               sops::io::MappedBuffer::OnFailure::kEmpty);
  EXPECT_FALSE(empty.mapped());
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_FALSE(empty.fallback_reason().empty());
}

}  // namespace
