// ICP and correspondence tests: recovery of known isometries, type safety,
// and matching properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>
#include <numeric>
#include <span>

#include "align/icp.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::align::align_icp;
using sops::align::IcpOptions;
using sops::align::IcpResult;
using sops::align::match_by_type;
using sops::geom::RigidTransform2;
using sops::geom::Vec2;
using sops::sim::TypeId;

constexpr double kPi = std::numbers::pi;

struct Cloud {
  std::vector<Vec2> points;
  std::vector<TypeId> types;
};

// Asymmetric multi-type cloud: ICP has a unique global optimum.
Cloud make_cloud(std::size_t n, std::size_t type_count, std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  Cloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    // Stretch x so the shape is rotationally asymmetric.
    cloud.points.push_back({sops::rng::uniform(engine, -6.0, 6.0),
                            sops::rng::uniform(engine, -2.0, 2.0)});
    cloud.types.push_back(static_cast<TypeId>(i % type_count));
  }
  return cloud;
}

class IcpRecovery : public ::testing::TestWithParam<double> {};

TEST_P(IcpRecovery, RecoversRotationOfSameCloud) {
  const double angle = GetParam();
  const Cloud target = make_cloud(40, 3, 5);
  const RigidTransform2 truth{angle, {1.5, -0.5}};
  const std::vector<Vec2> source = truth.inverse().apply(target.points);

  const IcpResult result =
      align_icp(source, target.types, target.points, target.types);
  EXPECT_LT(result.mean_squared_error, 1e-12);

  const auto moved = result.transform.apply(source);
  for (std::size_t i = 0; i < moved.size(); ++i) {
    EXPECT_NEAR(moved[i].x, target.points[i].x, 1e-6);
    EXPECT_NEAR(moved[i].y, target.points[i].y, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, IcpRecovery,
                         ::testing::Values(0.0, 0.5, kPi / 2, 2.2, -1.3,
                                           kPi - 0.05));

TEST(Icp, RecoversUnderShuffledSourceOrder) {
  // ICP works with correspondence-free clouds: shuffle the source order.
  const Cloud target = make_cloud(30, 2, 7);
  const RigidTransform2 truth{0.8, {2.0, 1.0}};
  std::vector<Vec2> source = truth.inverse().apply(target.points);
  std::vector<TypeId> source_types = target.types;

  // Deterministic shuffle via index permutation.
  std::vector<std::size_t> perm(source.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  sops::rng::Xoshiro256 engine(11);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[sops::rng::uniform_index(engine, i)]);
  }
  std::vector<Vec2> shuffled(source.size());
  std::vector<TypeId> shuffled_types(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    shuffled[i] = source[perm[i]];
    shuffled_types[i] = source_types[perm[i]];
  }

  const IcpResult result =
      align_icp(shuffled, shuffled_types, target.points, target.types);
  EXPECT_LT(result.mean_squared_error, 1e-10);
}

TEST(Icp, RobustToNoise) {
  const Cloud target = make_cloud(60, 2, 13);
  const RigidTransform2 truth{1.1, {0.5, 0.5}};
  std::vector<Vec2> source = truth.inverse().apply(target.points);
  sops::rng::Xoshiro256 engine(17);
  for (Vec2& p : source) p += sops::rng::normal_vec2(engine, 0.02);

  const IcpResult result =
      align_icp(source, target.types, target.points, target.types);
  EXPECT_LT(result.mean_squared_error, 0.01);
}

TEST(Icp, NeverMatchesAcrossTypes) {
  // Target: type 0 on a ring of radius 1, type 1 on a ring of radius 3.
  // Source: the radii are swapped between the types. Ignoring types, a
  // perfect match (MSE 0) exists via the identity; respecting types, NO
  // isometry can map a radius-3 ring onto a radius-1 ring, so the aligned
  // same-type MSE must stay of order (3-1)^2. This is rotation-proof: every
  // restart faces the same obstruction.
  std::vector<Vec2> target;
  std::vector<Vec2> source;
  std::vector<TypeId> types;
  for (int i = 0; i < 8; ++i) {
    const double a = 2.0 * kPi * i / 8.0;
    const Vec2 unit{std::cos(a), std::sin(a)};
    target.push_back(unit * 1.0);
    source.push_back(unit * 3.0);
    types.push_back(0);
    target.push_back(unit * 3.0);
    source.push_back(unit * 1.0);
    types.push_back(1);
  }
  const IcpResult result = align_icp(source, types, target, types);
  EXPECT_GT(result.mean_squared_error, 1.0);
}

TEST(Icp, MultiRestartEscapesLocalOptimum) {
  // A near-symmetric shape (square-ish ring) with a small asymmetry: plain
  // ICP from angle 0 may lock into the wrong lobe; restarts must find the
  // global optimum.
  Cloud target;
  for (int i = 0; i < 12; ++i) {
    const double a = 2.0 * kPi * i / 12.0;
    target.points.push_back({std::cos(a) * (i == 0 ? 1.4 : 1.0),
                             std::sin(a) * (i == 3 ? 1.4 : 1.0)});
    target.types.push_back(0);
  }
  const RigidTransform2 truth{kPi, {0, 0}};  // half turn
  const std::vector<Vec2> source = truth.inverse().apply(target.points);

  IcpOptions options;
  options.rotation_restarts = 16;
  const IcpResult result =
      align_icp(source, target.types, target.points, target.types, options);
  EXPECT_LT(result.mean_squared_error, 1e-10);
}

TEST(Icp, PreconditionsEnforced) {
  const Cloud cloud = make_cloud(10, 2, 19);
  EXPECT_THROW((void)align_icp({}, {}, cloud.points, cloud.types),
               sops::PreconditionError);

  // Histogram mismatch: different type counts.
  std::vector<TypeId> wrong_types = cloud.types;
  wrong_types[0] = 1 - wrong_types[0];
  EXPECT_THROW(
      (void)align_icp(cloud.points, wrong_types, cloud.points, cloud.types),
      sops::PreconditionError);

  IcpOptions bad;
  bad.rotation_restarts = 0;
  EXPECT_THROW((void)align_icp(cloud.points, cloud.types, cloud.points,
                               cloud.types, bad),
               sops::PreconditionError);
}

TEST(MatchByType, IdentityOnEqualClouds) {
  const Cloud cloud = make_cloud(25, 3, 23);
  const auto match =
      match_by_type(cloud.points, cloud.types, cloud.points, cloud.types);
  for (std::size_t i = 0; i < match.size(); ++i) EXPECT_EQ(match[i], i);
}

TEST(MatchByType, IsAPermutation) {
  const Cloud a = make_cloud(30, 2, 29);
  Cloud b = make_cloud(30, 2, 31);
  b.types = a.types;  // same histogram, different positions
  const auto match = match_by_type(a.points, a.types, b.points, b.types);
  std::vector<char> used(match.size(), 0);
  for (const std::size_t t : match) {
    ASSERT_LT(t, match.size());
    EXPECT_FALSE(used[t]);
    used[t] = 1;
  }
}

TEST(MatchByType, PreservesTypes) {
  const Cloud a = make_cloud(24, 3, 37);
  Cloud b = make_cloud(24, 3, 41);
  b.types = a.types;
  const auto match = match_by_type(a.points, a.types, b.points, b.types);
  for (std::size_t i = 0; i < match.size(); ++i) {
    EXPECT_EQ(a.types[i], b.types[match[i]]);
  }
}

TEST(MatchByType, RecoversAppliedPermutation) {
  // Permute a cloud within types; matching must invert the permutation.
  const Cloud a = make_cloud(20, 2, 43);
  std::vector<std::size_t> perm(a.points.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  // Swap two same-type pairs.
  std::swap(perm[0], perm[2]);   // both type 0 (i % 2 pattern)
  std::swap(perm[1], perm[3]);   // both type 1
  std::vector<Vec2> b_points(a.points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) b_points[perm[i]] = a.points[i];

  const auto match = match_by_type(a.points, a.types, b_points, a.types);
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(match[i], perm[i]);
}

// The original greedy matcher, kept as the test oracle: materialize every
// same-type pair, sort by (distance², source, target), commit greedily.
// The production lazy-heap matcher must reproduce it exactly — ties and
// all — on any input.
std::vector<std::size_t> sorted_greedy_oracle(
    std::span<const Vec2> source, std::span<const TypeId> source_types,
    std::span<const Vec2> target, std::span<const TypeId> target_types) {
  struct Pair {
    double dist_sq;
    std::size_t s;
    std::size_t t;
  };
  std::vector<Pair> pairs;
  for (std::size_t s = 0; s < source.size(); ++s) {
    for (std::size_t t = 0; t < target.size(); ++t) {
      if (source_types[s] != target_types[t]) continue;
      pairs.push_back({sops::geom::dist_sq(source[s], target[t]), s, t});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
    if (a.s != b.s) return a.s < b.s;
    return a.t < b.t;
  });
  std::vector<std::size_t> match(source.size(), source.size());
  std::vector<char> source_used(source.size(), 0);
  std::vector<char> target_used(target.size(), 0);
  for (const Pair& pair : pairs) {
    if (source_used[pair.s] || target_used[pair.t]) continue;
    match[pair.s] = pair.t;
    source_used[pair.s] = 1;
    target_used[pair.t] = 1;
  }
  return match;
}

TEST(MatchByType, MatchesSortedGreedyOracleOnFuzzedClouds) {
  for (const std::uint64_t seed : {3u, 11u, 29u, 71u}) {
    const Cloud a = make_cloud(60, 3, seed);
    const Cloud b = make_cloud(60, 3, seed + 1000);
    EXPECT_EQ(match_by_type(a.points, a.types, b.points, b.types),
              sorted_greedy_oracle(a.points, a.types, b.points, b.types))
        << "seed=" << seed;
  }
}

TEST(MatchByType, MatchesOracleWithDuplicatePointTies) {
  // Coincident points on both sides: many exactly-tied pair distances, so
  // only identical (dist, s, t) tie-breaking reproduces the oracle.
  Cloud a = make_cloud(24, 2, 7);
  Cloud b = make_cloud(24, 2, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    a.points[i] = {1.0, -1.0};
    b.points[i + 4] = {1.25, -1.0};
    // Types keep the i % 2 pattern, so duplicates span both types.
  }
  EXPECT_EQ(match_by_type(a.points, a.types, b.points, b.types),
            sorted_greedy_oracle(a.points, a.types, b.points, b.types));
}

TEST(MatchByType, MismatchedHistogramsThrow) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}};
  const std::vector<TypeId> a{0, 0};
  const std::vector<TypeId> b{0, 1};
  EXPECT_THROW((void)match_by_type(points, a, points, b),
               sops::PreconditionError);
}

}  // namespace
