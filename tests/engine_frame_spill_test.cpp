// Disk-backed FrameStore recordings through the full engine: a spilled
// (memory-mapped) store must be a pure storage-layer swap — bitwise the
// same recording, the same analyzer output, the same concurrent
// sample_slot streaming — with a graceful heap fallback when the spill
// directory is unusable. Named engine_* so the TSan CI job covers the
// concurrent mapped writes and the sharded flush path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/frame_store.hpp"
#include "core/presets.hpp"
#include "support/executor.hpp"

namespace {

using sops::core::AnalysisResult;
using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::FrameStoreOptions;
using sops::core::StorageMode;
using sops::core::run_experiment;

ExperimentConfig small_experiment() {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 12;
  simulation.record_stride = 4;
  ExperimentConfig experiment(simulation);
  experiment.samples = 8;
  return experiment;
}

EnsembleSeries run_with_storage(StorageMode mode, std::size_t threads = 0) {
  ExperimentConfig experiment = small_experiment();
  experiment.storage.mode = mode;
  experiment.storage.spill_dir = ::testing::TempDir();
  if (threads != 0) {
    experiment.threads = threads;
    experiment.parallel = sops::sim::ParallelPolicy::kAcrossSamples;
  }
  return run_experiment(experiment);
}

bool stores_bitwise_equal(const EnsembleSeries& a, const EnsembleSeries& b) {
  if (a.frame_count() != b.frame_count() ||
      a.sample_count() != b.sample_count() ||
      a.particle_count() != b.particle_count()) {
    return false;
  }
  for (std::size_t f = 0; f < a.frame_count(); ++f) {
    for (std::size_t s = 0; s < a.sample_count(); ++s) {
      const auto lhs = a.frames.sample(f, s);
      const auto rhs = b.frames.sample(f, s);
      if (std::memcmp(lhs.data(), rhs.data(),
                      lhs.size_bytes()) != 0) {
        return false;
      }
    }
  }
  return true;
}

TEST(FrameSpill, MappedRecordingIsBitwiseIdenticalToHeap) {
  const EnsembleSeries heap = run_with_storage(StorageMode::kHeap);
  const EnsembleSeries mapped = run_with_storage(StorageMode::kMapped);
  ASSERT_EQ(heap.frames.storage(), StorageMode::kHeap);
  if (mapped.frames.storage() != StorageMode::kMapped) {
    GTEST_SKIP() << "mmap unavailable: "
                 << mapped.frames.spill_fallback_reason();
  }
  EXPECT_TRUE(stores_bitwise_equal(heap, mapped));
  EXPECT_EQ(heap.frame_steps, mapped.frame_steps);
  EXPECT_EQ(heap.equilibrium_steps, mapped.equilibrium_steps);
}

TEST(FrameSpill, ConcurrentSampleSlotWritesIntoMappedStore) {
  // Sample chunks stream into disjoint mapped slots and flush their own
  // extents concurrently (the TSan job watches this path); results stay
  // bitwise-identical to the serial heap run for any thread count.
  const EnsembleSeries serial = run_with_storage(StorageMode::kHeap);
  const EnsembleSeries threaded = run_with_storage(StorageMode::kMapped, 4);
  EXPECT_TRUE(stores_bitwise_equal(serial, threaded));
}

TEST(FrameSpill, AnalyzerOutputMatchesAcrossStorageModes) {
  // FrameView/sample spans are pointer-based, so the analyzer must not be
  // able to tell a mapped recording from a heap one — bit for bit.
  const EnsembleSeries heap = run_with_storage(StorageMode::kHeap);
  const EnsembleSeries mapped = run_with_storage(StorageMode::kMapped);
  if (mapped.frames.storage() != StorageMode::kMapped) {
    GTEST_SKIP() << "mmap unavailable: "
                 << mapped.frames.spill_fallback_reason();
  }
  const AnalysisResult heap_result = analyze_self_organization(heap);
  const AnalysisResult mapped_result = analyze_self_organization(mapped);
  ASSERT_EQ(heap_result.points.size(), mapped_result.points.size());
  for (std::size_t i = 0; i < heap_result.points.size(); ++i) {
    EXPECT_EQ(heap_result.points[i].multi_information,
              mapped_result.points[i].multi_information)
        << "frame " << i;
  }
}

TEST(FrameSpill, SpillFileLivesWithTheSeriesAndIsRemovedAfter) {
  std::string spill_path;
  {
    const EnsembleSeries mapped = run_with_storage(StorageMode::kMapped);
    if (mapped.frames.storage() != StorageMode::kMapped) {
      GTEST_SKIP() << "mmap unavailable: "
                   << mapped.frames.spill_fallback_reason();
    }
    spill_path = mapped.frames.spill_path();
    EXPECT_TRUE(std::filesystem::exists(spill_path));
    EXPECT_GE(std::filesystem::file_size(spill_path), mapped.frames.bytes());
  }
  // Spill files are scratch: destroying the series unlinks the backing.
  EXPECT_FALSE(std::filesystem::exists(spill_path));
}

TEST(FrameSpill, UnwritableSpillDirFallsBackAndStillRecords) {
  ExperimentConfig experiment = small_experiment();
  experiment.storage.mode = StorageMode::kMapped;
  experiment.storage.spill_dir = "/nonexistent/sops-spill-dir";
  const EnsembleSeries fallback = run_experiment(experiment);
  EXPECT_EQ(fallback.frames.storage(), StorageMode::kHeap);
  EXPECT_FALSE(fallback.frames.spill_fallback_reason().empty());
  const EnsembleSeries heap = run_with_storage(StorageMode::kHeap);
  EXPECT_TRUE(stores_bitwise_equal(heap, fallback));
}

TEST(FrameSpill, AutoModeHonorsProjectedBytesThreshold) {
  ExperimentConfig experiment = small_experiment();
  experiment.storage.mode = StorageMode::kAuto;
  experiment.storage.spill_dir = ::testing::TempDir();
  experiment.storage.auto_spill_bytes = std::size_t{1} << 40;
  const EnsembleSeries kept = run_experiment(experiment);
  EXPECT_EQ(kept.frames.storage(), StorageMode::kHeap);
  EXPECT_TRUE(kept.frames.spill_fallback_reason().empty());

  experiment.storage.auto_spill_bytes = 1;
  const EnsembleSeries spilled = run_experiment(experiment);
  if (spilled.frames.storage() == StorageMode::kMapped) {
    const EnsembleSeries heap = run_with_storage(StorageMode::kHeap);
    EXPECT_TRUE(stores_bitwise_equal(heap, spilled));
  }
}

TEST(FrameSpill, ShardedFlushOnLentExecutorKeepsData) {
  // flush_samples on a multi-width executor msyncs/releases disjoint
  // per-frame extents in parallel; the store must read back unchanged.
  sops::core::FrameStoreOptions options;
  options.mode = StorageMode::kMapped;
  options.spill_dir = ::testing::TempDir();
  sops::core::FrameStore store(5, 6, 64, options);
  if (store.storage() != StorageMode::kMapped) {
    GTEST_SKIP() << "mmap unavailable: " << store.spill_fallback_reason();
  }
  for (std::size_t f = 0; f < 5; ++f) {
    for (std::size_t s = 0; s < 6; ++s) {
      auto slot = store.sample_slot(f, s);
      for (std::size_t i = 0; i < slot.size(); ++i) {
        slot[i] = {static_cast<double>(f * 1000 + s * 100 + i),
                   -static_cast<double>(i)};
      }
    }
  }
  sops::support::TaskPool pool(4);
  for (std::size_t s = 0; s < 6; ++s) {
    store.flush_samples(s, s + 1, &pool.executor());
  }
  for (std::size_t f = 0; f < 5; ++f) {
    for (std::size_t s = 0; s < 6; ++s) {
      const auto slot = store.sample(f, s);
      for (std::size_t i = 0; i < slot.size(); ++i) {
        ASSERT_EQ(slot[i].x, static_cast<double>(f * 1000 + s * 100 + i));
        ASSERT_EQ(slot[i].y, -static_cast<double>(i));
      }
    }
  }
}

TEST(FrameSpill, StaleSweepRemovesOnlyDeadOldSpills) {
  // Crash leftovers: a spill named for a dead pid with an old mtime goes;
  // anything young, live-pid, or not spill-named stays.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "sops_sweep_test_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A pid that cannot be alive: pid_max on Linux tops out below 2^22 by
  // default; 4 million-ish is safely dead, and the sweep double-checks
  // with kill(pid, 0) anyway.
  const fs::path dead_old = dir / "sops_frames_999999999_42.spill";
  const fs::path dead_young = dir / "sops_frames_999999998_42.spill";
  const fs::path live_old =
      dir / ("sops_frames_" + std::to_string(::getpid()) + "_42.spill");
  const fs::path unrelated = dir / "keep_me.dat";
  for (const fs::path& path : {dead_old, dead_young, live_old, unrelated}) {
    std::ofstream(path) << "x";
  }
  // Age the "old" files past the sweep's safety window (10 min).
  const auto old_stamp = fs::file_time_type::clock::now() -
                         std::chrono::hours(2);
  fs::last_write_time(dead_old, old_stamp);
  fs::last_write_time(live_old, old_stamp);

  sops::core::sweep_stale_spill_files(dir.string());
  EXPECT_FALSE(fs::exists(dead_old));   // dead pid + old → reclaimed
  EXPECT_TRUE(fs::exists(dead_young));  // too young → kept
  EXPECT_TRUE(fs::exists(live_old));    // pid alive (us) → kept
  EXPECT_TRUE(fs::exists(unrelated));   // not a spill name → kept
  fs::remove_all(dir);
}

TEST(FrameSpill, StaleSweepIgnoresMalformedNamesAndMissingDir) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "sops_sweep_malformed_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto old_stamp = fs::file_time_type::clock::now() -
                         std::chrono::hours(2);
  // Near-miss names: bad pid field, missing suffix, persist-style name.
  const std::vector<fs::path> keep = {
      dir / "sops_frames_notapid_1.spill",
      dir / "sops_frames_999999999_1.spillx",
      dir / "sops_frames_999999999.spill",
      dir / "my_ensemble.shard",
  };
  for (const fs::path& path : keep) {
    std::ofstream(path) << "x";
    fs::last_write_time(path, old_stamp);
  }
  sops::core::sweep_stale_spill_files(dir.string());
  for (const fs::path& path : keep) {
    EXPECT_TRUE(fs::exists(path)) << path;
  }
  fs::remove_all(dir);
  // A missing directory is a no-op, not an error.
  sops::core::sweep_stale_spill_files((dir / "nope").string());
}

}  // namespace
