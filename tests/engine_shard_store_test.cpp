// Durable shard recordings through the full engine: persist-mode stores
// survive destruction and reopen bitwise-intact, a --resume run redoes
// exactly the samples whose completion bits are clear (and nothing else),
// N disjoint shards merge into a recording bitwise-identical to a single
// uninterrupted run, and every mismatched-manifest case is rejected with
// an error instead of silently recording garbage. Named engine_* so the
// TSan CI job covers the concurrent sync/mark_complete path.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/frame_store.hpp"
#include "core/presets.hpp"
#include "core/shard.hpp"
#include "io/shard_manifest.hpp"
#include "support/error.hpp"

namespace {

using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::FrameStore;
using sops::core::FrameStoreOptions;
using sops::core::run_experiment;
using sops::io::ShardManifest;
using sops::io::ShardManifestFile;

ExperimentConfig small_experiment() {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 12;
  simulation.record_stride = 4;
  ExperimentConfig experiment(simulation);
  experiment.samples = 8;
  return experiment;
}

// A test-unique shard path with no leftovers: the data file is created
// O_EXCL, so stale files from an earlier test run must go first.
std::string fresh_shard_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");
  return path;
}

ExperimentConfig shard_experiment(const std::string& path,
                                  std::size_t index = 0,
                                  std::size_t count = 1,
                                  bool resume = false) {
  ExperimentConfig experiment = small_experiment();
  experiment.shard.path = path;
  experiment.shard.index = index;
  experiment.shard.count = count;
  experiment.shard.resume = resume;
  return experiment;
}

bool stores_bitwise_equal(const EnsembleSeries& a, const EnsembleSeries& b) {
  if (a.frame_count() != b.frame_count() ||
      a.sample_count() != b.sample_count() ||
      a.particle_count() != b.particle_count()) {
    return false;
  }
  for (std::size_t f = 0; f < a.frame_count(); ++f) {
    for (std::size_t s = 0; s < a.sample_count(); ++s) {
      const auto lhs = a.frames.sample(f, s);
      const auto rhs = b.frames.sample(f, s);
      if (std::memcmp(lhs.data(), rhs.data(), lhs.size_bytes()) != 0) {
        return false;
      }
    }
  }
  return true;
}

TEST(ShardStore, PersistModeKeepsAndReopensTheFile) {
  const std::string path = fresh_shard_path("persist_lifecycle.shard");
  {
    FrameStoreOptions options;
    options.shard_path = path;
    FrameStore store(3, 2, 16, options);
    for (std::size_t f = 0; f < 3; ++f) {
      for (std::size_t s = 0; s < 2; ++s) {
        auto slot = store.sample_slot(f, s);
        for (std::size_t i = 0; i < slot.size(); ++i) {
          slot[i] = {static_cast<double>(f * 100 + s * 10 + i),
                     -static_cast<double>(i)};
        }
      }
    }
  }
  // Unlike scratch spill, the shard survives its store.
  ASSERT_TRUE(std::filesystem::exists(path));

  FrameStoreOptions reopen;
  reopen.shard_path = path;
  reopen.open_existing = true;
  FrameStore store(3, 2, 16, reopen);
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t s = 0; s < 2; ++s) {
      const auto slot = store.sample(f, s);
      for (std::size_t i = 0; i < slot.size(); ++i) {
        ASSERT_EQ(slot[i].x, static_cast<double>(f * 100 + s * 10 + i));
        ASSERT_EQ(slot[i].y, -static_cast<double>(i));
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(ShardStore, ReopenRejectsWrongGeometry) {
  const std::string path = fresh_shard_path("persist_geometry.shard");
  {
    FrameStoreOptions options;
    options.shard_path = path;
    FrameStore store(3, 2, 16, options);
  }
  FrameStoreOptions reopen;
  reopen.shard_path = path;
  reopen.open_existing = true;
  // A different F·m·n payload means the file cannot be this experiment's
  // recording — size validation refuses rather than mapping garbage.
  EXPECT_THROW(FrameStore(3, 2, 17, reopen), sops::Error);
  EXPECT_THROW(FrameStore(4, 2, 16, reopen), sops::Error);
  std::filesystem::remove(path);
}

TEST(ShardStore, FreshShardRefusesToClobberAnExistingOne) {
  const std::string path = fresh_shard_path("persist_noclobber.shard");
  FrameStoreOptions options;
  options.shard_path = path;
  { FrameStore store(3, 2, 16, options); }
  // Same path without open_existing: O_EXCL must refuse — the file may be
  // a completed recording whose manifest got lost.
  EXPECT_THROW(FrameStore(3, 2, 16, options), sops::Error);
  std::filesystem::remove(path);
}

TEST(ShardStore, SingleShardRunMatchesHeapRun) {
  const std::string path = fresh_shard_path("single_shard.shard");
  const EnsembleSeries heap = run_experiment(small_experiment());
  const EnsembleSeries sharded = run_experiment(shard_experiment(path));
  EXPECT_TRUE(stores_bitwise_equal(heap, sharded));
  EXPECT_EQ(heap.equilibrium_steps, sharded.equilibrium_steps);
  EXPECT_EQ(sharded.resumed_samples, 0u);
  ASSERT_TRUE(std::filesystem::exists(path + ".manifest"));
  EXPECT_TRUE(ShardManifestFile::load(path + ".manifest").all_complete());
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");
}

TEST(ShardStore, ResumeOnCompleteShardRunsNothingAndMatches) {
  const std::string path = fresh_shard_path("resume_complete.shard");
  const EnsembleSeries first = run_experiment(shard_experiment(path));
  // Resuming an all-complete shard is the "analyze a recording" path:
  // zero samples simulated, the bytes come straight off the mapped file.
  const EnsembleSeries resumed =
      run_experiment(shard_experiment(path, 0, 1, /*resume=*/true));
  EXPECT_EQ(resumed.resumed_samples, resumed.sample_count());
  EXPECT_TRUE(stores_bitwise_equal(first, resumed));
  EXPECT_EQ(first.equilibrium_steps, resumed.equilibrium_steps);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");
}

TEST(ShardStore, ResumeRedoesClearedSamplesBitwiseIdentically) {
  const std::string path = fresh_shard_path("resume_partial.shard");
  const std::string manifest_path = path + ".manifest";
  const EnsembleSeries reference = run_experiment(small_experiment());
  (void)run_experiment(shard_experiment(path));

  // Simulate a crash that lost samples 2 and 5: clear their completion
  // bits and scribble over their on-disk extents — resume must regenerate
  // exactly those bytes and leave every other sample untouched.
  ShardManifest crashed = ShardManifestFile::load(manifest_path);
  crashed.completed[2 / 64] &= ~(std::uint64_t{1} << (2 % 64));
  crashed.completed[5 / 64] &= ~(std::uint64_t{1} << (5 % 64));
  crashed.equilibrium_steps[2] = sops::io::kNoEquilibriumStep;
  crashed.equilibrium_steps[5] = sops::io::kNoEquilibriumStep;
  { auto rewritten = ShardManifestFile::create(manifest_path, crashed); }
  {
    const std::size_t n = reference.particle_count();
    const std::size_t samples = reference.sample_count();
    const std::size_t row_bytes = n * sizeof(sops::geom::Vec2);
    std::fstream data(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::vector<char> garbage(row_bytes, '\x5a');
    for (std::size_t f = 0; f < reference.frame_count(); ++f) {
      for (const std::size_t s : {std::size_t{2}, std::size_t{5}}) {
        data.seekp(static_cast<std::streamoff>((f * samples + s) * row_bytes));
        data.write(garbage.data(), static_cast<std::streamsize>(row_bytes));
      }
    }
  }

  const EnsembleSeries resumed =
      run_experiment(shard_experiment(path, 0, 1, /*resume=*/true));
  EXPECT_EQ(resumed.resumed_samples, resumed.sample_count() - 2);
  EXPECT_TRUE(stores_bitwise_equal(reference, resumed));
  EXPECT_EQ(reference.equilibrium_steps, resumed.equilibrium_steps);
  std::filesystem::remove(path);
  std::filesystem::remove(manifest_path);
}

TEST(ShardStore, ThreadedResumeMatchesSerialRun) {
  // The concurrent path the TSan job watches: multiple sample chunks
  // sync their extents and flip manifest bits (sharing bitmap words)
  // while resuming. Results must stay bitwise-deterministic.
  const std::string path = fresh_shard_path("resume_threaded.shard");
  const std::string manifest_path = path + ".manifest";
  const EnsembleSeries reference = run_experiment(small_experiment());
  (void)run_experiment(shard_experiment(path));
  ShardManifest crashed = ShardManifestFile::load(manifest_path);
  for (const std::size_t s : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{6}}) {
    crashed.completed[s / 64] &= ~(std::uint64_t{1} << (s % 64));
    crashed.equilibrium_steps[s] = sops::io::kNoEquilibriumStep;
  }
  { auto rewritten = ShardManifestFile::create(manifest_path, crashed); }

  ExperimentConfig experiment = shard_experiment(path, 0, 1, /*resume=*/true);
  experiment.threads = 4;
  experiment.parallel = sops::sim::ParallelPolicy::kAcrossSamples;
  const EnsembleSeries resumed = run_experiment(experiment);
  EXPECT_EQ(resumed.resumed_samples, resumed.sample_count() - 4);
  EXPECT_TRUE(stores_bitwise_equal(reference, resumed));
  std::filesystem::remove(path);
  std::filesystem::remove(manifest_path);
}

TEST(ShardStore, ResumeRejectsMismatchedExperiments) {
  const std::string path = fresh_shard_path("resume_mismatch.shard");
  (void)run_experiment(shard_experiment(path));

  // Different master seed: a resumed sample would not reproduce the
  // recorded trajectory.
  ExperimentConfig wrong_seed = shard_experiment(path, 0, 1, /*resume=*/true);
  wrong_seed.simulation.seed += 1;
  EXPECT_THROW(run_experiment(wrong_seed), sops::Error);

  // Different dynamics (config hash): same grid and seed, different
  // trajectories.
  ExperimentConfig wrong_dt = shard_experiment(path, 0, 1, /*resume=*/true);
  wrong_dt.simulation.integrator.dt *= 0.5;
  EXPECT_THROW(run_experiment(wrong_dt), sops::Error);

  // Different recording grid.
  ExperimentConfig wrong_grid = shard_experiment(path, 0, 1, /*resume=*/true);
  wrong_grid.simulation.record_stride = 2;
  EXPECT_THROW(run_experiment(wrong_grid), sops::Error);

  // Different slot range: the shard was recorded as 0/1, resuming it as
  // shard 1 of 2 claims slots it does not hold. samples stays equal so
  // only the range differs.
  ExperimentConfig wrong_slots = shard_experiment(path, 1, 2, /*resume=*/true);
  EXPECT_THROW(run_experiment(wrong_slots), sops::Error);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");
}

TEST(ShardStore, TwoShardMergeMatchesSingleRun) {
  const std::string shard0 = fresh_shard_path("merge_a0.shard");
  const std::string shard1 = fresh_shard_path("merge_a1.shard");
  const std::string merged = fresh_shard_path("merge_a_out.shard");
  (void)run_experiment(shard_experiment(shard0, 0, 2));
  (void)run_experiment(shard_experiment(shard1, 1, 2));

  const sops::core::MergeResult result =
      sops::core::merge_shards({shard0, shard1}, merged);
  EXPECT_EQ(result.shard_count, 2u);
  EXPECT_EQ(result.samples_total, small_experiment().samples);

  // The merged file is itself a valid 1-shard recording: resume it with
  // the same config and compare bitwise against an uninterrupted run.
  const EnsembleSeries from_merge =
      run_experiment(shard_experiment(merged, 0, 1, /*resume=*/true));
  EXPECT_EQ(from_merge.resumed_samples, from_merge.sample_count());
  const EnsembleSeries reference = run_experiment(small_experiment());
  EXPECT_TRUE(stores_bitwise_equal(reference, from_merge));
  EXPECT_EQ(reference.equilibrium_steps, from_merge.equilibrium_steps);

  for (const std::string& path : {shard0, shard1, merged}) {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".manifest");
  }
}

TEST(ShardStore, MergeRejectsBadShardSets) {
  const std::string shard0 = fresh_shard_path("merge_b0.shard");
  const std::string shard1 = fresh_shard_path("merge_b1.shard");
  const std::string foreign = fresh_shard_path("merge_bx.shard");
  const std::string out = fresh_shard_path("merge_b_out.shard");
  (void)run_experiment(shard_experiment(shard0, 0, 2));
  (void)run_experiment(shard_experiment(shard1, 1, 2));
  {
    ExperimentConfig other = shard_experiment(foreign, 1, 2);
    other.simulation.seed += 99;
    (void)run_experiment(other);
  }

  // Missing slots: one shard of two.
  EXPECT_THROW(sops::core::merge_shards({shard0}, out), sops::Error);
  // Overlapping slots: the same shard twice.
  EXPECT_THROW(sops::core::merge_shards({shard0, shard0}, out), sops::Error);
  // Mismatched experiment: right slot ranges, wrong seed/config hash.
  EXPECT_THROW(sops::core::merge_shards({shard0, foreign}, out), sops::Error);

  // Incomplete bitmap: clear one completion bit of shard1.
  ShardManifest partial = ShardManifestFile::load(shard1 + ".manifest");
  partial.completed[0] &= ~std::uint64_t{1};
  { auto rewritten = ShardManifestFile::create(shard1 + ".manifest", partial); }
  EXPECT_THROW(sops::core::merge_shards({shard0, shard1}, out), sops::Error);

  for (const std::string& path : {shard0, shard1, foreign, out}) {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".manifest");
  }
}

}  // namespace
