// FrameNeighborCache + tree-backed estimator parity: the kBlockedTree
// search and a caller-supplied cache are pure throughput knobs, so every
// estimator must return the exact bits of its brute-force reference on any
// input — including degenerate ones with duplicated rows (ε ties, zero
// marginal counts).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "info/decomposition.hpp"
#include "info/entropy.hpp"
#include "info/ksg.hpp"
#include "info/neighbor_cache.hpp"
#include "info/transfer_entropy.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/executor.hpp"

namespace {

using sops::info::Block;
using sops::info::conditional_mutual_information_ksg;
using sops::info::entropy_kl;
using sops::info::entropy_kl_block;
using sops::info::FrameNeighborCache;
using sops::info::KsgOptions;
using sops::info::multi_information_ksg;
using sops::info::NeighborSearch;
using sops::info::SampleMatrix;
using sops::info::TransferEntropyOptions;
using sops::rng::Xoshiro256;

SampleMatrix fuzzed_matrix(std::size_t m, std::size_t dim, std::uint64_t seed,
                           std::size_t duplicated_rows = 0) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, dim);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < dim; ++d) {
      samples(s, d) = sops::rng::standard_normal(engine);
    }
  }
  // Duplicates exercise ε = 0 ties and empty strict-< neighborhoods.
  for (std::size_t s = 0; s + 1 < m && s + 1 <= duplicated_rows; ++s) {
    for (std::size_t d = 0; d < dim; ++d) {
      samples(m - 1 - s, d) = samples(s, d);
    }
  }
  return samples;
}

TEST(NeighborCache, KsgTreeMatchesBruteForceBitwise) {
  for (const std::uint64_t seed : {7u, 19u, 23u}) {
    for (const std::size_t duplicates : {std::size_t{0}, std::size_t{6}}) {
      const SampleMatrix samples = fuzzed_matrix(60, 6, seed, duplicates);
      KsgOptions brute;
      brute.search = NeighborSearch::kBruteForce;
      KsgOptions tree;  // kBlockedTree default, call-local cache
      FrameNeighborCache cache(samples);
      KsgOptions cached = tree;
      cached.cache = &cache;
      const double reference = multi_information_ksg(samples, 2, brute);
      EXPECT_EQ(multi_information_ksg(samples, 2, tree), reference);
      EXPECT_EQ(multi_information_ksg(samples, 2, cached), reference);
    }
  }
}

TEST(NeighborCache, ConditionalMiTreeMatchesBruteForceBitwise) {
  const Block a{0, 2};
  const Block b{2, 2};
  const Block c{4, 2};
  for (const std::uint64_t seed : {5u, 17u}) {
    for (const std::size_t duplicates : {std::size_t{0}, std::size_t{7}}) {
      const SampleMatrix samples = fuzzed_matrix(50, 6, seed, duplicates);
      TransferEntropyOptions brute;
      brute.search = NeighborSearch::kBruteForce;
      TransferEntropyOptions tree;
      FrameNeighborCache cache(samples);
      TransferEntropyOptions cached = tree;
      cached.cache = &cache;
      const double reference =
          conditional_mutual_information_ksg(samples, a, b, c, brute);
      EXPECT_EQ(conditional_mutual_information_ksg(samples, a, b, c, tree),
                reference);
      EXPECT_EQ(conditional_mutual_information_ksg(samples, a, b, c, cached),
                reference);
    }
  }
}

TEST(NeighborCache, EntropyCacheMatchesExhaustiveBitwise) {
  sops::support::TaskPool pool(2);
  for (const std::size_t duplicates : {std::size_t{0}, std::size_t{5}}) {
    const SampleMatrix samples = fuzzed_matrix(40, 4, 13, duplicates);
    FrameNeighborCache cache(samples);
    EXPECT_EQ(entropy_kl(samples, 4, pool.executor(), &cache),
              entropy_kl(samples, 4, pool.executor()));
    const Block block{2, 2};
    EXPECT_EQ(entropy_kl_block(samples, block, 4, pool.executor(), &cache),
              entropy_kl_block(samples, block, 4, pool.executor()));
  }
}

TEST(NeighborCache, DecompositionKeepsCacheForTotalOnly) {
  const SampleMatrix samples = fuzzed_matrix(45, 6, 29);
  const auto blocks = sops::info::uniform_blocks(3, 2);
  const sops::info::ObserverGrouping grouping = {{0, 1}, {2}};

  FrameNeighborCache cache(samples);
  KsgOptions cached;
  cached.cache = &cache;
  const auto with_cache = sops::info::decompose_multi_information(
      samples, blocks, grouping, cached);
  const auto without = sops::info::decompose_multi_information(
      samples, blocks, grouping, KsgOptions{});
  EXPECT_EQ(with_cache.total, without.total);
  EXPECT_EQ(with_cache.between_groups, without.between_groups);
  ASSERT_EQ(with_cache.within_group.size(), without.within_group.size());
  for (std::size_t g = 0; g < without.within_group.size(); ++g) {
    EXPECT_EQ(with_cache.within_group[g], without.within_group[g]);
  }
}

TEST(NeighborCache, SubspaceTreesAreBuiltOnceAndShared) {
  const SampleMatrix samples = fuzzed_matrix(30, 4, 3);
  FrameNeighborCache cache(samples);
  EXPECT_EQ(cache.tree_count(), 0u);

  const Block b0{0, 2};
  const FrameNeighborCache::SubspaceTree& first = cache.tree_for({&b0, 1});
  EXPECT_EQ(cache.tree_count(), 1u);
  // Same key → same tree, no rebuild.
  EXPECT_EQ(&cache.tree_for({&b0, 1}), &first);
  EXPECT_EQ(cache.tree_count(), 1u);

  // A KSG call with this cache adds its two marginals but reuses them on a
  // second call.
  KsgOptions options;
  options.cache = &cache;
  const double mi = multi_information_ksg(samples, 2, options);
  const std::size_t after_first = cache.tree_count();
  EXPECT_GT(after_first, 1u);
  EXPECT_EQ(multi_information_ksg(samples, 2, options), mi);
  EXPECT_EQ(cache.tree_count(), after_first);
}

TEST(NeighborCache, ContiguousPrefixIsZeroCopy) {
  const SampleMatrix samples = fuzzed_matrix(20, 4, 11);
  FrameNeighborCache cache(samples);
  // Blocks tiling the full row in order index the matrix storage directly.
  const std::vector<Block> full = {{0, 2}, {2, 2}};
  const auto& joint = cache.tree_for(full);
  EXPECT_TRUE(joint.storage.empty());
  EXPECT_EQ(joint.points.data(), samples.flat().data());
  // A strict subspace gathers.
  const Block tail{2, 2};
  const auto& marginal = cache.tree_for({&tail, 1});
  EXPECT_FALSE(marginal.storage.empty());
}

}  // namespace
