// Engine tests: neighbor-backend parity, workspace reuse, streamed runs,
// golden fixed-seed trajectories (bitwise-pinned to the pre-refactor
// engine), and thread-count determinism of the ensemble pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "geom/neighbor_backend.hpp"
#include "rng/samplers.hpp"
#include "sim/simulation.hpp"
#include "support/error.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::accumulate_drift;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::NeighborMode;
using sops::sim::PairParams;
using sops::sim::ParticleSystem;
using sops::sim::run_simulation;
using sops::sim::SimulationConfig;
using sops::sim::SimulationWorkspace;
using sops::sim::Trajectory;

// ---------------------------------------------------------------- parity

InteractionModel spring_model(std::size_t types) {
  return InteractionModel(ForceLawKind::kSpring, types,
                          PairParams{1.0, 2.0, 1.0, 1.0});
}

// Broad parity coverage (random configs, all backend pairs, the sharded
// path) lives in engine_parity_fuzz_test.cpp; here only the hand-built
// geometry that pins the cross-strategy claim remains.

TEST(BackendParity, DelaunayWithinCutoffMatchesOnRing) {
  // On a jittered convex ring with the cut-off between the nearest- and
  // next-nearest-neighbor spacing, the within-cutoff graph is exactly the
  // ring adjacency, and ring edges are hull edges of the Delaunay
  // triangulation — so all three backends see the same pair set.
  const std::size_t n = 16;
  const double base_radius = 6.66;  // adjacent spacing ≈ 2.6 < 3 < 5.1
  sops::rng::Xoshiro256 engine(5);
  std::vector<Vec2> positions;
  std::vector<sops::sim::TypeId> types(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) / n;
    const double radius = base_radius + sops::rng::uniform(engine, -0.05, 0.05);
    positions.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  const ParticleSystem system(positions, types);
  const auto model = spring_model(1);
  const double cutoff = 3.0;

  std::vector<Vec2> all_pairs;
  std::vector<Vec2> cell_grid;
  std::vector<Vec2> delaunay;
  accumulate_drift(system, model, cutoff, all_pairs, NeighborMode::kAllPairs);
  accumulate_drift(system, model, cutoff, cell_grid, NeighborMode::kCellGrid);
  accumulate_drift(system, model, cutoff, delaunay, NeighborMode::kDelaunay);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(all_pairs[i].x, cell_grid[i].x, 1e-12) << i;
    EXPECT_NEAR(all_pairs[i].y, cell_grid[i].y, 1e-12) << i;
    EXPECT_NEAR(all_pairs[i].x, delaunay[i].x, 1e-12) << i;
    EXPECT_NEAR(all_pairs[i].y, delaunay[i].y, 1e-12) << i;
  }
}

// ------------------------------------------------------------- workspace

TEST(Workspace, ReuseAcrossRunsIsDeterministic) {
  SimulationConfig config = sops::core::presets::fig4_three_type_collective();
  config.types = sops::sim::evenly_distributed_types(80, 3);
  config.steps = 12;
  config.seed = 3;

  SimulationWorkspace workspace;
  const Trajectory first = run_simulation(config, workspace);
  const Trajectory again = run_simulation(config, workspace);  // warm reuse
  const Trajectory fresh = run_simulation(config);
  ASSERT_EQ(first.frames.size(), again.frames.size());
  for (std::size_t f = 0; f < first.frames.size(); ++f) {
    for (std::size_t i = 0; i < first.frames[f].size(); ++i) {
      EXPECT_EQ(first.frames[f][i], again.frames[f][i]);
      EXPECT_EQ(first.frames[f][i], fresh.frames[f][i]);
    }
  }
}

TEST(Workspace, SurvivesBackendKindSwitches) {
  // One workspace driven through configs that resolve to different
  // backends must match fresh-workspace runs on each.
  SimulationWorkspace workspace;
  for (const NeighborMode mode :
       {NeighborMode::kCellGrid, NeighborMode::kDelaunay,
        NeighborMode::kAllPairs, NeighborMode::kCellGrid}) {
    SimulationConfig config(spring_model(2));
    config.types = sops::sim::evenly_distributed_types(40, 2);
    config.cutoff_radius = 4.0;
    config.neighbor_mode = mode;
    config.steps = 8;
    config.seed = 11;
    const Trajectory reused = run_simulation(config, workspace);
    const Trajectory fresh = run_simulation(config);
    for (std::size_t f = 0; f < reused.frames.size(); ++f) {
      for (std::size_t i = 0; i < reused.frames[f].size(); ++i) {
        EXPECT_EQ(reused.frames[f][i], fresh.frames[f][i]);
      }
    }
  }
}

// ---------------------------------------------------------- streamed runs

TEST(StreamedRun, MatchesTrajectoryRun) {
  SimulationConfig config(spring_model(1));
  config.types = sops::sim::evenly_distributed_types(30, 1);
  config.cutoff_radius = 5.0;
  config.steps = 20;
  config.record_stride = 3;
  config.seed = 17;

  const Trajectory reference = run_simulation(config);

  SimulationWorkspace workspace;
  std::vector<std::vector<Vec2>> streamed_frames;
  const sops::sim::StreamedRun run = sops::sim::run_simulation_streamed(
      config, workspace,
      [&](std::size_t f, std::size_t step, sops::geom::PositionLanes positions) {
        EXPECT_EQ(f, streamed_frames.size());
        EXPECT_EQ(step, reference.frame_steps[f]);
        sops::geom::interleave(positions, streamed_frames.emplace_back());
      });

  EXPECT_EQ(run.frame_steps, reference.frame_steps);
  EXPECT_EQ(run.residual_norms, reference.residual_norms);
  EXPECT_EQ(run.equilibrium_step, reference.equilibrium_step);
  ASSERT_EQ(streamed_frames.size(), reference.frames.size());
  for (std::size_t f = 0; f < streamed_frames.size(); ++f) {
    for (std::size_t i = 0; i < streamed_frames[f].size(); ++i) {
      EXPECT_EQ(streamed_frames[f][i], reference.frames[f][i]);
    }
  }
}

TEST(StreamedRun, LazyResidualsLeaveFramesUnchanged) {
  SimulationConfig config(spring_model(1));
  config.types = sops::sim::evenly_distributed_types(24, 1);
  config.cutoff_radius = 5.0;
  config.steps = 15;
  config.record_stride = 5;
  config.seed = 23;

  const Trajectory tracked = run_simulation(config);
  config.track_equilibrium = false;
  const Trajectory lazy = run_simulation(config);

  EXPECT_FALSE(lazy.equilibrium_step.has_value());
  EXPECT_EQ(lazy.residual_norms, tracked.residual_norms);
  ASSERT_EQ(lazy.frames.size(), tracked.frames.size());
  for (std::size_t f = 0; f < lazy.frames.size(); ++f) {
    for (std::size_t i = 0; i < lazy.frames[f].size(); ++i) {
      EXPECT_EQ(lazy.frames[f][i], tracked.frames[f][i]);
    }
  }
}

TEST(StreamedRun, StopAtEquilibriumRequiresTracking) {
  SimulationConfig config(spring_model(1));
  config.types = sops::sim::evenly_distributed_types(8, 1);
  config.stop_at_equilibrium = true;
  config.track_equilibrium = false;
  EXPECT_THROW((void)run_simulation(config), sops::PreconditionError);
}

TEST(RecordingSteps, MatchesDriverGrid) {
  EXPECT_EQ(sops::sim::recording_steps(10, 4),
            (std::vector<std::size_t>{0, 4, 8, 10}));
  EXPECT_EQ(sops::sim::recording_steps(10, 1).size(), 11u);
  EXPECT_EQ(sops::sim::recording_steps(5, 100),
            (std::vector<std::size_t>{0, 5}));
  EXPECT_EQ(sops::sim::recording_steps(8, 4),
            (std::vector<std::size_t>{0, 4, 8}));
}

// ------------------------------------------------------ golden (bitwise)

// The golden values below were captured from the pre-refactor engine (the
// seed implementation with per-step index construction). The refactored
// engine must reproduce them bit for bit: neighbor enumeration order, drift
// summation order, and RNG draw order are all part of the contract.

SimulationConfig golden_all_pairs_config() {
  SimulationConfig config(spring_model(1));
  config.types = sops::sim::evenly_distributed_types(12, 1);
  config.cutoff_radius = sops::sim::kUnboundedRadius;
  config.init_disc_radius = 3.0;
  config.steps = 40;
  config.record_stride = 7;
  config.seed = 7;
  return config;
}

SimulationConfig golden_cell_grid_config() {
  SimulationConfig config = sops::core::presets::fig4_three_type_collective();
  config.types = sops::sim::evenly_distributed_types(80, 3);
  config.steps = 30;
  config.record_stride = 10;
  config.seed = 42;
  return config;
}

SimulationConfig golden_delaunay_config() {
  SimulationConfig config(InteractionModel(ForceLawKind::kSpring, 2,
                                           PairParams{1.0, 2.5, 1.0, 1.0}));
  config.types = sops::sim::evenly_distributed_types(30, 2);
  config.cutoff_radius = 4.0;
  config.init_disc_radius = 4.0;
  config.neighbor_mode = NeighborMode::kDelaunay;
  config.steps = 25;
  config.record_stride = 5;
  config.seed = 99;
  return config;
}

void expect_bitwise(const Trajectory& trajectory,
                    const std::vector<Vec2>& final_positions,
                    const std::vector<double>& residuals) {
  ASSERT_EQ(trajectory.residual_norms.size(), residuals.size());
  for (std::size_t f = 0; f < residuals.size(); ++f) {
    EXPECT_EQ(trajectory.residual_norms[f], residuals[f]) << "residual " << f;
  }
  ASSERT_EQ(trajectory.frames.back().size(), final_positions.size());
  for (std::size_t i = 0; i < final_positions.size(); ++i) {
    EXPECT_EQ(trajectory.frames.back()[i], final_positions[i]) << "particle " << i;
  }
  EXPECT_FALSE(trajectory.equilibrium_step.has_value());
}

TEST(GoldenTrajectory, AllPairsBitwiseStable) {
  const std::vector<Vec2> expected{
      {0x1.1ef7ea1269a6cp-1, 0x1.039635f182f12p+0},
      {0x1.b30772ec513c1p+0, -0x1.c15eb31a3c5a7p-3},
      {0x1.93cbba609fbd4p+0, 0x1.10ac55839f08ap+0},
      {0x1.21e39419821afp-1, 0x1.996c06222763ep+0},
      {-0x1.aa53b88625095p-1, -0x1.f45420e80eb3ep-2},
      {-0x1.f94ffbcabf7bdp-1, 0x1.397d89a52ab13p-1},
      {0x1.402ffce3cfffp-2, -0x1.947adf570a67bp-1},
      {0x1.2b4613ce2b995p+0, -0x1.a1f6fa7b962cp-1},
      {-0x1.b28464bf6b676p-4, -0x1.38aaf89b5ba66p+0},
      {-0x1.5e3609020d1f6p-1, 0x1.4cb344597857fp+0},
      {0x1.2ef94d63d1f95p+0, 0x1.8f085cc91076ap-2},
      {-0x1.36fb0a18c38acp-3, 0x1.1ff4014c50894p-2},
  };
  const std::vector<double> residuals{
      0x1.0e6241ffbcadfp+7, 0x1.97f3f733159a7p+2, 0x1.bcd7a5d121048p+2,
      0x1.6696580c56cbp+2,  0x1.86a5dc63f5533p+2, 0x1.209449f5953d2p+2,
      0x1.28153089e6437p+2,
  };
  expect_bitwise(run_simulation(golden_all_pairs_config()), expected, residuals);
}

TEST(GoldenTrajectory, CellGridBitwiseStable) {
  // Spot-check a spread of particles of the 80-particle collective plus the
  // full residual series (any drift or RNG divergence reaches both).
  const Trajectory trajectory = run_simulation(golden_cell_grid_config());
  const std::vector<double> residuals{
      0x1.ef0063549657bp+9,
      0x1.bc4ce24c0d49dp+10,
      0x1.446a80132d5fp+10,
      0x1.9e60dbdf36411p+10,
  };
  ASSERT_EQ(trajectory.residual_norms.size(), residuals.size());
  for (std::size_t f = 0; f < residuals.size(); ++f) {
    EXPECT_EQ(trajectory.residual_norms[f], residuals[f]) << f;
  }
  ASSERT_EQ(trajectory.frames.back().size(), 80u);
  EXPECT_EQ(trajectory.frames.back()[0],
            (Vec2{-0x1.527a0b2e1c64ep+1, -0x1.2d79ca63a7c5bp+2}));
  EXPECT_EQ(trajectory.frames.back()[17],
            (Vec2{0x1.427a2594312e5p+2, 0x1.d482d2ca92d0bp-1}));
  EXPECT_EQ(trajectory.frames.back()[40],
            (Vec2{0x1.07a2fb4248dddp+0, 0x1.44ad91e17f0e2p-1}));
  EXPECT_EQ(trajectory.frames.back()[63],
            (Vec2{0x1.1a1c2c8b3d239p-2, 0x1.1c71623d23537p+2}));
  EXPECT_EQ(trajectory.frames.back()[79],
            (Vec2{-0x1.e9f1b0e9c2d86p+0, 0x1.09a31af750a8bp+2}));
  EXPECT_FALSE(trajectory.equilibrium_step.has_value());
}

TEST(GoldenTrajectory, DelaunayBitwiseStable) {
  const Trajectory trajectory = run_simulation(golden_delaunay_config());
  const std::vector<double> residuals{
      0x1.2549eecdc823p+6,  0x1.1f4bfb2080183p+5, 0x1.8c1dacd14e873p+4,
      0x1.3f6fec88b2745p+4, 0x1.26582d4d2b597p+4, 0x1.14ca330459fd1p+4,
  };
  ASSERT_EQ(trajectory.residual_norms.size(), residuals.size());
  for (std::size_t f = 0; f < residuals.size(); ++f) {
    EXPECT_EQ(trajectory.residual_norms[f], residuals[f]) << f;
  }
  ASSERT_EQ(trajectory.frames.back().size(), 30u);
  EXPECT_EQ(trajectory.frames.back()[0],
            (Vec2{-0x1.a7975d073be9cp-1, -0x1.178f6300dba9ep+1}));
  EXPECT_EQ(trajectory.frames.back()[15],
            (Vec2{-0x1.0f159b7fe3df8p+2, 0x1.70e0de5b92894p+1}));
  EXPECT_EQ(trajectory.frames.back()[29],
            (Vec2{-0x1.12079cdbf7bbfp-2, 0x1.ea0cb49d994bdp-1}));
}

TEST(GoldenEnsemble, StreamedExperimentBitwiseStable) {
  // The streamed ensemble must regroup exactly as the staged pre-refactor
  // driver did: probe particle 17 of every (frame, sample) slot.
  sops::core::ExperimentConfig experiment(golden_cell_grid_config());
  experiment.samples = 5;
  experiment.threads = 2;
  const sops::core::EnsembleSeries series =
      sops::core::run_experiment(experiment);
  EXPECT_EQ(series.frame_steps, (std::vector<std::size_t>{0, 10, 20, 30}));
  const std::vector<Vec2> probes{
      {0x1.117f5e90f332fp+0, 0x1.a67580abc1304p+1},
      {0x1.d17ad00ca9e25p+1, 0x1.b66e38f5dea82p+0},
      {0x1.398315231a5a5p+1, -0x1.838df774a3c54p+1},
      {-0x1.53280ab0162e8p+0, -0x1.5947af3243c01p+1},
      {-0x1.7ee1bad3bc8e3p+1, 0x1.4c2ce15bd4737p+1},
      {0x1.0a5fb91cbc908p+2, 0x1.105e7c51eb708p+2},
      {0x1.47c927a2ac31ap+2, 0x1.357598fbf1ef1p+1},
      {0x1.65a0ed13f7db9p+0, -0x1.6f7973512e719p+2},
      {-0x1.ce0d745ef57bp+0, -0x1.918d78705d808p+2},
      {-0x1.2b8057e1d991ap+2, 0x1.45cc23c2ead86p+1},
      {0x1.472d7aee81399p+2, 0x1.06153dda61745p+1},
      {0x1.4a7fa99903729p+2, 0x1.1baf3f788fa1dp+1},
      {0x1.eabd5b9ffda19p-1, -0x1.9fff980f49079p+2},
      {-0x1.fd09a7717d036p+0, -0x1.ae102b6889e2fp+2},
      {-0x1.55cb3cf5cb395p+2, 0x1.32ae2c65c7f74p+0},
      {0x1.427a2594312e5p+2, 0x1.d482d2ca92d0bp-1},
      {0x1.527d8b51186a1p+2, 0x1.e660acdfde172p+0},
      {0x1.68bf0d2647b8ep-1, -0x1.bbf25e432426cp+2},
      {-0x1.d9c73930a3427p+0, -0x1.a9b6321a22c37p+2},
      {-0x1.482ad8e7f4ceap+2, 0x1.ccf8c404fd0a1p-1},
  };
  std::size_t probe = 0;
  for (std::size_t f = 0; f < series.frame_count(); ++f) {
    for (std::size_t s = 0; s < series.sample_count(); ++s) {
      EXPECT_EQ(series.frames[f][s][17], probes[probe]) << "f=" << f << " s=" << s;
      ++probe;
    }
  }
}

// ----------------------------------------------- thread-count determinism

TEST(ThreadDeterminism, RunExperimentAutoVsSerialBitwise) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 10;
  simulation.record_stride = 5;
  sops::core::ExperimentConfig serial(simulation);
  serial.samples = 8;
  serial.threads = 1;
  sops::core::ExperimentConfig automatic = serial;
  automatic.threads = 0;

  const auto a = sops::core::run_experiment(serial);
  const auto b = sops::core::run_experiment(automatic);
  ASSERT_EQ(a.frame_count(), b.frame_count());
  EXPECT_EQ(a.equilibrium_steps, b.equilibrium_steps);
  for (std::size_t f = 0; f < a.frame_count(); ++f) {
    for (std::size_t s = 0; s < a.sample_count(); ++s) {
      for (std::size_t i = 0; i < a.particle_count(); ++i) {
        EXPECT_EQ(a.frames[f][s][i], b.frames[f][s][i]);
      }
    }
  }
}

TEST(ThreadDeterminism, AnalyzerAutoVsSerialBitwise) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = 16;
  simulation.record_stride = 4;
  sops::core::ExperimentConfig experiment(simulation);
  experiment.samples = 12;
  const auto series = sops::core::run_experiment(experiment);

  sops::core::AnalysisOptions serial;
  serial.threads = 1;
  sops::core::AnalysisOptions automatic;
  automatic.threads = 0;
  const auto a = sops::core::analyze_self_organization(series, serial);
  const auto b = sops::core::analyze_self_organization(series, automatic);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    EXPECT_EQ(a.points[f].step, b.points[f].step);
    EXPECT_EQ(a.points[f].multi_information, b.points[f].multi_information);
  }
}

}  // namespace
