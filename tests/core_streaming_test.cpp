// Streaming analyzer tests: the producer/consumer pipeline must return the
// exact bits of the post-hoc analyzer for every curve it computes — across
// thread counts, frame-store backings, coarse-graining, and resumed shards
// — and must drain cleanly when the analysis itself throws.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "core/streaming_analyzer.hpp"
#include "support/error.hpp"

namespace {

using sops::core::AnalysisOptions;
using sops::core::AnalysisResult;
using sops::core::analyze_self_organization;
using sops::core::EnsembleSeries;
using sops::core::ExperimentConfig;
using sops::core::measure_experiment;
using sops::core::measure_experiment_streamed;
using sops::core::run_experiment;
using sops::core::StreamingAnalyzer;

ExperimentConfig small_experiment(std::size_t samples = 12,
                                  std::size_t steps = 20) {
  sops::sim::SimulationConfig simulation =
      sops::core::presets::fig4_three_type_collective();
  simulation.steps = steps;
  simulation.record_stride = steps / 2;  // three recorded frames
  ExperimentConfig experiment(simulation);
  experiment.samples = samples;
  return experiment;
}

AnalysisOptions full_analysis() {
  AnalysisOptions options;
  options.compute_entropies = true;
  options.compute_decomposition = true;
  return options;
}

void expect_identical(const AnalysisResult& streamed,
                      const AnalysisResult& post_hoc) {
  EXPECT_EQ(streamed.observer_count, post_hoc.observer_count);
  EXPECT_EQ(streamed.coarse_grained, post_hoc.coarse_grained);
  ASSERT_EQ(streamed.points.size(), post_hoc.points.size());
  for (std::size_t f = 0; f < streamed.points.size(); ++f) {
    const auto& s = streamed.points[f];
    const auto& p = post_hoc.points[f];
    EXPECT_EQ(s.step, p.step);
    EXPECT_EQ(s.multi_information, p.multi_information);
    EXPECT_EQ(s.joint_entropy, p.joint_entropy);
    EXPECT_EQ(s.marginal_entropy_sum, p.marginal_entropy_sum);
    EXPECT_EQ(s.decomposition.total, p.decomposition.total);
    EXPECT_EQ(s.decomposition.between_groups, p.decomposition.between_groups);
    ASSERT_EQ(s.decomposition.within_group.size(),
              p.decomposition.within_group.size());
    for (std::size_t g = 0; g < s.decomposition.within_group.size(); ++g) {
      EXPECT_EQ(s.decomposition.within_group[g],
                p.decomposition.within_group[g]);
    }
  }
}

TEST(StreamingAnalyzer, MatchesPostHocAcrossThreadsAndStorage) {
  const AnalysisResult reference =
      measure_experiment(small_experiment(), full_analysis());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto mode : {sops::core::StorageMode::kHeap,
                            sops::core::StorageMode::kMapped}) {
      ExperimentConfig experiment = small_experiment();
      experiment.threads = threads;
      experiment.storage.mode = mode;
      experiment.storage.spill_dir = ::testing::TempDir();
      AnalysisOptions options = full_analysis();
      options.threads = threads;
      const AnalysisResult streamed =
          measure_experiment_streamed(experiment, options);
      expect_identical(streamed, reference);
    }
  }
}

TEST(StreamingAnalyzer, MatchesPostHocWhenCoarseGrained) {
  AnalysisOptions options = full_analysis();
  options.coarse_grain_above = 10;  // n = 50 > 10 → per-type k-means path
  options.kmeans_per_type = 3;
  const AnalysisResult post_hoc =
      measure_experiment(small_experiment(), options);
  EXPECT_TRUE(post_hoc.coarse_grained);
  const AnalysisResult streamed =
      measure_experiment_streamed(small_experiment(), options);
  expect_identical(streamed, post_hoc);
}

TEST(StreamingAnalyzer, CacheKnobDoesNotChangeResults) {
  AnalysisOptions cached = full_analysis();
  AnalysisOptions uncached = full_analysis();
  uncached.reuse_neighbor_cache = false;
  expect_identical(measure_experiment_streamed(small_experiment(), cached),
                   measure_experiment(small_experiment(), uncached));
}

TEST(StreamingAnalyzer, ResumedShardFramesFlowThroughObserver) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "streaming_resume.shard")
          .string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");

  ExperimentConfig experiment = small_experiment();
  experiment.shard.path = path;
  const AnalysisResult post_hoc =
      analyze_self_organization(run_experiment(experiment), full_analysis());

  // Re-running with --resume finds every sample complete: the analyzer is
  // fed exclusively by the startup (0, F) notifications.
  experiment.shard.resume = true;
  StreamingAnalyzer analyzer(full_analysis());
  experiment.observer = &analyzer;
  const EnsembleSeries resumed = run_experiment(experiment);
  EXPECT_EQ(resumed.resumed_samples, resumed.sample_count());
  expect_identical(analyzer.finish(), post_hoc);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".manifest");
}

TEST(StreamingAnalyzer, ConsumerExceptionDrainsAndSurfaces) {
  AnalysisOptions options;
  options.coarse_grain_above = 10;
  options.kmeans_per_type = 0;  // coarse_grain_ensemble rejects k = 0
  EXPECT_THROW(measure_experiment_streamed(small_experiment(), options),
               sops::Error);
}

TEST(StreamingAnalyzer, InvalidAnalysisFailsBeforeSimulating) {
  AnalysisOptions options;
  options.ksg.k = 50;  // needs more samples than the tiny ensemble has
  EXPECT_THROW(measure_experiment_streamed(small_experiment(4), options),
               sops::Error);
}

TEST(StreamingAnalyzer, AbortWithoutFinishIsClean) {
  StreamingAnalyzer analyzer(full_analysis());
  ExperimentConfig experiment = small_experiment();
  experiment.observer = &analyzer;
  const EnsembleSeries series = run_experiment(experiment);
  analyzer.abort();  // destructor would do the same; both must be safe
}

}  // namespace
