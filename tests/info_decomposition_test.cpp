// Multi-information decomposition tests (Eq. 4–5): the exact identity on
// constructed dependencies and grouping validation.
#include <gtest/gtest.h>

#include <cmath>

#include "info/decomposition.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace {

using sops::info::Block;
using sops::info::decompose_multi_information;
using sops::info::Decomposition;
using sops::info::group_blocks_by_type;
using sops::info::KsgOptions;
using sops::info::ObserverGrouping;
using sops::info::SampleMatrix;
using sops::info::uniform_blocks;
using sops::info::validate_grouping;
using sops::rng::Xoshiro256;

// Four scalar observers in two groups of two. Within-group correlation is
// controlled by rho_within; between-group by rho_between (via a global
// latent factor).
SampleMatrix hierarchical_samples(std::size_t m, double rho_within,
                                  double rho_between, std::uint64_t seed) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, 4);
  for (std::size_t s = 0; s < m; ++s) {
    const double global = sops::rng::standard_normal(engine);
    for (std::size_t g = 0; g < 2; ++g) {
      const double local = sops::rng::standard_normal(engine);
      for (std::size_t i = 0; i < 2; ++i) {
        const double noise = sops::rng::standard_normal(engine);
        samples(s, g * 2 + i) = rho_between * global + rho_within * local +
                                std::sqrt(std::max(
                                    0.0, 1.0 - rho_between * rho_between -
                                             rho_within * rho_within)) *
                                    noise;
      }
    }
  }
  return samples;
}

TEST(GroupingValidation, AcceptsPartition) {
  const ObserverGrouping grouping{{0, 2}, {1}, {3}};
  EXPECT_NO_THROW(validate_grouping(grouping, 4));
}

TEST(GroupingValidation, RejectsMissingBlock) {
  const ObserverGrouping grouping{{0}, {1}};
  EXPECT_THROW(validate_grouping(grouping, 3), sops::PreconditionError);
}

TEST(GroupingValidation, RejectsDuplicates) {
  const ObserverGrouping grouping{{0, 1}, {1, 2}};
  EXPECT_THROW(validate_grouping(grouping, 3), sops::PreconditionError);
}

TEST(GroupingValidation, RejectsEmptyGroup) {
  const ObserverGrouping grouping{{0, 1}, {}};
  EXPECT_THROW(validate_grouping(grouping, 2), sops::PreconditionError);
}

TEST(GroupingValidation, RejectsOutOfRange) {
  const ObserverGrouping grouping{{0, 5}};
  EXPECT_THROW(validate_grouping(grouping, 2), sops::PreconditionError);
}

TEST(GroupByType, PartitionsByTypeId) {
  const std::vector<std::uint32_t> types{0, 1, 0, 2, 1};
  const ObserverGrouping grouping = group_blocks_by_type(types, 3);
  ASSERT_EQ(grouping.size(), 3u);
  EXPECT_EQ(grouping[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(grouping[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(grouping[2], (std::vector<std::size_t>{3}));
}

TEST(GroupByType, DropsEmptyTypes) {
  const std::vector<std::uint32_t> types{0, 2};
  const ObserverGrouping grouping = group_blocks_by_type(types, 3);
  EXPECT_EQ(grouping.size(), 2u);  // type 1 has no members
}

TEST(Decomposition, WithinOnlyDependenceLandsInWithinTerms) {
  const SampleMatrix samples = hierarchical_samples(1200, 0.85, 0.0, 7);
  const auto blocks = uniform_blocks(4, 1);
  const ObserverGrouping grouping{{0, 1}, {2, 3}};
  const Decomposition d = decompose_multi_information(samples, blocks, grouping);
  EXPECT_NEAR(d.between_groups, 0.0, 0.15);
  EXPECT_GT(d.within_group[0], 0.5);
  EXPECT_GT(d.within_group[1], 0.5);
  EXPECT_GT(d.total, 1.0);
}

TEST(Decomposition, BetweenOnlyDependenceLandsInBetweenTerm) {
  const SampleMatrix samples = hierarchical_samples(1200, 0.0, 0.85, 11);
  const auto blocks = uniform_blocks(4, 1);
  const ObserverGrouping grouping{{0, 1}, {2, 3}};
  const Decomposition d = decompose_multi_information(samples, blocks, grouping);
  EXPECT_GT(d.between_groups, 0.8);
  // Note: within-group terms are NOT small here — the shared global factor
  // also correlates observers within each group. What must hold is the
  // Eq. (5) identity, checked below.
  EXPECT_NEAR(d.reconstructed(), d.total, 0.35);
}

TEST(Decomposition, IdentityHoldsUpToEstimatorBias) {
  for (const auto& [w, b] : std::vector<std::pair<double, double>>{
           {0.5, 0.5}, {0.8, 0.2}, {0.2, 0.8}, {0.0, 0.0}}) {
    const SampleMatrix samples = hierarchical_samples(1000, w, b, 13);
    const auto blocks = uniform_blocks(4, 1);
    const ObserverGrouping grouping{{0, 1}, {2, 3}};
    const Decomposition d =
        decompose_multi_information(samples, blocks, grouping);
    EXPECT_NEAR(d.reconstructed(), d.total, 0.35)
        << "w=" << w << " b=" << b;
  }
}

TEST(Decomposition, IndependentDataAllTermsNearZero) {
  const SampleMatrix samples = hierarchical_samples(1000, 0.0, 0.0, 17);
  const auto blocks = uniform_blocks(4, 1);
  const ObserverGrouping grouping{{0, 1}, {2, 3}};
  const Decomposition d = decompose_multi_information(samples, blocks, grouping);
  EXPECT_NEAR(d.total, 0.0, 0.2);
  EXPECT_NEAR(d.between_groups, 0.0, 0.2);
  EXPECT_NEAR(d.within_group[0], 0.0, 0.2);
  EXPECT_NEAR(d.within_group[1], 0.0, 0.2);
}

TEST(Decomposition, SingletonGroupsReduceToTotal) {
  // All groups singletons: between-groups term IS the multi-information and
  // within terms are zero by definition.
  const SampleMatrix samples = hierarchical_samples(600, 0.5, 0.3, 19);
  const auto blocks = uniform_blocks(4, 1);
  const ObserverGrouping grouping{{0}, {1}, {2}, {3}};
  const Decomposition d = decompose_multi_information(samples, blocks, grouping);
  EXPECT_DOUBLE_EQ(d.between_groups, d.total);
  for (const double w : d.within_group) EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(Decomposition, NonContiguousGroupsSupported) {
  // Interleaved group membership (blocks 0,2 vs 1,3) must work: the gather
  // step re-bases coordinates.
  const SampleMatrix samples = hierarchical_samples(600, 0.6, 0.0, 23);
  const auto blocks = uniform_blocks(4, 1);
  const ObserverGrouping grouping{{0, 2}, {1, 3}};
  const Decomposition d = decompose_multi_information(samples, blocks, grouping);
  // Groups now cut across the latent structure: dependence appears between
  // groups instead of within.
  EXPECT_GT(d.between_groups, 0.2);
  EXPECT_TRUE(std::isfinite(d.reconstructed()));
}

TEST(Decomposition, InvalidGroupingThrows) {
  const SampleMatrix samples = hierarchical_samples(100, 0.5, 0.0, 29);
  const auto blocks = uniform_blocks(4, 1);
  EXPECT_THROW((void)decompose_multi_information(samples, blocks,
                                                 ObserverGrouping{{0, 1}}),
               sops::PreconditionError);
}

}  // namespace
