// Kozachenko–Leonenko entropy tests against Gaussian and uniform oracles.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "info/entropy.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace {

using sops::info::Block;
using sops::info::entropy_kl;
using sops::info::entropy_kl_block;
using sops::info::gaussian_entropy_bits;
using sops::info::gaussian_mi_bits;
using sops::info::log2_unit_ball_volume;
using sops::info::multi_information_kl;
using sops::info::SampleMatrix;
using sops::rng::Xoshiro256;

SampleMatrix gaussian_samples(std::size_t m, std::size_t dim, double sigma,
                              std::uint64_t seed) {
  Xoshiro256 engine(seed);
  SampleMatrix samples(m, dim);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t d = 0; d < dim; ++d) {
      samples(s, d) = sigma * sops::rng::standard_normal(engine);
    }
  }
  return samples;
}

TEST(UnitBallVolume, KnownDimensions) {
  EXPECT_NEAR(std::exp2(log2_unit_ball_volume(1)), 2.0, 1e-12);
  EXPECT_NEAR(std::exp2(log2_unit_ball_volume(2)), std::numbers::pi, 1e-12);
  EXPECT_NEAR(std::exp2(log2_unit_ball_volume(3)),
              4.0 / 3.0 * std::numbers::pi, 1e-12);
}

TEST(GaussianOracles, KnownValues) {
  // 1-D standard normal: h = ½log₂(2πe) ≈ 2.047 bits.
  EXPECT_NEAR(gaussian_entropy_bits(1, 1.0),
              0.5 * std::log2(2 * std::numbers::pi * std::numbers::e), 1e-12);
  EXPECT_NEAR(gaussian_mi_bits(0.0), 0.0, 1e-15);
  EXPECT_GT(gaussian_mi_bits(0.9), gaussian_mi_bits(0.5));
}

class KlEntropyGaussian
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(KlEntropyGaussian, MatchesClosedForm) {
  const auto [dim, sigma] = GetParam();
  const SampleMatrix samples = gaussian_samples(2000, dim, sigma, dim * 7 + 1);
  const double estimated = entropy_kl(samples, 4);
  const double expected = gaussian_entropy_bits(dim, sigma);
  EXPECT_NEAR(estimated, expected, 0.12 * dim) << "dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(Shapes, KlEntropyGaussian,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0.5, 1.0, 3.0)));

TEST(KlEntropy, UniformMatchesLogVolume) {
  // Uniform on [0, L): h = log₂ L bits.
  Xoshiro256 engine(5);
  const double length = 8.0;
  SampleMatrix samples(3000, 1);
  for (std::size_t s = 0; s < 3000; ++s) {
    samples(s, 0) = sops::rng::uniform(engine, 0.0, length);
  }
  EXPECT_NEAR(entropy_kl(samples, 4), std::log2(length), 0.1);
}

TEST(KlEntropy, ScalingShiftsByLogFactor) {
  // h(aX) = h(X) + log₂|a| per dimension.
  const SampleMatrix base = gaussian_samples(1500, 2, 1.0, 17);
  SampleMatrix scaled(base.count(), 2);
  for (std::size_t s = 0; s < base.count(); ++s) {
    scaled(s, 0) = 4.0 * base(s, 0);
    scaled(s, 1) = 4.0 * base(s, 1);
  }
  EXPECT_NEAR(entropy_kl(scaled, 4), entropy_kl(base, 4) + 2.0 * 2.0, 0.05);
}

TEST(KlEntropy, BlockRestriction) {
  // Entropy of a block equals entropy of those coordinates alone.
  const SampleMatrix samples = gaussian_samples(800, 3, 1.0, 23);
  const double block_h = entropy_kl_block(samples, Block{1, 1}, 4);
  EXPECT_NEAR(block_h, gaussian_entropy_bits(1, 1.0), 0.15);
}

TEST(KlEntropy, DegenerateCoincidentSamplesStayFinite) {
  SampleMatrix samples(10, 1);
  for (std::size_t s = 0; s < 10; ++s) samples(s, 0) = 1.0;
  EXPECT_TRUE(std::isfinite(entropy_kl(samples, 2)));
}

TEST(KlEntropy, PreconditionsEnforced) {
  const SampleMatrix samples = gaussian_samples(5, 1, 1.0, 29);
  EXPECT_THROW((void)entropy_kl(samples, 5), sops::PreconditionError);
  EXPECT_THROW((void)entropy_kl_block(samples, Block{1, 1}, 2),
               sops::PreconditionError);
}

TEST(KlMultiInformation, AgreesWithGaussianOracle) {
  Xoshiro256 engine(31);
  const double rho = 0.8;
  SampleMatrix samples(2000, 2);
  for (std::size_t s = 0; s < 2000; ++s) {
    const double x = sops::rng::standard_normal(engine);
    samples(s, 0) = x;
    samples(s, 1) = rho * x + std::sqrt(1 - rho * rho) *
                                  sops::rng::standard_normal(engine);
  }
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_kl(samples, blocks, 4), gaussian_mi_bits(rho),
              0.2);
}

TEST(KlMultiInformation, IndependentNearZero) {
  const SampleMatrix samples = gaussian_samples(1500, 2, 1.0, 37);
  const std::vector<Block> blocks{{0, 1}, {1, 1}};
  EXPECT_NEAR(multi_information_kl(samples, blocks, 4), 0.0, 0.15);
}

TEST(KlEntropy, LentExecutorMatchesThreadsForm) {
  // The executor overloads (batch analyses lend a persistent pool) must be
  // bit-identical to the transient fork/join forms: per-sample terms are
  // reduced in a fixed order regardless of who computes them.
  const SampleMatrix samples = gaussian_samples(600, 4, 1.0, 11);
  sops::support::TaskPool pool(3);
  EXPECT_DOUBLE_EQ(entropy_kl(samples, 4, std::size_t{2}),
                   entropy_kl(samples, 4, pool.executor()));
  const Block block{1, 2};
  EXPECT_DOUBLE_EQ(entropy_kl_block(samples, block, 4, std::size_t{2}),
                   entropy_kl_block(samples, block, 4, pool.executor()));
  const std::vector<Block> blocks{{0, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(multi_information_kl(samples, blocks, 4, std::size_t{2}),
                   multi_information_kl(samples, blocks, 4, pool.executor()));
}

}  // namespace
