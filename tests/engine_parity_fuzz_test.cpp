// Randomized backend-parity fuzzer.
//
// ~50 seeded random configurations (collective size, type count, force law,
// cut-off, initialization disc — all drawn from rng/) assert the engine's
// structural invariants on every one:
//
//  1. all-pairs and cell-grid enumerate the same pair set, so their drifts
//     agree to 1e-12 (the summation orders differ, hence not bitwise);
//  2. every persistent backend reproduces its per-step-rebuild enum-mode
//     path bitwise (same pairs, same enumeration order);
//  3. the Delaunay backend's radius-pruned adjacency matches a direct
//     tessellation + pruning reference to 1e-12;
//  4. the cell-sharded intra-step path is bitwise-equal to the serial loop
//     for every backend kind.
//
// This replaces the previous hand-picked parity cases: random geometry
// exercises hash-grid cell boundaries, duplicate-distance ties, and sparse/
// dense occupancy mixes that fixed fixtures never reach.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/delaunay.hpp"
#include "geom/neighbor_backend.hpp"
#include "geom/verlet_list.hpp"
#include "rng/samplers.hpp"
#include "sim/drift_kernel.hpp"
#include "sim/forces.hpp"
#include "sim/integrator.hpp"
#include "support/simd.hpp"

namespace {

using sops::geom::Vec2;
using sops::sim::accumulate_drift;
using sops::sim::ForceLawKind;
using sops::sim::InteractionModel;
using sops::sim::NeighborMode;
using sops::sim::PairParams;
using sops::sim::PairScalingTable;
using sops::sim::ParticleSystem;

struct FuzzCase {
  ParticleSystem system;
  InteractionModel model;
  double cutoff;
};

FuzzCase draw_case(std::uint64_t case_id) {
  sops::rng::Xoshiro256 engine(0xF022 + case_id * 7919);
  const std::size_t n = 8 + engine() % 280;
  const std::size_t types = 1 + engine() % 5;
  const double disc_radius = sops::rng::uniform(engine, 2.0, 12.0);
  const double cutoff = sops::rng::uniform(engine, 1.0, 6.0);
  const ForceLawKind kind =
      case_id % 2 == 0 ? ForceLawKind::kSpring : ForceLawKind::kDoubleGaussian;
  const PairParams params{sops::rng::uniform(engine, 0.5, 2.0),
                          sops::rng::uniform(engine, 1.0, 3.0),
                          sops::rng::uniform(engine, 0.5, 2.0),
                          sops::rng::uniform(engine, 2.5, 5.0)};

  std::vector<Vec2> positions;
  std::vector<sops::sim::TypeId> type_ids;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(sops::rng::uniform_disc(engine, disc_radius));
    type_ids.push_back(static_cast<sops::sim::TypeId>(engine() % types));
  }
  return {ParticleSystem(std::move(positions), std::move(type_ids)),
          InteractionModel(kind, types, params), cutoff};
}

constexpr std::uint64_t kCases = 50;

TEST(ParityFuzz, AllPairsVsCellGridWithin1e12) {
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    std::vector<Vec2> brute;
    std::vector<Vec2> grid;
    accumulate_drift(fuzz.system, fuzz.model, fuzz.cutoff, brute,
                     NeighborMode::kAllPairs);
    accumulate_drift(fuzz.system, fuzz.model, fuzz.cutoff, grid,
                     NeighborMode::kCellGrid);
    for (std::size_t i = 0; i < fuzz.system.size(); ++i) {
      ASSERT_NEAR(brute[i].x, grid[i].x, 1e-12) << "case " << c << " i " << i;
      ASSERT_NEAR(brute[i].y, grid[i].y, 1e-12) << "case " << c << " i " << i;
    }
  }
}

TEST(ParityFuzz, PersistentBackendsMatchEnumModesBitwise) {
  const struct {
    NeighborMode mode;
    sops::geom::NeighborBackendKind kind;
  } pairs[] = {
      {NeighborMode::kAllPairs, sops::geom::NeighborBackendKind::kAllPairs},
      {NeighborMode::kCellGrid, sops::geom::NeighborBackendKind::kCellGrid},
      {NeighborMode::kDelaunay, sops::geom::NeighborBackendKind::kDelaunay},
      // A fresh Verlet list (one call, one build at the default skin) must
      // reproduce the enum-mode reference bitwise, like every backend.
      {NeighborMode::kVerletSkin, sops::geom::NeighborBackendKind::kVerletSkin},
  };
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    for (const auto& pair : pairs) {
      std::vector<Vec2> via_mode;
      std::vector<Vec2> via_backend;
      accumulate_drift(fuzz.system, fuzz.model, fuzz.cutoff, via_mode,
                       pair.mode);
      const auto backend = sops::geom::make_neighbor_backend(pair.kind);
      accumulate_drift(fuzz.system, fuzz.model, fuzz.cutoff, via_backend,
                       *backend);
      ASSERT_EQ(via_mode.size(), via_backend.size());
      for (std::size_t i = 0; i < via_mode.size(); ++i) {
        ASSERT_EQ(via_mode[i], via_backend[i])
            << "case " << c << " kind " << static_cast<int>(pair.kind)
            << " i " << i;
      }
    }
  }
}

TEST(ParityFuzz, DelaunayBackendMatchesPrunedTessellationWithin1e12) {
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    const double cutoff_sq = fuzz.cutoff * fuzz.cutoff;

    // Reference: direct tessellation, pruned by the cut-off, in adjacency
    // order — computed without any backend machinery.
    const auto adjacency =
        sops::geom::delaunay_adjacency(fuzz.system.positions_aos());
    std::vector<Vec2> reference(fuzz.system.size());
    for (std::size_t i = 0; i < fuzz.system.size(); ++i) {
      Vec2 drift{};
      for (const std::size_t j : adjacency[i]) {
        const Vec2 delta = fuzz.system.position(i) - fuzz.system.position(j);
        const double d_sq = sops::geom::norm_sq(delta);
        if (d_sq >= cutoff_sq || d_sq == 0.0) continue;
        const double scaling =
            table(fuzz.system.types[i], fuzz.system.types[j], std::sqrt(d_sq));
        drift += delta * (-scaling);
      }
      reference[i] = drift;
    }

    std::vector<Vec2> via_backend;
    sops::geom::DelaunayBackend backend;
    accumulate_drift(fuzz.system, fuzz.model, fuzz.cutoff, via_backend,
                     backend);
    for (std::size_t i = 0; i < fuzz.system.size(); ++i) {
      ASSERT_NEAR(reference[i].x, via_backend[i].x, 1e-12)
          << "case " << c << " i " << i;
      ASSERT_NEAR(reference[i].y, via_backend[i].y, 1e-12)
          << "case " << c << " i " << i;
    }
  }
}

TEST(ParityFuzz, VerletSkinTracksCellGridAlongTrajectoriesWithin1e12) {
  // Same seeded configurations as the other parity cases, but followed
  // along a real trajectory so the Verlet backend's displacement gating
  // (skips, stale-list filtering, triggered rebuilds) is exercised against
  // the cell grid on the identical positions. Tolerance-based on purpose:
  // the two modes enumerate the same pair set in different orders, and the
  // Verlet rebuild cadence is trajectory-dependent, so bitwise pins do not
  // transfer across modes.
  std::size_t total_steps = 0;
  std::size_t total_builds = 0;
  for (std::uint64_t c = 0; c < kCases; c += 5) {
    FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    sops::geom::CellGridBackend grid_backend;
    sops::geom::VerletListBackend verlet_backend;
    sops::sim::IntegratorParams params;
    sops::rng::Xoshiro256 engine(0xBEE5 + c);
    std::vector<Vec2> grid_drift;
    std::vector<Vec2> verlet_drift;
    for (int step = 0; step < 25; ++step) {
      accumulate_drift(fuzz.system, table, fuzz.cutoff, grid_drift,
                       grid_backend, std::size_t{1});
      accumulate_drift(fuzz.system, table, fuzz.cutoff, verlet_drift,
                       verlet_backend, std::size_t{1});
      for (std::size_t i = 0; i < fuzz.system.size(); ++i) {
        ASSERT_NEAR(grid_drift[i].x, verlet_drift[i].x, 1e-12)
            << "case " << c << " step " << step << " i " << i;
        ASSERT_NEAR(grid_drift[i].y, verlet_drift[i].y, 1e-12)
            << "case " << c << " step " << step << " i " << i;
      }
      // Advance on the grid drift: one shared trajectory for both backends.
      sops::sim::apply_euler_maruyama_update(fuzz.system, grid_drift, params,
                                             engine);
    }
    total_steps += verlet_backend.stats().steps;
    total_builds += verlet_backend.stats().builds;
  }
  // The gating must actually have skipped rebuilds somewhere across the
  // sweep — otherwise this test exercised nothing beyond a fresh build.
  EXPECT_LT(total_builds, total_steps);
}

// ------------------------------------------------- scalar vs SIMD parity

// Pins the runtime SIMD policy for a scope and restores the previous value
// on exit, so parity tests cannot leak a forced policy into later tests.
class SimdPolicyGuard {
 public:
  explicit SimdPolicyGuard(sops::support::SimdPolicy policy)
      : saved_(sops::support::simd_policy()) {
    sops::support::set_simd_policy(policy);
  }
  ~SimdPolicyGuard() { sops::support::set_simd_policy(saved_); }
  SimdPolicyGuard(const SimdPolicyGuard&) = delete;
  SimdPolicyGuard& operator=(const SimdPolicyGuard&) = delete;

 private:
  sops::support::SimdPolicy saved_;
};

std::vector<Vec2> drift_under_policy(sops::support::SimdPolicy policy,
                                     const ParticleSystem& system,
                                     const PairScalingTable& table,
                                     double cutoff,
                                     sops::geom::NeighborBackendKind kind) {
  const SimdPolicyGuard guard(policy);
  const auto backend = sops::geom::make_neighbor_backend(kind);
  std::vector<Vec2> out;
  accumulate_drift(system, table, cutoff, out, *backend, std::size_t{1});
  return out;
}

void expect_scalar_simd_bitwise(const ParticleSystem& system,
                                const PairScalingTable& table, double cutoff,
                                sops::geom::NeighborBackendKind kind,
                                const char* label) {
  const std::vector<Vec2> scalar = drift_under_policy(
      sops::support::SimdPolicy::kScalar, system, table, cutoff, kind);
  const std::vector<Vec2> simd = drift_under_policy(
      sops::support::SimdPolicy::kSimd, system, table, cutoff, kind);
  ASSERT_EQ(scalar.size(), simd.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i], simd[i])
        << label << " kind " << static_cast<int>(kind) << " i " << i;
  }
}

constexpr sops::geom::NeighborBackendKind kAllBackendKinds[] = {
    sops::geom::NeighborBackendKind::kAllPairs,
    sops::geom::NeighborBackendKind::kCellGrid,
    sops::geom::NeighborBackendKind::kDelaunay,
    sops::geom::NeighborBackendKind::kVerletSkin,
};

TEST(SimdParity, ScalarVsSimdBitwiseAcrossBackendsAndLaws) {
  // The whole random sweep (both force-law families, 1–5 types, random
  // density), every backend, forced-scalar against forced-SIMD: the vector
  // kernels pin lane partials in index order, so the results must be
  // bitwise-identical, not merely close.
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    for (const auto kind : kAllBackendKinds) {
      expect_scalar_simd_bitwise(fuzz.system, table, fuzz.cutoff, kind,
                                 "fuzz");
    }
  }
}

TEST(SimdParity, LaneRemainderSizesBitwise) {
  // Collective sizes straddling the 4-lane width, n ≡ 0..3 (mod 4),
  // including n = 1 (empty candidate rows) — the tail-block path (pad with
  // the last valid candidate, mask the dead lanes) must not perturb bits.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 9u, 13u}) {
    sops::rng::Xoshiro256 engine(0x1A4E + n);
    std::vector<Vec2> positions;
    std::vector<sops::sim::TypeId> type_ids;
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(sops::rng::uniform_disc(engine, 3.0));
      type_ids.push_back(static_cast<sops::sim::TypeId>(i % 2));
    }
    const ParticleSystem system(positions, type_ids);
    for (const ForceLawKind kind :
         {ForceLawKind::kSpring, ForceLawKind::kDoubleGaussian}) {
      const InteractionModel model(kind, 2, PairParams{1.2, 1.5, 0.8, 3.0});
      const PairScalingTable table(model);
      // Delaunay needs a non-degenerate tessellation; the small-n sweep
      // sticks to the three radius-pruned backends.
      for (const auto backend_kind :
           {sops::geom::NeighborBackendKind::kAllPairs,
            sops::geom::NeighborBackendKind::kCellGrid,
            sops::geom::NeighborBackendKind::kVerletSkin}) {
        expect_scalar_simd_bitwise(system, table, 2.5, backend_kind,
                                   "lane remainder");
      }
    }
  }
}

TEST(SimdParity, CoincidentParticlesBitwiseAndFinite) {
  // Exactly coincident particles hit the d² == 0 lane mask (undefined
  // direction, excluded from the sum) inside otherwise-live blocks.
  std::vector<Vec2> positions{{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.5},
                              {1.0, 0.5}, {0.25, -1.0}, {0.0, 0.0},
                              {-1.5, 0.75}};
  std::vector<sops::sim::TypeId> type_ids(positions.size(), 0);
  const ParticleSystem system(positions, type_ids);
  for (const ForceLawKind kind :
       {ForceLawKind::kSpring, ForceLawKind::kDoubleGaussian}) {
    const InteractionModel model(kind, 1, PairParams{1.0, 2.0, 1.0, 3.0});
    const PairScalingTable table(model);
    for (const auto backend_kind :
         {sops::geom::NeighborBackendKind::kAllPairs,
          sops::geom::NeighborBackendKind::kCellGrid,
          sops::geom::NeighborBackendKind::kVerletSkin}) {
      expect_scalar_simd_bitwise(system, table, 3.0, backend_kind,
                                 "coincident");
      const std::vector<Vec2> drift =
          drift_under_policy(sops::support::SimdPolicy::kSimd, system, table,
                             3.0, backend_kind);
      for (const Vec2 d : drift) {
        EXPECT_TRUE(std::isfinite(d.x) && std::isfinite(d.y));
      }
    }
  }
}

TEST(SimdParity, SpringNearZeroSeparationBitwise) {
  // F¹ diverges as x → 0 (scaling k·(1 − r/x)); a pair at separation
  // 1e-120 makes the masked-lane blend (d² → 1.0 before the sqrt) load
  // bearing — an unmasked dead lane would divide by a denormal instead.
  const std::vector<Vec2> positions{
      {0.0, 0.0}, {1e-120, 0.0}, {0.5, 0.5}, {-0.5, 0.25}, {0.125, -0.75}};
  const std::vector<sops::sim::TypeId> type_ids(positions.size(), 0);
  const ParticleSystem system(positions, type_ids);
  const InteractionModel model(ForceLawKind::kSpring, 1,
                               PairParams{1.0, 2.0, 1.0, 1.0});
  const PairScalingTable table(model);
  for (const auto backend_kind :
       {sops::geom::NeighborBackendKind::kAllPairs,
        sops::geom::NeighborBackendKind::kCellGrid,
        sops::geom::NeighborBackendKind::kVerletSkin}) {
    expect_scalar_simd_bitwise(system, table, 2.0, backend_kind, "near zero");
    const std::vector<Vec2> drift = drift_under_policy(
        sops::support::SimdPolicy::kSimd, system, table, 2.0, backend_kind);
    for (const Vec2 d : drift) {
      EXPECT_TRUE(std::isfinite(d.x) && std::isfinite(d.y));
    }
  }
}

TEST(SimdParity, PackedVsIndexedRowKernels) {
  // The packed (compact-first) and indexed (masked) kernels are two
  // summation orders of the same row. Two claims, per SIMD policy:
  //  - all-kept rows (cut-off beyond every candidate, no coincidences) have
  //    identical lane grouping, so the results are bitwise-equal;
  //  - filtered rows only regroup survivors into earlier lanes, so the
  //    results agree to 1e-12 but not necessarily bitwise.
  // The filter's survivor selection is exact-comparison arithmetic, so the
  // kept count must match the masked kernel's live lanes for every ISA.
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    const ParticleSystem& system = fuzz.system;
    const std::size_t n = system.size();
    std::vector<std::uint32_t> all;
    for (std::size_t j = 0; j < n; ++j) all.push_back(static_cast<std::uint32_t>(j));
    std::vector<double> fx(n + 8);
    std::vector<double> fy(n + 8);
    std::vector<sops::sim::TypeId> ft(n + 8);
    for (const auto policy : {sops::support::SimdPolicy::kScalar,
                              sops::support::SimdPolicy::kSimd}) {
      const SimdPolicyGuard guard(policy);
      const sops::sim::DriftKernels& kernels = sops::sim::select_drift_kernels();
      for (std::size_t i = 0; i < n; ++i) {
        // Candidate row: everyone but i (self would hit the d² == 0 mask
        // and is not in any backend's row either).
        std::vector<std::uint32_t> row_idx;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i && sops::geom::dist_sq(system.position(i),
                                            system.position(j)) > 0.0) {
            row_idx.push_back(static_cast<std::uint32_t>(j));
          }
        }
        for (const double cutoff_sq :
             {fuzz.cutoff * fuzz.cutoff, 1e12 /* all kept */}) {
          const sops::sim::IndexedRow ir{
              system.x[i],        system.y[i],         system.types[i],
              system.x.data(),    system.y.data(),     system.types.data(),
              row_idx.data(),     row_idx.size(),      cutoff_sq};
          const Vec2 via_indexed = kernels.indexed(table, ir);
          const sops::sim::FilterRow fr{
              system.x[i],        system.y[i],         system.x.data(),
              system.y.data(),    system.types.data(), row_idx.data(),
              row_idx.size(),     cutoff_sq,           fx.data(),
              fy.data(),          ft.data()};
          const std::size_t kept = kernels.filter(fr);
          const sops::sim::PackedRow pr{system.x[i], system.y[i],
                                        system.types[i], fx.data(), fy.data(),
                                        ft.data(),       kept,      cutoff_sq};
          const Vec2 via_packed = kernels.packed(table, pr);
          if (cutoff_sq == 1e12) {
            ASSERT_EQ(kept, row_idx.size()) << "case " << c << " i " << i;
            ASSERT_EQ(via_packed, via_indexed)
                << "all-kept case " << c << " i " << i;
          } else {
            ASSERT_NEAR(via_packed.x, via_indexed.x, 1e-12)
                << "case " << c << " i " << i;
            ASSERT_NEAR(via_packed.y, via_indexed.y, 1e-12)
                << "case " << c << " i " << i;
          }
        }
      }
    }
  }
}

TEST(SimdParity, AdaptivePartialVerletTrajectoriesBitwise) {
  // The adaptive-skin + partial-rebuild configuration along real
  // trajectories, forced-scalar vs forced-SIMD: rebuild timing, runaway
  // selection, and the partial/extra overlay structure depend only on
  // positions and exact comparisons, so the two policies must walk the
  // identical trajectory bitwise — through full rebuilds, partial passes,
  // and the postfix overlay evaluation alike. Both force-law families ride
  // the sweep, so the compact-first (double-Gaussian) and chunked-indexed
  // (spring) quiet paths are both pinned.
  for (std::uint64_t c = 0; c < kCases; c += 7) {
    const FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    const auto run = [&](sops::support::SimdPolicy policy) {
      const SimdPolicyGuard guard(policy);
      ParticleSystem system = fuzz.system;
      sops::geom::VerletListBackend backend;
      sops::geom::VerletListBackend::AdaptiveSkin adapt;
      adapt.enabled = true;
      adapt.target_interval = 8.0;  // small: trips adaptation quickly
      backend.set_adaptive_skin(adapt);
      backend.set_partial_rebuild(true);
      sops::sim::IntegratorParams params;
      params.dt = 0.08;
      sops::rng::Xoshiro256 engine(0xADA7 + c);
      std::vector<Vec2> drift;
      std::vector<Vec2> history;
      for (int step = 0; step < 25; ++step) {
        accumulate_drift(system, table, fuzz.cutoff, drift, backend,
                         std::size_t{1});
        history.insert(history.end(), drift.begin(), drift.end());
        sops::sim::apply_euler_maruyama_update(system, drift, params, engine);
      }
      return std::pair{history, backend.stats()};
    };
    const auto [scalar_drift, scalar_stats] =
        run(sops::support::SimdPolicy::kScalar);
    const auto [simd_drift, simd_stats] = run(sops::support::SimdPolicy::kSimd);
    ASSERT_EQ(scalar_drift.size(), simd_drift.size());
    for (std::size_t k = 0; k < scalar_drift.size(); ++k) {
      ASSERT_EQ(scalar_drift[k], simd_drift[k]) << "case " << c << " k " << k;
    }
    // Identical trajectories must gate identically.
    EXPECT_EQ(scalar_stats.builds, simd_stats.builds) << "case " << c;
    EXPECT_EQ(scalar_stats.partial_builds, simd_stats.partial_builds)
        << "case " << c;
  }
}

TEST(ParityFuzz, ShardedPathBitwiseEqualsSerialForEveryBackend) {
  for (std::uint64_t c = 0; c < kCases; ++c) {
    const FuzzCase fuzz = draw_case(c);
    const PairScalingTable table(fuzz.model);
    for (const sops::geom::NeighborBackendKind kind :
         {sops::geom::NeighborBackendKind::kAllPairs,
          sops::geom::NeighborBackendKind::kCellGrid,
          sops::geom::NeighborBackendKind::kDelaunay,
          sops::geom::NeighborBackendKind::kVerletSkin}) {
      const auto serial_backend = sops::geom::make_neighbor_backend(kind);
      const auto sharded_backend = sops::geom::make_neighbor_backend(kind);
      std::vector<Vec2> serial;
      std::vector<Vec2> sharded;
      accumulate_drift(fuzz.system, table, fuzz.cutoff, serial,
                       *serial_backend, 1);
      accumulate_drift(fuzz.system, table, fuzz.cutoff, sharded,
                       *sharded_backend, 3);
      ASSERT_EQ(serial.size(), sharded.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i], sharded[i])
            << "case " << c << " kind " << static_cast<int>(kind) << " i "
            << i;
      }
    }
  }
}

}  // namespace
