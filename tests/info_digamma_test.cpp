// Digamma tests against known closed-form values and identities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "info/digamma.hpp"
#include "support/error.hpp"

namespace {

using sops::info::digamma;
using sops::info::digamma_int;

constexpr double kGamma = 0.57721566490153286060651209008240243;

TEST(Digamma, KnownValues) {
  EXPECT_NEAR(digamma(1.0), -kGamma, 1e-12);
  EXPECT_NEAR(digamma(2.0), 1.0 - kGamma, 1e-12);
  EXPECT_NEAR(digamma(0.5), -kGamma - 2.0 * std::log(2.0), 1e-12);
  // ψ(1/4) = −γ − π/2 − 3 ln 2.
  EXPECT_NEAR(digamma(0.25),
              -kGamma - std::numbers::pi / 2.0 - 3.0 * std::log(2.0), 1e-12);
}

TEST(Digamma, RecurrenceIdentity) {
  // ψ(x+1) = ψ(x) + 1/x on a grid spanning the series/recurrence regions.
  for (const double x : {0.1, 0.7, 1.0, 2.5, 5.9, 6.1, 25.0, 1000.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-11) << x;
  }
}

TEST(Digamma, ReflectionIdentity) {
  // ψ(1−x) − ψ(x) = π·cot(πx).
  for (const double x : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(digamma(1.0 - x) - digamma(x),
                std::numbers::pi / std::tan(std::numbers::pi * x), 1e-10)
        << x;
  }
}

TEST(Digamma, AsymptoticForLargeArguments) {
  // ψ(x) → ln x − 1/(2x); at x = 1e6 the remainder is ~1e-14.
  const double x = 1e6;
  EXPECT_NEAR(digamma(x), std::log(x) - 0.5 / x, 1e-12);
}

TEST(Digamma, MonotoneIncreasing) {
  double prev = digamma(0.05);
  for (double x = 0.1; x < 20.0; x += 0.05) {
    const double current = digamma(x);
    EXPECT_GT(current, prev) << x;
    prev = current;
  }
}

TEST(Digamma, NonPositiveThrows) {
  EXPECT_THROW((void)digamma(0.0), sops::PreconditionError);
  EXPECT_THROW((void)digamma(-1.5), sops::PreconditionError);
}

TEST(DigammaInt, MatchesHarmonicDefinition) {
  // ψ(n) = −γ + Σ_{k=1}^{n−1} 1/k.
  double harmonic = 0.0;
  for (unsigned n = 1; n <= 100; ++n) {
    EXPECT_NEAR(digamma_int(n), -kGamma + harmonic, 1e-12) << n;
    harmonic += 1.0 / n;
  }
}

TEST(DigammaInt, AgreesWithRealVersion) {
  for (const unsigned long long n : {1ull, 5ull, 64ull, 65ull, 1000ull, 123456ull}) {
    EXPECT_NEAR(digamma_int(n), digamma(static_cast<double>(n)), 1e-11) << n;
  }
}

TEST(DigammaInt, ZeroThrows) {
  EXPECT_THROW((void)digamma_int(0), sops::PreconditionError);
}

}  // namespace
