// Delaunay triangulation tests: the empty-circumcircle property against a
// brute-force check, adjacency correctness on known configurations, and
// degenerate inputs.
#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "geom/delaunay.hpp"
#include "rng/samplers.hpp"

namespace {

using sops::geom::delaunay_adjacency;
using sops::geom::delaunay_triangulation;
using sops::geom::in_circumcircle;
using sops::geom::Triangle;
using sops::geom::Vec2;

std::vector<Vec2> random_cloud(std::size_t n, std::uint64_t seed) {
  sops::rng::Xoshiro256 engine(seed);
  std::vector<Vec2> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({sops::rng::uniform(engine, -10.0, 10.0),
                      sops::rng::uniform(engine, -10.0, 10.0)});
  }
  return points;
}

TEST(Circumcircle, UnitCircleMembership) {
  const Vec2 a{1, 0};
  const Vec2 b{-1, 0};
  const Vec2 c{0, 1};
  EXPECT_TRUE(in_circumcircle(a, b, c, {0, 0}));          // center
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.5, -0.5}));     // inside
  EXPECT_FALSE(in_circumcircle(a, b, c, {2, 0}));         // outside
  EXPECT_FALSE(in_circumcircle(a, b, c, {0, -1.00001}));  // just outside
}

TEST(Circumcircle, OrientationInvariant) {
  const Vec2 a{1, 0};
  const Vec2 b{-1, 0};
  const Vec2 c{0, 1};
  const Vec2 p{0.1, 0.1};
  EXPECT_EQ(in_circumcircle(a, b, c, p), in_circumcircle(a, c, b, p));
  EXPECT_EQ(in_circumcircle(a, b, c, p), in_circumcircle(c, b, a, p));
}

TEST(Delaunay, SingleTriangle) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}, {0, 1}};
  const auto triangles = delaunay_triangulation(points);
  ASSERT_EQ(triangles.size(), 1u);
  std::set<std::size_t> vertices(triangles[0].vertices.begin(),
                                 triangles[0].vertices.end());
  EXPECT_EQ(vertices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_EQ(delaunay_triangulation(points).size(), 2u);
}

class DelaunayClouds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DelaunayClouds, EmptyCircumcircleProperty) {
  // The defining property: no input point lies strictly inside any
  // triangle's circumcircle.
  const auto points = random_cloud(GetParam(), GetParam() * 31 + 7);
  const auto triangles = delaunay_triangulation(points);
  ASSERT_FALSE(triangles.empty());
  for (const Triangle& triangle : triangles) {
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (p == triangle.vertices[0] || p == triangle.vertices[1] ||
          p == triangle.vertices[2]) {
        continue;
      }
      EXPECT_FALSE(in_circumcircle(points[triangle.vertices[0]],
                                   points[triangle.vertices[1]],
                                   points[triangle.vertices[2]], points[p]))
          << "point " << p << " violates the empty-circumcircle property";
    }
  }
}

TEST_P(DelaunayClouds, TriangleCountMatchesEulerFormula) {
  // For n ≥ 3 points in general position with h hull vertices:
  // triangles = 2n − h − 2.
  const auto points = random_cloud(GetParam(), GetParam() * 17 + 3);
  const auto triangles = delaunay_triangulation(points);

  // Count hull vertices via gift-wrapping on the triangulation edges: an
  // edge on the hull belongs to exactly one triangle.
  std::map<std::pair<std::size_t, std::size_t>, int> edge_count;
  for (const Triangle& triangle : triangles) {
    for (int e = 0; e < 3; ++e) {
      std::size_t a = triangle.vertices[e];
      std::size_t b = triangle.vertices[(e + 1) % 3];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  }
  std::set<std::size_t> hull_vertices;
  for (const auto& [edge, count] : edge_count) {
    ASSERT_LE(count, 2);
    if (count == 1) {
      hull_vertices.insert(edge.first);
      hull_vertices.insert(edge.second);
    }
  }
  EXPECT_EQ(triangles.size(),
            2 * points.size() - hull_vertices.size() - 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayClouds,
                         ::testing::Values(4, 10, 25, 60, 120));

TEST(Delaunay, DegenerateInputs) {
  EXPECT_TRUE(delaunay_triangulation(std::vector<Vec2>{}).empty());
  EXPECT_TRUE(delaunay_triangulation(std::vector<Vec2>{{0, 0}}).empty());
  EXPECT_TRUE(delaunay_triangulation(std::vector<Vec2>{{0, 0}, {1, 1}}).empty());
  // Collinear.
  EXPECT_TRUE(delaunay_triangulation(
                  std::vector<Vec2>{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
                  .empty());
}

TEST(Adjacency, HexagonCenterConnectsToAll) {
  // Center of a regular hexagon is a Delaunay neighbor of every corner.
  std::vector<Vec2> points{{0, 0}};
  for (int i = 0; i < 6; ++i) {
    const double a = std::numbers::pi / 3.0 * i;
    points.push_back({std::cos(a), std::sin(a)});
  }
  const auto adjacency = delaunay_adjacency(points);
  EXPECT_EQ(adjacency[0].size(), 6u);
}

TEST(Adjacency, IsSymmetric) {
  const auto points = random_cloud(40, 99);
  const auto adjacency = delaunay_adjacency(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const std::size_t j : adjacency[i]) {
      EXPECT_TRUE(std::find(adjacency[j].begin(), adjacency[j].end(), i) !=
                  adjacency[j].end())
          << i << " -> " << j;
    }
  }
}

TEST(Adjacency, NoIsolatedPointsInGeneralPosition) {
  const auto points = random_cloud(50, 101);
  const auto adjacency = delaunay_adjacency(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_FALSE(adjacency[i].empty()) << i;
  }
}

TEST(Adjacency, CollinearFallbackChains) {
  const std::vector<Vec2> points{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const auto adjacency = delaunay_adjacency(points);
  EXPECT_EQ(adjacency[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(adjacency[1], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(adjacency[2], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(adjacency[3], (std::vector<std::size_t>{2}));
}

TEST(Adjacency, DuplicatesLinkedToTwin) {
  std::vector<Vec2> points = random_cloud(20, 103);
  points.push_back(points[5]);  // exact duplicate of point 5
  const auto adjacency = delaunay_adjacency(points);
  const std::size_t dup = points.size() - 1;
  EXPECT_FALSE(adjacency[dup].empty());
  EXPECT_TRUE(std::find(adjacency[dup].begin(), adjacency[dup].end(), 5) !=
              adjacency[dup].end());
}

TEST(Adjacency, MeanDegreeBelowSix) {
  // Planar graph: average degree < 6 for any triangulation.
  const auto points = random_cloud(200, 107);
  const auto adjacency = delaunay_adjacency(points);
  std::size_t total_degree = 0;
  for (const auto& list : adjacency) total_degree += list.size();
  EXPECT_LT(static_cast<double>(total_degree) / 200.0, 6.0);
}

}  // namespace
