// Fixed-width SIMD plumbing for the pair kernels: the lane-width constant,
// GNU vector types, and the runtime scalar/SIMD policy switch.
//
// The lane width is pinned at 4 doubles on every ISA — it is part of the
// bitwise-reproducibility contract (the in-row reduction order is defined
// over exactly 4 lane partials), so a wider machine never widens the math.
// What dispatch *may* vary is only which instruction encoding evaluates the
// identical 4-lane IEEE operation sequence: a generic baseline build (two
// 2-lane ops per vector op on SSE2) and, when compiled in, an AVX2
// translation unit selected by CPUID at runtime. Both produce the same bits
// as the scalar reference path, which stays available at runtime so parity
// tests can cross-check any configuration.
#pragma once

#include <cstddef>

namespace sops::support {

/// The pinned lane width of all vectorized pair kernels (doubles per lane
/// block). Never derived from the ISA.
inline constexpr std::size_t kSimdWidth = 4;

#if defined(__GNUC__) || defined(__clang__)
#define SOPS_HAVE_VECTOR_EXT 1
/// 4 × double lane block (GNU vector extension; 32 bytes).
typedef double v4d __attribute__((vector_size(32)));
/// Lane mask companion: element-wise comparisons on v4d yield all-ones /
/// all-zero 64-bit integer lanes of this type.
typedef long long v4m __attribute__((vector_size(32)));
#endif

/// Which pair-kernel implementation accumulate_drift selects at runtime.
enum class SimdPolicy {
  kAuto,    ///< vector kernels (best compiled ISA); the default
  kScalar,  ///< the scalar reference kernels — the parity fuzzer's anchor
  kSimd,    ///< force the vector kernels (same selection as kAuto)
};

/// Current process-wide policy. Initialized from the SOPS_SIMD environment
/// variable ("scalar" or "simd"; anything else leaves kAuto).
[[nodiscard]] SimdPolicy simd_policy() noexcept;

/// Overrides the policy (tests flip this to cross-check paths).
void set_simd_policy(SimdPolicy policy) noexcept;

/// True when the current policy selects the vector kernels.
[[nodiscard]] bool simd_enabled() noexcept;

/// True when this build carries the AVX2 kernel TU *and* the CPU has AVX2.
[[nodiscard]] bool cpu_dispatch_avx2() noexcept;

/// ISA label of the vector kernels the policy would select right now:
/// "avx2" or "generic". Recorded in BENCH_engine.json so the trend gate can
/// refuse cross-ISA comparisons.
[[nodiscard]] const char* simd_isa() noexcept;

}  // namespace sops::support
