// Minimal data-parallel loop over an index range.
//
// All parallelism in sops goes through this single primitive so that the
// numerical code stays free of threading concerns. Work items must be
// independent; determinism is the caller's responsibility (in practice each
// simulation sample owns its RNG substream, so results are identical for any
// thread count, including 1).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace sops::support {

/// Returns the worker count used when `threads == 0` is requested:
/// the hardware concurrency, floored at 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs `body(i)` for every i in [begin, end) across up to `threads` workers.
///
/// - `threads == 0` selects `default_thread_count()`.
/// - `threads == 1` (or a range of at most one element) runs inline with no
///   thread creation, which keeps small problems cheap and makes single-
///   threaded debugging trivial.
/// - Indices are partitioned into contiguous blocks, one per worker, so
///   neighboring iterations share cache lines of the same output region.
/// - If any invocation of `body` throws, the first exception is rethrown on
///   the calling thread after all workers have joined.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Like parallel_for, but hands each worker a contiguous [chunk_begin,
/// chunk_end) range. Use when per-iteration dispatch overhead matters
/// (tight numerical kernels).
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body,
    std::size_t threads = 0);

}  // namespace sops::support
