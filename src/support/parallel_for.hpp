// Minimal data-parallel loops over an index range — thin wrappers over the
// Executor layer (support/executor.hpp).
//
// All parallelism in sops goes through these primitives so that the
// numerical code stays free of threading concerns. Work items must be
// independent; determinism is the caller's responsibility (in practice each
// simulation sample owns its RNG substream and each chunk owns a disjoint
// output range, so results are identical for any width, including 1).
//
// The wrappers compute the chunk partition; the executor only decides which
// runner executes which chunk. Every overload exists in two forms: one
// taking an Executor& (the engine's pooled paths pass a lent PoolExecutor)
// and a legacy form taking a thread count, which dispatches on a transient
// SpawnExecutor — the historical fork/join behavior. The partition is
// identical in both forms, so switching a call site between them never
// changes results.
//
// Both loops are templated on the body type: the body is invoked directly
// (inlined into the chunk loop), with type erasure only at the chunk level.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "support/executor.hpp"

namespace sops::support {

/// Runs `chunk_body(chunk_begin, chunk_end)` over a contiguous equal
/// partition of [begin, end) with `min(executor.width(), count)` chunks.
/// Use when per-iteration dispatch overhead matters (tight numerical
/// kernels) or when a worker should set up per-chunk state (scratch
/// buffers, workspaces) once.
///
/// A single chunk (width 1, or a range of at most one element) runs inline
/// with no executor round-trip, which keeps small problems cheap and makes
/// single-threaded debugging trivial. If any invocation throws, the first
/// exception is rethrown on the calling thread after all chunks finished
/// (inline runs propagate immediately).
template <typename ChunkBody>
void parallel_for_chunked(Executor& executor, std::size_t begin,
                          std::size_t end, ChunkBody&& chunk_body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t chunks = std::min(executor.width(), count);
  if (chunks <= 1) {
    chunk_body(begin, end);
    return;
  }
  auto chunk_task = [&](std::size_t k) {
    const ChunkRange range = chunk_range(k, count, chunks);
    chunk_body(begin + range.begin, begin + range.end);
  };
  executor.run(chunks, chunk_task);
}

/// Legacy form: same partition and semantics, dispatched on a transient
/// SpawnExecutor of the given width (0 selects default_thread_count()).
/// Pooled call sites should prefer the Executor& overload.
template <typename ChunkBody>
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          ChunkBody&& chunk_body, std::size_t threads = 0) {
  SpawnExecutor executor(threads);
  parallel_for_chunked(executor, begin, end,
                       std::forward<ChunkBody>(chunk_body));
}

/// Explicit-partition overload: runs `chunk_body(bounds[k], bounds[k+1])`
/// for every k with caller-supplied chunk boundaries instead of an equal
/// division. `bounds` must be ascending (empty chunks are skipped); a
/// partition with at most one non-empty chunk, or a width-1 executor, runs
/// inline in index order. Live workers are capped at the executor's width
/// no matter how many chunks the partition holds — chunks queue and drain
/// as runners free up.
///
/// The partition is the caller's contract with determinism: boundaries that
/// do not depend on the machine (e.g. a neighbor structure's cell-aligned
/// shards) give bitwise-stable results at any width. Exception semantics
/// match the equal-division overload.
template <typename ChunkBody, typename Index>
void parallel_for_chunked(Executor& executor, std::span<const Index> bounds,
                          ChunkBody&& chunk_body) {
  if (bounds.size() < 2) return;
  std::size_t non_empty = 0;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    if (bounds[k] < bounds[k + 1]) ++non_empty;
  }
  if (non_empty == 0) return;
  if (non_empty == 1 || executor.width() <= 1) {
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      if (bounds[k] < bounds[k + 1]) {
        chunk_body(static_cast<std::size_t>(bounds[k]),
                   static_cast<std::size_t>(bounds[k + 1]));
      }
    }
    return;
  }
  auto chunk_task = [&](std::size_t k) {
    if (bounds[k] < bounds[k + 1]) {
      chunk_body(static_cast<std::size_t>(bounds[k]),
                 static_cast<std::size_t>(bounds[k + 1]));
    }
  };
  executor.run(bounds.size() - 1, chunk_task);
}

/// Explicit-partition overload that also hands the body its chunk index:
/// `chunk_body(k, bounds[k], bounds[k+1])` for every k with a non-empty
/// range. The index is the chunk's position in `bounds` — stable across
/// executor widths — so callers can bind per-shard scratch buffers to k
/// without racing (buffer k is touched only by chunk k, whichever worker
/// runs it). Partition, skip, inline-fallback, and exception semantics
/// match the index-free overload above.
template <typename ChunkBody, typename Index>
void parallel_for_shards(Executor& executor, std::span<const Index> bounds,
                         ChunkBody&& chunk_body) {
  if (bounds.size() < 2) return;
  std::size_t non_empty = 0;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    if (bounds[k] < bounds[k + 1]) ++non_empty;
  }
  if (non_empty == 0) return;
  if (non_empty == 1 || executor.width() <= 1) {
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      if (bounds[k] < bounds[k + 1]) {
        chunk_body(k, static_cast<std::size_t>(bounds[k]),
                   static_cast<std::size_t>(bounds[k + 1]));
      }
    }
    return;
  }
  auto chunk_task = [&](std::size_t k) {
    if (bounds[k] < bounds[k + 1]) {
      chunk_body(k, static_cast<std::size_t>(bounds[k]),
                 static_cast<std::size_t>(bounds[k + 1]));
    }
  };
  executor.run(bounds.size() - 1, chunk_task);
}

/// Legacy explicit-partition form: dispatches on a transient SpawnExecutor
/// of default_thread_count() width. (Historically this overload spawned one
/// thread per non-empty chunk with no cap; the executor's width now bounds
/// live workers.)
template <typename ChunkBody, typename Index>
void parallel_for_chunked(std::span<const Index> bounds,
                          ChunkBody&& chunk_body) {
  SpawnExecutor executor;
  parallel_for_chunked(executor, bounds, std::forward<ChunkBody>(chunk_body));
}

/// Runs `body(i)` for every i in [begin, end) across the executor's
/// runners. Indices are partitioned into contiguous blocks, one per chunk,
/// so neighboring iterations share cache lines of the same output region.
/// Same semantics as `parallel_for_chunked`.
template <typename Body>
void parallel_for(Executor& executor, std::size_t begin, std::size_t end,
                  Body&& body) {
  parallel_for_chunked(
      executor, begin, end,
      [&body](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      });
}

/// Legacy form of `parallel_for` on a transient SpawnExecutor.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t threads = 0) {
  SpawnExecutor executor(threads);
  parallel_for(executor, begin, end, std::forward<Body>(body));
}

}  // namespace sops::support
