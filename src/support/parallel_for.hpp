// Minimal data-parallel loop over an index range.
//
// All parallelism in sops goes through this single primitive so that the
// numerical code stays free of threading concerns. Work items must be
// independent; determinism is the caller's responsibility (in practice each
// simulation sample owns its RNG substream, so results are identical for any
// thread count, including 1).
//
// Both loops are templated on the body type: the body is invoked directly
// (inlined into the worker loop), with no std::function type erasure on the
// per-iteration path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace sops::support {

/// Returns the worker count used when `threads == 0` is requested:
/// the hardware concurrency, floored at 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs `chunk_body(chunk_begin, chunk_end)` over a contiguous partition of
/// [begin, end), one chunk per worker. Use when per-iteration dispatch
/// overhead matters (tight numerical kernels) or when a worker should set
/// up per-chunk state (scratch buffers, workspaces) once.
///
/// - `threads == 0` selects `default_thread_count()`.
/// - `threads == 1` (or a range of at most one element) runs inline with no
///   thread creation, which keeps small problems cheap and makes single-
///   threaded debugging trivial.
/// - If any invocation throws, the first exception is rethrown on the
///   calling thread after all workers have joined.
template <typename ChunkBody>
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          ChunkBody&& chunk_body, std::size_t threads = 0) {
  if (begin >= end) return;
  if (threads == 0) threads = default_thread_count();
  const std::size_t count = end - begin;
  threads = std::min(threads, count);

  if (threads <= 1) {
    chunk_body(begin, end);
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t base = count / threads;
  const std::size_t extra = count % threads;
  std::size_t chunk_begin = begin;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t chunk_size = base + (w < extra ? 1 : 0);
    const std::size_t chunk_end = chunk_begin + chunk_size;
    workers.emplace_back([&, chunk_begin, chunk_end] {
      try {
        chunk_body(chunk_begin, chunk_end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    chunk_begin = chunk_end;
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Explicit-partition overload: runs `chunk_body(bounds[k], bounds[k+1])`
/// for every k, one worker per chunk, with caller-supplied chunk boundaries
/// instead of an equal division. `bounds` must be ascending (empty chunks
/// are skipped); a partition with at most one non-empty chunk runs inline.
/// The partition is the caller's contract with determinism: boundaries that
/// do not depend on the machine (e.g. a neighbor structure's cell-aligned
/// shards) give bitwise-stable results at any worker count. Exception
/// semantics match the equal-division overload.
template <typename ChunkBody, typename Index>
void parallel_for_chunked(std::span<const Index> bounds,
                          ChunkBody&& chunk_body) {
  if (bounds.size() < 2) return;
  std::size_t non_empty = 0;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    if (bounds[k] < bounds[k + 1]) ++non_empty;
  }
  if (non_empty == 0) return;
  if (non_empty == 1) {
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      if (bounds[k] < bounds[k + 1]) {
        chunk_body(static_cast<std::size_t>(bounds[k]),
                   static_cast<std::size_t>(bounds[k + 1]));
      }
    }
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(non_empty);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    if (bounds[k] >= bounds[k + 1]) continue;
    const auto chunk_begin = static_cast<std::size_t>(bounds[k]);
    const auto chunk_end = static_cast<std::size_t>(bounds[k + 1]);
    workers.emplace_back([&, chunk_begin, chunk_end] {
      try {
        chunk_body(chunk_begin, chunk_end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs `body(i)` for every i in [begin, end) across up to `threads`
/// workers. Indices are partitioned into contiguous blocks, one per worker,
/// so neighboring iterations share cache lines of the same output region.
/// Same threading/exception semantics as `parallel_for_chunked`.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t threads = 0) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      threads);
}

}  // namespace sops::support
