// Error-handling primitives shared by all sops libraries.
//
// The library reports precondition violations and unrecoverable numerical
// conditions via exceptions derived from `sops::Error`, so that callers
// embedding the library (benches, examples, user code) can distinguish
// library failures from everything else.
#pragma once

#include <stdexcept>
#include <string>

namespace sops {

/// Base class of every exception thrown by sops.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an algorithm cannot proceed for numerical reasons
/// (e.g. an estimator invoked with fewer samples than neighbors).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace support {

/// Checks a documented precondition; throws PreconditionError on failure.
///
/// This is used for *caller* errors on public API boundaries and is always
/// active (not compiled out in release builds): the cost is negligible next
/// to the numerical work and silent misuse is far more expensive to debug.
inline void expect(bool condition, const char* message) {
  if (!condition) throw PreconditionError(message);
}

}  // namespace support
}  // namespace sops
