// The execution layer behind every parallel path in sops.
//
// An Executor runs a batch of independent tasks — in practice the chunks of
// a partitioned index range — across a fixed set of runners: the calling
// thread plus zero or more helpers. Three implementations cover the
// engine's needs:
//
//  - SerialExecutor: width 1, runs tasks inline in index order. The choice
//    whenever a budget resolves to one thread; keeps serial runs free of
//    any threading machinery.
//  - SpawnExecutor: transient helpers, created per dispatch and joined
//    before it returns — the pre-pool fork/join behavior, kept as the
//    baseline the pool's dispatch cost is benchmarked against and as the
//    fallback for one-shot call sites that have no pool to reuse.
//  - TaskPool + PoolExecutor: persistent parked workers woken per dispatch.
//    One pool is sized per experiment from the resolved ThreadBudget; its
//    workers can be *lent* as disjoint sub-executors, so an outer dispatch
//    (ensemble samples, analyzer frames) hands each task its own slice for
//    nested dispatches (intra-step drift shards, KSG sample chunks) without
//    ever exceeding the pool's width in live threads.
//
// Type erasure happens once per dispatch at the task level (TaskRef); the
// per-iteration body stays a template parameter of the parallel_for
// wrappers and is inlined into each task's loop.
//
// Determinism contract: an executor decides only *which runner* executes a
// task, never what the task computes or in what order a task enumerates its
// work. Callers that keep tasks writing to disjoint data (as every sops
// call site does) get bitwise-identical results for any width and any
// executor choice.
//
// Exception semantics, shared by all concurrent executors: every task is
// attempted exactly once even when another task throws; the first exception
// (in completion order) is rethrown on the dispatching thread after all
// tasks finished. A width-1 dispatch runs inline and propagates
// immediately, matching a plain loop.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace sops::support {

/// Returns the worker count used when a width of 0 is requested: the
/// hardware concurrency, floored at 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Non-owning reference to a `void(std::size_t task_index)` callable. The
/// referenced callable must outlive the dispatch — guaranteed, since every
/// Executor::run blocks until all tasks finished.
class TaskRef {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, TaskRef>)
  TaskRef(F& callable) noexcept  // NOLINT(google-explicit-constructor)
      : object_(&callable), invoke_([](void* object, std::size_t task) {
          (*static_cast<F*>(object))(task);
        }) {}

  void operator()(std::size_t task) const { invoke_(object_, task); }

 private:
  void* object_;
  void (*invoke_)(void*, std::size_t);
};

/// A fixed-width runner set for batches of independent tasks.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of tasks that may execute concurrently, counting the calling
  /// thread. Partition sizing (e.g. NeighborBackend::shard_bounds) keys off
  /// this, so it must be stable for the executor's lifetime.
  [[nodiscard]] virtual std::size_t width() const noexcept = 0;

  /// Runs `task(k)` for every k in [0, task_count), at most width() tasks
  /// concurrently; the calling thread participates and the call returns
  /// only after every task finished. Which runner executes which task is
  /// unspecified. Exception semantics as documented above.
  virtual void run(std::size_t task_count, TaskRef task) = 0;
};

/// Width-1 executor: tasks run inline, in index order, on the caller.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t width() const noexcept override { return 1; }
  void run(std::size_t task_count, TaskRef task) override {
    for (std::size_t k = 0; k < task_count; ++k) task(k);
  }
};

/// Transient-thread executor: each dispatch spawns up to width()-1 helper
/// threads that drain the task batch alongside the caller and are joined
/// before the dispatch returns. Live helpers are capped at
/// min(width()-1, task_count-1) — a batch can never fan out wider than the
/// executor, no matter how many tasks it holds.
class SpawnExecutor final : public Executor {
 public:
  /// `width` counts the calling thread; 0 selects default_thread_count().
  explicit SpawnExecutor(std::size_t width = 0) noexcept;

  [[nodiscard]] std::size_t width() const noexcept override { return width_; }
  void run(std::size_t task_count, TaskRef task) override;

 private:
  std::size_t width_;
};

/// Chunk k of the contiguous equal partition of `count` items into
/// `chunks` chunks — the one definition of that arithmetic, shared by the
/// parallel_for wrappers and callers that dispatch outer chunks by index
/// (TaskPool::run_partitioned bodies).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};
[[nodiscard]] constexpr ChunkRange chunk_range(std::size_t k,
                                               std::size_t count,
                                               std::size_t chunks) noexcept {
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  const std::size_t begin = k * base + (k < extra ? k : extra);
  return {begin, begin + base + (k < extra ? 1 : 0)};
}

class TaskPool;

/// A dispatch handle over the calling thread plus a contiguous slice of a
/// TaskPool's workers. Cheap to copy; valid while the pool lives. Views
/// with disjoint worker slices may dispatch concurrently — the lending
/// pattern: an outer dispatch hands each of its tasks a view over that
/// task's own slice for nested dispatches. Dispatching from inside a
/// pooled task on a view that shares workers with any dispatch still in
/// flight deadlocks; lend disjoint slices instead.
class PoolExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t width() const noexcept override {
    return workers_ + 1;
  }
  void run(std::size_t task_count, TaskRef task) override;

 private:
  friend class TaskPool;
  friend class PoolSlice;
  // `pool` may be null only when `workers == 0` (a caller-only view runs
  // every batch inline and never touches the pool).
  PoolExecutor(TaskPool* pool, std::size_t first, std::size_t workers) noexcept
      : pool_(pool), first_(first), workers_(workers) {}

  TaskPool* pool_;
  std::size_t first_;
  std::size_t workers_;
};

/// A persistent set of parked worker threads. Construction spawns width-1
/// workers that sleep until a PoolExecutor dispatch assigns them a batch;
/// destruction wakes and joins them. One pool serves many dispatches back
/// to back — per-dispatch cost is a wake/notify round-trip per engaged
/// worker instead of a thread spawn/join (measured in bench_perf_micro's
/// dispatch section).
class TaskPool {
 public:
  /// `width` counts the calling thread (width 1 spawns no workers);
  /// 0 selects default_thread_count().
  explicit TaskPool(std::size_t width);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total width: worker count plus the calling thread.
  [[nodiscard]] std::size_t width() const noexcept {
    return slots_.size() + 1;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return slots_.size();
  }

  /// Executor over the calling thread plus every worker.
  [[nodiscard]] Executor& executor() noexcept { return all_; }

  /// Executor over the calling thread plus workers
  /// [first_worker, first_worker + workers). The slice is clamped to the
  /// pool's workers; `workers == 0` yields a caller-only (width 1) view.
  /// Lend non-overlapping slices to the tasks of an outer dispatch so
  /// nested dispatches stay within the pool's width.
  [[nodiscard]] PoolExecutor lend(std::size_t first_worker,
                                  std::size_t workers) noexcept;

  /// The disjoint-lending pattern over the whole pool (see
  /// PoolSlice::run_partitioned — this is the slice-of-everything case the
  /// single-experiment drivers use).
  template <typename Body>
  void run_partitioned(std::size_t outer, std::size_t inner_width,
                       Body&& body);

 private:
  friend class PoolExecutor;
  friend class PoolSlice;
  struct Slot;

  static std::size_t worker_count_for(std::size_t width) noexcept;
  void shutdown() noexcept;

  std::vector<std::unique_ptr<Slot>> slots_;
  PoolExecutor all_;
};

/// A contiguous, caller-owned budget of one TaskPool's workers — the unit
/// a machine-wide pool is carved into when several jobs share it. A slice
/// over workers [first, first + workers) has width workers + 1 (the
/// dispatching thread is always a runner), lends sub-slices by
/// slice-relative worker index, and runs the same outer × inner
/// partitioned fan-out TaskPool::run_partitioned offers — entirely inside
/// its own workers. Slices with disjoint worker ranges are independent:
/// distinct job driver threads may dispatch on them concurrently without
/// contending for a runner, which is what turns one per-process pool into
/// a shared machine-wide one. Cheap to copy; valid while the pool lives.
/// The slice carries no reservation of its own — whoever carves slices
/// (core::JobManager) is responsible for handing out disjoint ranges and
/// taking them back when a job completes.
class PoolSlice {
 public:
  /// Caller-only slice of no pool: width 1, every dispatch runs inline.
  PoolSlice() noexcept = default;

  /// Runner count: the dispatching thread plus the slice's workers.
  [[nodiscard]] std::size_t width() const noexcept { return workers_ + 1; }
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }
  /// First pool worker of the slice (meaningless when worker_count() == 0).
  [[nodiscard]] std::size_t first_worker() const noexcept { return first_; }

  /// Executor over the caller plus slice workers
  /// [first_worker, first_worker + workers), *slice-relative* and clamped
  /// to the slice — the same contract as TaskPool::lend, scoped so a job
  /// can never reach into a sibling job's workers by arithmetic slip.
  [[nodiscard]] PoolExecutor lend(std::size_t first_worker,
                                  std::size_t workers) const noexcept;

  /// Executor over the whole slice.
  [[nodiscard]] PoolExecutor executor() const noexcept {
    return lend(0, workers_);
  }

  /// TaskPool::run_partitioned confined to this slice: dispatches `outer`
  /// tasks, handing task k an executor over its own helper sub-slice of
  /// `inner_width - 1` workers for nested dispatches, while the outer
  /// fan-out runs on the remaining workers. Helpers occupy
  /// [k·(w−1), (k+1)·(w−1)), outer runners the tail, and
  /// (outer−1) + outer·(inner_width−1) = outer·inner_width − 1 workers are
  /// used in total — so a slice of width outer · inner_width can neither
  /// deadlock nor oversubscribe, and concurrent jobs on disjoint slices
  /// compose the same guarantee machine-wide. `body` is invoked as
  /// body(k, inner_executor).
  template <typename Body>
  void run_partitioned(std::size_t outer, std::size_t inner_width,
                       Body&& body) const {
    if (outer == 0) return;
    if (inner_width == 0) inner_width = 1;
    PoolExecutor outer_executor = lend(outer * (inner_width - 1), outer - 1);
    auto outer_task = [&](std::size_t k) {
      PoolExecutor inner = lend(k * (inner_width - 1), inner_width - 1);
      body(k, inner);
    };
    outer_executor.run(outer, outer_task);
  }

 private:
  friend class TaskPool;
  friend PoolSlice slice_of(TaskPool& pool, std::size_t first_worker,
                            std::size_t workers) noexcept;
  friend PoolSlice slice_all(TaskPool& pool) noexcept;
  PoolSlice(TaskPool* pool, std::size_t first, std::size_t workers) noexcept
      : pool_(pool), first_(first), workers_(workers) {}

  TaskPool* pool_ = nullptr;
  std::size_t first_ = 0;
  std::size_t workers_ = 0;
};

/// Slice over pool workers [first_worker, first_worker + workers), clamped
/// to the pool's workers.
[[nodiscard]] PoolSlice slice_of(TaskPool& pool, std::size_t first_worker,
                                 std::size_t workers) noexcept;
/// Slice over the whole pool.
[[nodiscard]] PoolSlice slice_all(TaskPool& pool) noexcept;

template <typename Body>
void TaskPool::run_partitioned(std::size_t outer, std::size_t inner_width,
                               Body&& body) {
  slice_all(*this).run_partitioned(outer, inner_width,
                                   std::forward<Body>(body));
}

}  // namespace sops::support
