// Cooperative cancellation for long-running work.
//
// A CancelToken is a lock-free flag a controller raises and workers poll at
// natural boundaries (a simulation step, a sample, a queued analysis
// frame). Raising it never interrupts anything by force — the polling site
// throws CancelledError at its next check, stacks unwind through the normal
// exception path, and every RAII cleanup (scratch-spill unlink, manifest
// sync-on-destroy, pool slot return) runs exactly as it would on success.
//
// Tokens chain: a token constructed with a parent reports `requested()`
// when either its own flag or any ancestor's is raised. The job layer uses
// one root token per JobManager (raised on shutdown or by a signal handler)
// with one child token per job (raised by an individual cancel request), so
// "cancel this job" and "cancel everything" share a single polling site.
//
// `request()` is a relaxed-to-release atomic store with no locks — safe to
// call from a POSIX signal handler, which is exactly how sops_run and sopsd
// translate SIGINT/SIGTERM into a clean drain.
#pragma once

#include <atomic>

#include "support/error.hpp"

namespace sops {

/// Thrown by a cancellation poll point once its token was raised. Derives
/// from Error so generic handlers still clean up, while job drivers can
/// distinguish "cancelled on request" from a real failure.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace support {

/// A raise-once cooperative cancellation flag, optionally chained to a
/// parent token. Not copyable or movable: poll sites hold plain pointers
/// and the token must outlive every worker that polls it.
class CancelToken {
 public:
  CancelToken() noexcept = default;
  explicit CancelToken(const CancelToken* parent) noexcept : parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Raises the flag. Async-signal-safe (one atomic store, no locks) and
  /// idempotent.
  void request() noexcept { requested_.store(true, std::memory_order_release); }

  /// True once this token — or any ancestor it chains to — was raised.
  [[nodiscard]] bool requested() const noexcept {
    if (requested_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->requested();
  }

  /// Poll point: throws CancelledError(`what`) once the token was raised.
  /// `token` may be null (the common "cancellation not wired" case), which
  /// makes call sites a single unconditional line.
  static void check(const CancelToken* token, const char* what) {
    if (token != nullptr && token->requested()) throw CancelledError(what);
  }

 private:
  std::atomic<bool> requested_{false};
  const CancelToken* parent_ = nullptr;
};

}  // namespace support
}  // namespace sops
