#include "support/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace sops::support {
namespace detail {

// Shared state of one dispatch: the task counter its runners drain, the
// completion latch the dispatching thread waits on, and the first error.
// Lives on the dispatcher's stack; Executor::run blocks until every runner
// is done with it.
struct Job {
  Job(TaskRef task_ref, std::size_t count) noexcept
      : task(task_ref), task_count(count) {}

  TaskRef task;
  std::size_t task_count;
  std::atomic<std::size_t> next_task{0};

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending_workers = 0;  // guarded by done_mutex

  std::mutex error_mutex;
  std::exception_ptr first_error;  // guarded by error_mutex

  // Runs tasks until the batch is exhausted. Every task is attempted even
  // after an error — tasks are independent, and abandoning the batch would
  // leave chunks of a partition silently unprocessed.
  void drain() noexcept {
    for (;;) {
      const std::size_t k = next_task.fetch_add(1, std::memory_order_relaxed);
      if (k >= task_count) return;
      try {
        task(k);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  // Worker-side completion signal, after drain().
  void finish_worker() noexcept {
    const std::lock_guard<std::mutex> lock(done_mutex);
    if (--pending_workers == 0) done_cv.notify_one();
  }
};

}  // namespace detail

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// ---------------------------------------------------------- SpawnExecutor

SpawnExecutor::SpawnExecutor(std::size_t width) noexcept
    : width_(width == 0 ? default_thread_count() : width) {}

void SpawnExecutor::run(std::size_t task_count, TaskRef task) {
  if (task_count == 0) return;
  const std::size_t helpers = std::min(width_ - 1, task_count - 1);
  if (helpers == 0) {
    for (std::size_t k = 0; k < task_count; ++k) task(k);
    return;
  }

  detail::Job job(task, task_count);
  std::vector<std::thread> threads;
  threads.reserve(helpers);
  try {
    for (std::size_t w = 0; w < helpers; ++w) {
      threads.emplace_back([&job] { job.drain(); });
    }
  } catch (...) {
    // Thread exhaustion mid-spawn: finish the batch with whoever exists,
    // join them, and surface the spawn failure (not std::terminate via a
    // joinable thread's destructor).
    job.drain();
    for (std::thread& thread : threads) thread.join();
    throw;
  }
  job.drain();
  for (std::thread& thread : threads) thread.join();
  if (job.first_error) std::rethrow_exception(job.first_error);
}

// ---------------------------------------------------------------- TaskPool

struct TaskPool::Slot {
  std::mutex mutex;
  std::condition_variable cv;
  detail::Job* job = nullptr;  // guarded by mutex
  bool stop = false;           // guarded by mutex
  std::thread thread;
};

std::size_t TaskPool::worker_count_for(std::size_t width) noexcept {
  if (width == 0) width = default_thread_count();
  return width - 1;
}

TaskPool::TaskPool(std::size_t width)
    : all_(this, 0, worker_count_for(width)) {
  const std::size_t workers = worker_count_for(width);
  slots_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      slots_.push_back(std::make_unique<Slot>());
      Slot& slot = *slots_.back();
      slot.thread = std::thread([&slot] {
        for (;;) {
          detail::Job* job = nullptr;
          {
            std::unique_lock<std::mutex> lock(slot.mutex);
            slot.cv.wait(lock,
                         [&] { return slot.stop || slot.job != nullptr; });
            if (slot.job == nullptr) return;  // stopped with nothing pending
            job = slot.job;
            slot.job = nullptr;
          }
          job->drain();
          job->finish_worker();
        }
      });
    }
  } catch (...) {
    shutdown();  // park and join whatever was already spawned
    throw;
  }
}

TaskPool::~TaskPool() { shutdown(); }

void TaskPool::shutdown() noexcept {
  for (const auto& slot : slots_) {
    {
      const std::lock_guard<std::mutex> lock(slot->mutex);
      slot->stop = true;
    }
    slot->cv.notify_one();
  }
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  slots_.clear();
}

PoolExecutor TaskPool::lend(std::size_t first_worker,
                            std::size_t workers) noexcept {
  if (first_worker >= slots_.size()) return PoolExecutor(this, 0, 0);
  workers = std::min(workers, slots_.size() - first_worker);
  return PoolExecutor(this, first_worker, workers);
}

// ---------------------------------------------------------------- PoolSlice

PoolExecutor PoolSlice::lend(std::size_t first_worker,
                             std::size_t workers) const noexcept {
  if (pool_ == nullptr || first_worker >= workers_) {
    return PoolExecutor(pool_, 0, 0);
  }
  workers = std::min(workers, workers_ - first_worker);
  return pool_->lend(first_ + first_worker, workers);
}

PoolSlice slice_of(TaskPool& pool, std::size_t first_worker,
                   std::size_t workers) noexcept {
  const std::size_t total = pool.worker_count();
  if (first_worker >= total) return PoolSlice(&pool, 0, 0);
  return PoolSlice(&pool, first_worker,
                   std::min(workers, total - first_worker));
}

PoolSlice slice_all(TaskPool& pool) noexcept {
  return PoolSlice(&pool, 0, pool.worker_count());
}

void PoolExecutor::run(std::size_t task_count, TaskRef task) {
  if (task_count == 0) return;
  // The caller is a runner too, so a batch of k tasks engages at most k-1
  // workers; a width-1 view (or single task) runs inline like a plain loop.
  const std::size_t engaged = std::min(workers_, task_count - 1);
  if (engaged == 0) {
    for (std::size_t k = 0; k < task_count; ++k) task(k);
    return;
  }

  detail::Job job(task, task_count);
  job.pending_workers = engaged;
  for (std::size_t w = 0; w < engaged; ++w) {
    TaskPool::Slot& slot = *pool_->slots_[first_ + w];
    {
      const std::lock_guard<std::mutex> lock(slot.mutex);
      slot.job = &job;
    }
    slot.cv.notify_one();
  }
  job.drain();
  {
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&] { return job.pending_workers == 0; });
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

}  // namespace sops::support
