#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sops::support {
namespace {

SimdPolicy initial_policy() noexcept {
  const char* env = std::getenv("SOPS_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return SimdPolicy::kScalar;
    if (std::strcmp(env, "simd") == 0) return SimdPolicy::kSimd;
  }
  return SimdPolicy::kAuto;
}

std::atomic<SimdPolicy>& policy_slot() noexcept {
  static std::atomic<SimdPolicy> policy{initial_policy()};
  return policy;
}

}  // namespace

SimdPolicy simd_policy() noexcept {
  return policy_slot().load(std::memory_order_relaxed);
}

void set_simd_policy(SimdPolicy policy) noexcept {
  policy_slot().store(policy, std::memory_order_relaxed);
}

bool simd_enabled() noexcept {
  return simd_policy() != SimdPolicy::kScalar;
}

bool cpu_dispatch_avx2() noexcept {
#if defined(SOPS_SIMD_DISPATCH_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
#else
  return false;
#endif
}

const char* simd_isa() noexcept {
  return cpu_dispatch_avx2() ? "avx2" : "generic";
}

}  // namespace sops::support
