#include "support/parallel_for.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

namespace sops::support {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body,
    std::size_t threads) {
  if (begin >= end) return;
  if (threads == 0) threads = default_thread_count();
  const std::size_t count = end - begin;
  threads = std::min(threads, count);

  if (threads <= 1) {
    chunk_body(begin, end);
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t base = count / threads;
  const std::size_t extra = count % threads;
  std::size_t chunk_begin = begin;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t chunk_size = base + (w < extra ? 1 : 0);
    const std::size_t chunk_end = chunk_begin + chunk_size;
    workers.emplace_back([&, chunk_begin, chunk_end] {
      try {
        chunk_body(chunk_begin, chunk_end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    chunk_begin = chunk_end;
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      threads);
}

}  // namespace sops::support
