#include "support/parallel_for.hpp"

namespace sops::support {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace sops::support
