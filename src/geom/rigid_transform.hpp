// Direct isometries of the plane (elements of ISO⁺(2)): rotation followed
// by translation. These are exactly the shape-invariant motions the paper
// factors out of particle configurations (together with same-type
// permutations, handled in sops_align).
#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::geom {

/// A direct isometry p ↦ R(angle)·p + translation.
struct RigidTransform2 {
  double angle = 0.0;  ///< counterclockwise rotation in radians
  Vec2 translation{};

  /// Applies the transform to a point.
  [[nodiscard]] Vec2 apply(Vec2 p) const noexcept {
    return rotated(p, angle) + translation;
  }

  /// Applies the transform to every point of a configuration.
  [[nodiscard]] std::vector<Vec2> apply(std::span<const Vec2> points) const;

  /// The inverse isometry.
  [[nodiscard]] RigidTransform2 inverse() const noexcept {
    return {-angle, rotated(-translation, -angle)};
  }

  /// Composition: (a ∘ b)(p) = a(b(p)).
  [[nodiscard]] friend RigidTransform2 compose(const RigidTransform2& a,
                                               const RigidTransform2& b) noexcept {
    return {a.angle + b.angle, rotated(b.translation, a.angle) + a.translation};
  }

  /// The identity isometry.
  [[nodiscard]] static constexpr RigidTransform2 identity() noexcept { return {}; }
};

/// Centroid (mean) of a non-empty point set.
[[nodiscard]] Vec2 centroid(std::span<const Vec2> points);

/// Translates the configuration so its centroid is at the origin.
[[nodiscard]] std::vector<Vec2> centered(std::span<const Vec2> points);

/// Closed-form 2-D Procrustes rotation: the angle θ minimizing
/// Σ_i ‖R(θ)·source_i − target_i‖² over rotations about the origin.
///
/// Both configurations must have equal size and should already be centered;
/// the optimum is θ = atan2(Σ cross(s_i, t_i), Σ dot(s_i, t_i)).
/// Degenerate inputs (all points at the origin) yield θ = 0.
[[nodiscard]] double optimal_rotation(std::span<const Vec2> source,
                                      std::span<const Vec2> target);

/// Full rigid fit: isometry g minimizing Σ_i ‖g(source_i) − target_i‖².
/// Works for un-centered inputs (solves rotation about the centroids, then
/// the residual translation).
[[nodiscard]] RigidTransform2 fit_rigid(std::span<const Vec2> source,
                                        std::span<const Vec2> target);

/// Mean squared Euclidean distance between paired points.
[[nodiscard]] double mean_squared_error(std::span<const Vec2> a,
                                        std::span<const Vec2> b);

}  // namespace sops::geom
