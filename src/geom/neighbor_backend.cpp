#include "geom/neighbor_backend.hpp"

#include <algorithm>
#include <cmath>

#include "geom/delaunay.hpp"
#include "geom/verlet_list.hpp"
#include "support/error.hpp"

namespace sops::geom {

// ------------------------------------------------------------ base class

std::span<const std::uint32_t> NeighborBackend::shard_bounds(
    std::size_t max_shards) {
  // Default partition: equal contiguous split of the identity ordering.
  // Per-particle drift sums are gathers, so any split is bitwise-safe; equal
  // ranges are a fine balance for backends without occupancy information.
  const auto n = static_cast<std::uint32_t>(size());
  const auto shards =
      static_cast<std::uint32_t>(std::min<std::size_t>(std::max<std::size_t>(
                                     max_shards, 1),
                                 std::max<std::uint32_t>(n, 1)));
  shard_bounds_.clear();
  for (std::uint32_t s = 0; s < shards; ++s) {
    shard_bounds_.push_back(static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(n) * s) / shards));
  }
  shard_bounds_.push_back(n);
  return shard_bounds_;
}

std::span<const std::uint32_t> NeighborBackend::shard_order() const noexcept {
  return {};
}

// ------------------------------------------------------------- all-pairs

void AllPairsBackend::rebuild(PositionLanes points, double radius) {
  support::expect(radius > 0.0, "AllPairsBackend: radius must be positive");
  points_ = points;
  radius_ = radius;
  scratch_.reserve(points.size());
}

std::span<const std::uint32_t> AllPairsBackend::neighbors(std::size_t i) {
  const double radius_sq = radius_ * radius_;
  scratch_.clear();
  for (std::size_t j = 0; j < points_.size(); ++j) {
    if (j == i) continue;
    if (dist_sq(points_[i], points_[j]) < radius_sq) {
      scratch_.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return scratch_;
}

// ------------------------------------------------------------- cell grid

void CellGridBackend::rebuild(PositionLanes points, double radius) {
  support::expect(std::isfinite(radius),
                  "CellGridBackend: cell grid needs a finite radius");
  grid_.rebuild(points, radius);
  radius_ = radius;
}

std::span<const std::uint32_t> CellGridBackend::neighbors(std::size_t i) {
  scratch_.clear();
  grid_.for_each_neighbor(i, radius_, [&](std::size_t j) {
    scratch_.push_back(static_cast<std::uint32_t>(j));
  });
  return scratch_;
}

// -------------------------------------------------------------- Delaunay

void DelaunayBackend::rebuild(PositionLanes points, double radius) {
  support::expect(radius > 0.0, "DelaunayBackend: radius must be positive");
  // The tessellation consumes interleaved points; materialize them once per
  // rebuild (the triangulation itself dwarfs this copy).
  interleave(points, points_aos_);
  const auto adjacency = delaunay_adjacency(points_aos_);
  const bool bounded = std::isfinite(radius);
  const double radius_sq = radius * radius;

  offsets_.assign(points.size() + 1, 0);
  indices_.clear();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const std::size_t j : adjacency[i]) {
      if (bounded && dist_sq(points[i], points[j]) >= radius_sq) continue;
      indices_.push_back(static_cast<std::uint32_t>(j));
    }
    offsets_[i + 1] = indices_.size();
  }
}

std::span<const std::uint32_t> DelaunayBackend::neighbors(std::size_t i) {
  return {indices_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

// --------------------------------------------------------------- factory

std::unique_ptr<NeighborBackend> make_neighbor_backend(NeighborBackendKind kind) {
  switch (kind) {
    case NeighborBackendKind::kAllPairs:
      return std::make_unique<AllPairsBackend>();
    case NeighborBackendKind::kCellGrid:
      return std::make_unique<CellGridBackend>();
    case NeighborBackendKind::kDelaunay:
      return std::make_unique<DelaunayBackend>();
    case NeighborBackendKind::kVerletSkin:
      return std::make_unique<VerletListBackend>();
  }
  support::expect(false, "make_neighbor_backend: unknown kind");
  return nullptr;
}

}  // namespace sops::geom
