#include "geom/rigid_transform.hpp"

#include <cmath>
#include <ostream>

#include "support/error.hpp"

namespace sops::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

std::vector<Vec2> RigidTransform2::apply(std::span<const Vec2> points) const {
  std::vector<Vec2> out;
  out.reserve(points.size());
  for (const Vec2 p : points) out.push_back(apply(p));
  return out;
}

Vec2 centroid(std::span<const Vec2> points) {
  support::expect(!points.empty(), "centroid: empty point set");
  Vec2 sum{};
  for (const Vec2 p : points) sum += p;
  return sum / static_cast<double>(points.size());
}

std::vector<Vec2> centered(std::span<const Vec2> points) {
  const Vec2 c = centroid(points);
  std::vector<Vec2> out;
  out.reserve(points.size());
  for (const Vec2 p : points) out.push_back(p - c);
  return out;
}

double optimal_rotation(std::span<const Vec2> source,
                        std::span<const Vec2> target) {
  support::expect(source.size() == target.size(),
                  "optimal_rotation: size mismatch");
  double cross_sum = 0.0;
  double dot_sum = 0.0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    cross_sum += cross(source[i], target[i]);
    dot_sum += dot(source[i], target[i]);
  }
  if (cross_sum == 0.0 && dot_sum == 0.0) return 0.0;
  return std::atan2(cross_sum, dot_sum);
}

RigidTransform2 fit_rigid(std::span<const Vec2> source,
                          std::span<const Vec2> target) {
  support::expect(source.size() == target.size() && !source.empty(),
                  "fit_rigid: size mismatch or empty input");
  const Vec2 source_c = centroid(source);
  const Vec2 target_c = centroid(target);
  std::vector<Vec2> s_centered;
  std::vector<Vec2> t_centered;
  s_centered.reserve(source.size());
  t_centered.reserve(target.size());
  for (const Vec2 p : source) s_centered.push_back(p - source_c);
  for (const Vec2 p : target) t_centered.push_back(p - target_c);
  const double angle = optimal_rotation(s_centered, t_centered);
  // g(p) = R(p − source_c) + target_c  ⇒  translation = target_c − R·source_c.
  return {angle, target_c - rotated(source_c, angle)};
}

double mean_squared_error(std::span<const Vec2> a, std::span<const Vec2> b) {
  support::expect(a.size() == b.size() && !a.empty(),
                  "mean_squared_error: size mismatch or empty input");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += dist_sq(a[i], b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace sops::geom
