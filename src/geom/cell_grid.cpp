#include "geom/cell_grid.hpp"

#include <cmath>

#include "support/error.hpp"

namespace sops::geom {

CellGrid::CellGrid(std::span<const Vec2> points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  support::expect(cell_size > 0.0 && std::isfinite(cell_size),
                  "CellGrid: cell size must be positive and finite");
  cells_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells_[key_of(points[i])].push_back(i);
  }
}

CellGrid::CellKey CellGrid::key_of(Vec2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::vector<std::size_t> CellGrid::neighbors_of(std::size_t i,
                                                double radius) const {
  support::expect(i < points_.size(), "CellGrid::neighbors_of: index out of range");
  support::expect(radius <= cell_size_ * (1.0 + 1e-12),
                  "CellGrid::neighbors_of: radius exceeds cell size");
  std::vector<std::size_t> out;
  for_each_neighbor(i, radius, [&](std::size_t j) { out.push_back(j); });
  return out;
}

}  // namespace sops::geom
