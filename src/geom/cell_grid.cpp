#include "geom/cell_grid.hpp"

#include <bit>
#include <cmath>

#include "support/error.hpp"

namespace sops::geom {

CellGrid::CellGrid(std::span<const Vec2> points, double cell_size) {
  rebuild(points, cell_size);
}

void CellGrid::rebuild(std::span<const Vec2> points) {
  support::expect(cell_size_ > 0.0,
                  "CellGrid::rebuild: no cell size set; build the grid first");
  rebuild(points, cell_size_);
}

void CellGrid::rebuild(std::span<const Vec2> points, double cell_size) {
  support::expect(cell_size > 0.0 && std::isfinite(cell_size),
                  "CellGrid: cell size must be positive and finite");
  points_ = points;
  cell_size_ = cell_size;
  const std::size_t n = points.size();

  // Table sized for load factor ≤ 1/2 at the worst case of one point per
  // cell; grows monotonically, so repeated rebuilds of same-sized point
  // sets reuse it as-is.
  const std::size_t wanted_slots = std::bit_ceil(std::max<std::size_t>(2 * n, 16));
  if (slots_.size() < wanted_slots) {
    slots_.assign(wanted_slots, Slot{0, 0, kEmpty});
    slot_mask_ = wanted_slots - 1;
  } else {
    for (Slot& slot : slots_) slot.cell = kEmpty;
  }

  // Pass 1: assign dense cell ids and count occupancy per cell. `starts_`
  // doubles as the count array before the prefix sum.
  cell_count_ = 0;
  cell_of_.resize(n);
  starts_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const CellKey key = key_of(points[i]);
    std::size_t idx = hash_key(key.x, key.y) & slot_mask_;
    std::int32_t cell;
    while (true) {
      Slot& slot = slots_[idx];
      if (slot.cell == kEmpty) {
        cell = static_cast<std::int32_t>(cell_count_++);
        slot = Slot{key.x, key.y, cell};
        break;
      }
      if (slot.x == key.x && slot.y == key.y) {
        cell = slot.cell;
        break;
      }
      idx = (idx + 1) & slot_mask_;
    }
    cell_of_[i] = cell;
    ++starts_[static_cast<std::size_t>(cell) + 1];
  }

  // Pass 2: prefix-sum the counts and scatter points in ascending index
  // order, which keeps every bucket sorted by point index (the enumeration
  // order contract).
  starts_.resize(cell_count_ + 1);
  for (std::size_t c = 1; c <= cell_count_; ++c) starts_[c] += starts_[c - 1];
  entries_.resize(n);
  cursors_.assign(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    entries_[cursors_[static_cast<std::size_t>(cell_of_[i])]++] =
        static_cast<std::uint32_t>(i);
  }
}

CellGrid::CellKey CellGrid::key_of(Vec2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::span<const std::uint32_t> CellGrid::shard_bounds(std::size_t max_shards) {
  const auto n = static_cast<std::uint32_t>(entries_.size());
  shard_bounds_.clear();
  shard_bounds_.push_back(0);
  if (max_shards <= 1 || cell_count_ <= 1) {
    shard_bounds_.push_back(n);
    return shard_bounds_;
  }

  // Per-cell pair-count estimate: |cell| × occupancy of its 3×3 block. The
  // slot table is the only place that still knows each dense cell's integer
  // coordinates, so the estimate is gathered by walking the occupied slots.
  shard_cost_.assign(cell_count_, 0.0);
  for (const Slot& slot : slots_) {
    if (slot.cell == kEmpty) continue;
    double block = 0.0;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int32_t cell = find_cell(slot.x + dx, slot.y + dy);
        if (cell == kEmpty) continue;
        const auto c = static_cast<std::size_t>(cell);
        block += static_cast<double>(starts_[c + 1] - starts_[c]);
      }
    }
    const auto c = static_cast<std::size_t>(slot.cell);
    shard_cost_[c] = static_cast<double>(starts_[c + 1] - starts_[c]) * block;
  }
  double total = 0.0;
  for (const double cost : shard_cost_) total += cost;

  // Greedy cut: walk cells in dense-id order and close a shard whenever the
  // running cost passes the next of max_shards equal targets. Every cut is
  // a CSR bucket boundary, so shards stay cell-aligned.
  double cut_cost = 0.0;
  std::size_t shard = 1;
  for (std::size_t c = 0; c < cell_count_; ++c) {
    cut_cost += shard_cost_[c];
    if (shard < max_shards && starts_[c + 1] < n &&
        cut_cost * static_cast<double>(max_shards) >=
            total * static_cast<double>(shard)) {
      shard_bounds_.push_back(starts_[c + 1]);
      ++shard;
    }
  }
  shard_bounds_.push_back(n);
  return shard_bounds_;
}

std::vector<std::size_t> CellGrid::neighbors_of(std::size_t i,
                                                double radius) const {
  support::expect(i < points_.size(), "CellGrid::neighbors_of: index out of range");
  support::expect(radius <= cell_size_ * (1.0 + 1e-12),
                  "CellGrid::neighbors_of: radius exceeds cell size");
  std::vector<std::size_t> out;
  for_each_neighbor(i, radius, [&](std::size_t j) { out.push_back(j); });
  return out;
}

}  // namespace sops::geom
