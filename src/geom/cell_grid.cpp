#include "geom/cell_grid.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/error.hpp"

namespace sops::geom {

CellGrid::CellGrid(PositionLanes points, double cell_size) {
  rebuild(points, cell_size);
}

CellGrid::CellGrid(std::span<const Vec2> points, double cell_size) {
  rebuild(points, cell_size);
}

void CellGrid::rebuild(PositionLanes points) {
  support::expect(cell_size_ > 0.0,
                  "CellGrid::rebuild: no cell size set; build the grid first");
  rebuild(points, cell_size_);
}

void CellGrid::rebuild(std::span<const Vec2> points) {
  deinterleave(points, aos_x_, aos_y_);
  rebuild(PositionLanes{aos_x_, aos_y_});
}

void CellGrid::rebuild(std::span<const Vec2> points, double cell_size) {
  deinterleave(points, aos_x_, aos_y_);
  rebuild(PositionLanes{aos_x_, aos_y_}, cell_size);
}

void CellGrid::rebuild(PositionLanes points, double cell_size) {
  support::expect(cell_size > 0.0 && std::isfinite(cell_size),
                  "CellGrid: cell size must be positive and finite");
  xs_ = points.x;
  ys_ = points.y;
  cell_size_ = cell_size;
  const std::size_t n = points.size();

  // Table sized for load factor ≤ 1/2 at the worst case of one point per
  // cell; grows monotonically, so repeated rebuilds of same-sized point
  // sets reuse it as-is.
  const std::size_t wanted_slots = std::bit_ceil(std::max<std::size_t>(2 * n, 16));
  if (slots_.size() < wanted_slots) {
    slots_.assign(wanted_slots, Slot{0, 0, kEmpty});
    slot_mask_ = wanted_slots - 1;
  } else {
    // Clear only the slots the previous build occupied — the table is
    // sized for load factor ≤ 1/2, so this touches far less memory than a
    // full sweep.
    for (const std::uint32_t idx : used_slots_) slots_[idx].cell = kEmpty;
  }
  used_slots_.clear();

  // Pass 1: assign provisional dense cell ids in discovery order, recording
  // each new cell's integer coordinates.
  cell_count_ = 0;
  cell_of_.resize(n);
  cell_keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CellKey key = key_of(Vec2{xs_[i], ys_[i]});
    std::size_t idx = hash_key(key.x, key.y) & slot_mask_;
    std::int32_t cell;
    while (true) {
      Slot& slot = slots_[idx];
      if (slot.cell == kEmpty) {
        cell = static_cast<std::int32_t>(cell_count_);
        cell_keys_[cell_count_++] = key;
        slot = Slot{key.x, key.y, cell};
        used_slots_.push_back(static_cast<std::uint32_t>(idx));
        break;
      }
      if (slot.x == key.x && slot.y == key.y) {
        cell = slot.cell;
        break;
      }
      idx = (idx + 1) & slot_mask_;
    }
    cell_of_[i] = cell;
  }

  // Pass 1.5: renumber cells column-major spatially — ascending (x, y) —
  // so a 3×3 block's dx columns become id-consecutive runs (block_spans)
  // and the cell walk sweeps the plane coherently. Pure id permutation:
  // per-point enumeration order (and therefore every drift bit) is
  // unchanged.
  //
  // Fast path: when the occupied bounding box is dense enough, rank cells
  // with an O(box) prefix sum over column-major box indices — the rank
  // array doubles as the arithmetic cell lookup behind block_spans().
  // Sparse boxes (far-flung clusters would blow up the box area) fall back
  // to a comparison sort and keep hash-probe lookups.
  box_valid_ = false;
  cell_remap_.resize(cell_count_);
  key_scratch_.resize(cell_count_);
  if (cell_count_ > 0) {
    std::int64_t min_x = cell_keys_[0].x;
    std::int64_t max_x = cell_keys_[0].x;
    std::int64_t min_y = cell_keys_[0].y;
    std::int64_t max_y = cell_keys_[0].y;
    for (std::size_t c = 1; c < cell_count_; ++c) {
      min_x = std::min(min_x, cell_keys_[c].x);
      max_x = std::max(max_x, cell_keys_[c].x);
      min_y = std::min(min_y, cell_keys_[c].y);
      max_y = std::max(max_y, cell_keys_[c].y);
    }
    // Area guard in double: immune to the (pathological) coordinate spans
    // that would overflow the integer products below.
    const double area = (static_cast<double>(max_x - min_x) + 1.0) *
                        (static_cast<double>(max_y - min_y) + 1.0);
    if (area <= 8.0 * static_cast<double>(cell_count_) + 4096.0) {
      box_min_x_ = min_x;
      box_min_y_ = min_y;
      box_w_ = static_cast<std::size_t>(max_x - min_x) + 1;
      box_h_ = static_cast<std::size_t>(max_y - min_y) + 1;
      const std::size_t box = box_w_ * box_h_;
      box_rank_.assign(box + 1, 0);
      for (std::size_t c = 0; c < cell_count_; ++c) {
        const std::size_t idx =
            static_cast<std::size_t>(cell_keys_[c].x - min_x) * box_h_ +
            static_cast<std::size_t>(cell_keys_[c].y - min_y);
        box_rank_[idx + 1] = 1;
      }
      for (std::size_t i = 1; i <= box; ++i) box_rank_[i] += box_rank_[i - 1];
      for (std::size_t c = 0; c < cell_count_; ++c) {
        const std::size_t idx =
            static_cast<std::size_t>(cell_keys_[c].x - min_x) * box_h_ +
            static_cast<std::size_t>(cell_keys_[c].y - min_y);
        cell_remap_[c] = box_rank_[idx];
      }
      box_valid_ = true;
    }
  }
  if (!box_valid_) {
    cell_perm_.resize(cell_count_);
    for (std::size_t c = 0; c < cell_count_; ++c) {
      cell_perm_[c] = static_cast<std::uint32_t>(c);
    }
    std::sort(cell_perm_.begin(), cell_perm_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const CellKey& ka = cell_keys_[a];
                const CellKey& kb = cell_keys_[b];
                return ka.x != kb.x ? ka.x < kb.x : ka.y < kb.y;
              });
    for (std::size_t r = 0; r < cell_count_; ++r) {
      cell_remap_[cell_perm_[r]] = static_cast<std::uint32_t>(r);
    }
  }
  for (std::size_t c = 0; c < cell_count_; ++c) {
    key_scratch_[cell_remap_[c]] = cell_keys_[c];
  }
  std::copy(key_scratch_.begin(), key_scratch_.begin() + cell_count_,
            cell_keys_.begin());
  for (Slot& slot : slots_) {
    if (slot.cell != kEmpty) {
      slot.cell = static_cast<std::int32_t>(
          cell_remap_[static_cast<std::size_t>(slot.cell)]);
    }
  }

  // Pass 2: count occupancy per (spatial) cell id, prefix-sum, and scatter
  // points in ascending index order, which keeps every bucket sorted by
  // point index (the enumeration order contract).
  starts_.assign(cell_count_ + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cell = cell_remap_[static_cast<std::size_t>(cell_of_[i])];
    cell_of_[i] = static_cast<std::int32_t>(cell);
    ++starts_[cell + 1];
  }
  for (std::size_t c = 1; c <= cell_count_; ++c) starts_[c] += starts_[c - 1];
  entries_.resize(n);
  bucket_x_.resize(n);
  bucket_y_.resize(n);
  cursors_.assign(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    // Scattering the coordinates alongside the index costs sequential
    // reads and (overlappable) stores here, and saves the chunked kernel a
    // separate scattered-read pass to build its bucket-ordered lanes.
    const std::uint32_t pos = cursors_[static_cast<std::size_t>(cell_of_[i])]++;
    entries_[pos] = static_cast<std::uint32_t>(i);
    bucket_x_[pos] = xs_[i];
    bucket_y_[pos] = ys_[i];
  }
}

CellGrid::CellKey CellGrid::key_of(Vec2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

void CellGrid::append_block_candidates(std::size_t cell,
                                       std::vector<std::uint32_t>& out) const {
  std::array<std::pair<std::uint32_t, std::uint32_t>, 3> spans;
  const std::size_t nspans = block_spans(cell, spans);
  for (std::size_t s = 0; s < nspans; ++s) {
    out.insert(out.end(), entries_.begin() + spans[s].first,
               entries_.begin() + spans[s].second);
  }
}

void CellGrid::append_block_candidates_at(
    Vec2 q, std::vector<std::uint32_t>& out) const {
  if (cell_count_ == 0) return;
  const CellKey center = key_of(q);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    // Column-major dense ids keep each dx column one CSR range even when
    // the center cell is absent from the table: probe the column's three
    // cells and splice [min, max] as in block_spans' fallback path.
    std::int32_t lo = kEmpty;
    std::int32_t hi = kEmpty;
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const std::int32_t c = find_cell(center.x + dx, center.y + dy);
      if (c == kEmpty) continue;
      if (lo == kEmpty || c < lo) lo = c;
      if (c > hi) hi = c;
    }
    if (lo == kEmpty) continue;
    out.insert(out.end(), entries_.begin() + starts_[lo],
               entries_.begin() + starts_[hi + 1]);
  }
}

std::size_t CellGrid::block_spans(
    std::size_t cell,
    std::array<std::pair<std::uint32_t, std::uint32_t>, 3>& spans) const {
  const CellKey center = cell_keys_[cell];
  std::size_t nspans = 0;
  if (box_valid_) {
    // Rank-array path: the occupied cells inside box range [p, q) have
    // exactly the ids [box_rank_[p], box_rank_[q]), so each dx column is
    // two lookups — no hash probes.
    const std::int64_t bx = center.x - box_min_x_;
    const std::int64_t by = center.y - box_min_y_;
    const auto h = static_cast<std::int64_t>(box_h_);
    const std::int64_t y0 = std::max<std::int64_t>(by - 1, 0);
    const std::int64_t y1 = std::min<std::int64_t>(by + 1, h - 1);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      const std::int64_t cx = bx + dx;
      if (cx < 0 || cx >= static_cast<std::int64_t>(box_w_)) continue;
      const auto p0 = static_cast<std::size_t>(cx * h + y0);
      const auto p1 = static_cast<std::size_t>(cx * h + y1 + 1);
      const std::uint32_t lo = box_rank_[p0];
      const std::uint32_t hi = box_rank_[p1];
      if (lo == hi) continue;
      spans[nspans++] = {starts_[lo], starts_[hi]};
    }
    return nspans;
  }
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    // The occupied cells of this dx column carry consecutive spatial ids
    // (ascending dy), so the column is one CSR range [min, max] — any id
    // between two column cells has the same x and an in-between y, i.e. it
    // is itself a column cell.
    std::int32_t lo = kEmpty;
    std::int32_t hi = kEmpty;
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const std::int32_t c = find_cell(center.x + dx, center.y + dy);
      if (c == kEmpty) continue;
      if (lo == kEmpty || c < lo) lo = c;
      if (c > hi) hi = c;
    }
    if (lo == kEmpty) continue;
    spans[nspans++] = {starts_[lo], starts_[hi + 1]};
  }
  return nspans;
}

std::span<const std::uint32_t> CellGrid::shard_bounds(std::size_t max_shards) {
  const auto n = static_cast<std::uint32_t>(entries_.size());
  shard_bounds_.clear();
  shard_bounds_.push_back(0);
  if (max_shards <= 1 || cell_count_ <= 1) {
    shard_bounds_.push_back(n);
    return shard_bounds_;
  }

  // Per-cell pair-count estimate: |cell| × occupancy of its 3×3 block,
  // read off the block's contiguous entry spans.
  shard_cost_.assign(cell_count_, 0.0);
  std::array<std::pair<std::uint32_t, std::uint32_t>, 3> spans;
  for (std::size_t c = 0; c < cell_count_; ++c) {
    double block = 0.0;
    const std::size_t nspans = block_spans(c, spans);
    for (std::size_t s = 0; s < nspans; ++s) {
      block += static_cast<double>(spans[s].second - spans[s].first);
    }
    shard_cost_[c] = static_cast<double>(starts_[c + 1] - starts_[c]) * block;
  }
  double total = 0.0;
  for (const double cost : shard_cost_) total += cost;

  // Greedy cut: walk cells in dense-id order and close a shard whenever the
  // running cost passes the next of max_shards equal targets. Every cut is
  // a CSR bucket boundary, so shards stay cell-aligned.
  double cut_cost = 0.0;
  std::size_t shard = 1;
  for (std::size_t c = 0; c < cell_count_; ++c) {
    cut_cost += shard_cost_[c];
    if (shard < max_shards && starts_[c + 1] < n &&
        cut_cost * static_cast<double>(max_shards) >=
            total * static_cast<double>(shard)) {
      shard_bounds_.push_back(starts_[c + 1]);
      ++shard;
    }
  }
  shard_bounds_.push_back(n);
  return shard_bounds_;
}

std::vector<std::size_t> CellGrid::neighbors_of(std::size_t i,
                                                double radius) const {
  support::expect(i < size(), "CellGrid::neighbors_of: index out of range");
  support::expect(radius <= cell_size_ * (1.0 + 1e-12),
                  "CellGrid::neighbors_of: radius exceeds cell size");
  std::vector<std::size_t> out;
  for_each_neighbor(i, radius, [&](std::size_t j) { out.push_back(j); });
  return out;
}

}  // namespace sops::geom
