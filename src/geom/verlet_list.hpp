// Verlet/skin neighbor lists: cached fixed-radius pair lists with
// displacement-triggered rebuilds.
//
// The cell-grid backend re-indexes the point set and walks 3×3 cell blocks
// on every step, even when the collective barely moves (the paper's regime
// once alignment sets in). A Verlet list instead caches, per particle, every
// candidate within `radius + skin` at build time; while no particle has
// moved more than skin/2 since that build, the cached rows still contain
// every true pair within `radius` — quiet steps iterate flat CSR rows with
// one distance check per candidate and touch no grid at all. A rebuild is
// triggered only when some particle's displacement since the reference
// build exceeds skin/2 (or the point count / query radius changed).
//
// Quiet-step evaluation: rows are short (a dozen candidates at production
// densities), so the dominant cost of a per-row dispatch is not the row
// math but the per-row overhead around it. The accumulate path therefore
// hands each shard's whole slice of the frozen build order to one chunked
// kernel call (sim::IndexedChunk over csr_offsets/csr_indices below), which
// inlines the indexed row body per particle — identical arithmetic to the
// per-row indexed kernel, bitwise, with the call overhead paid once per
// shard. Candidates gather their *current* coordinates from the n-sized,
// cache-resident global lanes; the kernel's live mask zeroes out-of-cutoff
// and coincident candidates in place, which on short over-approximated rows
// beats compressing survivors first. The filter/packed kernel pair
// (sim::FilterRow → sim::PackedRow, staged through ensure_filter_shards /
// filter_scratch) serves the partial-overlay rows — re-enumerated runaway
// rows and additive extra rows, patched serially after the chunked pass —
// and the packed-vs-indexed parity coverage.
//
// The build is a single pass + stitch: per shard, each grid cell's 3×3
// candidate block is gathered once into contiguous lanes (indices + both
// coordinates), then every point of the cell filters that shared block with
// a plain-loop distance check the compiler auto-vectorizes, appending
// surviving candidates to per-shard row buffers. A serial prefix sum fixes
// the CSR offsets and a second sharded pass stitches the buffered rows into
// place.
//
// Builds are shard-parallel: the internal CellGrid's cell-major partition
// (`CellGrid::shard_bounds`) splits the candidate enumeration into disjoint
// particle ranges, so an `Executor` of any width produces the identical
// list — rows are written per particle, and each row's enumeration order is
// the grid walk's, independent of the partition.
//
// Adaptive skin (opt-in): instead of a fixed shell, the backend can track
// the observed displacement rate — skin/2 divided by the quiet interval
// that preceded each displacement-triggered rebuild — and resize the shell
// toward a rebuild-interval setpoint, clamped to configured bounds and
// rate-limited to at most halving/doubling per rebuild. Fast regimes get a
// thicker shell (fewer rebuilds), settled regimes a thinner one (shorter
// rows per quiet step).
//
// Partial rebuilds (opt-in): when only a few "runaway" particles have
// tripped the skin/2 gate, the full O(n) re-enumeration is deferred.
// Instead, each runaway gets a fresh candidate row re-enumerated every step
// from the *full-build* grid (still indexed at the reference positions): a
// quiet particle now within list range of the runaway's current position
// was, by the skin/2 bound, within one 3×3 block of it in the reference
// frame, so one query-scoped block walk per runaway suffices — no grid
// rebuild. The reverse direction (a quiet row missing the runaway that
// drifted into range) is patched by per-particle "extra" rows: the runaway
// is appended to every quiet particle it now ranges over whose cached row
// does not already contain it. Runaway–runaway pairs are checked directly
// (the set is capped). Drift for a row with extras is the filtered
// reduction of the cached row plus that of the extra row — a deterministic,
// ISA-invariant sequence. The full rebuild fires once the runaway set
// exceeds its cap, which is what stretches the list lifetime: one fast
// particle stops costing a full O(n) enumeration.
//
// Reproducibility contract (see README "Neighbor backends"): within one
// list lifetime the enumeration order of every row is frozen at build time,
// so consecutive quiet steps are bitwise-stable and the sharded drift path
// equals the serial one bitwise. *When* rebuilds happen depends on the
// trajectory, though, so cross-mode golden pins do not transfer —
// NeighborMode::kAuto therefore never selects this backend; it is opt-in.
// Adaptive skin and partial rebuilds additionally shift rebuild timing (and
// the skin changes the build grid's cell size, i.e. enumeration order), so
// they are themselves opt-in *within* the opt-in: defaults-off keeps every
// existing Verlet pin byte-exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/cell_grid.hpp"
#include "geom/neighbor_backend.hpp"
#include "geom/position_lanes.hpp"
#include "geom/vec2.hpp"

namespace sops::geom {

/// Cached-pair-list backend; opt-in via NeighborMode::kVerletSkin.
class VerletListBackend final : public NeighborBackend {
 public:
  /// `skin` is the extra shell (in position units) beyond the query radius
  /// that candidates are cached at; a rebuild triggers once any particle
  /// drifted more than skin/2 from its reference position. Larger skins buy
  /// longer list lifetimes at the price of more candidates per quiet step.
  explicit VerletListBackend(double skin = kDefaultVerletSkin);

  /// Changes the skin; invalidates the cached list when the value differs.
  /// With adaptation enabled this is the *base* skin the controller starts
  /// from — it re-anchors the controller as well.
  void set_skin(double skin);
  [[nodiscard]] double skin() const noexcept { return skin_; }

  /// Adaptive-skin controller parameters. `target_interval` is the quiet
  /// interval (steps between displacement-triggered full rebuilds) the
  /// controller steers toward; the shell that achieves it under the
  /// observed displacement rate ν is 2·ν·target_interval, clamped to
  /// [skin_min, skin_max] and rate-limited per rebuild.
  struct AdaptiveSkin {
    bool enabled = false;
    double skin_min = 0.25;
    double skin_max = 4.0;
    /// Swept on the bench's settled collectives (double-Gaussian law, both
    /// sizes): throughput is flat across 16–32 and best near 24; shorter
    /// setpoints thin the shell until full rebuilds dominate, longer ones
    /// fatten rows faster than they save rebuilds.
    double target_interval = 24.0;
  };
  /// Replaces the controller parameters; invalidates the cached list and
  /// resets the controller state when they differ.
  void set_adaptive_skin(const AdaptiveSkin& params);
  [[nodiscard]] const AdaptiveSkin& adaptive_skin() const noexcept {
    return adapt_;
  }

  /// Enables/disables partial rebuilds; invalidates the cached list when
  /// the value changes.
  void set_partial_rebuild(bool enabled) noexcept;
  [[nodiscard]] bool partial_rebuild_enabled() const noexcept {
    return partial_enabled_;
  }

  using NeighborBackend::rebuild;
  /// Displacement-gated: a full rebuild (grid + candidate enumeration) only
  /// when the safety condition no longer holds; otherwise records the step
  /// and keeps the cached list (re-enumerating runaway rows when partial
  /// rebuilds are enabled). Serial build.
  void rebuild(PositionLanes points, double radius) override;
  /// Same, with the candidate enumeration sharded on `executor` (the
  /// engine's lent step executor). List contents are identical for any
  /// width.
  void rebuild(PositionLanes points, double radius,
               support::Executor& executor) override;

  /// Filters the cached candidate row (and, on partial steps, the extra
  /// row) by the positions of the last rebuild() call, so the result
  /// satisfies the NeighborBackend contract exactly (all j with
  /// ‖p_j − p_i‖ < radius, cached row in frozen build order, extras after).
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;

  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kVerletSkin;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Contiguous cut of particle-id order, balanced by cached row lengths.
  /// Any cut is bitwise-safe (rows are per-particle gathers), so unlike the
  /// cell grid the partition needs no cell alignment — and id order lets
  /// the chunked drift kernel stream the CSR arrays sequentially.
  [[nodiscard]] std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards) override;

  /// Empty = identity: shards walk particle ids directly. The cell-major
  /// build order stays internal (enumeration backbone + partial queries).
  [[nodiscard]] std::span<const std::uint32_t> shard_order()
      const noexcept override {
    return {};
  }

  /// Cached candidates of particle i: every j ≠ i within radius + skin of
  /// the reference build (true neighbors are a subset while the list is
  /// valid; on partial steps a runaway's row is its fresh re-enumeration).
  /// Read-only and shared-state-free — the sharded drift kernel iterates
  /// rows from several threads between rebuilds. Extras (extra_candidates)
  /// are
  /// *not* included.
  [[nodiscard]] std::span<const std::uint32_t> candidate_row(
      std::size_t i) const noexcept {
    if (!partial_members_.empty() && partial_slot_[i] != kNoSlot) {
      const std::size_t s = partial_slot_[i];
      return {partial_indices_.data() + partial_offsets_[s],
              partial_offsets_[s + 1] - partial_offsets_[s]};
    }
    return {indices_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  /// The additive extra row of particle i (runaways patched into quiet
  /// rows on partial steps); empty when there is none. A consumer's row
  /// total is the cached-row reduction plus the extra-row reduction.
  [[nodiscard]] std::span<const std::uint32_t> extra_candidates(
      std::size_t i) const noexcept {
    if (extra_members_.empty() || extra_slot_[i] == kNoSlot) return {};
    const std::size_t s = extra_slot_[i];
    return {extra_indices_.data() + extra_offsets_[s],
            extra_offsets_[s + 1] - extra_offsets_[s]};
  }

  /// The raw CSR arrays of the cached list: the row of particle i is
  /// csr_indices()[csr_offsets()[i] .. csr_offsets()[i+1]). This is the
  /// full-build list only — partial-row overlays are NOT applied, so a
  /// consumer walking these arrays directly (the chunked drift kernel)
  /// must afterwards re-evaluate every partial_members() row via
  /// candidate_row() and add every extra_members() row via
  /// extra_candidates().
  [[nodiscard]] std::span<const std::size_t> csr_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> csr_indices() const noexcept {
    return indices_;
  }

  /// Particles whose cached row is currently replaced by a fresh partial
  /// re-enumeration (ascending; empty outside partial steps).
  [[nodiscard]] std::span<const std::uint32_t> partial_members()
      const noexcept {
    return partial_members_;
  }

  /// Particles carrying a non-empty additive extra row (ascending; empty
  /// outside partial steps).
  [[nodiscard]] std::span<const std::uint32_t> extra_members() const noexcept {
    return extra_members_;
  }

  /// Grows the per-shard filter pool to at least `shards` buffers — the
  /// survivor lanes (x/y/tag) the accumulate path compresses each row into
  /// before the dense kernel. Call serially (between parallel phases); the
  /// buffers themselves are then handed out one per shard.
  void ensure_filter_shards(std::size_t shards) {
    if (filter_.size() < shards) filter_.resize(shards);
  }

  /// Filter buffer of shard k — touched only by the worker running shard k.
  [[nodiscard]] GatherScratch& filter_scratch(std::size_t k) noexcept {
    return filter_[k];
  }

  /// Longest cached candidate row of the current list (partial rows
  /// included) — what a filter buffer must hold, plus the compress slack.
  [[nodiscard]] std::size_t max_row_count() const noexcept {
    return max_row_count_;
  }

  /// Current-step coordinate lanes (what candidate rows index into).
  [[nodiscard]] PositionLanes points() const noexcept { return points_; }

  /// Rebuild accounting across the backend's lifetime: `steps` counts
  /// rebuild() calls, `builds` the ones that fully rebuilt. Partial
  /// accounting rides along: `partial_builds` counts partial passes (steps
  /// that re-enumerated runaway rows instead of rebuilding) and
  /// `partial_rows` the runaway rows re-enumerated across them. The skip
  /// rate is what the opt-in buys; benches and tests assert on it.
  struct Stats {
    std::size_t builds = 0;
    std::size_t steps = 0;
    std::size_t partial_builds = 0;
    std::size_t partial_rows = 0;
    [[nodiscard]] double skip_rate() const noexcept {
      return steps > 0
                 ? 1.0 - static_cast<double>(builds) / static_cast<double>(steps)
                 : 0.0;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Forces the next rebuild() to rebuild regardless of displacement and
  /// re-anchors the adaptive controller (benches measure full-rebuild cost
  /// this way; the workspace isolates runs with it).
  void invalidate() noexcept {
    valid_ = false;
    rate_ema_ = 0.0;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Full rebuild once more than this many particles are past skin/2 (also
  /// bounded by n/4 so tiny sets never linger on partial passes).
  static constexpr std::size_t kMaxRunaways = 32;

  void build(PositionLanes points, double radius, support::Executor& executor);
  void partial_pass(PositionLanes points);
  void clear_partial_rows();
  void adapt_skin_on_trip();
  [[nodiscard]] bool row_contains(std::size_t i,
                                  std::uint32_t j) const noexcept;

  double skin_;
  double radius_ = 0.0;
  bool valid_ = false;
  AdaptiveSkin adapt_{};
  bool partial_enabled_ = false;
  PositionLanes points_;           // coordinate lanes of the current step
  std::vector<double> ref_x_;      // positions of the last full build
  std::vector<double> ref_y_;
  CellGrid grid_;                  // full-build grid; partial passes query it
  std::vector<std::size_t> offsets_;     // per-particle CSR rows
  std::vector<std::uint32_t> indices_;   // candidates, row-contiguous
  std::vector<std::uint32_t> order_;     // frozen cell-major build order
  std::vector<std::uint32_t> counts_;    // per-particle counts (build pass 1)
  std::vector<std::uint32_t> build_bounds_;  // build partition (frozen copy)
  std::vector<GatherScratch> build_scratch_;  // per-shard gather + row buffers
  std::vector<GatherScratch> filter_;    // per-shard survivor lanes
  std::vector<std::uint32_t> scratch_;       // neighbors() filter output
  std::size_t max_row_count_ = 0;      // longest row (partial rows included)
  std::size_t shard_cache_width_ = 0;  // shard_bounds_ is valid for this width

  // Adaptive-skin controller state.
  std::size_t steps_since_build_ = 0;  // quiet/partial steps since full build
  double rate_ema_ = 0.0;              // smoothed displacement rate

  // Partial-rebuild state: runaway rows replace their cached row via
  // partial_slot_, extras add to quiet rows via extra_slot_. Slot arrays
  // are n-sized and reset through the members lists (O(active) per pass).
  std::vector<std::uint32_t> runaways_;        // past skin/2, ascending
  std::vector<std::uint8_t> runaway_flag_;     // per-particle membership
  std::vector<std::uint32_t> partial_slot_;
  std::vector<std::uint32_t> partial_members_;
  std::vector<std::size_t> partial_offsets_;
  std::vector<std::uint32_t> partial_indices_;
  std::vector<std::uint32_t> extra_slot_;
  std::vector<std::uint32_t> extra_members_;
  std::vector<std::size_t> extra_offsets_;
  std::vector<std::uint32_t> extra_indices_;
  std::vector<std::uint32_t> pair_k_;  // pending (quiet, runaway) patches
  std::vector<std::uint32_t> pair_j_;
  std::vector<std::size_t> extra_cursor_;  // stable-scatter cursors
  GatherScratch partial_scratch_;

  Stats stats_;
};

}  // namespace sops::geom
