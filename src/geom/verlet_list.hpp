// Verlet/skin neighbor lists: cached fixed-radius pair lists with
// displacement-triggered rebuilds.
//
// The cell-grid backend re-indexes the point set and walks 3×3 cell blocks
// on every step, even when the collective barely moves (the paper's regime
// once alignment sets in). A Verlet list instead caches, per particle, every
// candidate within `radius + skin` at build time; while no particle has
// moved more than skin/2 since that build, the cached rows still contain
// every true pair within `radius` — quiet steps iterate flat CSR rows with
// one distance check per candidate and touch no grid at all. A rebuild is
// triggered only when some particle's displacement since the reference
// build exceeds skin/2 (or the point count / query radius changed).
//
// The build is a single pass + stitch: per shard, each grid cell's 3×3
// candidate block is gathered once into contiguous lanes (indices + both
// coordinates), then every point of the cell filters that shared block with
// a plain-loop distance check the compiler auto-vectorizes, appending
// surviving candidates to a per-shard row buffer. A serial prefix sum fixes
// the CSR offsets and a second sharded pass stitches the buffered rows into
// place. Compared to the former two-pass build (count, then fill, each
// walking the grid with per-point hash probes) this halves the candidate
// walks and amortizes the 9 hash probes over whole cells.
//
// Builds are shard-parallel: the internal CellGrid's cell-major partition
// (`CellGrid::shard_bounds`) splits the candidate enumeration into disjoint
// particle ranges, so an `Executor` of any width produces the identical
// list — rows are written per particle, and each row's enumeration order is
// the grid walk's, independent of the partition.
//
// Reproducibility contract (see README "Neighbor backends"): within one
// list lifetime the enumeration order of every row is frozen at build time,
// so consecutive quiet steps are bitwise-stable and the sharded drift path
// equals the serial one bitwise. *When* rebuilds happen depends on the
// trajectory, though, so cross-mode golden pins do not transfer —
// NeighborMode::kAuto therefore never selects this backend; it is opt-in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/cell_grid.hpp"
#include "geom/neighbor_backend.hpp"
#include "geom/position_lanes.hpp"
#include "geom/vec2.hpp"

namespace sops::geom {

/// Cached-pair-list backend; opt-in via NeighborMode::kVerletSkin.
class VerletListBackend final : public NeighborBackend {
 public:
  /// `skin` is the extra shell (in position units) beyond the query radius
  /// that candidates are cached at; a rebuild triggers once any particle
  /// drifted more than skin/2 from its reference position. Larger skins buy
  /// longer list lifetimes at the price of more candidates per quiet step.
  explicit VerletListBackend(double skin = kDefaultVerletSkin);

  /// Changes the skin; invalidates the cached list when the value differs.
  void set_skin(double skin);
  [[nodiscard]] double skin() const noexcept { return skin_; }

  using NeighborBackend::rebuild;
  /// Displacement-gated: a full rebuild (grid + candidate enumeration) only
  /// when the safety condition no longer holds; otherwise records the step
  /// and keeps the cached list. Serial build.
  void rebuild(PositionLanes points, double radius) override;
  /// Same, with the candidate enumeration sharded on `executor` (the
  /// engine's lent step executor). List contents are identical for any
  /// width.
  void rebuild(PositionLanes points, double radius,
               support::Executor& executor) override;

  /// Filters the cached candidate row by the *current* positions, so the
  /// result satisfies the NeighborBackend contract exactly (all j with
  /// ‖p_j − p_i‖ < radius, in frozen build order).
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;

  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kVerletSkin;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Contiguous cut of the frozen build order, balanced by cached row
  /// lengths. Any cut is bitwise-safe (rows are per-particle gathers), so
  /// unlike the cell grid the partition needs no cell alignment.
  [[nodiscard]] std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards) override;

  /// The cell-major point order frozen at the last build.
  [[nodiscard]] std::span<const std::uint32_t> shard_order()
      const noexcept override {
    return order_;
  }

  /// Cached candidates of particle i: every j ≠ i within radius + skin of
  /// the reference build (true neighbors are a subset while the list is
  /// valid). Read-only and shared-state-free — the sharded drift kernel
  /// iterates rows from several threads between rebuilds.
  [[nodiscard]] std::span<const std::uint32_t> candidate_row(
      std::size_t i) const noexcept {
    return {indices_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  /// Current-step coordinate lanes (what candidate rows index into).
  [[nodiscard]] PositionLanes points() const noexcept { return points_; }

  /// Rebuild accounting across the backend's lifetime: `steps` counts
  /// rebuild() calls, `builds` the ones that actually rebuilt. The skip
  /// rate is what the opt-in buys; benches and tests assert on it.
  struct Stats {
    std::size_t builds = 0;
    std::size_t steps = 0;
    [[nodiscard]] double skip_rate() const noexcept {
      return steps > 0
                 ? 1.0 - static_cast<double>(builds) / static_cast<double>(steps)
                 : 0.0;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Forces the next rebuild() to rebuild regardless of displacement
  /// (benches measure full-rebuild cost this way).
  void invalidate() noexcept { valid_ = false; }

 private:
  [[nodiscard]] bool list_still_valid(PositionLanes points,
                                      double radius) const noexcept;
  void build(PositionLanes points, double radius, support::Executor& executor);

  double skin_;
  double radius_ = 0.0;
  bool valid_ = false;
  PositionLanes points_;           // coordinate lanes of the current step
  std::vector<double> ref_x_;      // positions of the last build
  std::vector<double> ref_y_;
  CellGrid grid_;                  // build-time scratch; idle between builds
  std::vector<std::size_t> offsets_;     // per-particle CSR rows
  std::vector<std::uint32_t> indices_;   // candidates, row-contiguous
  std::vector<std::uint32_t> order_;     // frozen cell-major build order
  std::vector<std::uint32_t> counts_;    // per-particle counts (build pass 1)
  std::vector<std::uint32_t> build_bounds_;  // build partition (frozen copy)
  std::vector<GatherScratch> build_scratch_;  // per-shard gather + row buffers
  std::vector<std::uint32_t> scratch_;       // neighbors() filter output
  std::size_t shard_cache_width_ = 0;  // shard_bounds_ is valid for this width
  Stats stats_;
};

}  // namespace sops::geom
