// 2-D vector arithmetic used throughout the particle model and shape code.
#pragma once

#include <cmath>
#include <iosfwd>

namespace sops::geom {

/// A point or displacement in the Euclidean plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr Vec2& operator/=(double s) noexcept {
    x /= s;
    y /= s;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept {
    return {a.x / s, a.y / s};
  }
  friend constexpr Vec2 operator-(Vec2 a) noexcept { return {-a.x, -a.y}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept {
  return a.x * b.x + a.y * b.y;
}

/// Scalar z-component of the 3-D cross product of plane vectors.
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept {
  return a.x * b.y - a.y * b.x;
}

/// Squared Euclidean norm (no sqrt; preferred in hot loops).
[[nodiscard]] constexpr double norm_sq(Vec2 a) noexcept { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Vec2 a) noexcept { return std::sqrt(norm_sq(a)); }

/// Squared distance between two points.
[[nodiscard]] constexpr double dist_sq(Vec2 a, Vec2 b) noexcept {
  return norm_sq(a - b);
}

/// Distance between two points.
[[nodiscard]] inline double dist(Vec2 a, Vec2 b) noexcept {
  return std::sqrt(dist_sq(a, b));
}

/// Rotates `a` counterclockwise by `angle` radians about the origin.
[[nodiscard]] inline Vec2 rotated(Vec2 a, double angle) noexcept {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * a.x - s * a.y, s * a.x + c * a.y};
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace sops::geom
