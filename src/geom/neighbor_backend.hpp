// Persistent neighbor-search backends behind the simulation's pair loop.
//
// A backend is chosen once per run and rebuilt in place every step, so the
// per-step cost is pure indexing work — no hash-map construction, no bucket
// reallocation, no per-step strategy dispatch. All backends enumerate the
// neighbors of a particle in a deterministic, backend-specific order; drift
// summation follows that order, which makes the enumeration order part of
// the engine's bitwise-reproducibility contract:
//
//  - all-pairs:  ascending particle index,
//  - cell grid:  3×3 cell block in (dx, dy) order, point order within cells,
//  - Delaunay:   sorted tessellation adjacency, pruned by the cut-off.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/cell_grid.hpp"
#include "geom/vec2.hpp"

namespace sops::geom {

/// The concrete neighbor-search strategy a backend implements.
enum class NeighborBackendKind {
  kAllPairs,  ///< O(n²) reference; the only choice for r_c = ∞
  kCellGrid,  ///< hashed uniform grid, O(n) per step at bounded density
  kDelaunay,  ///< direct tessellation neighbors, pruned by r_c
};

/// Persistent fixed-radius neighbor index: `rebuild` once per step, then
/// query `neighbors(i)` per particle.
///
/// The returned span is valid until the next `neighbors()` or `rebuild()`
/// call on the same backend (it may alias internal scratch). Backends are
/// not thread-safe; use one per worker.
class NeighborBackend {
 public:
  virtual ~NeighborBackend() = default;

  /// Re-indexes `points` for queries with the given radius. The span must
  /// stay valid until the next rebuild. Retains internal capacity.
  virtual void rebuild(std::span<const Vec2> points, double radius) = 0;

  /// Indices j ≠ i with ‖p_j − p_i‖ < radius, in the backend's enumeration
  /// order (Delaunay: tessellation neighbors within the radius).
  [[nodiscard]] virtual std::span<const std::uint32_t> neighbors(
      std::size_t i) = 0;

  [[nodiscard]] virtual NeighborBackendKind kind() const noexcept = 0;
};

/// O(n²) reference backend; supports an unbounded radius.
class AllPairsBackend final : public NeighborBackend {
 public:
  void rebuild(std::span<const Vec2> points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kAllPairs;
  }

 private:
  std::span<const Vec2> points_;
  double radius_ = 0.0;
  std::vector<std::uint32_t> scratch_;
};

/// Hashed-cell-grid backend; the grid is rebuilt in place each step with
/// retained map/bucket capacity. Requires a finite radius.
class CellGridBackend final : public NeighborBackend {
 public:
  void rebuild(std::span<const Vec2> points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kCellGrid;
  }

  /// The underlying grid (exposed for capacity-retention tests).
  [[nodiscard]] const CellGrid& grid() const noexcept { return grid_; }

 private:
  CellGrid grid_;
  double radius_ = 0.0;
  std::vector<std::uint32_t> scratch_;
};

/// Tessellation backend: rebuild triangulates and stores the radius-pruned
/// adjacency as a CSR list, so queries are span lookups.
class DelaunayBackend final : public NeighborBackend {
 public:
  void rebuild(std::span<const Vec2> points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kDelaunay;
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> indices_;
};

/// Factory for the kind chosen by the run setup.
[[nodiscard]] std::unique_ptr<NeighborBackend> make_neighbor_backend(
    NeighborBackendKind kind);

}  // namespace sops::geom
