// Persistent neighbor-search backends behind the simulation's pair loop.
//
// A backend is chosen once per run and rebuilt in place every step, so the
// per-step cost is pure indexing work — no hash-map construction, no bucket
// reallocation, no per-step strategy dispatch. All backends enumerate the
// neighbors of a particle in a deterministic, backend-specific order; drift
// summation follows that order, which makes the enumeration order part of
// the engine's bitwise-reproducibility contract:
//
//  - all-pairs:  ascending particle index,
//  - cell grid:  3×3 cell block in (dx, dy) order, point order within cells,
//  - Delaunay:   sorted tessellation adjacency, pruned by the cut-off,
//  - Verlet/skin: cached candidate rows in the order of the build-time grid
//    walk, frozen between rebuilds (rebuild *timing* is trajectory-
//    dependent; see geom/verlet_list.hpp for the relaxed contract).
//
// Rebuilds take SoA coordinate lanes (geom::PositionLanes) — the particle
// system's native layout and what the vectorized kernels stream. Callers
// still holding interleaved Vec2 arrays use the base class's non-virtual
// span overloads, which deinterleave into backend-owned scratch lanes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/cell_grid.hpp"
#include "geom/position_lanes.hpp"
#include "geom/vec2.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::geom {

/// The concrete neighbor-search strategy a backend implements.
enum class NeighborBackendKind {
  kAllPairs,    ///< O(n²) reference; the only choice for r_c = ∞
  kCellGrid,    ///< hashed uniform grid, O(n) per step at bounded density
  kDelaunay,    ///< direct tessellation neighbors, pruned by r_c
  kVerletSkin,  ///< cached skin-radius pair lists, displacement-gated rebuilds
};

/// Default extra shell of the Verlet/skin backend (position units); see
/// VerletListBackend. SimulationConfig::verlet_skin starts here.
inline constexpr double kDefaultVerletSkin = 1.0;

/// Persistent fixed-radius neighbor index: `rebuild` once per step, then
/// query `neighbors(i)` per particle.
///
/// The returned span is valid until the next `neighbors()` or `rebuild()`
/// call on the same backend (it may alias internal scratch). Backends are
/// not thread-safe; use one per worker.
class NeighborBackend {
 public:
  virtual ~NeighborBackend() = default;

  /// Re-indexes the lanes for queries with the given radius. The lane
  /// storage must stay valid until the next rebuild. Retains capacity.
  virtual void rebuild(PositionLanes points, double radius) = 0;

  /// Executor-aware rebuild: backends whose rebuild shards (the Verlet
  /// list's candidate enumeration) dispatch it on `executor`; everyone else
  /// falls through to the serial rebuild. Results never depend on the
  /// executor's width.
  virtual void rebuild(PositionLanes points, double radius,
                       support::Executor& executor) {
    (void)executor;
    rebuild(points, radius);
  }

  /// Interleaved-span convenience: deinterleaves into backend-owned lane
  /// scratch (valid until the next rebuild) and forwards to the virtual.
  void rebuild(std::span<const Vec2> points, double radius) {
    deinterleave(points, aos_x_, aos_y_);
    rebuild(PositionLanes{aos_x_, aos_y_}, radius);
  }
  void rebuild(std::span<const Vec2> points, double radius,
               support::Executor& executor) {
    deinterleave(points, aos_x_, aos_y_);
    rebuild(PositionLanes{aos_x_, aos_y_}, radius, executor);
  }

  /// Indices j ≠ i with ‖p_j − p_i‖ < radius, in the backend's enumeration
  /// order (Delaunay: tessellation neighbors within the radius).
  [[nodiscard]] virtual std::span<const std::uint32_t> neighbors(
      std::size_t i) = 0;

  [[nodiscard]] virtual NeighborBackendKind kind() const noexcept = 0;

  /// Number of points of the current build (0 before the first rebuild).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Intra-step shard partition: ascending boundaries (first 0, last size())
  /// of at most `max_shards` contiguous ranges over the backend's shard
  /// ordering. Shard k owns ordering positions [bounds[k], bounds[k+1]);
  /// `shard_order()` maps a position to a particle index (an empty span
  /// means the identity order). Shards are disjoint particle sets, and each
  /// particle's neighbor enumeration is independent of the partition, so
  /// sharded drift accumulation is bitwise-equal to the serial loop for any
  /// shard count. The default partition is an equal split of [0, size());
  /// the cell grid overrides it with cell-aligned CSR bucket ranges
  /// balanced by a pair-count estimate. Call after rebuild(); the span
  /// aliases internal scratch and stays valid until the next shard_bounds()
  /// call or rebuild.
  [[nodiscard]] virtual std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards);

  /// Shard-ordering permutation for shard_bounds(); empty span = identity.
  [[nodiscard]] virtual std::span<const std::uint32_t> shard_order()
      const noexcept;

 protected:
  std::vector<std::uint32_t> shard_bounds_;  // scratch for the default split
  std::vector<double> aos_x_;  // deinterleave scratch for Vec2-span callers
  std::vector<double> aos_y_;
};

/// O(n²) reference backend; supports an unbounded radius.
class AllPairsBackend final : public NeighborBackend {
 public:
  using NeighborBackend::rebuild;
  void rebuild(PositionLanes points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kAllPairs;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return points_.size();
  }

 private:
  PositionLanes points_;
  double radius_ = 0.0;
  std::vector<std::uint32_t> scratch_;
};

/// Hashed-cell-grid backend; the grid is rebuilt in place each step with
/// retained map/bucket capacity. Requires a finite radius.
class CellGridBackend final : public NeighborBackend {
 public:
  using NeighborBackend::rebuild;
  void rebuild(PositionLanes points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kCellGrid;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return grid_.size();
  }

  /// Cell-aligned CSR bucket ranges balanced by the grid's pair estimate.
  [[nodiscard]] std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards) override {
    return grid_.shard_bounds(max_shards);
  }

  /// Cell-major point order: positions index the grid's CSR entry block.
  [[nodiscard]] std::span<const std::uint32_t> shard_order()
      const noexcept override {
    return grid_.bucket_entries();
  }

  /// The underlying grid (exposed for capacity-retention tests).
  [[nodiscard]] const CellGrid& grid() const noexcept { return grid_; }

  /// Grows the per-shard gather pool to at least `shards` buffers. Call
  /// serially (between parallel phases); the buffers themselves are then
  /// handed out one per shard.
  void ensure_gather_shards(std::size_t shards) {
    if (gather_.size() < shards) gather_.resize(shards);
  }

  /// Gather buffer of shard k — touched only by the worker running shard k.
  [[nodiscard]] GatherScratch& gather_scratch(std::size_t k) noexcept {
    return gather_[k];
  }

  /// Backend-owned storage for the bucket-ordered tag lane (particle
  /// types) the chunked kernel streams alongside the grid's own
  /// bucket-ordered coordinates. The caller refills it after each rebuild
  /// (the backend cannot: the tag semantics are the caller's).
  [[nodiscard]] std::vector<std::uint32_t>& bucket_tags() noexcept {
    return bucket_tags_;
  }

 private:
  CellGrid grid_;
  double radius_ = 0.0;
  std::vector<std::uint32_t> scratch_;
  std::vector<GatherScratch> gather_;   // per-shard kernel gather buffers
  std::vector<std::uint32_t> bucket_tags_;  // types in bucket-entry order
};

/// Tessellation backend: rebuild triangulates and stores the radius-pruned
/// adjacency as a CSR list, so queries are span lookups.
class DelaunayBackend final : public NeighborBackend {
 public:
  using NeighborBackend::rebuild;
  void rebuild(PositionLanes points, double radius) override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) override;
  [[nodiscard]] NeighborBackendKind kind() const noexcept override {
    return NeighborBackendKind::kDelaunay;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// CSR adjacency row of point i; read-only and shared-state-free, so the
  /// sharded drift path may call it from several threads between rebuilds.
  [[nodiscard]] std::span<const std::uint32_t> adjacency_row(
      std::size_t i) const noexcept {
    return {indices_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> indices_;
  std::vector<Vec2> points_aos_;  // interleaved copy for the tessellation
};

/// Factory for the kind chosen by the run setup.
[[nodiscard]] std::unique_ptr<NeighborBackend> make_neighbor_backend(
    NeighborBackendKind kind);

}  // namespace sops::geom
