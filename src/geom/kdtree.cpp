#include "geom/kdtree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>

#include "support/error.hpp"

namespace sops::geom {
namespace {

// Max-heap entry for k-NN search: the heap top is the current worst of the
// best-k candidates, so it can be popped when a closer point arrives.
struct HeapEntry {
  double dist_sq;
  std::size_t index;
  bool operator<(const HeapEntry& o) const noexcept { return dist_sq < o.dist_sq; }
};

// Squared block-max distance between a stored point and a query, bailing out
// as soon as the running max reaches `limit` (the discarded value cannot
// matter: every caller only compares the full max against `limit` with
// strict <, and a partial max already at `limit` pins the full max there
// too). Per-block sums accumulate over ascending dims exactly like
// info::block_dist_sq, so the doubles match the brute-force estimators.
bool block_max_within(const double* p, const double* q,
                      std::span<const DimBlock> blocks,
                      double limit) noexcept {
  double max_sq = 0.0;
  for (const DimBlock& block : blocks) {
    double sum = 0.0;
    for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
      const double diff = p[d] - q[d];
      sum += diff * diff;
    }
    if (sum > max_sq) max_sq = sum;
    if (max_sq >= limit) return false;
  }
  return true;
}

}  // namespace

KdTree::KdTree(std::span<const double> points, std::size_t dim)
    : points_(points), dim_(dim), count_(dim == 0 ? 0 : points.size() / dim) {
  support::expect(dim > 0, "KdTree: dimension must be positive");
  support::expect(points.size() % dim == 0,
                  "KdTree: point array size not a multiple of dim");
  order_.resize(count_);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (count_ > 0) {
    nodes_.reserve(2 * count_ / kLeafSize + 2);
    root_ = build(0, count_);
    leaf_points_.resize(count_ * dim_);
    leaf_columns_.resize(count_ * dim_);
    for (std::size_t slot = 0; slot < count_; ++slot) {
      const double* src = point(order_[slot]);
      std::copy(src, src + dim_, leaf_points_.data() + slot * dim_);
      for (std::size_t d = 0; d < dim_; ++d) {
        leaf_columns_[d * count_ + slot] = src[d];
      }
    }
  }
}

double KdTree::dist_sq_to(std::size_t i,
                          std::span<const double> query) const noexcept {
  const double* p = point(i);
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const double diff = p[d] - query[d];
    sum += diff * diff;
  }
  return sum;
}

int KdTree::build(std::size_t begin, std::size_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::size_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  // Split on the axis of largest spread at the median point.
  std::size_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = begin; i < end; ++i) {
      const double v = point(order_[i])[d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = d;
    }
  }
  if (best_spread == 0.0) {
    // All points identical along every axis: keep as (possibly large) leaf.
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  const std::size_t mid = begin + count / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [this, best_axis](std::size_t a, std::size_t b) {
                     return point(a)[best_axis] < point(b)[best_axis];
                   });
  node.axis = best_axis;
  node.split = point(order_[mid])[best_axis];

  const std::size_t self = nodes_.size();
  nodes_.push_back(node);
  const int left = build(begin, mid);
  const int right = build(mid, end);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return static_cast<int>(self);
}

Neighbor KdTree::nearest(std::span<const double> query) const {
  support::expect(query.size() == dim_, "KdTree::nearest: wrong query dim");
  support::expect(count_ > 0, "KdTree::nearest: empty tree");
  // The 3-D case is the ICP correspondence loop — hundreds of thousands of
  // queries per alignment — and gets a compile-time-dim instantiation; the
  // 2-D case serves per-type marginals. Same algorithm either way.
  if (dim_ == 3) return nearest_fixed<3>(query.data());
  if (dim_ == 2) return nearest_fixed<2>(query.data());
  return nearest_generic(query);
}

// Allocation-free single-neighbor search on a fixed-size stack. Traversal
// order and the strict-< update are identical to k_nearest(query, 1), so the
// result — including which index wins an exact distance tie — is the same.
template <std::size_t kDim>
Neighbor KdTree::nearest_fixed(const double* query) const {
  double best_d2 = std::numeric_limits<double>::infinity();
  std::size_t best_slot = 0;
  std::array<int, kMaxTraversalStack> stack;
  std::size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const int node_id = stack[--top];
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      // Column-major distance evaluation: each chunk computes its points'
      // squared distances as independent lanes (vectorizable — per-point
      // arithmetic is unchanged, d0² + d1² + ... in dim order), then a
      // scalar strict-< scan in slot order picks the winner, so exact ties
      // still resolve to the first-visited point. Leaves normally hold at
      // most kLeafSize points; the degenerate all-identical-spread leaf can
      // be bigger, hence the chunk loop.
      for (std::size_t chunk = node.begin; chunk < node.end;
           chunk += kLeafSize) {
        const std::size_t len = std::min(kLeafSize, node.end - chunk);
        std::array<double, kLeafSize> d2s;
        {
          const double qd = query[0];
          const double* col = leaf_column(0) + chunk;
          for (std::size_t i = 0; i < len; ++i) {
            const double diff = col[i] - qd;
            d2s[i] = diff * diff;
          }
        }
        for (std::size_t d = 1; d < kDim; ++d) {
          const double qd = query[d];
          const double* col = leaf_column(d) + chunk;
          for (std::size_t i = 0; i < len; ++i) {
            const double diff = col[i] - qd;
            d2s[i] += diff * diff;
          }
        }
        for (std::size_t i = 0; i < len; ++i) {
          if (d2s[i] < best_d2) {
            best_d2 = d2s[i];
            best_slot = chunk + i;
          }
        }
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < best_d2) stack[top++] = far_child;
    stack[top++] = near_child;
  }
  return {order_[best_slot], best_d2};
}

Neighbor KdTree::nearest_generic(std::span<const double> query) const {
  double best_d2 = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  std::array<int, kMaxTraversalStack> stack;
  std::size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const int node_id = stack[--top];
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        const double d2 = dist_sq_to(idx, query);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_idx = idx;
        }
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < best_d2) stack[top++] = far_child;
    stack[top++] = near_child;
  }
  return {best_idx, best_d2};
}

std::vector<Neighbor> KdTree::k_nearest(std::span<const double> query,
                                        std::size_t k,
                                        std::size_t skip_index) const {
  support::expect(query.size() == dim_, "KdTree::k_nearest: wrong query dim");
  std::vector<Neighbor> result;
  if (count_ == 0 || k == 0) return result;

  std::priority_queue<HeapEntry> best;  // max-heap of current best k
  auto worst = [&]() noexcept {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().dist_sq;
  };

  // Iterative traversal with an explicit stack; visit the near child first
  // and prune the far child against the current worst candidate.
  std::vector<int> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int node_id = stack.back();
    stack.pop_back();
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        if (idx == skip_index) continue;
        const double d2 = dist_sq_to(idx, query);
        if (d2 < worst()) {
          best.push({d2, idx});
          if (best.size() > k) best.pop();
        }
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < worst()) stack.push_back(far_child);
    stack.push_back(near_child);
  }

  result.resize(best.size());
  for (std::size_t i = result.size(); i-- > 0;) {
    result[i] = {best.top().index, best.top().dist_sq};
    best.pop();
  }
  return result;
}

std::size_t KdTree::count_within(std::span<const double> query, double radius,
                                 std::size_t skip_index) const {
  support::expect(query.size() == dim_, "KdTree::count_within: wrong query dim");
  if (count_ == 0 || radius <= 0.0) return 0;
  const double radius_sq = radius * radius;
  std::size_t count = 0;

  std::vector<int> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int node_id = stack.back();
    stack.pop_back();
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        if (idx == skip_index) continue;
        if (dist_sq_to(idx, query) < radius_sq) ++count;
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < radius_sq) stack.push_back(far_child);
    stack.push_back(near_child);
  }
  return count;
}

double KdTree::kth_block_dist_sq(std::span<const double> query, std::size_t k,
                                 std::span<const DimBlock> blocks,
                                 std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "KdTree::kth_block_dist_sq: wrong query dim");
  support::expect(k >= 1, "KdTree::kth_block_dist_sq: k must be positive");
  const std::size_t available = count_ - (skip_index < count_ ? 1 : 0);
  support::expect(available >= k,
                  "KdTree::kth_block_dist_sq: fewer than k points");

  // Bounded max-heap of the best-k squared distances; the heap top is the
  // current k-th candidate. The returned value is an order statistic of the
  // full distance multiset, so it is independent of traversal order:
  // a point skipped because its (partial) distance reached the current worst
  // could at best tie the k-th value, and a subtree pruned because the
  // split-axis delta² reached the worst only holds such points.
  std::array<double, 64> inline_heap;
  std::vector<double> spill_heap;
  std::span<double> heap;
  if (k <= inline_heap.size()) {
    heap = std::span<double>(inline_heap.data(), k);
  } else {
    spill_heap.resize(k);
    heap = std::span<double>(spill_heap);
  }
  std::size_t heap_size = 0;
  const auto worst = [&]() noexcept {
    return heap_size < k ? std::numeric_limits<double>::infinity() : heap[0];
  };

  std::array<int, kMaxTraversalStack> stack;
  std::size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const int node_id = stack[--top];
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        if (order_[i] == skip_index) continue;
        const double* p = leaf_point(i);
        const double limit = worst();
        double max_sq = 0.0;
        bool within = true;
        for (const DimBlock& block : blocks) {
          double sum = 0.0;
          for (std::size_t d = block.offset; d < block.offset + block.dim;
               ++d) {
            const double diff = p[d] - query[d];
            sum += diff * diff;
          }
          if (sum > max_sq) max_sq = sum;
          if (max_sq >= limit) {
            within = false;
            break;
          }
        }
        if (!within) continue;
        if (heap_size == k) {
          std::pop_heap(heap.begin(), heap.begin() + static_cast<std::ptrdiff_t>(heap_size));
          --heap_size;
        }
        heap[heap_size++] = max_sq;
        std::push_heap(heap.begin(), heap.begin() + static_cast<std::ptrdiff_t>(heap_size));
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < worst()) stack[top++] = far_child;
    stack[top++] = near_child;
  }
  support::expect(heap_size == k, "KdTree::kth_block_dist_sq: internal error");
  return heap[0];
}

std::size_t KdTree::count_within_blocks(std::span<const double> query,
                                        double radius,
                                        std::span<const DimBlock> blocks,
                                        std::size_t skip_index) const {
  std::size_t count = 0;
  const std::array<std::size_t, 1> skips = {skip_index};
  this->count_within_blocks(query, std::span<const double>(&radius, 1), blocks,
                            skips, std::span<std::size_t>(&count, 1));
  return count;
}

void KdTree::count_within_blocks(std::span<const double> queries,
                                 std::span<const double> radii,
                                 std::span<const DimBlock> blocks,
                                 std::span<const std::size_t> skips,
                                 std::span<std::size_t> counts) const {
  const std::size_t batch = radii.size();
  support::expect(batch >= 1 && batch <= kMaxCountBatch,
                  "KdTree::count_within_blocks: bad batch size");
  support::expect(queries.size() == batch * dim_,
                  "KdTree::count_within_blocks: wrong queries size");
  support::expect(skips.size() == batch && counts.size() == batch,
                  "KdTree::count_within_blocks: mismatched batch spans");

  std::array<double, kMaxCountBatch> radius_sq;
  std::uint32_t live = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    counts[b] = 0;
    radius_sq[b] = radii[b] * radii[b];
    if (radii[b] > 0.0) live |= std::uint32_t{1} << b;
  }
  if (count_ == 0 || live == 0) return;

  // One descent serves the whole batch: each stack frame carries the set of
  // queries still interested in that subtree, and queries drop out per-node
  // via the same delta² >= radius² pruning the single-query path applies.
  struct Frame {
    int node;
    std::uint32_t mask;
  };
  std::array<Frame, kMaxTraversalStack> stack;
  std::size_t top = 0;
  stack[top++] = {root_, live};
  while (top > 0) {
    const Frame frame = stack[--top];
    if (frame.node < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(frame.node)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        const double* p = leaf_point(i);
        for (std::uint32_t rest = frame.mask; rest != 0; rest &= rest - 1) {
          const auto b = static_cast<std::size_t>(
              std::countr_zero(rest));
          if (idx == skips[b]) continue;
          if (block_max_within(p, queries.data() + b * dim_, blocks,
                               radius_sq[b])) {
            ++counts[b];
          }
        }
      }
      continue;
    }
    std::uint32_t left_mask = 0;
    std::uint32_t right_mask = 0;
    for (std::uint32_t rest = frame.mask; rest != 0; rest &= rest - 1) {
      const auto b = static_cast<std::size_t>(std::countr_zero(rest));
      const std::uint32_t bit = std::uint32_t{1} << b;
      const double delta = queries[b * dim_ + node.axis] - node.split;
      const bool visit_far = delta * delta < radius_sq[b];
      if (delta < 0.0) {
        left_mask |= bit;
        if (visit_far) right_mask |= bit;
      } else {
        right_mask |= bit;
        if (visit_far) left_mask |= bit;
      }
    }
    if (right_mask != 0) stack[top++] = {node.right, right_mask};
    if (left_mask != 0) stack[top++] = {node.left, left_mask};
  }
}

BruteForceSearcher::BruteForceSearcher(std::span<const double> points,
                                       std::size_t dim)
    : points_(points), dim_(dim), count_(dim == 0 ? 0 : points.size() / dim) {
  support::expect(dim > 0, "BruteForceSearcher: dimension must be positive");
  support::expect(points.size() % dim == 0,
                  "BruteForceSearcher: point array size not a multiple of dim");
}

Neighbor BruteForceSearcher::nearest(std::span<const double> query) const {
  auto result = k_nearest(query, 1);
  support::expect(!result.empty(), "BruteForceSearcher::nearest: empty set");
  return result.front();
}

std::vector<Neighbor> BruteForceSearcher::k_nearest(
    std::span<const double> query, std::size_t k, std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::k_nearest: wrong query dim");
  std::vector<Neighbor> all;
  all.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = p[d] - query[d];
      d2 += diff * diff;
    }
    all.push_back({i, d2});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.dist_sq < b.dist_sq;
                    });
  all.resize(take);
  return all;
}

std::size_t BruteForceSearcher::count_within(std::span<const double> query,
                                             double radius,
                                             std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::count_within: wrong query dim");
  if (radius <= 0.0) return 0;
  const double radius_sq = radius * radius;
  std::size_t count = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = p[d] - query[d];
      d2 += diff * diff;
    }
    if (d2 < radius_sq) ++count;
  }
  return count;
}

double BruteForceSearcher::kth_block_dist_sq(std::span<const double> query,
                                             std::size_t k,
                                             std::span<const DimBlock> blocks,
                                             std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::kth_block_dist_sq: wrong query dim");
  support::expect(k >= 1,
                  "BruteForceSearcher::kth_block_dist_sq: k must be positive");
  std::vector<double> dists;
  dists.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double max_sq = 0.0;
    for (const DimBlock& block : blocks) {
      double sum = 0.0;
      for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
        const double diff = p[d] - query[d];
        sum += diff * diff;
      }
      max_sq = std::max(max_sq, sum);
    }
    dists.push_back(max_sq);
  }
  support::expect(dists.size() >= k,
                  "BruteForceSearcher::kth_block_dist_sq: fewer than k points");
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dists.end());
  return dists[k - 1];
}

std::size_t BruteForceSearcher::count_within_blocks(
    std::span<const double> query, double radius,
    std::span<const DimBlock> blocks, std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::count_within_blocks: wrong query dim");
  if (radius <= 0.0) return 0;
  const double radius_sq = radius * radius;
  std::size_t count = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double max_sq = 0.0;
    for (const DimBlock& block : blocks) {
      double sum = 0.0;
      for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
        const double diff = p[d] - query[d];
        sum += diff * diff;
      }
      max_sq = std::max(max_sq, sum);
    }
    if (max_sq < radius_sq) ++count;
  }
  return count;
}

}  // namespace sops::geom
