#include "geom/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "support/error.hpp"

namespace sops::geom {
namespace {

// Max-heap entry for k-NN search: the heap top is the current worst of the
// best-k candidates, so it can be popped when a closer point arrives.
struct HeapEntry {
  double dist_sq;
  std::size_t index;
  bool operator<(const HeapEntry& o) const noexcept { return dist_sq < o.dist_sq; }
};

}  // namespace

KdTree::KdTree(std::span<const double> points, std::size_t dim)
    : points_(points), dim_(dim), count_(dim == 0 ? 0 : points.size() / dim) {
  support::expect(dim > 0, "KdTree: dimension must be positive");
  support::expect(points.size() % dim == 0,
                  "KdTree: point array size not a multiple of dim");
  order_.resize(count_);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (count_ > 0) {
    nodes_.reserve(2 * count_ / kLeafSize + 2);
    root_ = build(0, count_);
  }
}

double KdTree::dist_sq_to(std::size_t i,
                          std::span<const double> query) const noexcept {
  const double* p = point(i);
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const double diff = p[d] - query[d];
    sum += diff * diff;
  }
  return sum;
}

int KdTree::build(std::size_t begin, std::size_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::size_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  // Split on the axis of largest spread at the median point.
  std::size_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = begin; i < end; ++i) {
      const double v = point(order_[i])[d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = d;
    }
  }
  if (best_spread == 0.0) {
    // All points identical along every axis: keep as (possibly large) leaf.
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  const std::size_t mid = begin + count / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [this, best_axis](std::size_t a, std::size_t b) {
                     return point(a)[best_axis] < point(b)[best_axis];
                   });
  node.axis = best_axis;
  node.split = point(order_[mid])[best_axis];

  const std::size_t self = nodes_.size();
  nodes_.push_back(node);
  const int left = build(begin, mid);
  const int right = build(mid, end);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return static_cast<int>(self);
}

Neighbor KdTree::nearest(std::span<const double> query) const {
  auto result = k_nearest(query, 1);
  support::expect(!result.empty(), "KdTree::nearest: empty tree");
  return result.front();
}

std::vector<Neighbor> KdTree::k_nearest(std::span<const double> query,
                                        std::size_t k,
                                        std::size_t skip_index) const {
  support::expect(query.size() == dim_, "KdTree::k_nearest: wrong query dim");
  std::vector<Neighbor> result;
  if (count_ == 0 || k == 0) return result;

  std::priority_queue<HeapEntry> best;  // max-heap of current best k
  auto worst = [&]() noexcept {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().dist_sq;
  };

  // Iterative traversal with an explicit stack; visit the near child first
  // and prune the far child against the current worst candidate.
  std::vector<int> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int node_id = stack.back();
    stack.pop_back();
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        if (idx == skip_index) continue;
        const double d2 = dist_sq_to(idx, query);
        if (d2 < worst()) {
          best.push({d2, idx});
          if (best.size() > k) best.pop();
        }
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < worst()) stack.push_back(far_child);
    stack.push_back(near_child);
  }

  result.resize(best.size());
  for (std::size_t i = result.size(); i-- > 0;) {
    result[i] = {best.top().index, best.top().dist_sq};
    best.pop();
  }
  return result;
}

std::size_t KdTree::count_within(std::span<const double> query, double radius,
                                 std::size_t skip_index) const {
  support::expect(query.size() == dim_, "KdTree::count_within: wrong query dim");
  if (count_ == 0 || radius <= 0.0) return 0;
  const double radius_sq = radius * radius;
  std::size_t count = 0;

  std::vector<int> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int node_id = stack.back();
    stack.pop_back();
    if (node_id < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t idx = order_[i];
        if (idx == skip_index) continue;
        if (dist_sq_to(idx, query) < radius_sq) ++count;
      }
      continue;
    }
    const double delta = query[node.axis] - node.split;
    const int near_child = delta < 0.0 ? node.left : node.right;
    const int far_child = delta < 0.0 ? node.right : node.left;
    if (delta * delta < radius_sq) stack.push_back(far_child);
    stack.push_back(near_child);
  }
  return count;
}

BruteForceSearcher::BruteForceSearcher(std::span<const double> points,
                                       std::size_t dim)
    : points_(points), dim_(dim), count_(dim == 0 ? 0 : points.size() / dim) {
  support::expect(dim > 0, "BruteForceSearcher: dimension must be positive");
  support::expect(points.size() % dim == 0,
                  "BruteForceSearcher: point array size not a multiple of dim");
}

Neighbor BruteForceSearcher::nearest(std::span<const double> query) const {
  auto result = k_nearest(query, 1);
  support::expect(!result.empty(), "BruteForceSearcher::nearest: empty set");
  return result.front();
}

std::vector<Neighbor> BruteForceSearcher::k_nearest(
    std::span<const double> query, std::size_t k, std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::k_nearest: wrong query dim");
  std::vector<Neighbor> all;
  all.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = p[d] - query[d];
      d2 += diff * diff;
    }
    all.push_back({i, d2});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.dist_sq < b.dist_sq;
                    });
  all.resize(take);
  return all;
}

std::size_t BruteForceSearcher::count_within(std::span<const double> query,
                                             double radius,
                                             std::size_t skip_index) const {
  support::expect(query.size() == dim_,
                  "BruteForceSearcher::count_within: wrong query dim");
  if (radius <= 0.0) return 0;
  const double radius_sq = radius * radius;
  std::size_t count = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    if (i == skip_index) continue;
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = p[d] - query[d];
      d2 += diff * diff;
    }
    if (d2 < radius_sq) ++count;
  }
  return count;
}

}  // namespace sops::geom
