// Structure-of-arrays position views and the gather scratch shared by the
// lane-structured pair kernels.
//
// The particle system stores positions as two parallel double lanes (x[],
// y[]); geometry code that operates on whole configurations takes a
// PositionLanes view instead of a span of Vec2. Consumers that genuinely
// need interleaved points (Delaunay, alignment, clustering) convert at the
// boundary with interleave()/ParticleSystem::positions_aos().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::geom {

/// Read-only SoA view of n planar positions: two parallel double lanes of
/// equal length. Cheap to copy; does not own the storage.
struct PositionLanes {
  std::span<const double> x;
  std::span<const double> y;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] Vec2 operator[](std::size_t i) const noexcept {
    return {x[i], y[i]};
  }
};

/// Splits interleaved points into lane storage (resizing the outputs).
inline void deinterleave(std::span<const Vec2> points, std::vector<double>& x,
                         std::vector<double>& y) {
  const std::size_t n = points.size();
  x.resize(n);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = points[i].x;
    y[i] = points[i].y;
  }
}

/// Re-interleaves a lane view into AoS storage (resizing `out`).
inline void interleave(PositionLanes lanes, std::vector<Vec2>& out) {
  const std::size_t n = lanes.size();
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = lanes[i];
}

/// Reusable per-shard buffers for block-of-candidates work: candidate
/// indices plus their positions (and a caller-defined tag lane, e.g.
/// particle types) gathered once per cell into contiguous lanes, so the
/// dense pair kernel reads sequential memory instead of scattered points.
/// `out` is an append buffer for passes that additionally filter the
/// candidates (the Verlet build). One scratch per shard — never shared
/// across workers.
struct GatherScratch {
  std::vector<std::uint32_t> idx;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::uint32_t> tag;
  std::vector<std::uint32_t> out;
};

}  // namespace sops::geom
