// Delaunay triangulation of planar point sets (Bowyer–Watson).
//
// The paper's base model [10] (Doursat's embryomorphic engineering)
// restricts interactions to "direct neighbors of the tessellation"; Harder
// & Polani deliberately drop that in favor of a cut-off radius (§4.1). This
// module restores the tessellation as an *extension*, so the ablation bench
// can compare tessellation-limited against radius-limited interactions.
//
// The implementation is the classic incremental Bowyer–Watson algorithm
// with a super-triangle, O(n²) worst case — ample for collectives of a few
// hundred particles re-triangulated per step.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::geom {

/// One triangle of the triangulation, as indices into the input point set.
struct Triangle {
  std::array<std::size_t, 3> vertices;
};

/// Computes the Delaunay triangulation of `points`.
///
/// Degenerate inputs: fewer than 3 points, or all points collinear, yield
/// an empty triangle list (the adjacency helper below still connects
/// collinear chains). Exactly duplicated points are kept out of the
/// triangulation; `delaunay_adjacency` links each duplicate to its twin so
/// no particle is silently isolated.
[[nodiscard]] std::vector<Triangle> delaunay_triangulation(
    std::span<const Vec2> points);

/// Undirected adjacency lists of the Delaunay graph: neighbors[i] holds the
/// indices sharing a triangulation edge with point i (sorted, unique).
/// Collinear point sets fall back to nearest-neighbor chain adjacency;
/// duplicates are linked to their twin.
[[nodiscard]] std::vector<std::vector<std::size_t>> delaunay_adjacency(
    std::span<const Vec2> points);

/// True if `p` lies strictly inside the circumcircle of (a, b, c).
/// Exposed for tests; uses the standard 3×3 determinant predicate with the
/// orientation factored in.
[[nodiscard]] bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 p);

}  // namespace sops::geom
