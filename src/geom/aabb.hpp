// Axis-aligned bounding box over 2-D point sets.
#pragma once

#include <algorithm>
#include <limits>
#include <span>

#include "geom/vec2.hpp"

namespace sops::geom {

/// Axis-aligned bounding box in the plane. An empty box has min > max.
struct Aabb {
  Vec2 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec2 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  /// True if no point has been added.
  [[nodiscard]] constexpr bool empty() const noexcept {
    return min.x > max.x || min.y > max.y;
  }

  /// Expands the box to contain `p`.
  constexpr void include(Vec2 p) noexcept {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// True if `p` lies inside or on the boundary.
  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Box width (0 for empty boxes).
  [[nodiscard]] constexpr double width() const noexcept {
    return empty() ? 0.0 : max.x - min.x;
  }
  /// Box height (0 for empty boxes).
  [[nodiscard]] constexpr double height() const noexcept {
    return empty() ? 0.0 : max.y - min.y;
  }
  /// Center of the box; origin for empty boxes.
  [[nodiscard]] constexpr Vec2 center() const noexcept {
    return empty() ? Vec2{} : Vec2{(min.x + max.x) / 2, (min.y + max.y) / 2};
  }
  /// Length of the box diagonal.
  [[nodiscard]] double diagonal() const noexcept {
    return empty() ? 0.0 : norm(max - min);
  }
};

/// Bounding box of a point set.
[[nodiscard]] inline Aabb bounding_box(std::span<const Vec2> points) noexcept {
  Aabb box;
  for (const Vec2 p : points) box.include(p);
  return box;
}

}  // namespace sops::geom
