// 3-D vector, used for the type-lifted embedding of 2-D configurations
// during ICP alignment (the particle type becomes a scaled 3rd coordinate,
// see Harder & Polani §5.2).
#pragma once

#include <cmath>

namespace sops::geom {

/// A point in R³.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, double s) noexcept {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr bool operator==(Vec3 a, Vec3 b) noexcept {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Vec3 a, Vec3 b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Squared Euclidean norm.
[[nodiscard]] constexpr double norm_sq(Vec3 a) noexcept { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Vec3 a) noexcept { return std::sqrt(norm_sq(a)); }

/// Squared distance between two points.
[[nodiscard]] constexpr double dist_sq(Vec3 a, Vec3 b) noexcept {
  return norm_sq(a - b);
}

}  // namespace sops::geom
