// Uniform hashed cell grid for fixed-radius neighbor queries in the plane.
//
// This is the O(n)-per-step neighbor structure behind the particle
// simulation's cut-off radius r_c: cells have side length r_c, so all
// neighbors of a point lie in its own cell and the 8 surrounding ones.
// The domain is unbounded (the paper's particles live in all of R²), hence
// cells are addressed by integer coordinates through a hash table.
//
// Layout: an open-addressing flat table maps cell coordinates to dense cell
// ids, and bucket contents live in one CSR block (`starts_`/`entries_`) in
// point-index order. Compared to a node-based unordered_map of per-cell
// vectors this makes both the per-step rebuild (a counting sort, no per-cell
// allocations) and the 3×3 candidate walk (two flat array probes per cell)
// cache-friendly. `rebuild()` re-indexes a moving point set in place,
// retaining all capacity, so steady-state stepping performs no allocation.
//
// Enumeration order is part of the reproducibility contract: candidates are
// visited cell block (dx, dy)-major, ascending point index within a cell —
// exactly the order of the original per-cell-vector implementation, so drift
// summation stays bitwise identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::geom {

/// Fixed-radius neighbor index over a point set. Rebuild per time step.
class CellGrid {
 public:
  /// Creates an empty grid; call `rebuild(points, cell_size)` before use.
  CellGrid() = default;

  /// Indexes `points` with cell side `cell_size` (use the query radius).
  /// The span must stay valid while the grid is queried.
  CellGrid(std::span<const Vec2> points, double cell_size);

  /// Re-indexes `points` with the cell size of the previous build, keeping
  /// table and bucket capacity.
  void rebuild(std::span<const Vec2> points);

  /// Re-indexes `points` with a (possibly new) cell side length.
  void rebuild(std::span<const Vec2> points, double cell_size);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Invokes `fn(j)` for every point j ≠ i with ‖p_j − p_i‖ < radius.
  /// Requires radius ≤ cell_size (enforced).
  template <typename Fn>
  void for_each_neighbor(std::size_t i, double radius, Fn&& fn) const {
    for_each_candidate(points_[i], [&](std::size_t j) {
      if (j != i && dist_sq(points_[j], points_[i]) < radius * radius) fn(j);
    });
  }

  /// Invokes `fn(j)` for every point j with ‖p_j − q‖ < radius, where q is an
  /// arbitrary query location (j may be any indexed point).
  template <typename Fn>
  void for_each_within(Vec2 q, double radius, Fn&& fn) const {
    for_each_candidate(q, [&](std::size_t j) {
      if (dist_sq(points_[j], q) < radius * radius) fn(j);
    });
  }

  /// Indices of all neighbors of point i within `radius` (convenience form).
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t i,
                                                      double radius) const;

  /// Cell side length the grid was built with (0 before the first build).
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }

  /// Number of occupied cells of the current build.
  [[nodiscard]] std::size_t cell_count() const noexcept { return cell_count_; }

  /// The CSR point-index block: every indexed point exactly once, grouped by
  /// cell in dense-cell-id order, ascending point index within each cell.
  /// Valid until the next rebuild.
  [[nodiscard]] std::span<const std::uint32_t> bucket_entries() const noexcept {
    return entries_;
  }

  /// Cell-major shard partition for intra-step parallelism: at most
  /// `max_shards` contiguous, cell-aligned ranges of `bucket_entries()`,
  /// approximately balanced by a per-cell pair-count estimate (bucket size ×
  /// total 3×3-neighborhood occupancy). Returns ascending boundaries
  /// (first 0, last size()); shard k owns entries [bounds[k], bounds[k+1]).
  ///
  /// Because shards are cell-aligned they hold disjoint particle sets, and
  /// a particle's own neighbor enumeration never depends on which shard
  /// visits it — so per-particle drift sums are bitwise-identical for any
  /// shard count. The span aliases internal scratch; valid until the next
  /// shard_bounds() call or rebuild.
  [[nodiscard]] std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards);

 private:
  struct CellKey {
    std::int64_t x;
    std::int64_t y;
  };
  struct Slot {
    std::int64_t x;
    std::int64_t y;
    std::int32_t cell;  // dense cell id; kEmpty when unoccupied
  };
  static constexpr std::int32_t kEmpty = -1;

  [[nodiscard]] static std::size_t hash_key(std::int64_t x,
                                            std::int64_t y) noexcept {
    // 2-D variant of the classic 64-bit mix; cells are sparse so quality
    // of mixing matters more than speed here.
    std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4Full;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }

  [[nodiscard]] CellKey key_of(Vec2 p) const noexcept;

  /// Dense cell id for (x, y), or kEmpty.
  [[nodiscard]] std::int32_t find_cell(std::int64_t x,
                                       std::int64_t y) const noexcept {
    std::size_t idx = hash_key(x, y) & slot_mask_;
    while (true) {
      const Slot& slot = slots_[idx];
      if (slot.cell == kEmpty) return kEmpty;
      if (slot.x == x && slot.y == y) return slot.cell;
      idx = (idx + 1) & slot_mask_;
    }
  }

  template <typename Fn>
  void for_each_candidate(Vec2 q, Fn&& fn) const {
    // An unbuilt or empty grid has no candidates (and no valid cell size to
    // derive keys from).
    if (cell_count_ == 0) return;
    const CellKey center = key_of(q);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int32_t cell = find_cell(center.x + dx, center.y + dy);
        if (cell == kEmpty) continue;
        const std::uint32_t end = starts_[cell + 1];
        for (std::uint32_t k = starts_[cell]; k < end; ++k) fn(entries_[k]);
      }
    }
  }

  std::span<const Vec2> points_;
  double cell_size_ = 0.0;

  std::vector<Slot> slots_;   // open-addressing table, power-of-two size
  std::size_t slot_mask_ = 0; // slots_.size() - 1
  std::size_t cell_count_ = 0;
  std::vector<std::uint32_t> starts_;   // CSR bucket starts, cell_count_+1
  std::vector<std::uint32_t> entries_;  // point indices, bucket-contiguous
  std::vector<std::int32_t> cell_of_;   // per-point dense cell id (scratch)
  std::vector<std::uint32_t> cursors_;  // scatter cursors (scratch)
  std::vector<double> shard_cost_;          // per-cell pair estimate (scratch)
  std::vector<std::uint32_t> shard_bounds_; // last computed partition (scratch)
};

}  // namespace sops::geom
