// Uniform hashed cell grid for fixed-radius neighbor queries in the plane.
//
// This is the O(n)-per-step neighbor structure behind the particle
// simulation's cut-off radius r_c: cells have side length r_c, so all
// neighbors of a point lie in its own cell and the 8 surrounding ones.
// The domain is unbounded (the paper's particles live in all of R²), hence
// cells are stored in a hash map keyed by integer cell coordinates.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::geom {

/// Fixed-radius neighbor index over a point set. Rebuild per time step.
class CellGrid {
 public:
  /// Indexes `points` with cell side `cell_size` (use the query radius).
  /// The span must stay valid while the grid is queried.
  CellGrid(std::span<const Vec2> points, double cell_size);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Invokes `fn(j)` for every point j ≠ i with ‖p_j − p_i‖ < radius.
  /// Requires radius ≤ cell_size (enforced).
  template <typename Fn>
  void for_each_neighbor(std::size_t i, double radius, Fn&& fn) const {
    for_each_candidate(points_[i], [&](std::size_t j) {
      if (j != i && dist_sq(points_[j], points_[i]) < radius * radius) fn(j);
    });
  }

  /// Invokes `fn(j)` for every point j with ‖p_j − q‖ < radius, where q is an
  /// arbitrary query location (j may be any indexed point).
  template <typename Fn>
  void for_each_within(Vec2 q, double radius, Fn&& fn) const {
    for_each_candidate(q, [&](std::size_t j) {
      if (dist_sq(points_[j], q) < radius * radius) fn(j);
    });
  }

  /// Indices of all neighbors of point i within `radius` (convenience form).
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t i,
                                                      double radius) const;

  /// Cell side length the grid was built with.
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }

 private:
  struct CellKey {
    std::int64_t x;
    std::int64_t y;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const noexcept {
      // 2-D variant of the classic 64-bit mix; cells are sparse so quality
      // of mixing matters more than speed here.
      std::uint64_t h = static_cast<std::uint64_t>(k.x) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(k.y) * 0xC2B2AE3D27D4EB4Full;
      h ^= h >> 29;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] CellKey key_of(Vec2 p) const noexcept;

  template <typename Fn>
  void for_each_candidate(Vec2 q, Fn&& fn) const {
    const CellKey center = key_of(q);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(CellKey{center.x + dx, center.y + dy});
        if (it == cells_.end()) continue;
        for (const std::size_t j : it->second) fn(j);
      }
    }
  }

  std::span<const Vec2> points_;
  double cell_size_;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> cells_;
};

}  // namespace sops::geom
