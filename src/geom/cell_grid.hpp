// Uniform hashed cell grid for fixed-radius neighbor queries in the plane.
//
// This is the O(n)-per-step neighbor structure behind the particle
// simulation's cut-off radius r_c: cells have side length r_c, so all
// neighbors of a point lie in its own cell and the 8 surrounding ones.
// The domain is unbounded (the paper's particles live in all of R²), hence
// cells are addressed by integer coordinates through a hash table.
//
// Layout: an open-addressing flat table maps cell coordinates to dense cell
// ids, and bucket contents live in one CSR block (`starts_`/`entries_`) in
// point-index order. Compared to a node-based unordered_map of per-cell
// vectors this makes both the per-step rebuild (a counting sort, no per-cell
// allocations) and the 3×3 candidate walk (two flat array probes per cell)
// cache-friendly. `rebuild()` re-indexes a moving point set in place,
// retaining all capacity, so steady-state stepping performs no allocation.
//
// Dense cell ids are column-major spatial: ids ascend by integer cell
// coordinate (x, then y). That makes each dx-column of a 3×3 block a run of
// consecutive ids, so its candidates form ONE contiguous range of the CSR
// entry block (block_spans()), and walking cells in id order sweeps the
// plane column by column — neighbor buckets stay cache-resident between
// adjacent cells. The id permutation is invisible to enumeration order:
// candidates are still visited (dx, dy)-major, ascending point index within
// a cell, so drift sums are bit-for-bit unaffected by the spatial sort.
//
// Points enter as SoA coordinate lanes (geom::PositionLanes) — the layout
// the vectorized pair kernels stream — with interleaved-span overloads that
// deinterleave into internal scratch for callers still holding Vec2 arrays.
//
// Enumeration order is part of the reproducibility contract: candidates are
// visited cell block (dx, dy)-major, ascending point index within a cell —
// exactly the order of the original per-cell-vector implementation, so drift
// summation stays bitwise identical.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/position_lanes.hpp"
#include "geom/vec2.hpp"

namespace sops::geom {

/// Fixed-radius neighbor index over a point set. Rebuild per time step.
class CellGrid {
 public:
  /// Creates an empty grid; call `rebuild(points, cell_size)` before use.
  CellGrid() = default;

  /// Indexes `points` with cell side `cell_size` (use the query radius).
  /// The lane storage must stay valid while the grid is queried.
  CellGrid(PositionLanes points, double cell_size);

  /// Interleaved-span form: deinterleaves into internal lane scratch.
  CellGrid(std::span<const Vec2> points, double cell_size);

  /// Re-indexes `points` with the cell size of the previous build, keeping
  /// table and bucket capacity.
  void rebuild(PositionLanes points);
  void rebuild(std::span<const Vec2> points);

  /// Re-indexes `points` with a (possibly new) cell side length.
  void rebuild(PositionLanes points, double cell_size);
  void rebuild(std::span<const Vec2> points, double cell_size);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

  /// Invokes `fn(j)` for every point j ≠ i with ‖p_j − p_i‖ < radius.
  /// Requires radius ≤ cell_size (enforced).
  template <typename Fn>
  void for_each_neighbor(std::size_t i, double radius, Fn&& fn) const {
    const Vec2 p{xs_[i], ys_[i]};
    for_each_candidate(p, [&](std::size_t j) {
      if (j != i && dist_sq(Vec2{xs_[j], ys_[j]}, p) < radius * radius) fn(j);
    });
  }

  /// Invokes `fn(j)` for every point j with ‖p_j − q‖ < radius, where q is an
  /// arbitrary query location (j may be any indexed point).
  template <typename Fn>
  void for_each_within(Vec2 q, double radius, Fn&& fn) const {
    for_each_candidate(q, [&](std::size_t j) {
      if (dist_sq(Vec2{xs_[j], ys_[j]}, q) < radius * radius) fn(j);
    });
  }

  /// Indices of all neighbors of point i within `radius` (convenience form).
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t i,
                                                      double radius) const;

  /// Cell side length the grid was built with (0 before the first build).
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }

  /// Number of occupied cells of the current build.
  [[nodiscard]] std::size_t cell_count() const noexcept { return cell_count_; }

  /// The CSR point-index block: every indexed point exactly once, grouped by
  /// cell in dense-cell-id order, ascending point index within each cell.
  /// Valid until the next rebuild.
  [[nodiscard]] std::span<const std::uint32_t> bucket_entries() const noexcept {
    return entries_;
  }

  /// CSR bucket boundaries: cell c owns entries [starts[c], starts[c+1]).
  /// Together with append_block_candidates() this lets per-cell kernels walk
  /// the grid without per-point hash probes. Valid until the next rebuild.
  [[nodiscard]] std::span<const std::uint32_t> bucket_starts() const noexcept {
    return {starts_.data(), cell_count_ + 1};
  }

  /// Bucket-ordered coordinate lanes: bucket_x()[k] is the x coordinate of
  /// bucket_entries()[k], scattered during the rebuild's counting sort.
  /// Together with block_spans() this lets the chunked pair kernel stream
  /// every candidate from contiguous memory. Valid until the next rebuild.
  [[nodiscard]] std::span<const double> bucket_x() const noexcept {
    return {bucket_x_.data(), entries_.size()};
  }
  [[nodiscard]] std::span<const double> bucket_y() const noexcept {
    return {bucket_y_.data(), entries_.size()};
  }

  /// Appends the 3×3-block candidate indices of dense cell `cell` to `out`
  /// (without clearing it), in exactly the (dx, dy)-major, ascending-index
  /// order of for_each_neighbor — every point of the cell sees this one
  /// shared candidate sequence, which is what lets kernels gather a cell's
  /// block once and reuse it for all of the cell's points.
  void append_block_candidates(std::size_t cell,
                               std::vector<std::uint32_t>& out) const;

  /// Query-scoped form: appends the 3×3-block candidates around the cell
  /// *containing q* — which may itself be unoccupied (the block's occupied
  /// neighbors are still walked), so a point that has drifted out of every
  /// indexed cell can still be re-enumerated against the grid. Same
  /// (dx, dy)-major, ascending-index order as the dense-cell form. This is
  /// the re-enumeration primitive behind the Verlet backend's partial
  /// rebuilds: a runaway particle's fresh candidate row is one block walk
  /// of the (still-indexed) full-build grid, no grid rebuild required.
  void append_block_candidates_at(Vec2 q,
                                  std::vector<std::uint32_t>& out) const;

  /// The 3×3 block of dense cell `cell` as at most 3 contiguous ranges
  /// [first, second) of bucket_entries(), one per dx column, in the same
  /// (dx, dy)-major enumeration order as append_block_candidates (dense ids
  /// are column-major, so a column's occupied cells are id-consecutive).
  /// Returns the number of ranges written. This is what lets the chunked
  /// pair kernel bulk-copy a cell's candidates from bucket-ordered lanes
  /// instead of gathering them point by point.
  [[nodiscard]] std::size_t block_spans(
      std::size_t cell,
      std::array<std::pair<std::uint32_t, std::uint32_t>, 3>& spans) const;

  /// Cell-major shard partition for intra-step parallelism: at most
  /// `max_shards` contiguous, cell-aligned ranges of `bucket_entries()`,
  /// approximately balanced by a per-cell pair-count estimate (bucket size ×
  /// total 3×3-neighborhood occupancy). Returns ascending boundaries
  /// (first 0, last size()); shard k owns entries [bounds[k], bounds[k+1]).
  ///
  /// Because shards are cell-aligned they hold disjoint particle sets, and
  /// a particle's own neighbor enumeration never depends on which shard
  /// visits it — so per-particle drift sums are bitwise-identical for any
  /// shard count. The span aliases internal scratch; valid until the next
  /// shard_bounds() call or rebuild.
  [[nodiscard]] std::span<const std::uint32_t> shard_bounds(
      std::size_t max_shards);

 private:
  struct CellKey {
    std::int64_t x;
    std::int64_t y;
  };
  struct Slot {
    std::int64_t x;
    std::int64_t y;
    std::int32_t cell;  // dense cell id; kEmpty when unoccupied
  };
  static constexpr std::int32_t kEmpty = -1;

  [[nodiscard]] static std::size_t hash_key(std::int64_t x,
                                            std::int64_t y) noexcept {
    // 2-D variant of the classic 64-bit mix; cells are sparse so quality
    // of mixing matters more than speed here.
    std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4Full;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }

  [[nodiscard]] CellKey key_of(Vec2 p) const noexcept;

  /// Dense cell id for (x, y), or kEmpty.
  [[nodiscard]] std::int32_t find_cell(std::int64_t x,
                                       std::int64_t y) const noexcept {
    std::size_t idx = hash_key(x, y) & slot_mask_;
    while (true) {
      const Slot& slot = slots_[idx];
      if (slot.cell == kEmpty) return kEmpty;
      if (slot.x == x && slot.y == y) return slot.cell;
      idx = (idx + 1) & slot_mask_;
    }
  }

  template <typename Fn>
  void for_each_candidate(Vec2 q, Fn&& fn) const {
    // An unbuilt or empty grid has no candidates (and no valid cell size to
    // derive keys from).
    if (cell_count_ == 0) return;
    const CellKey center = key_of(q);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int32_t cell = find_cell(center.x + dx, center.y + dy);
        if (cell == kEmpty) continue;
        const std::uint32_t end = starts_[cell + 1];
        for (std::uint32_t k = starts_[cell]; k < end; ++k) fn(entries_[k]);
      }
    }
  }

  std::span<const double> xs_;  // coordinate lanes of the current build
  std::span<const double> ys_;
  std::vector<double> aos_x_;   // deinterleave scratch for Vec2-span callers
  std::vector<double> aos_y_;
  double cell_size_ = 0.0;

  std::vector<Slot> slots_;   // open-addressing table, power-of-two size
  std::size_t slot_mask_ = 0; // slots_.size() - 1
  std::size_t cell_count_ = 0;
  std::vector<std::uint32_t> used_slots_;  // occupied table indices (clear list)
  std::vector<std::uint32_t> starts_;   // CSR bucket starts, cell_count_+1
  std::vector<std::uint32_t> entries_;  // point indices, bucket-contiguous
  std::vector<double> bucket_x_;        // coordinates in entries_ order
  std::vector<double> bucket_y_;
  std::vector<CellKey> cell_keys_;      // integer coords per dense cell id
  std::vector<std::int32_t> cell_of_;   // per-point dense cell id (scratch)
  std::vector<std::uint32_t> cursors_;  // scatter cursors (scratch)
  std::vector<std::uint32_t> cell_perm_;   // spatial-sort rank → discovery id
  std::vector<std::uint32_t> cell_remap_;  // discovery id → spatial id
  std::vector<CellKey> key_scratch_;       // reorder buffer for cell_keys_

  // Dense bounding-box rank of the current build (the fast spatial-order
  // path): box_rank_[i] counts the occupied cells with column-major box
  // index < i, so the spatial id of the cell at box index i is
  // box_rank_[i], and the ids inside any box range [p, q) are exactly
  // [box_rank_[p], box_rank_[q]) — which is what makes block_spans() pure
  // arithmetic. Unset (box_valid_ = false) when the occupied bounding box
  // is too sparse to rank densely; ordering then falls back to a sort and
  // block_spans() to hash probes.
  std::vector<std::uint32_t> box_rank_;  // box area + 1 exclusive prefix
  std::int64_t box_min_x_ = 0;
  std::int64_t box_min_y_ = 0;
  std::size_t box_w_ = 0;
  std::size_t box_h_ = 0;
  bool box_valid_ = false;
  std::vector<double> shard_cost_;          // per-cell pair estimate (scratch)
  std::vector<std::uint32_t> shard_bounds_; // last computed partition (scratch)
};

}  // namespace sops::geom
