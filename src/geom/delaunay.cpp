#include "geom/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "geom/aabb.hpp"
#include "support/error.hpp"

namespace sops::geom {
namespace {

// Signed twice-area of the triangle (a, b, c): positive if counterclockwise.
double orient(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return cross(b - a, c - a);
}

// Internal triangle over the working point array (input points plus the
// three super-triangle vertices at the end).
struct WorkTriangle {
  std::array<std::size_t, 3> v;
  bool alive = true;
};

// Undirected edge key with canonical ordering.
struct Edge {
  std::size_t a;
  std::size_t b;
  Edge(std::size_t x, std::size_t y) : a(std::min(x, y)), b(std::max(x, y)) {}
  bool operator<(const Edge& o) const {
    return a != o.a ? a < o.a : b < o.b;
  }
};

}  // namespace

bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 p) {
  // Ensure counterclockwise orientation so the determinant sign is stable.
  if (orient(a, b, c) < 0.0) std::swap(b, c);
  const double ax = a.x - p.x;
  const double ay = a.y - p.y;
  const double bx = b.x - p.x;
  const double by = b.y - p.y;
  const double cx = c.x - p.x;
  const double cy = c.y - p.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - by * cx) -
      (bx * bx + by * by) * (ax * cy - ay * cx) +
      (cx * cx + cy * cy) * (ax * by - ay * bx);
  return det > 0.0;
}

std::vector<Triangle> delaunay_triangulation(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  if (n < 3) return {};

  // Deduplicate: only the first occurrence of a coordinate participates.
  std::vector<std::size_t> active;
  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
      if (points[i].x != points[j].x) return points[i].x < points[j].x;
      if (points[i].y != points[j].y) return points[i].y < points[j].y;
      return i < j;
    });
    for (std::size_t k = 0; k < n; ++k) {
      if (k > 0 && points[order[k]] == points[order[k - 1]]) continue;
      active.push_back(order[k]);
    }
    std::sort(active.begin(), active.end());
  }
  if (active.size() < 3) return {};

  // Reject fully collinear sets (no triangulation exists).
  {
    bool any_area = false;
    for (std::size_t k = 2; k < active.size() && !any_area; ++k) {
      any_area = std::abs(orient(points[active[0]], points[active[1]],
                                 points[active[k]])) > 1e-12;
    }
    if (!any_area) return {};
  }

  // Working points: the originals plus a super-triangle big enough that its
  // circumcircles dwarf the data.
  Aabb box;
  for (const std::size_t i : active) box.include(points[i]);
  const Vec2 center = box.center();
  const double span = std::max(box.diagonal(), 1.0) * 64.0;
  std::vector<Vec2> work(points.begin(), points.end());
  const std::size_t s0 = work.size();
  work.push_back(center + Vec2{0.0, span});
  work.push_back(center + Vec2{-span, -span});
  work.push_back(center + Vec2{span, -span});

  std::vector<WorkTriangle> triangles;
  triangles.push_back({{s0, s0 + 1, s0 + 2}, true});

  for (const std::size_t p : active) {
    // Collect triangles whose circumcircle contains the new point and the
    // boundary edges of that cavity.
    std::map<Edge, int> edge_count;
    for (WorkTriangle& triangle : triangles) {
      if (!triangle.alive) continue;
      if (in_circumcircle(work[triangle.v[0]], work[triangle.v[1]],
                          work[triangle.v[2]], work[p])) {
        triangle.alive = false;
        ++edge_count[Edge(triangle.v[0], triangle.v[1])];
        ++edge_count[Edge(triangle.v[1], triangle.v[2])];
        ++edge_count[Edge(triangle.v[2], triangle.v[0])];
      }
    }
    // Re-triangulate the cavity: one new triangle per boundary edge (edges
    // shared by two removed triangles are interior and vanish).
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      triangles.push_back({{edge.a, edge.b, p}, true});
    }
    // Compact occasionally to keep the scan linear-ish.
    if (triangles.size() > 4 * active.size()) {
      std::erase_if(triangles,
                    [](const WorkTriangle& t) { return !t.alive; });
    }
  }

  std::vector<Triangle> result;
  for (const WorkTriangle& triangle : triangles) {
    if (!triangle.alive) continue;
    if (triangle.v[0] >= s0 || triangle.v[1] >= s0 || triangle.v[2] >= s0) {
      continue;  // touches the super-triangle
    }
    result.push_back({triangle.v});
  }
  return result;
}

std::vector<std::vector<std::size_t>> delaunay_adjacency(
    std::span<const Vec2> points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> neighbors(n);

  const std::vector<Triangle> triangles = delaunay_triangulation(points);
  for (const Triangle& triangle : triangles) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t a = triangle.vertices[e];
      const std::size_t b = triangle.vertices[(e + 1) % 3];
      neighbors[a].push_back(b);
      neighbors[b].push_back(a);
    }
  }

  // Duplicates: link each repeated coordinate to the representative that
  // participated in the triangulation (and vice versa) so force exchange
  // still reaches them.
  std::map<std::pair<double, double>, std::size_t> first_at;
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = std::make_pair(points[i].x, points[i].y);
    const auto [it, inserted] = first_at.try_emplace(key, i);
    if (!inserted) {
      neighbors[i].push_back(it->second);
      neighbors[it->second].push_back(i);
      // The duplicate inherits the representative's triangulation edges.
      for (const std::size_t other : neighbors[it->second]) {
        if (other != i) neighbors[i].push_back(other);
      }
    }
  }

  // Collinear fallback: no triangles but ≥ 2 distinct points — connect the
  // chain in coordinate order (each point to its predecessor/successor).
  if (triangles.empty() && n >= 2) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
      if (points[i].x != points[j].x) return points[i].x < points[j].x;
      return points[i].y < points[j].y;
    });
    for (std::size_t k = 1; k < n; ++k) {
      if (points[order[k]] == points[order[k - 1]]) continue;  // handled above
      neighbors[order[k]].push_back(order[k - 1]);
      neighbors[order[k - 1]].push_back(order[k]);
    }
  }

  for (auto& list : neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return neighbors;
}

}  // namespace sops::geom
