// Generic-dimension k-d tree over points stored as a flat row-major array.
//
// Used by the ICP aligner (3-D type-lifted points), the Kozachenko–Leonenko
// entropy estimator, and the marginal neighbor counts of the KSG
// multi-information estimator (2-D per-particle marginals). The tree stores
// indices into the caller's point array; the array must outlive the tree.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sops::geom {

/// Result of a nearest-neighbor query: point index and squared distance.
struct Neighbor {
  std::size_t index = 0;
  double dist_sq = 0.0;
};

/// Static k-d tree (build once, query many times) with Euclidean metric.
class KdTree {
 public:
  /// Builds a tree over `count` points of dimension `dim`, where point i
  /// occupies points[i*dim .. i*dim+dim). The span must stay valid for the
  /// lifetime of the tree. `count == 0` produces an empty tree.
  KdTree(std::span<const double> points, std::size_t dim);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  /// Point dimension.
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Nearest neighbor of `query` (dimension `dim()`); precondition: non-empty.
  [[nodiscard]] Neighbor nearest(std::span<const double> query) const;

  /// The k nearest neighbors of `query`, sorted by ascending distance.
  /// Returns fewer than k if the tree holds fewer points. When
  /// `skip_index` is a valid point index, that point is excluded — used for
  /// leave-one-out queries where the query is itself an indexed point.
  [[nodiscard]] std::vector<Neighbor> k_nearest(
      std::span<const double> query, std::size_t k,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// Number of indexed points with distance to `query` strictly less than
  /// `radius` (Euclidean). `skip_index` as in k_nearest.
  [[nodiscard]] std::size_t count_within(
      std::span<const double> query, double radius,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

 private:
  struct Node {
    // Leaves hold a contiguous range of `order_`; internal nodes split on
    // axis `axis` at coordinate `split`.
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t axis = 0;
    double split = 0.0;
    int left = -1;
    int right = -1;
    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  static constexpr std::size_t kLeafSize = 16;

  [[nodiscard]] const double* point(std::size_t i) const noexcept {
    return points_.data() + i * dim_;
  }
  [[nodiscard]] double dist_sq_to(std::size_t i,
                                  std::span<const double> query) const noexcept;
  int build(std::size_t begin, std::size_t end);

  std::span<const double> points_;
  std::size_t dim_;
  std::size_t count_;
  std::vector<std::size_t> order_;  // permutation of point indices
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Brute-force reference searcher with the same interface subset as KdTree;
/// used as an oracle in tests and for tiny inputs.
class BruteForceSearcher {
 public:
  BruteForceSearcher(std::span<const double> points, std::size_t dim);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] Neighbor nearest(std::span<const double> query) const;
  [[nodiscard]] std::vector<Neighbor> k_nearest(
      std::span<const double> query, std::size_t k,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;
  [[nodiscard]] std::size_t count_within(
      std::span<const double> query, double radius,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

 private:
  std::span<const double> points_;
  std::size_t dim_;
  std::size_t count_;
};

}  // namespace sops::geom
