// Generic-dimension k-d tree over points stored as a flat row-major array.
//
// Used by the ICP aligner (3-D type-lifted points), the Kozachenko–Leonenko
// entropy estimator, and the marginal neighbor counts of the KSG
// multi-information estimator (2-D per-particle marginals). The tree stores
// indices into the caller's point array; the array must outlive the tree.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sops::geom {

/// Result of a nearest-neighbor query: point index and squared distance.
struct Neighbor {
  std::size_t index = 0;
  double dist_sq = 0.0;
};

/// One contiguous coordinate range of the block-max metric: the distance
/// between two points is the max over blocks of the Euclidean norm of the
/// block coordinates (the KSG estimators' joint metric). The blocks passed
/// to a block-metric query must tile [0, dim) — every axis belongs to
/// exactly one block — which is what keeps single-axis pruning valid for
/// the composite metric: a split-axis delta² lower-bounds its block's
/// norm², which lower-bounds the max.
struct DimBlock {
  std::size_t offset = 0;
  std::size_t dim = 0;
};

/// Static k-d tree (build once, query many times) with Euclidean metric.
class KdTree {
 public:
  /// Builds a tree over `count` points of dimension `dim`, where point i
  /// occupies points[i*dim .. i*dim+dim). The span must stay valid for the
  /// lifetime of the tree. `count == 0` produces an empty tree.
  KdTree(std::span<const double> points, std::size_t dim);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  /// Point dimension.
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Largest batch accepted by the batched count_within_blocks overload.
  static constexpr std::size_t kMaxCountBatch = 8;

  /// Nearest neighbor of `query` (dimension `dim()`); precondition: non-empty.
  /// Allocation-free; visits points in the same order as k_nearest(query, 1)
  /// with strict-< updates, so exact ties resolve to the same index.
  [[nodiscard]] Neighbor nearest(std::span<const double> query) const;

  /// The k nearest neighbors of `query`, sorted by ascending distance.
  /// Returns fewer than k if the tree holds fewer points. When
  /// `skip_index` is a valid point index, that point is excluded — used for
  /// leave-one-out queries where the query is itself an indexed point.
  [[nodiscard]] std::vector<Neighbor> k_nearest(
      std::span<const double> query, std::size_t k,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// Number of indexed points with distance to `query` strictly less than
  /// `radius` (Euclidean). `skip_index` as in k_nearest.
  [[nodiscard]] std::size_t count_within(
      std::span<const double> query, double radius,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// Squared block-max distance (see DimBlock) of the k-th nearest indexed
  /// point to `query`, ties broken by multiplicity. `blocks` must tile
  /// [0, dim). Equals the k-th order statistic of the exhaustive squared
  /// distance set — bitwise, not approximately. Preconditions: k >= 1 and at
  /// least k indexed points after excluding `skip_index`.
  [[nodiscard]] double kth_block_dist_sq(
      std::span<const double> query, std::size_t k,
      std::span<const DimBlock> blocks,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// Number of indexed points with block-max distance to `query` strictly
  /// less than `radius` (compared as squared distance < radius*radius, the
  /// comparison the KSG estimators make). `blocks` must tile [0, dim).
  [[nodiscard]] std::size_t count_within_blocks(
      std::span<const double> query, double radius,
      std::span<const DimBlock> blocks,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// Batched form: `radii.size()` query points share one tree descent.
  /// `queries` holds the points back to back (radii.size() * dim doubles);
  /// query b counts points with block-max distance < radii[b], excluding
  /// skips[b], into counts[b]. Each count is bitwise-identical to the
  /// single-query overload. Batch size is capped at kMaxCountBatch; callers
  /// batch support::kSimdWidth points per descent.
  void count_within_blocks(std::span<const double> queries,
                           std::span<const double> radii,
                           std::span<const DimBlock> blocks,
                           std::span<const std::size_t> skips,
                           std::span<std::size_t> counts) const;

 private:
  struct Node {
    // Leaves hold a contiguous range of `order_`; internal nodes split on
    // axis `axis` at coordinate `split`.
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t axis = 0;
    double split = 0.0;
    int left = -1;
    int right = -1;
    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  static constexpr std::size_t kLeafSize = 16;
  // Upper bound on the explicit traversal stack of the allocation-free
  // queries. Splits are at the median, so depth <= ceil(log2(count)) + 1 and
  // the DFS stack holds at most depth + 1 entries; 128 covers any count that
  // fits in memory.
  static constexpr std::size_t kMaxTraversalStack = 128;

  [[nodiscard]] const double* point(std::size_t i) const noexcept {
    return points_.data() + i * dim_;
  }
  // Point order_[slot], stored contiguously in leaf-scan order so hot leaf
  // loops stream instead of gathering through the permutation. Same doubles
  // as point(order_[slot]) — swapping one for the other never changes a
  // query result.
  [[nodiscard]] const double* leaf_point(std::size_t slot) const noexcept {
    return leaf_points_.data() + slot * dim_;
  }
  // Coordinate d of the leaf-ordered points as one contiguous column
  // (coordinate-major mirror of leaf_points_), so per-leaf distance loops
  // vectorize across points.
  [[nodiscard]] const double* leaf_column(std::size_t d) const noexcept {
    return leaf_columns_.data() + d * count_;
  }
  [[nodiscard]] double dist_sq_to(std::size_t i,
                                  std::span<const double> query) const noexcept;
  template <std::size_t kDim>
  [[nodiscard]] Neighbor nearest_fixed(const double* query) const;
  [[nodiscard]] Neighbor nearest_generic(std::span<const double> query) const;
  int build(std::size_t begin, std::size_t end);

  std::span<const double> points_;
  std::size_t dim_;
  std::size_t count_;
  std::vector<std::size_t> order_;  // permutation of point indices
  std::vector<double> leaf_points_;   // points_ permuted by order_
  std::vector<double> leaf_columns_;  // same, coordinate-major
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Brute-force reference searcher with the same interface subset as KdTree;
/// used as an oracle in tests and for tiny inputs.
class BruteForceSearcher {
 public:
  BruteForceSearcher(std::span<const double> points, std::size_t dim);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] Neighbor nearest(std::span<const double> query) const;
  [[nodiscard]] std::vector<Neighbor> k_nearest(
      std::span<const double> query, std::size_t k,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;
  [[nodiscard]] std::size_t count_within(
      std::span<const double> query, double radius,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;
  [[nodiscard]] double kth_block_dist_sq(
      std::span<const double> query, std::size_t k,
      std::span<const DimBlock> blocks,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;
  [[nodiscard]] std::size_t count_within_blocks(
      std::span<const double> query, double radius,
      std::span<const DimBlock> blocks,
      std::size_t skip_index = static_cast<std::size_t>(-1)) const;

 private:
  std::span<const double> points_;
  std::size_t dim_;
  std::size_t count_;
};

}  // namespace sops::geom
