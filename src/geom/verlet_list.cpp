#include "geom/verlet_list.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace sops::geom {

VerletListBackend::VerletListBackend(double skin) : skin_(skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend: skin must be positive and finite");
}

void VerletListBackend::set_skin(double skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend::set_skin: skin must be positive and finite");
  if (skin != skin_) {
    skin_ = skin;
    valid_ = false;
    rate_ema_ = 0.0;
  }
}

void VerletListBackend::set_adaptive_skin(const AdaptiveSkin& params) {
  support::expect(params.skin_min > 0.0 && std::isfinite(params.skin_min) &&
                      params.skin_max >= params.skin_min &&
                      std::isfinite(params.skin_max),
                  "VerletListBackend: adaptive skin bounds must be finite, "
                  "positive, and ordered");
  support::expect(params.target_interval >= 1.0 &&
                      std::isfinite(params.target_interval),
                  "VerletListBackend: adaptive skin target interval must be "
                  "finite and >= 1");
  if (params.enabled != adapt_.enabled ||
      params.skin_min != adapt_.skin_min ||
      params.skin_max != adapt_.skin_max ||
      params.target_interval != adapt_.target_interval) {
    adapt_ = params;
    valid_ = false;
    rate_ema_ = 0.0;
  }
}

void VerletListBackend::set_partial_rebuild(bool enabled) noexcept {
  if (enabled != partial_enabled_) {
    partial_enabled_ = enabled;
    valid_ = false;
  }
}

void VerletListBackend::rebuild(PositionLanes points, double radius) {
  support::SerialExecutor serial;
  rebuild(points, radius, serial);
}

void VerletListBackend::rebuild(PositionLanes points, double radius,
                                support::Executor& executor) {
  support::expect(radius > 0.0 && std::isfinite(radius),
                  "VerletListBackend: needs a positive finite radius");
  ++stats_.steps;
  points_ = points;
  const std::size_t n = points.size();
  if (!valid_ || radius != radius_ || n != ref_x_.size()) {
    build(points, radius, executor);
    return;
  }

  // Safety condition: while every particle sits within skin/2 of its
  // reference position, any pair now within `radius` was within
  // radius + 2·(skin/2) = radius + skin at build time, i.e. inside the
  // cached rows. A particle past the threshold invalidates the list — or,
  // with partial rebuilds, becomes a runaway whose row is re-enumerated
  // fresh below while everyone else's cached row stays provably sound.
  const double limit_sq = (skin_ / 2.0) * (skin_ / 2.0);
  bool full_trip = false;
  if (!partial_enabled_) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = points.x[i] - ref_x_[i];
      const double dy = points.y[i] - ref_y_[i];
      if (dx * dx + dy * dy > limit_sq) {
        full_trip = true;
        break;
      }
    }
  } else {
    runaways_.clear();
    const std::size_t cap =
        std::min(kMaxRunaways, std::max<std::size_t>(1, n / 4));
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = points.x[i] - ref_x_[i];
      const double dy = points.y[i] - ref_y_[i];
      if (dx * dx + dy * dy > limit_sq) {
        if (runaways_.size() == cap) {
          full_trip = true;
          break;
        }
        runaways_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  if (full_trip) {
    if (adapt_.enabled) adapt_skin_on_trip();
    build(points, radius, executor);
    return;
  }

  if (partial_enabled_ && !runaways_.empty()) {
    partial_pass(points);
  } else if (!partial_members_.empty()) {
    // Everyone is back within skin/2 of the reference: the cached rows are
    // sound again on their own and the partial overlays can drop.
    clear_partial_rows();
  }
  ++steps_since_build_;
}

void VerletListBackend::adapt_skin_on_trip() {
  // The interval that just ended measures the collective's fastest
  // particle: it covered skin/2 in `steps_since_build_` steps. Steer the
  // shell toward the one that would stretch the interval to the setpoint
  // (skin*/2 = ν · target), smoothed and rate-limited so a single noisy
  // interval can at most halve or double it, then clamp to the bounds.
  const double interval =
      static_cast<double>(std::max<std::size_t>(1, steps_since_build_));
  const double rate = (skin_ / 2.0) / interval;
  rate_ema_ = rate_ema_ == 0.0 ? rate : 0.5 * (rate_ema_ + rate);
  double want = 2.0 * rate_ema_ * adapt_.target_interval;
  want = std::clamp(want, 0.5 * skin_, 2.0 * skin_);
  skin_ = std::clamp(want, adapt_.skin_min, adapt_.skin_max);
}

void VerletListBackend::build(PositionLanes points, double radius,
                              support::Executor& executor) {
  const std::size_t n = points.size();
  radius_ = radius;
  ref_x_.assign(points.x.begin(), points.x.end());
  ref_y_.assign(points.y.begin(), points.y.end());
  clear_partial_rows();
  const double list_radius = radius + skin_;
  grid_.rebuild(points, list_radius);

  // Freeze the grid's cell-major point order: it is both the enumeration
  // backbone of the build and the shard ordering until the next build (the
  // grid's coordinate view goes stale the moment particles move on, but its
  // cell structure keeps serving partial-pass block queries — quiet
  // particles stay within skin/2 of the positions it indexed).
  const std::span<const std::uint32_t> entries = grid_.bucket_entries();
  order_.assign(entries.begin(), entries.end());
  const std::span<const std::uint32_t> grid_bounds =
      grid_.shard_bounds(executor.width());
  build_bounds_.assign(grid_bounds.begin(), grid_bounds.end());

  // Pass 1 (sharded): walk each shard's cells, gather every cell's 3×3
  // candidate block once into contiguous lanes, and let each point of the
  // cell filter that shared block with a plain-lane distance check the
  // compiler vectorizes. Survivors land row-contiguously in the shard's
  // `out` buffer in exactly the frozen enumeration order, with the row
  // lengths in `counts_`. Shards own disjoint particles, so the writes
  // never race and the rows are width-invariant.
  counts_.assign(n, 0);
  const std::size_t shards = build_bounds_.size() - 1;
  if (build_scratch_.size() < shards) build_scratch_.resize(shards);
  const std::span<const std::uint32_t> starts = grid_.bucket_starts();
  const double list_radius_sq = list_radius * list_radius;
  support::parallel_for_shards(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        GatherScratch& s = build_scratch_[shard];
        s.out.clear();
        // Shard cuts are CSR bucket boundaries, so `begin` opens a cell;
        // bucket starts are strictly increasing (cells are non-empty).
        std::size_t c = static_cast<std::size_t>(
                            std::upper_bound(starts.begin(), starts.end(),
                                             static_cast<std::uint32_t>(begin)) -
                            starts.begin()) -
                        1;
        for (; c + 1 < starts.size() && starts[c] < end; ++c) {
          s.idx.clear();
          grid_.append_block_candidates(c, s.idx);
          const std::size_t m = s.idx.size();
          s.x.resize(m);
          s.y.resize(m);
          s.tag.resize(m);
          for (std::size_t t = 0; t < m; ++t) s.x[t] = points.x[s.idx[t]];
          for (std::size_t t = 0; t < m; ++t) s.y[t] = points.y[s.idx[t]];
          for (std::uint32_t k = starts[c]; k < starts[c + 1]; ++k) {
            const std::uint32_t i = order_[k];
            const double xi = points.x[i];
            const double yi = points.y[i];
            for (std::size_t t = 0; t < m; ++t) {
              const double dx = s.x[t] - xi;
              const double dy = s.y[t] - yi;
              s.tag[t] = static_cast<std::uint32_t>(
                  static_cast<unsigned>(dx * dx + dy * dy < list_radius_sq) &
                  static_cast<unsigned>(s.idx[t] != i));
            }
            const std::size_t before = s.out.size();
            for (std::size_t t = 0; t < m; ++t) {
              if (s.tag[t] != 0) s.out.push_back(s.idx[t]);
            }
            counts_[i] = static_cast<std::uint32_t>(s.out.size() - before);
          }
        }
      });

  offsets_.assign(n + 1, 0);
  max_row_count_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + counts_[i];
    max_row_count_ = std::max<std::size_t>(max_row_count_, counts_[i]);
  }
  indices_.resize(offsets_[n]);

  // Pass 2 (sharded): stitch each shard's buffered rows into the CSR block.
  // Rows sit in the `out` buffers in frozen-order sequence, so a single
  // cursor walk per shard places every row.
  support::parallel_for_shards(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        const GatherScratch& s = build_scratch_[shard];
        const std::uint32_t* src = s.out.data();
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = order_[k];
          const std::size_t len = counts_[i];
          std::copy_n(src, len, indices_.data() + offsets_[i]);
          src += len;
        }
      });

  valid_ = true;
  ++stats_.builds;
  steps_since_build_ = 0;
  shard_cache_width_ = 0;  // the partition must reflect the new rows
}

bool VerletListBackend::row_contains(std::size_t i,
                                     std::uint32_t j) const noexcept {
  const std::uint32_t* p = indices_.data() + offsets_[i];
  const std::uint32_t* e = indices_.data() + offsets_[i + 1];
  for (; p != e; ++p) {
    if (*p == j) return true;
  }
  return false;
}

void VerletListBackend::clear_partial_rows() {
  for (const std::uint32_t i : partial_members_) partial_slot_[i] = kNoSlot;
  partial_members_.clear();
  for (const std::uint32_t i : extra_members_) extra_slot_[i] = kNoSlot;
  extra_members_.clear();
  partial_offsets_.clear();
  partial_indices_.clear();
  extra_offsets_.clear();
  extra_indices_.clear();
}

void VerletListBackend::partial_pass(PositionLanes points) {
  // Serial by design: the runaway set is capped at kMaxRunaways, each row
  // is one block walk of the full-build grid, and a serial pass is
  // trivially executor-width-invariant.
  //
  // Soundness: a pair (i, j) within `radius` at the current step must be
  // covered by some row. Quiet–quiet pairs sit in the cached rows (both
  // endpoints within skin/2 of reference — the standard argument). A
  // runaway j's own row is re-enumerated *this step*: a quiet partner k
  // within list range of j's current position has its reference within
  // radius + skin/2 + skin/2 of it, i.e. inside the 3×3 block of the
  // reference grid (cell side radius + skin) around j — the query-scoped
  // block walk sees it. The reverse rows (quiet k missing runaway j) are
  // patched by extras, and runaway–runaway pairs are checked directly.
  const std::size_t n = points.size();
  if (partial_slot_.size() != n) {
    partial_members_.clear();
    extra_members_.clear();
    partial_slot_.assign(n, kNoSlot);
    extra_slot_.assign(n, kNoSlot);
    partial_offsets_.clear();
    partial_indices_.clear();
    extra_offsets_.clear();
    extra_indices_.clear();
  } else {
    clear_partial_rows();
  }
  if (runaway_flag_.size() != n) runaway_flag_.assign(n, 0);
  for (const std::uint32_t j : runaways_) runaway_flag_[j] = 1;

  const double list_radius = radius_ + skin_;
  const double list_radius_sq = list_radius * list_radius;
  partial_offsets_.push_back(0);
  pair_k_.clear();
  pair_j_.clear();
  GatherScratch& s = partial_scratch_;
  for (std::size_t slot = 0; slot < runaways_.size(); ++slot) {
    const std::uint32_t j = runaways_[slot];
    partial_slot_[j] = static_cast<std::uint32_t>(slot);
    partial_members_.push_back(j);
    const double xj = points.x[j];
    const double yj = points.y[j];
    // Quiet candidates from the reference grid, enumerated in its
    // (dx, dy)-major ascending-index order, filtered at current positions.
    s.idx.clear();
    grid_.append_block_candidates_at(Vec2{xj, yj}, s.idx);
    for (const std::uint32_t k : s.idx) {
      if (k == j || runaway_flag_[k] != 0) continue;
      const double dx = points.x[k] - xj;
      const double dy = points.y[k] - yj;
      if (dx * dx + dy * dy >= list_radius_sq) continue;
      partial_indices_.push_back(k);
      // The reverse pair needs an extra only when k's cached row predates
      // j's arrival; a row that already holds j evaluates the pair at the
      // current gathered coordinates, and patching it again would count
      // the pair twice.
      if (!row_contains(k, j)) {
        pair_k_.push_back(k);
        pair_j_.push_back(j);
      }
    }
    // Runaway–runaway pairs, all-pairs over the capped set (both endpoints
    // have left their reference cells, so the grid cannot attest them).
    for (const std::uint32_t r : runaways_) {
      if (r == j) continue;
      const double dx = points.x[r] - xj;
      const double dy = points.y[r] - yj;
      if (dx * dx + dy * dy >= list_radius_sq) continue;
      partial_indices_.push_back(r);
    }
    partial_offsets_.push_back(partial_indices_.size());
    max_row_count_ = std::max(
        max_row_count_, partial_offsets_[slot + 1] - partial_offsets_[slot]);
  }

  // Extra rows: group the pending (quiet k, runaway j) patches per k with
  // a stable counting scatter — slots in first-encounter order, patches in
  // runaway-major order within a slot. Deterministic either way; frozen
  // here so re-runs enumerate identically.
  for (const std::uint32_t k : pair_k_) {
    if (extra_slot_[k] == kNoSlot) {
      extra_slot_[k] = static_cast<std::uint32_t>(extra_members_.size());
      extra_members_.push_back(k);
    }
  }
  extra_offsets_.assign(extra_members_.size() + 1, 0);
  for (const std::uint32_t k : pair_k_) ++extra_offsets_[extra_slot_[k] + 1];
  for (std::size_t t = 1; t < extra_offsets_.size(); ++t) {
    extra_offsets_[t] += extra_offsets_[t - 1];
  }
  const std::size_t extra_total = pair_k_.size();
  extra_indices_.resize(extra_total);
  extra_cursor_.assign(extra_offsets_.begin(), extra_offsets_.end() - 1);
  for (std::size_t t = 0; t < extra_total; ++t) {
    const std::size_t pos = extra_cursor_[extra_slot_[pair_k_[t]]]++;
    extra_indices_[pos] = pair_j_[t];
  }
  if (!extra_members_.empty()) {
    for (std::size_t s2 = 0; s2 < extra_members_.size(); ++s2) {
      max_row_count_ = std::max(max_row_count_,
                                extra_offsets_[s2 + 1] - extra_offsets_[s2]);
    }
  }

  ++stats_.partial_builds;
  stats_.partial_rows += runaways_.size();
  for (const std::uint32_t j : runaways_) runaway_flag_[j] = 0;
}

std::span<const std::uint32_t> VerletListBackend::neighbors(std::size_t i) {
  const double radius_sq = radius_ * radius_;
  const double xi = points_.x[i];
  const double yi = points_.y[i];
  scratch_.clear();
  for (const std::uint32_t j : candidate_row(i)) {
    const double dx = points_.x[j] - xi;
    const double dy = points_.y[j] - yi;
    if (dx * dx + dy * dy < radius_sq) scratch_.push_back(j);
  }
  for (const std::uint32_t j : extra_candidates(i)) {
    const double dx = points_.x[j] - xi;
    const double dy = points_.y[j] - yi;
    if (dx * dx + dy * dy < radius_sq) scratch_.push_back(j);
  }
  return scratch_;
}

std::span<const std::uint32_t> VerletListBackend::shard_bounds(
    std::size_t max_shards) {
  const std::size_t n = size();
  if (max_shards == shard_cache_width_ && !shard_bounds_.empty()) {
    return shard_bounds_;
  }
  shard_bounds_.clear();
  shard_bounds_.push_back(0);
  const auto n32 = static_cast<std::uint32_t>(n);
  if (max_shards <= 1 || n <= 1) {
    shard_bounds_.push_back(n32);
    shard_cache_width_ = max_shards;
    return shard_bounds_;
  }

  // Greedy equal-cost cut of particle-id order, cost = cached row length + 1
  // (the +1 keeps candidate-free particles from piling into one shard).
  // Unlike the cell grid, cuts need no cell alignment: rows are pure
  // per-particle gathers, so any contiguous split is bitwise-safe — and the
  // id-order walk streams the CSR arrays sequentially, which on large sets
  // beats the cell-major walk's scattered row jumps. Partial overlays
  // perturb row lengths only slightly (the runaway set is capped), so the
  // cached-row estimate keeps the partition balanced.
  const double total = static_cast<double>(indices_.size() + n);
  double run = 0.0;
  std::size_t shard = 1;
  for (std::size_t i = 0; i < n; ++i) {
    run += static_cast<double>(offsets_[i + 1] - offsets_[i] + 1);
    if (shard < max_shards && i + 1 < n &&
        run * static_cast<double>(max_shards) >=
            total * static_cast<double>(shard)) {
      shard_bounds_.push_back(static_cast<std::uint32_t>(i + 1));
      ++shard;
    }
  }
  shard_bounds_.push_back(n32);
  shard_cache_width_ = max_shards;
  return shard_bounds_;
}

}  // namespace sops::geom
