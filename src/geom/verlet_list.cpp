#include "geom/verlet_list.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace sops::geom {

VerletListBackend::VerletListBackend(double skin) : skin_(skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend: skin must be positive and finite");
}

void VerletListBackend::set_skin(double skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend::set_skin: skin must be positive and finite");
  if (skin != skin_) {
    skin_ = skin;
    valid_ = false;
  }
}

bool VerletListBackend::list_still_valid(std::span<const Vec2> points,
                                         double radius) const noexcept {
  if (!valid_ || radius != radius_ || points.size() != reference_.size()) {
    return false;
  }
  // Safety condition: while every particle sits within skin/2 of its
  // reference position, any pair now within `radius` was within
  // radius + 2·(skin/2) = radius + skin at build time, i.e. inside the
  // cached rows. A single particle past the threshold invalidates the list.
  const double limit_sq = (skin_ / 2.0) * (skin_ / 2.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (dist_sq(points[i], reference_[i]) > limit_sq) return false;
  }
  return true;
}

void VerletListBackend::rebuild(std::span<const Vec2> points, double radius) {
  support::SerialExecutor serial;
  rebuild(points, radius, serial);
}

void VerletListBackend::rebuild(std::span<const Vec2> points, double radius,
                                support::Executor& executor) {
  support::expect(radius > 0.0 && std::isfinite(radius),
                  "VerletListBackend: needs a positive finite radius");
  ++stats_.steps;
  points_ = points;
  if (list_still_valid(points, radius)) return;
  build(points, radius, executor);
}

void VerletListBackend::build(std::span<const Vec2> points, double radius,
                              support::Executor& executor) {
  const std::size_t n = points.size();
  radius_ = radius;
  reference_.assign(points.begin(), points.end());
  const double list_radius = radius + skin_;
  grid_.rebuild(points, list_radius);

  // Freeze the grid's cell-major point order: it is both the enumeration
  // backbone of the build passes and the shard ordering until the next
  // build (the grid itself goes stale the moment particles move on).
  const std::span<const std::uint32_t> entries = grid_.bucket_entries();
  order_.assign(entries.begin(), entries.end());
  const std::span<const std::uint32_t> grid_bounds =
      grid_.shard_bounds(executor.width());
  build_bounds_.assign(grid_bounds.begin(), grid_bounds.end());

  // Pass 1 (sharded): per-particle candidate counts. Shards own disjoint
  // particles, so the writes never race and the counts are width-invariant.
  counts_.assign(n, 0);
  support::parallel_for_chunked(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = order_[k];
          std::uint32_t count = 0;
          grid_.for_each_neighbor(i, list_radius, [&](std::size_t) { ++count; });
          counts_[i] = count;
        }
      });

  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] = offsets_[i] + counts_[i];
  indices_.resize(offsets_[n]);

  // Pass 2 (sharded): fill each particle's row in the grid walk's order —
  // the enumeration order that stays frozen for the list's lifetime.
  support::parallel_for_chunked(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = order_[k];
          std::uint32_t* row = indices_.data() + offsets_[i];
          grid_.for_each_neighbor(i, list_radius, [&](std::size_t j) {
            *row++ = static_cast<std::uint32_t>(j);
          });
        }
      });

  valid_ = true;
  ++stats_.builds;
  shard_cache_width_ = 0;  // the partition must reflect the new rows
}

std::span<const std::uint32_t> VerletListBackend::neighbors(std::size_t i) {
  const double radius_sq = radius_ * radius_;
  scratch_.clear();
  for (const std::uint32_t j : candidate_row(i)) {
    if (dist_sq(points_[i], points_[j]) < radius_sq) scratch_.push_back(j);
  }
  return scratch_;
}

std::span<const std::uint32_t> VerletListBackend::shard_bounds(
    std::size_t max_shards) {
  const std::size_t n = size();
  if (max_shards == shard_cache_width_ && !shard_bounds_.empty()) {
    return shard_bounds_;
  }
  shard_bounds_.clear();
  shard_bounds_.push_back(0);
  const auto n32 = static_cast<std::uint32_t>(n);
  if (max_shards <= 1 || n <= 1) {
    shard_bounds_.push_back(n32);
    shard_cache_width_ = max_shards;
    return shard_bounds_;
  }

  // Greedy equal-cost cut of the frozen order, cost = cached row length + 1
  // (the +1 keeps candidate-free particles from piling into one shard).
  // Unlike the cell grid, cuts need no cell alignment: rows are pure
  // per-particle gathers, so any contiguous split is bitwise-safe.
  const double total = static_cast<double>(indices_.size() + n);
  double run = 0.0;
  std::size_t shard = 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = order_[k];
    run += static_cast<double>(offsets_[i + 1] - offsets_[i] + 1);
    if (shard < max_shards && k + 1 < n &&
        run * static_cast<double>(max_shards) >=
            total * static_cast<double>(shard)) {
      shard_bounds_.push_back(static_cast<std::uint32_t>(k + 1));
      ++shard;
    }
  }
  shard_bounds_.push_back(n32);
  shard_cache_width_ = max_shards;
  return shard_bounds_;
}

}  // namespace sops::geom
