#include "geom/verlet_list.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace sops::geom {

VerletListBackend::VerletListBackend(double skin) : skin_(skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend: skin must be positive and finite");
}

void VerletListBackend::set_skin(double skin) {
  support::expect(skin > 0.0 && std::isfinite(skin),
                  "VerletListBackend::set_skin: skin must be positive and finite");
  if (skin != skin_) {
    skin_ = skin;
    valid_ = false;
  }
}

bool VerletListBackend::list_still_valid(PositionLanes points,
                                         double radius) const noexcept {
  if (!valid_ || radius != radius_ || points.size() != ref_x_.size()) {
    return false;
  }
  // Safety condition: while every particle sits within skin/2 of its
  // reference position, any pair now within `radius` was within
  // radius + 2·(skin/2) = radius + skin at build time, i.e. inside the
  // cached rows. A single particle past the threshold invalidates the list.
  const double limit_sq = (skin_ / 2.0) * (skin_ / 2.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double dx = points.x[i] - ref_x_[i];
    const double dy = points.y[i] - ref_y_[i];
    if (dx * dx + dy * dy > limit_sq) return false;
  }
  return true;
}

void VerletListBackend::rebuild(PositionLanes points, double radius) {
  support::SerialExecutor serial;
  rebuild(points, radius, serial);
}

void VerletListBackend::rebuild(PositionLanes points, double radius,
                                support::Executor& executor) {
  support::expect(radius > 0.0 && std::isfinite(radius),
                  "VerletListBackend: needs a positive finite radius");
  ++stats_.steps;
  points_ = points;
  if (list_still_valid(points, radius)) return;
  build(points, radius, executor);
}

void VerletListBackend::build(PositionLanes points, double radius,
                              support::Executor& executor) {
  const std::size_t n = points.size();
  radius_ = radius;
  ref_x_.assign(points.x.begin(), points.x.end());
  ref_y_.assign(points.y.begin(), points.y.end());
  const double list_radius = radius + skin_;
  grid_.rebuild(points, list_radius);

  // Freeze the grid's cell-major point order: it is both the enumeration
  // backbone of the build and the shard ordering until the next build (the
  // grid itself goes stale the moment particles move on).
  const std::span<const std::uint32_t> entries = grid_.bucket_entries();
  order_.assign(entries.begin(), entries.end());
  const std::span<const std::uint32_t> grid_bounds =
      grid_.shard_bounds(executor.width());
  build_bounds_.assign(grid_bounds.begin(), grid_bounds.end());

  // Pass 1 (sharded): walk each shard's cells, gather every cell's 3×3
  // candidate block once into contiguous lanes, and let each point of the
  // cell filter that shared block with a plain-lane distance check the
  // compiler vectorizes. Survivors land row-contiguously in the shard's
  // `out` buffer — in exactly the frozen enumeration order — and the row
  // lengths in `counts_`. Shards own disjoint particles, so the writes
  // never race and the rows are width-invariant.
  counts_.assign(n, 0);
  const std::size_t shards = build_bounds_.size() - 1;
  if (build_scratch_.size() < shards) build_scratch_.resize(shards);
  const std::span<const std::uint32_t> starts = grid_.bucket_starts();
  const double list_radius_sq = list_radius * list_radius;
  support::parallel_for_shards(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        GatherScratch& s = build_scratch_[shard];
        s.out.clear();
        // Shard cuts are CSR bucket boundaries, so `begin` opens a cell;
        // bucket starts are strictly increasing (cells are non-empty).
        std::size_t c = static_cast<std::size_t>(
                            std::upper_bound(starts.begin(), starts.end(),
                                             static_cast<std::uint32_t>(begin)) -
                            starts.begin()) -
                        1;
        for (; c + 1 < starts.size() && starts[c] < end; ++c) {
          s.idx.clear();
          grid_.append_block_candidates(c, s.idx);
          const std::size_t m = s.idx.size();
          s.x.resize(m);
          s.y.resize(m);
          s.tag.resize(m);
          for (std::size_t t = 0; t < m; ++t) s.x[t] = points.x[s.idx[t]];
          for (std::size_t t = 0; t < m; ++t) s.y[t] = points.y[s.idx[t]];
          for (std::uint32_t k = starts[c]; k < starts[c + 1]; ++k) {
            const std::uint32_t i = order_[k];
            const double xi = points.x[i];
            const double yi = points.y[i];
            for (std::size_t t = 0; t < m; ++t) {
              const double dx = s.x[t] - xi;
              const double dy = s.y[t] - yi;
              s.tag[t] = static_cast<std::uint32_t>(
                  static_cast<unsigned>(dx * dx + dy * dy < list_radius_sq) &
                  static_cast<unsigned>(s.idx[t] != i));
            }
            const std::size_t before = s.out.size();
            for (std::size_t t = 0; t < m; ++t) {
              if (s.tag[t] != 0) s.out.push_back(s.idx[t]);
            }
            counts_[i] = static_cast<std::uint32_t>(s.out.size() - before);
          }
        }
      });

  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] = offsets_[i] + counts_[i];
  indices_.resize(offsets_[n]);

  // Pass 2 (sharded): stitch each shard's buffered rows into the CSR block.
  // Rows sit in the `out` buffers in frozen-order sequence, so a single
  // cursor walk per shard places every row.
  support::parallel_for_shards(
      executor, std::span<const std::uint32_t>(build_bounds_),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        const std::uint32_t* src = build_scratch_[shard].out.data();
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = order_[k];
          const std::size_t len = counts_[i];
          std::copy_n(src, len, indices_.data() + offsets_[i]);
          src += len;
        }
      });

  valid_ = true;
  ++stats_.builds;
  shard_cache_width_ = 0;  // the partition must reflect the new rows
}

std::span<const std::uint32_t> VerletListBackend::neighbors(std::size_t i) {
  const double radius_sq = radius_ * radius_;
  const double xi = points_.x[i];
  const double yi = points_.y[i];
  scratch_.clear();
  for (const std::uint32_t j : candidate_row(i)) {
    const double dx = points_.x[j] - xi;
    const double dy = points_.y[j] - yi;
    if (dx * dx + dy * dy < radius_sq) scratch_.push_back(j);
  }
  return scratch_;
}

std::span<const std::uint32_t> VerletListBackend::shard_bounds(
    std::size_t max_shards) {
  const std::size_t n = size();
  if (max_shards == shard_cache_width_ && !shard_bounds_.empty()) {
    return shard_bounds_;
  }
  shard_bounds_.clear();
  shard_bounds_.push_back(0);
  const auto n32 = static_cast<std::uint32_t>(n);
  if (max_shards <= 1 || n <= 1) {
    shard_bounds_.push_back(n32);
    shard_cache_width_ = max_shards;
    return shard_bounds_;
  }

  // Greedy equal-cost cut of the frozen order, cost = cached row length + 1
  // (the +1 keeps candidate-free particles from piling into one shard).
  // Unlike the cell grid, cuts need no cell alignment: rows are pure
  // per-particle gathers, so any contiguous split is bitwise-safe.
  const double total = static_cast<double>(indices_.size() + n);
  double run = 0.0;
  std::size_t shard = 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = order_[k];
    run += static_cast<double>(offsets_[i + 1] - offsets_[i] + 1);
    if (shard < max_shards && k + 1 < n &&
        run * static_cast<double>(max_shards) >=
            total * static_cast<double>(shard)) {
      shard_bounds_.push_back(static_cast<std::uint32_t>(k + 1));
      ++shard;
    }
  }
  shard_bounds_.push_back(n32);
  shard_cache_width_ = max_shards;
  return shard_bounds_;
}

}  // namespace sops::geom
