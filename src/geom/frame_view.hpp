// Non-owning view of one ensemble frame: m same-sized point configurations
// stored contiguously, sample-major. `view[s]` is the configuration of
// sample s as a span — the bridge between the flat FrameStore in core and
// the span-based geometry/alignment APIs below it.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec2.hpp"

namespace sops::geom {

/// m configurations of n points each, laid out as one contiguous block:
/// sample s occupies [data + s·n, data + (s+1)·n).
class FrameView {
 public:
  constexpr FrameView() = default;
  constexpr FrameView(const Vec2* data, std::size_t samples,
                      std::size_t particles) noexcept
      : data_(data), samples_(samples), particles_(particles) {}

  /// Number of samples m.
  [[nodiscard]] constexpr std::size_t size() const noexcept { return samples_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return samples_ == 0; }

  /// Number of points per sample n.
  [[nodiscard]] constexpr std::size_t particle_count() const noexcept {
    return particles_;
  }

  /// Configuration of sample s.
  [[nodiscard]] constexpr std::span<const Vec2> operator[](
      std::size_t s) const noexcept {
    return {data_ + s * particles_, particles_};
  }
  [[nodiscard]] constexpr std::span<const Vec2> front() const noexcept {
    return (*this)[0];
  }
  [[nodiscard]] constexpr std::span<const Vec2> back() const noexcept {
    return (*this)[samples_ - 1];
  }

  [[nodiscard]] constexpr const Vec2* data() const noexcept { return data_; }

 private:
  const Vec2* data_ = nullptr;
  std::size_t samples_ = 0;
  std::size_t particles_ = 0;
};

}  // namespace sops::geom
