#include "sim/generators.hpp"

#include "rng/samplers.hpp"

namespace sops::sim {
namespace {

void validate_ranges(const RandomModelRanges& ranges) {
  support::expect(ranges.k_min <= ranges.k_max &&
                      ranges.r_min <= ranges.r_max &&
                      ranges.tau_min <= ranges.tau_max,
                  "RandomModelRanges: min exceeds max");
  support::expect(ranges.r_min >= 0.0 && ranges.tau_min > 0.0,
                  "RandomModelRanges: invalid lower bounds");
}

}  // namespace

InteractionModel random_spring_model(std::size_t types,
                                     const RandomModelRanges& ranges,
                                     rng::Xoshiro256& engine) {
  validate_ranges(ranges);
  InteractionModel model(ForceLawKind::kSpring, types);
  for (std::size_t a = 0; a < types; ++a) {
    for (std::size_t b = a; b < types; ++b) {
      model.set_k(a, b, rng::uniform(engine, ranges.k_min, ranges.k_max));
      model.set_r(a, b, rng::uniform(engine, ranges.r_min, ranges.r_max));
    }
  }
  return model;
}

InteractionModel random_double_gaussian_model(std::size_t types,
                                              const RandomModelRanges& ranges,
                                              rng::Xoshiro256& engine) {
  validate_ranges(ranges);
  InteractionModel model(ForceLawKind::kDoubleGaussian, types);
  for (std::size_t a = 0; a < types; ++a) {
    for (std::size_t b = a; b < types; ++b) {
      const double k = rng::uniform(engine, ranges.k_min, ranges.k_max);
      const double r = rng::uniform(engine, ranges.r_min, ranges.r_max);
      const double tau = rng::uniform(engine, ranges.tau_min, ranges.tau_max);
      const PairParams params = f2_params_for_preferred_distance(r, k, tau);
      model.set_k(a, b, params.k);
      model.set_r(a, b, params.r);
      model.set_sigma(a, b, params.sigma);
      model.set_tau(a, b, params.tau);
    }
  }
  return model;
}

InteractionModel random_literal_f2_model(std::size_t types,
                                         const RandomModelRanges& ranges,
                                         rng::Xoshiro256& engine) {
  validate_ranges(ranges);
  InteractionModel model(ForceLawKind::kDoubleGaussian, types);
  for (std::size_t a = 0; a < types; ++a) {
    for (std::size_t b = a; b < types; ++b) {
      model.set_k(a, b, rng::uniform(engine, ranges.k_min, ranges.k_max));
      model.set_sigma(a, b, 1.0);
      model.set_tau(a, b, rng::uniform(engine, ranges.tau_min, ranges.tau_max));
    }
  }
  return model;
}

}  // namespace sops::sim
