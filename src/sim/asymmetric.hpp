// Asymmetric (non-reciprocal) interactions — the regime the paper rules
// out and why.
//
// §4.1: "choosing a non-symmetric matrix often leads to unstable dynamics
// or cycling patterns as the preferred distance is mutually different, we
// therefore only consider symmetric matrices in what follows."
//
// This module implements the ruled-out regime so the ablation bench can
// demonstrate the claim: type α may want distance r_αβ from β while β wants
// a different r_βα from α — chaser/evader dynamics with limit cycles
// instead of equilibria.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/engine.hpp"
#include "sim/integrator.hpp"

namespace sops::sim {

/// Dense l×l matrix without the symmetry constraint.
class FullMatrix {
 public:
  FullMatrix() = default;
  explicit FullMatrix(std::size_t types, double fill = 0.0)
      : types_(types), data_(types * types, fill) {}

  [[nodiscard]] std::size_t types() const noexcept { return types_; }
  [[nodiscard]] double operator()(std::size_t a, std::size_t b) const {
    support::expect(a < types_ && b < types_, "FullMatrix: index out of range");
    return data_[a * types_ + b];
  }
  void set(std::size_t a, std::size_t b, double v) {
    support::expect(a < types_ && b < types_, "FullMatrix: index out of range");
    data_[a * types_ + b] = v;
  }

  /// True if the matrix equals its transpose.
  [[nodiscard]] bool is_symmetric() const noexcept;

  friend bool operator==(const FullMatrix&, const FullMatrix&) = default;

 private:
  std::size_t types_ = 0;
  std::vector<double> data_;
};

/// Interaction model whose parameters depend on the *ordered* type pair:
/// the force particle i of type α feels from j of type β uses (α, β)
/// entries, which may differ from (β, α). Reduces exactly to the symmetric
/// model when all matrices are symmetric (tested).
class AsymmetricInteractionModel {
 public:
  AsymmetricInteractionModel(ForceLawKind kind, std::size_t types,
                             PairParams defaults = {});

  [[nodiscard]] ForceLawKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t types() const noexcept { return k_.types(); }

  /// Parameters governing the force ON type `self` FROM type `other`.
  [[nodiscard]] PairParams pair(std::size_t self, std::size_t other) const {
    return {k_(self, other), r_(self, other), sigma_(self, other),
            tau_(self, other)};
  }
  [[nodiscard]] double scaling(std::size_t self, std::size_t other,
                               double x) const {
    return force_scaling(kind_, pair(self, other), x);
  }

  AsymmetricInteractionModel& set_k(std::size_t self, std::size_t other, double v);
  AsymmetricInteractionModel& set_r(std::size_t self, std::size_t other, double v);
  AsymmetricInteractionModel& set_sigma(std::size_t self, std::size_t other,
                                        double v);
  AsymmetricInteractionModel& set_tau(std::size_t self, std::size_t other,
                                      double v);

  /// True when every parameter matrix is symmetric (the paper's regime).
  [[nodiscard]] bool is_symmetric() const noexcept;

 private:
  ForceLawKind kind_;
  FullMatrix k_, r_, sigma_, tau_;
};

/// Drift under ordered-pair interactions (all-pairs within the cut-off;
/// the collectives this regime is studied on are small).
void accumulate_drift_asymmetric(const ParticleSystem& system,
                                 const AsymmetricInteractionModel& model,
                                 double cutoff_radius,
                                 std::vector<geom::Vec2>& out);

/// Euler–Maruyama step under an asymmetric model. Same contract as the
/// symmetric euler_maruyama_step (returns the pre-step Σ‖drift‖).
double euler_maruyama_step_asymmetric(ParticleSystem& system,
                                      const AsymmetricInteractionModel& model,
                                      double cutoff_radius,
                                      const IntegratorParams& params,
                                      rng::Xoshiro256& engine,
                                      std::vector<geom::Vec2>& drift_scratch);

/// The canonical cycling system (§4.1): type 0 prefers to sit at
/// `chase_distance` from type 1, type 1 prefers `evade_distance` > chase
/// from type 0 — their goals are mutually unsatisfiable.
[[nodiscard]] AsymmetricInteractionModel make_chaser_evader_model(
    double chase_distance = 1.0, double evade_distance = 3.0, double k = 1.0);

}  // namespace sops::sim
