// Single-run simulation driver: initial condition, time stepping, trajectory
// recording, and stopping diagnostics. One run corresponds to one "sample"
// z̄ = (z⁽¹⁾, …, z⁽ᵗᵐᵃˣ⁾) of the paper (§5.1).
//
// The driver computes the drift of each configuration exactly once and
// shares it between integration, equilibrium detection, and recording (the
// residual Σ‖drift_i‖ is evaluated lazily, only when a consumer needs it).
// Frames can be recorded into a caller-owned sink (`run_simulation_streamed`)
// so ensemble drivers stream positions straight into flat storage without a
// per-trajectory staging copy.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sim/detectors.hpp"
#include "sim/integrator.hpp"
#include "sim/parallel_policy.hpp"
#include "sim/workspace.hpp"
#include "support/cancel.hpp"

namespace sops::sim {

/// Equilibrium-criterion parameters (paper §4.1).
struct EquilibriumParams {
  double threshold = 0.5;      ///< on Σ‖drift_i‖
  std::size_t hold_steps = 10; ///< consecutive sub-threshold steps required
};

/// Full specification of one stochastic run. Everything that affects the
/// trajectory is in here; (seed, stream) alone distinguish ensemble samples.
struct SimulationConfig {
  explicit SimulationConfig(InteractionModel interaction_model)
      : model(std::move(interaction_model)) {}

  InteractionModel model;
  std::vector<TypeId> types;  ///< per-particle types; size defines n

  double cutoff_radius = kUnboundedRadius;  ///< r_c
  double init_disc_radius = 5.0;            ///< uniform-disc initialization radius
  IntegratorParams integrator{};
  NeighborMode neighbor_mode = NeighborMode::kAuto;
  /// Extra candidate shell of NeighborMode::kVerletSkin (position units):
  /// pair lists cache everything within r_c + skin and rebuild only once a
  /// particle drifted past skin/2. Ignored by every other mode.
  double verlet_skin = geom::kDefaultVerletSkin;
  /// Adaptive skin (kVerletSkin only, default off): resize the shell
  /// between rebuilds toward a rebuild-interval setpoint, clamped to
  /// [verlet_skin_min, verlet_skin_max]. Off keeps rebuild timing (and the
  /// build enumeration order) exactly that of the fixed shell — existing
  /// Verlet golden pins depend on that.
  bool verlet_skin_adapt = false;
  double verlet_skin_min = 0.25;
  double verlet_skin_max = 4.0;
  /// Partial rebuilds (kVerletSkin only, default off): defer the full
  /// re-enumeration while only a capped set of runaway particles tripped
  /// the skin/2 gate, re-enumerating just their rows each step.
  bool verlet_partial_rebuild = false;

  std::size_t steps = 250;        ///< t_max
  std::size_t record_stride = 1;  ///< record every k-th step (plus step 0)
  bool stop_at_equilibrium = false;  ///< stop stepping once equilibrium holds
  EquilibriumParams equilibrium{};
  /// Feed every step's residual to the equilibrium detector. Disabling
  /// skips the per-step Σ‖drift_i‖ evaluation on non-recorded steps (the
  /// residual is then computed only for recorded frames) and leaves
  /// `equilibrium_step` unset. Must stay on for stop_at_equilibrium.
  bool track_equilibrium = true;

  std::uint64_t seed = 0;    ///< master experiment seed
  std::uint64_t stream = 0;  ///< sample index within the experiment

  /// Thread budget of this single run (0 = hardware concurrency). Spent
  /// inside each step's drift sum via the resolved `parallel_policy`: the
  /// workspace sizes a persistent TaskPool to the resolved width (or uses
  /// the slice an ensemble driver lent it), so sharded steps dispatch onto
  /// parked workers instead of forking. The default of 1 keeps standalone
  /// runs serial. Never affects results: the sharded drift path is
  /// bitwise-identical to serial for any thread count.
  std::size_t threads = 1;
  ParallelPolicy parallel_policy = ParallelPolicy::kAuto;

  /// Cooperative cancellation (not owned; may be null). Polled once per
  /// step: a raised token makes the run throw sops::CancelledError at the
  /// top of its next step, before any further drift work — the unwound
  /// stack releases the workspace and any recording sink exactly as a
  /// failure would. Until the throw, everything the run produced is
  /// bitwise-identical to the uncancelled run's prefix.
  const support::CancelToken* cancel = nullptr;
};

/// Recorded run. `frames[f]` is the configuration at step `frame_steps[f]`;
/// frame 0 is always the initial condition.
struct Trajectory {
  std::vector<TypeId> types;
  std::vector<std::vector<geom::Vec2>> frames;
  std::vector<std::size_t> frame_steps;
  std::vector<double> residual_norms;  ///< Σ‖drift‖ before each recorded step
  std::optional<std::size_t> equilibrium_step;  ///< step where criterion held
  std::optional<std::size_t> cycle_period;      ///< from the limit-cycle scan

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames.size(); }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return types.size();
  }
};

/// Everything a streamed run reports besides the frames themselves.
struct StreamedRun {
  std::vector<std::size_t> frame_steps;
  std::vector<double> residual_norms;
  std::optional<std::size_t> equilibrium_step;
};

/// Receives each recorded frame as it is produced: frame index on the
/// recording grid, the simulation step, and the configuration as SoA
/// coordinate lanes (valid only for the duration of the call — copy what
/// you keep; geom::interleave converts to Vec2 storage).
using FrameRecorder = std::function<void(
    std::size_t frame_index, std::size_t step, geom::PositionLanes)>;

/// The recording grid of a run that executes all `steps` steps: step 0,
/// every multiple of `stride`, and the final step.
[[nodiscard]] std::vector<std::size_t> recording_steps(std::size_t steps,
                                                       std::size_t stride);

/// Draws the paper's initial condition: n particles uniform on the disc of
/// `radius` centered at the origin.
[[nodiscard]] std::vector<geom::Vec2> sample_initial_disc(std::size_t n,
                                                          double radius,
                                                          rng::Xoshiro256& engine);

/// Runs one simulation to completion. Fully deterministic in the config.
[[nodiscard]] Trajectory run_simulation(const SimulationConfig& config);

/// Same, reusing a caller-owned workspace (neighbor backend, drift buffer,
/// RNG state) across calls — the allocation-free path for repeated runs.
[[nodiscard]] Trajectory run_simulation(const SimulationConfig& config,
                                        SimulationWorkspace& workspace);

/// Low-level streamed run: invokes `record_frame` for every recorded frame
/// instead of materializing a Trajectory. Deterministic in the config;
/// produces bit-identical positions to `run_simulation`.
StreamedRun run_simulation_streamed(const SimulationConfig& config,
                                    SimulationWorkspace& workspace,
                                    const FrameRecorder& record_frame);

}  // namespace sops::sim
