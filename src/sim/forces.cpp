#include "sim/forces.hpp"

#include <cmath>

#include "geom/cell_grid.hpp"
#include "geom/delaunay.hpp"

namespace sops::sim {
namespace {

// Contribution of neighbor j to particle i's drift.
inline geom::Vec2 pair_drift(const ParticleSystem& system,
                             const InteractionModel& model, std::size_t i,
                             std::size_t j) {
  const geom::Vec2 delta = system.positions[i] - system.positions[j];
  const double dist_sq = geom::norm_sq(delta);
  if (dist_sq == 0.0) return {};  // undefined direction; see header
  const double dist = std::sqrt(dist_sq);
  const double scaling = model.scaling(system.types[i], system.types[j], dist);
  return delta * (-scaling);
}

void accumulate_all_pairs(const ParticleSystem& system,
                          const InteractionModel& model, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const std::size_t n = system.size();
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d_sq =
          geom::dist_sq(system.positions[i], system.positions[j]);
      if (d_sq < cutoff_sq) drift += pair_drift(system, model, i, j);
    }
    out[i] = drift;
  }
}

void accumulate_cell_grid(const ParticleSystem& system,
                          const InteractionModel& model, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const geom::CellGrid grid(system.positions, cutoff_radius);
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    grid.for_each_neighbor(i, cutoff_radius, [&](std::size_t j) {
      drift += pair_drift(system, model, i, j);
    });
    out[i] = drift;
  }
}

void accumulate_delaunay(const ParticleSystem& system,
                         const InteractionModel& model, double cutoff_radius,
                         std::vector<geom::Vec2>& out) {
  const auto adjacency = geom::delaunay_adjacency(system.positions);
  const bool bounded = std::isfinite(cutoff_radius);
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < system.size(); ++i) {
    geom::Vec2 drift{};
    for (const std::size_t j : adjacency[i]) {
      if (bounded &&
          geom::dist_sq(system.positions[i], system.positions[j]) >= cutoff_sq) {
        continue;
      }
      drift += pair_drift(system, model, i, j);
    }
    out[i] = drift;
  }
}

}  // namespace

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode) {
  support::expect(cutoff_radius > 0.0, "accumulate_drift: cutoff must be positive");
  support::expect(system.types_within(model.types()),
                  "accumulate_drift: particle type outside the model");
  out.assign(system.size(), geom::Vec2{});

  const bool unbounded = !std::isfinite(cutoff_radius);
  if (mode == NeighborMode::kAuto) {
    mode = (unbounded || system.size() < 64) ? NeighborMode::kAllPairs
                                             : NeighborMode::kCellGrid;
  }
  if (mode == NeighborMode::kCellGrid) {
    support::expect(!unbounded, "accumulate_drift: cell grid needs finite r_c");
    accumulate_cell_grid(system, model, cutoff_radius, out);
  } else if (mode == NeighborMode::kDelaunay) {
    accumulate_delaunay(system, model, cutoff_radius, out);
  } else {
    accumulate_all_pairs(system, model, cutoff_radius, out);
  }
}

double total_drift_norm(std::span<const geom::Vec2> drift) {
  double total = 0.0;
  for (const geom::Vec2 d : drift) total += geom::norm(d);
  return total;
}

}  // namespace sops::sim
