#include "sim/forces.hpp"

#include <algorithm>
#include <cmath>

#include "geom/cell_grid.hpp"
#include "geom/verlet_list.hpp"
#include "sim/drift_kernel.hpp"
#include "support/parallel_for.hpp"
#include "support/simd.hpp"

namespace sops::sim {
namespace {

// The one precondition checker behind every accumulate_drift overload: the
// enum-mode, backend, and sharded entry points must reject exactly the same
// inputs, so they all funnel through here.
void check_drift_preconditions(const ParticleSystem& system,
                               std::size_t model_types, double cutoff_radius,
                               bool needs_finite_cutoff) {
  support::expect(cutoff_radius > 0.0, "accumulate_drift: cutoff must be positive");
  support::expect(system.types_within(model_types),
                  "accumulate_drift: particle type outside the model");
  support::expect(!needs_finite_cutoff || std::isfinite(cutoff_radius),
                  "accumulate_drift: cell grid needs finite r_c");
}

// Shards the per-particle gather `out[i] = drift_of(i)` over the backend's
// partition, dispatching the chunks on `executor` (shard count = executor
// width). Shards hold disjoint particles and drift_of is a pure gather, so
// any partition and worker count produce bitwise-identical output.
template <typename DriftOf>
void accumulate_sharded(geom::NeighborBackend& backend,
                        support::Executor& executor, const DriftOf& drift_of,
                        std::vector<geom::Vec2>& out) {
  const std::span<const std::uint32_t> bounds =
      backend.shard_bounds(executor.width());
  const std::span<const std::uint32_t> order = backend.shard_order();
  support::parallel_for_chunked(
      executor, bounds, [&](std::size_t chunk_begin, std::size_t chunk_end) {
        if (order.empty()) {
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            out[i] = drift_of(i);
          }
        } else {
          for (std::size_t k = chunk_begin; k < chunk_end; ++k) {
            const std::size_t i = order[k];
            out[i] = drift_of(i);
          }
        }
      });
}

// The cell-grid drift path: copy the configuration into bucket-ordered
// lanes once (one sequential pass — the only scattered reads of the whole
// accumulation), then hand each shard's cell range to the chunked kernel,
// which bulk-copies every cell's 3×3 block from the grid's contiguous
// column spans and runs the dense row kernel for each particle of the
// cell. Every particle's block depends only on its own cell, so the result
// is independent of the partition (width-invariant), and the kernel's lane
// order makes it scalar/SIMD bitwise-stable.
void accumulate_cell_kernel(const ParticleSystem& system,
                            const PairScalingTable& table, double cutoff_radius,
                            std::vector<geom::Vec2>& out,
                            geom::CellGridBackend& backend,
                            support::Executor& executor) {
  const geom::CellGrid& grid = backend.grid();
  const std::span<const std::uint32_t> bounds =
      backend.shard_bounds(executor.width());
  const std::span<const std::uint32_t> entries = grid.bucket_entries();
  const std::span<const std::uint32_t> starts = grid.bucket_starts();
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  const DriftKernels& kernels = select_drift_kernels();

  // The grid scattered its bucket-ordered coordinate lanes during the
  // rebuild; only the type lane is gathered here (its semantics are ours).
  const std::size_t n = system.size();
  std::vector<std::uint32_t>& tags = backend.bucket_tags();
  tags.resize(n);
  for (std::size_t k = 0; k < n; ++k) tags[k] = system.types[entries[k]];

  backend.ensure_gather_shards(bounds.size() - 1);  // serial: before dispatch
  support::parallel_for_shards(
      executor, bounds,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        // Shard cuts are CSR bucket boundaries, so `begin` opens a cell and
        // `end` closes one; bucket starts are strictly increasing (cells
        // are non-empty).
        const std::size_t cell_begin =
            static_cast<std::size_t>(
                std::upper_bound(starts.begin(), starts.end(),
                                 static_cast<std::uint32_t>(begin)) -
                starts.begin()) -
            1;
        const std::size_t cell_end = static_cast<std::size_t>(
            std::lower_bound(starts.begin(), starts.end(),
                             static_cast<std::uint32_t>(end)) -
            starts.begin());
        const DenseChunk chunk{grid.bucket_x().data(), grid.bucket_y().data(),
                               tags.data(),   entries.data(),
                               starts.data(), &grid,
                               cell_begin,    cell_end,
                               &backend.gather_scratch(shard), out.data(),
                               cutoff_sq};
        kernels.dense_chunk(table, chunk);
      });
}

}  // namespace

NeighborMode resolve_neighbor_mode(NeighborMode mode, std::size_t n,
                                   double cutoff_radius) {
  // Exhaustive on purpose: a mode value outside the enum (a cast, a
  // version-skewed config) must fail here, loudly, instead of riding a
  // default branch into whatever backend happens to be listed first.
  switch (mode) {
    case NeighborMode::kAuto: {
      // kAuto never picks kVerletSkin: the opt-in relaxes rebuild timing,
      // which existing cross-mode golden pins must not inherit silently.
      const bool unbounded = !std::isfinite(cutoff_radius);
      return (unbounded || n < 64) ? NeighborMode::kAllPairs
                                   : NeighborMode::kCellGrid;
    }
    case NeighborMode::kAllPairs:
    case NeighborMode::kCellGrid:
    case NeighborMode::kDelaunay:
    case NeighborMode::kVerletSkin:
      return mode;
  }
  support::expect(false, "resolve_neighbor_mode: unknown NeighborMode value");
  return NeighborMode::kAllPairs;
}

geom::NeighborBackendKind neighbor_backend_kind(NeighborMode resolved_mode) {
  switch (resolved_mode) {
    case NeighborMode::kAllPairs:
      return geom::NeighborBackendKind::kAllPairs;
    case NeighborMode::kCellGrid:
      return geom::NeighborBackendKind::kCellGrid;
    case NeighborMode::kDelaunay:
      return geom::NeighborBackendKind::kDelaunay;
    case NeighborMode::kVerletSkin:
      return geom::NeighborBackendKind::kVerletSkin;
    case NeighborMode::kAuto:
      break;
  }
  support::expect(false, "neighbor_backend_kind: mode must be resolved first");
  return geom::NeighborBackendKind::kAllPairs;
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode) {
  mode = resolve_neighbor_mode(mode, system.size(), cutoff_radius);
  check_drift_preconditions(system, model.types(), cutoff_radius,
                            mode == NeighborMode::kCellGrid ||
                                mode == NeighborMode::kVerletSkin);
  // One construction path for every mode: a fresh backend built and
  // consumed once — the per-call reference the persistent engine path is
  // (trivially) identical to. The former per-mode free functions are gone;
  // enum modes and the engine share one cell-grid/kernel entry point.
  const auto backend = geom::make_neighbor_backend(neighbor_backend_kind(mode));
  const PairScalingTable table(model);
  support::SerialExecutor serial;
  accumulate_drift(system, table, cutoff_radius, out, *backend, serial);
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend) {
  accumulate_drift(system, PairScalingTable(model), cutoff_radius, out, backend);
}

void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend, std::size_t step_threads) {
  // The fork-per-call path: a transient SpawnExecutor of the requested
  // width. Same partition as the pooled overload, so same bits.
  support::SpawnExecutor executor(step_threads);
  accumulate_drift(system, table, cutoff_radius, out, backend, executor);
}

void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend,
                      support::Executor& executor) {
  check_drift_preconditions(
      system, table.types(), cutoff_radius,
      backend.kind() == geom::NeighborBackendKind::kCellGrid ||
          backend.kind() == geom::NeighborBackendKind::kVerletSkin);
  // Executor-aware: the Verlet backend shards its (occasional) candidate
  // enumeration on the same lent workers the drift sum uses; everyone else
  // rebuilds serially as before.
  backend.rebuild(system.lanes(), cutoff_radius, executor);

  const std::size_t n = system.size();
  // resize, not assign: every path below writes every out[i] exactly once
  // (each particle belongs to exactly one cell/shard), so pre-zeroing n
  // Vec2s per step would be pure memory traffic.
  out.resize(n);
  const double cutoff_sq = cutoff_radius * cutoff_radius;

  // Fused kernel paths for the built-in backends: candidates flow through
  // the lane-structured drift kernels (sim/drift_kernel.hpp) — dense rows
  // where coordinates already sit contiguously, indexed rows elsewhere.
  // Every out[i] is a pure gather in a fixed per-particle order, so the
  // sharded dispatch is bitwise-identical to the serial loop for any width,
  // and the scalar/SIMD kernel selection never changes the bits. Backends
  // outside this translation unit fall through to the generic span path
  // below, always serially: NeighborBackend::neighbors() may alias shared
  // scratch, which the shards' workers must not race on.
  if (auto* cell_backend = dynamic_cast<geom::CellGridBackend*>(&backend)) {
    accumulate_cell_kernel(system, table, cutoff_radius, out, *cell_backend,
                           executor);
    return;
  }
  const DriftKernels& kernels = select_drift_kernels();
  if (dynamic_cast<const geom::AllPairsBackend*>(&backend) != nullptr) {
    // The whole particle set is one dense candidate block (self masks out
    // at Δz = 0); cutoff_sq may be +inf for the unbounded radius.
    const auto drift_of = [&](std::size_t i) {
      const DenseRow row{system.x[i],      system.y[i],
                         system.types[i],  system.x.data(),
                         system.y.data(),  system.types.data(),
                         n,                cutoff_sq};
      return kernels.dense(table, row);
    };
    accumulate_sharded(backend, executor, drift_of, out);
    return;
  }
  if (auto* verlet = dynamic_cast<geom::VerletListBackend*>(&backend)) {
    // The cached pair-list path: each shard's slice of particle-id order
    // goes to ONE chunked kernel call streaming the raw CSR arrays —
    // Verlet rows are short, so amortizing the per-row dispatch across the
    // shard is what makes quiet steps beat the grid. The chunk body inlines
    // the indexed row kernel per particle (identical op sequence, bitwise),
    // gathering candidates' *current* coordinates from the cache-resident
    // global lanes; out-of-cutoff and coincident candidates zero out under
    // the live-lane mask. Rows are per-particle gathers, so the sharded
    // pass is width-invariant and, between rebuilds, bitwise-stable.
    //
    // On partial-rebuild steps the raw CSR rows are stale for the (capped)
    // runaway set, so a serial postfix patches them: each partial member's
    // row is re-evaluated from its overlay (candidate_row resolves to the
    // fresh re-enumeration) and each extra member gets its additive extra
    // row, both via the filter → packed kernel pair — the survivor
    // selection is exact-comparison arithmetic, hence ISA-invariant, and
    // the postfix is serial and ordered, hence width-invariant.
    const std::span<const std::uint32_t> bounds =
        backend.shard_bounds(executor.width());
    const std::span<const std::size_t> offsets = verlet->csr_offsets();
    const std::span<const std::uint32_t> indices = verlet->csr_indices();
    // Eval-path selection by force law: the double-Gaussian's per-candidate
    // exp dominates its row cost, so compacting survivors first (filter →
    // packed lanes) pays for itself several times over — roughly half the
    // cached candidates sit outside the cut-off on quiet steps, and the
    // masked indexed kernel would spend full exp lanes on them. The spring
    // law is the opposite: its row math is a handful of cheap ops, the
    // compaction pass costs more than the dead lanes it removes, and the
    // chunked masked kernel wins. Both paths are width-invariant (every
    // out[i] depends on row i alone) and each is bitwise-stable across
    // rebuilds and ISAs; they differ in lane grouping, so they are two
    // *summation orders* of the same row — parity between them is exercised
    // (to tolerance) by the engine parity fuzz, and each law always takes
    // the same path, keeping per-law trajectories deterministic.
    const bool compact_first = table.kind() == ForceLawKind::kDoubleGaussian;
    const std::size_t lane_room = verlet->max_row_count() + support::kSimdWidth;
    const std::size_t shard_count = bounds.empty() ? 0 : bounds.size() - 1;
    verlet->ensure_filter_shards(std::max<std::size_t>(shard_count, 1));
    for (std::size_t k = 0; k < std::max<std::size_t>(shard_count, 1); ++k) {
      geom::GatherScratch& s = verlet->filter_scratch(k);
      if (s.x.size() < lane_room) {
        s.x.resize(lane_room);
        s.y.resize(lane_room);
        s.tag.resize(lane_room);
      }
    }
    support::parallel_for_shards(
        executor, bounds,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          if (!compact_first) {
            const IndexedChunk chunk{system.x.data(),     system.y.data(),
                                     system.types.data(), nullptr,
                                     offsets.data(),      indices.data(),
                                     begin,               end,
                                     out.data(),          cutoff_sq};
            kernels.indexed_chunk(table, chunk);
            return;
          }
          geom::GatherScratch& s = verlet->filter_scratch(shard);
          for (std::size_t i = begin; i < end; ++i) {
            const FilterRow frow{system.x[i],
                                 system.y[i],
                                 system.x.data(),
                                 system.y.data(),
                                 system.types.data(),
                                 indices.data() + offsets[i],
                                 offsets[i + 1] - offsets[i],
                                 cutoff_sq,
                                 s.x.data(),
                                 s.y.data(),
                                 s.tag.data()};
            const std::size_t kept = kernels.filter(frow);
            const PackedRow row{system.x[i], system.y[i], system.types[i],
                                s.x.data(),  s.y.data(),  s.tag.data(),
                                kept,        cutoff_sq};
            out[i] = kernels.packed(table, row);
          }
        });
    const std::span<const std::uint32_t> partials = verlet->partial_members();
    const std::span<const std::uint32_t> extras = verlet->extra_members();
    if (!partials.empty() || !extras.empty()) {
      geom::GatherScratch& s = verlet->filter_scratch(0);
      const auto row_drift = [&](std::size_t i,
                                 std::span<const std::uint32_t> cand) {
        const FilterRow frow{system.x[i],          system.y[i],
                             system.x.data(),      system.y.data(),
                             system.types.data(),  cand.data(),
                             cand.size(),          cutoff_sq,
                             s.x.data(),           s.y.data(),
                             s.tag.data()};
        const std::size_t kept = kernels.filter(frow);
        const PackedRow row{system.x[i], system.y[i], system.types[i],
                            s.x.data(),  s.y.data(),  s.tag.data(),
                            kept,        cutoff_sq};
        return kernels.packed(table, row);
      };
      for (const std::uint32_t i : partials) {
        out[i] = row_drift(i, verlet->candidate_row(i));
      }
      for (const std::uint32_t i : extras) {
        const geom::Vec2 e = row_drift(i, verlet->extra_candidates(i));
        out[i].x += e.x;
        out[i].y += e.y;
      }
    }
    return;
  }
  if (const auto* delaunay =
          dynamic_cast<const geom::DelaunayBackend*>(&backend)) {
    // Adjacency rows are already pruned by the cut-off at rebuild; the
    // kernel mask is idempotent on them.
    const auto drift_of = [&](std::size_t i) {
      const std::span<const std::uint32_t> adj = delaunay->adjacency_row(i);
      const IndexedRow row{system.x[i],      system.y[i],
                           system.types[i],  system.x.data(),
                           system.y.data(),  system.types.data(),
                           adj.data(),       adj.size(),
                           cutoff_sq};
      return kernels.indexed(table, row);
    };
    accumulate_sharded(backend, executor, drift_of, out);
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const std::uint32_t> nb = backend.neighbors(i);
    const IndexedRow row{system.x[i],      system.y[i],
                         system.types[i],  system.x.data(),
                         system.y.data(),  system.types.data(),
                         nb.data(),        nb.size(),
                         cutoff_sq};
    out[i] = kernels.indexed(table, row);
  }
}

double total_drift_norm(std::span<const geom::Vec2> drift) {
  // Kernel-dispatched: norms are computed in lanes but summed strictly in
  // index order, so every policy/ISA returns the same bits as this loop:
  //   for (d : drift) total += sqrt(d.x*d.x + d.y*d.y)
  return select_drift_kernels().drift_norm(drift.data(), drift.size());
}

}  // namespace sops::sim
