#include "sim/forces.hpp"

#include <cmath>

#include "geom/cell_grid.hpp"
#include "geom/delaunay.hpp"
#include "geom/verlet_list.hpp"
#include "support/parallel_for.hpp"

namespace sops::sim {
namespace {

// Contribution of neighbor j to particle i's drift.
inline geom::Vec2 pair_drift(const ParticleSystem& system,
                             const PairScalingTable& table, std::size_t i,
                             std::size_t j) {
  const geom::Vec2 delta = system.positions[i] - system.positions[j];
  const double dist_sq = geom::norm_sq(delta);
  if (dist_sq == 0.0) return {};  // undefined direction; see header
  const double dist = std::sqrt(dist_sq);
  const double scaling = table(system.types[i], system.types[j], dist);
  return delta * (-scaling);
}

// Drift of particle i against every other particle within the cut-off —
// the one definition of the all-pairs sum, shared by the enum-mode path
// and the serial and sharded backend paths.
inline geom::Vec2 all_pairs_drift_of(const ParticleSystem& system,
                                     const PairScalingTable& table,
                                     double cutoff_sq, std::size_t i) {
  geom::Vec2 drift{};
  for (std::size_t j = 0; j < system.size(); ++j) {
    if (j == i) continue;
    const double d_sq = geom::dist_sq(system.positions[i], system.positions[j]);
    if (d_sq < cutoff_sq) drift += pair_drift(system, table, i, j);
  }
  return drift;
}

void accumulate_all_pairs(const ParticleSystem& system,
                          const PairScalingTable& table, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < system.size(); ++i) {
    out[i] = all_pairs_drift_of(system, table, cutoff_sq, i);
  }
}

void accumulate_cell_grid(const ParticleSystem& system,
                          const PairScalingTable& table, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const geom::CellGrid grid(system.positions, cutoff_radius);
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    grid.for_each_neighbor(i, cutoff_radius, [&](std::size_t j) {
      drift += pair_drift(system, table, i, j);
    });
    out[i] = drift;
  }
}

void accumulate_delaunay(const ParticleSystem& system,
                         const PairScalingTable& table, double cutoff_radius,
                         std::vector<geom::Vec2>& out) {
  const auto adjacency = geom::delaunay_adjacency(system.positions);
  const bool bounded = std::isfinite(cutoff_radius);
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < system.size(); ++i) {
    geom::Vec2 drift{};
    for (const std::size_t j : adjacency[i]) {
      if (bounded &&
          geom::dist_sq(system.positions[i], system.positions[j]) >= cutoff_sq) {
        continue;
      }
      drift += pair_drift(system, table, i, j);
    }
    out[i] = drift;
  }
}

// The one precondition checker behind every accumulate_drift overload: the
// enum-mode, backend, and sharded entry points must reject exactly the same
// inputs, so they all funnel through here.
void check_drift_preconditions(const ParticleSystem& system,
                               std::size_t model_types, double cutoff_radius,
                               bool needs_finite_cutoff) {
  support::expect(cutoff_radius > 0.0, "accumulate_drift: cutoff must be positive");
  support::expect(system.types_within(model_types),
                  "accumulate_drift: particle type outside the model");
  support::expect(!needs_finite_cutoff || std::isfinite(cutoff_radius),
                  "accumulate_drift: cell grid needs finite r_c");
}

// Shards the per-particle gather `out[i] = drift_of(i)` over the backend's
// partition, dispatching the chunks on `executor` (shard count = executor
// width). Shards hold disjoint particles and drift_of is a pure gather, so
// any partition and worker count produce bitwise-identical output.
template <typename DriftOf>
void accumulate_sharded(geom::NeighborBackend& backend,
                        support::Executor& executor, const DriftOf& drift_of,
                        std::vector<geom::Vec2>& out) {
  const std::span<const std::uint32_t> bounds =
      backend.shard_bounds(executor.width());
  const std::span<const std::uint32_t> order = backend.shard_order();
  support::parallel_for_chunked(
      executor, bounds, [&](std::size_t chunk_begin, std::size_t chunk_end) {
        if (order.empty()) {
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            out[i] = drift_of(i);
          }
        } else {
          for (std::size_t k = chunk_begin; k < chunk_end; ++k) {
            const std::size_t i = order[k];
            out[i] = drift_of(i);
          }
        }
      });
}

}  // namespace

NeighborMode resolve_neighbor_mode(NeighborMode mode, std::size_t n,
                                   double cutoff_radius) {
  // Exhaustive on purpose: a mode value outside the enum (a cast, a
  // version-skewed config) must fail here, loudly, instead of riding a
  // default branch into whatever backend happens to be listed first.
  switch (mode) {
    case NeighborMode::kAuto: {
      // kAuto never picks kVerletSkin: the opt-in relaxes rebuild timing,
      // which existing cross-mode golden pins must not inherit silently.
      const bool unbounded = !std::isfinite(cutoff_radius);
      return (unbounded || n < 64) ? NeighborMode::kAllPairs
                                   : NeighborMode::kCellGrid;
    }
    case NeighborMode::kAllPairs:
    case NeighborMode::kCellGrid:
    case NeighborMode::kDelaunay:
    case NeighborMode::kVerletSkin:
      return mode;
  }
  support::expect(false, "resolve_neighbor_mode: unknown NeighborMode value");
  return NeighborMode::kAllPairs;
}

geom::NeighborBackendKind neighbor_backend_kind(NeighborMode resolved_mode) {
  switch (resolved_mode) {
    case NeighborMode::kAllPairs:
      return geom::NeighborBackendKind::kAllPairs;
    case NeighborMode::kCellGrid:
      return geom::NeighborBackendKind::kCellGrid;
    case NeighborMode::kDelaunay:
      return geom::NeighborBackendKind::kDelaunay;
    case NeighborMode::kVerletSkin:
      return geom::NeighborBackendKind::kVerletSkin;
    case NeighborMode::kAuto:
      break;
  }
  support::expect(false, "neighbor_backend_kind: mode must be resolved first");
  return geom::NeighborBackendKind::kAllPairs;
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode) {
  mode = resolve_neighbor_mode(mode, system.size(), cutoff_radius);
  check_drift_preconditions(system, model.types(), cutoff_radius,
                            mode == NeighborMode::kCellGrid ||
                                mode == NeighborMode::kVerletSkin);
  if (mode == NeighborMode::kVerletSkin) {
    // The enum path is the per-call reference: a fresh list (default skin)
    // built and consumed once — same pair set as the cell grid, enumerated
    // in the build walk's order.
    geom::VerletListBackend backend;
    accumulate_drift(system, PairScalingTable(model), cutoff_radius, out,
                     backend, std::size_t{1});
    return;
  }
  out.assign(system.size(), geom::Vec2{});

  const PairScalingTable table(model);
  if (mode == NeighborMode::kCellGrid) {
    accumulate_cell_grid(system, table, cutoff_radius, out);
  } else if (mode == NeighborMode::kDelaunay) {
    accumulate_delaunay(system, table, cutoff_radius, out);
  } else {
    accumulate_all_pairs(system, table, cutoff_radius, out);
  }
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend) {
  accumulate_drift(system, PairScalingTable(model), cutoff_radius, out, backend);
}

void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend, std::size_t step_threads) {
  // The fork-per-call path: a transient SpawnExecutor of the requested
  // width. Same partition as the pooled overload, so same bits.
  support::SpawnExecutor executor(step_threads);
  accumulate_drift(system, table, cutoff_radius, out, backend, executor);
}

void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend,
                      support::Executor& executor) {
  check_drift_preconditions(
      system, table.types(), cutoff_radius,
      backend.kind() == geom::NeighborBackendKind::kCellGrid ||
          backend.kind() == geom::NeighborBackendKind::kVerletSkin);
  // Executor-aware: the Verlet backend shards its (occasional) candidate
  // enumeration on the same lent workers the drift sum uses; everyone else
  // rebuilds serially as before.
  backend.rebuild(system.positions, cutoff_radius, executor);
  const std::size_t width = executor.width();

  const std::size_t n = system.size();
  out.assign(n, geom::Vec2{});

  // Fused fast paths for the built-in backends: enumerate and accumulate in
  // one inlined loop instead of materializing neighbor spans. Enumeration
  // order is identical to the generic path, so results are too — and since
  // every out[i] is a pure gather in that fixed order, the sharded variant
  // of each path is bitwise-identical to its serial loop. Backends outside
  // this translation unit fall through to the (correct, somewhat slower)
  // generic span path below, always serially: NeighborBackend::neighbors()
  // may alias shared scratch, which the shards' workers must not race on.
  if (auto* cell_grid = dynamic_cast<geom::CellGridBackend*>(&backend)) {
    const geom::CellGrid& grid = cell_grid->grid();
    const auto drift_of = [&](std::size_t i) {
      geom::Vec2 drift{};
      grid.for_each_neighbor(i, cutoff_radius, [&](std::size_t j) {
        drift += pair_drift(system, table, i, j);
      });
      return drift;
    };
    if (width > 1) {
      accumulate_sharded(backend, executor, drift_of, out);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = drift_of(i);
    }
    return;
  }
  if (dynamic_cast<const geom::AllPairsBackend*>(&backend) != nullptr) {
    const double cutoff_sq = cutoff_radius * cutoff_radius;
    const auto drift_of = [&](std::size_t i) {
      return all_pairs_drift_of(system, table, cutoff_sq, i);
    };
    if (width > 1) {
      accumulate_sharded(backend, executor, drift_of, out);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = drift_of(i);
    }
    return;
  }
  if (const auto* verlet =
          dynamic_cast<const geom::VerletListBackend*>(&backend)) {
    // The pair-list kernel: iterate the cached candidate rows (within
    // r_c + skin at build time) and apply the true cut-off per pair at the
    // *current* positions. On quiet steps this is the whole neighbor cost —
    // flat CSR reads, no hash probes, no cell walk. Row order is frozen at
    // build time, so between rebuilds the sum is bitwise-stable and the
    // sharded variant equals the serial loop.
    const double cutoff_sq = cutoff_radius * cutoff_radius;
    const auto drift_of = [&](std::size_t i) {
      geom::Vec2 drift{};
      for (const std::uint32_t j : verlet->candidate_row(i)) {
        if (geom::dist_sq(system.positions[i], system.positions[j]) <
            cutoff_sq) {
          drift += pair_drift(system, table, i, j);
        }
      }
      return drift;
    };
    if (width > 1) {
      accumulate_sharded(backend, executor, drift_of, out);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = drift_of(i);
    }
    return;
  }
  if (const auto* delaunay =
          dynamic_cast<const geom::DelaunayBackend*>(&backend);
      delaunay != nullptr && width > 1) {
    const auto drift_of = [&](std::size_t i) {
      geom::Vec2 drift{};
      for (const std::uint32_t j : delaunay->adjacency_row(i)) {
        drift += pair_drift(system, table, i, j);
      }
      return drift;
    };
    accumulate_sharded(backend, executor, drift_of, out);
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    for (const std::uint32_t j : backend.neighbors(i)) {
      drift += pair_drift(system, table, i, j);
    }
    out[i] = drift;
  }
}

double total_drift_norm(std::span<const geom::Vec2> drift) {
  double total = 0.0;
  for (const geom::Vec2 d : drift) total += geom::norm(d);
  return total;
}

}  // namespace sops::sim
