#include "sim/forces.hpp"

#include <cmath>

#include "geom/cell_grid.hpp"
#include "geom/delaunay.hpp"

namespace sops::sim {
namespace {

// Contribution of neighbor j to particle i's drift.
inline geom::Vec2 pair_drift(const ParticleSystem& system,
                             const PairScalingTable& table, std::size_t i,
                             std::size_t j) {
  const geom::Vec2 delta = system.positions[i] - system.positions[j];
  const double dist_sq = geom::norm_sq(delta);
  if (dist_sq == 0.0) return {};  // undefined direction; see header
  const double dist = std::sqrt(dist_sq);
  const double scaling = table(system.types[i], system.types[j], dist);
  return delta * (-scaling);
}

void accumulate_all_pairs(const ParticleSystem& system,
                          const PairScalingTable& table, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const std::size_t n = system.size();
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d_sq =
          geom::dist_sq(system.positions[i], system.positions[j]);
      if (d_sq < cutoff_sq) drift += pair_drift(system, table, i, j);
    }
    out[i] = drift;
  }
}

void accumulate_cell_grid(const ParticleSystem& system,
                          const PairScalingTable& table, double cutoff_radius,
                          std::vector<geom::Vec2>& out) {
  const geom::CellGrid grid(system.positions, cutoff_radius);
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    grid.for_each_neighbor(i, cutoff_radius, [&](std::size_t j) {
      drift += pair_drift(system, table, i, j);
    });
    out[i] = drift;
  }
}

void accumulate_delaunay(const ParticleSystem& system,
                         const PairScalingTable& table, double cutoff_radius,
                         std::vector<geom::Vec2>& out) {
  const auto adjacency = geom::delaunay_adjacency(system.positions);
  const bool bounded = std::isfinite(cutoff_radius);
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < system.size(); ++i) {
    geom::Vec2 drift{};
    for (const std::size_t j : adjacency[i]) {
      if (bounded &&
          geom::dist_sq(system.positions[i], system.positions[j]) >= cutoff_sq) {
        continue;
      }
      drift += pair_drift(system, table, i, j);
    }
    out[i] = drift;
  }
}

void check_preconditions(const ParticleSystem& system,
                         const InteractionModel& model, double cutoff_radius) {
  support::expect(cutoff_radius > 0.0, "accumulate_drift: cutoff must be positive");
  support::expect(system.types_within(model.types()),
                  "accumulate_drift: particle type outside the model");
}

}  // namespace

NeighborMode resolve_neighbor_mode(NeighborMode mode, std::size_t n,
                                   double cutoff_radius) noexcept {
  if (mode != NeighborMode::kAuto) return mode;
  const bool unbounded = !std::isfinite(cutoff_radius);
  return (unbounded || n < 64) ? NeighborMode::kAllPairs
                               : NeighborMode::kCellGrid;
}

geom::NeighborBackendKind neighbor_backend_kind(NeighborMode resolved_mode) {
  switch (resolved_mode) {
    case NeighborMode::kAllPairs:
      return geom::NeighborBackendKind::kAllPairs;
    case NeighborMode::kCellGrid:
      return geom::NeighborBackendKind::kCellGrid;
    case NeighborMode::kDelaunay:
      return geom::NeighborBackendKind::kDelaunay;
    case NeighborMode::kAuto:
      break;
  }
  support::expect(false, "neighbor_backend_kind: mode must be resolved first");
  return geom::NeighborBackendKind::kAllPairs;
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode) {
  check_preconditions(system, model, cutoff_radius);
  out.assign(system.size(), geom::Vec2{});

  const PairScalingTable table(model);
  mode = resolve_neighbor_mode(mode, system.size(), cutoff_radius);
  if (mode == NeighborMode::kCellGrid) {
    support::expect(std::isfinite(cutoff_radius),
                    "accumulate_drift: cell grid needs finite r_c");
    accumulate_cell_grid(system, table, cutoff_radius, out);
  } else if (mode == NeighborMode::kDelaunay) {
    accumulate_delaunay(system, table, cutoff_radius, out);
  } else {
    accumulate_all_pairs(system, table, cutoff_radius, out);
  }
}

void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend) {
  accumulate_drift(system, PairScalingTable(model), cutoff_radius, out, backend);
}

void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend) {
  support::expect(cutoff_radius > 0.0, "accumulate_drift: cutoff must be positive");
  support::expect(system.types_within(table.types()),
                  "accumulate_drift: particle type outside the model");
  support::expect(backend.kind() != geom::NeighborBackendKind::kCellGrid ||
                      std::isfinite(cutoff_radius),
                  "accumulate_drift: cell grid needs finite r_c");
  backend.rebuild(system.positions, cutoff_radius);

  const std::size_t n = system.size();
  out.assign(n, geom::Vec2{});

  // Fused fast paths for the built-in backends: enumerate and accumulate in
  // one inlined loop instead of materializing neighbor spans. Enumeration
  // order is identical to the generic path, so results are too. Backends
  // outside this translation unit fall through to the (correct, somewhat
  // slower) generic span path below.
  if (const auto* cell_grid =
          dynamic_cast<const geom::CellGridBackend*>(&backend)) {
    const geom::CellGrid& grid = cell_grid->grid();
    for (std::size_t i = 0; i < n; ++i) {
      geom::Vec2 drift{};
      grid.for_each_neighbor(i, cutoff_radius, [&](std::size_t j) {
        drift += pair_drift(system, table, i, j);
      });
      out[i] = drift;
    }
    return;
  }
  if (dynamic_cast<const geom::AllPairsBackend*>(&backend) != nullptr) {
    accumulate_all_pairs(system, table, cutoff_radius, out);
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    for (const std::uint32_t j : backend.neighbors(i)) {
      drift += pair_drift(system, table, i, j);
    }
    out[i] = drift;
  }
}

double total_drift_norm(std::span<const geom::Vec2> drift) {
  double total = 0.0;
  for (const geom::Vec2 d : drift) total += geom::norm(d);
  return total;
}

}  // namespace sops::sim
