#include "sim/asymmetric.hpp"

#include <cmath>

#include "rng/samplers.hpp"

namespace sops::sim {

bool FullMatrix::is_symmetric() const noexcept {
  for (std::size_t a = 0; a < types_; ++a) {
    for (std::size_t b = a + 1; b < types_; ++b) {
      if (data_[a * types_ + b] != data_[b * types_ + a]) return false;
    }
  }
  return true;
}

AsymmetricInteractionModel::AsymmetricInteractionModel(ForceLawKind kind,
                                                       std::size_t types,
                                                       PairParams defaults)
    : kind_(kind),
      k_(types, defaults.k),
      r_(types, defaults.r),
      sigma_(types, defaults.sigma),
      tau_(types, defaults.tau) {
  support::expect(types > 0,
                  "AsymmetricInteractionModel: needs at least one type");
  support::expect(defaults.sigma > 0.0 && defaults.tau > 0.0,
                  "AsymmetricInteractionModel: sigma/tau must be positive");
}

AsymmetricInteractionModel& AsymmetricInteractionModel::set_k(std::size_t self,
                                                              std::size_t other,
                                                              double v) {
  k_.set(self, other, v);
  return *this;
}
AsymmetricInteractionModel& AsymmetricInteractionModel::set_r(std::size_t self,
                                                              std::size_t other,
                                                              double v) {
  support::expect(v >= 0.0, "AsymmetricInteractionModel::set_r: negative");
  r_.set(self, other, v);
  return *this;
}
AsymmetricInteractionModel& AsymmetricInteractionModel::set_sigma(
    std::size_t self, std::size_t other, double v) {
  support::expect(v > 0.0, "AsymmetricInteractionModel::set_sigma: must be > 0");
  sigma_.set(self, other, v);
  return *this;
}
AsymmetricInteractionModel& AsymmetricInteractionModel::set_tau(
    std::size_t self, std::size_t other, double v) {
  support::expect(v > 0.0, "AsymmetricInteractionModel::set_tau: must be > 0");
  tau_.set(self, other, v);
  return *this;
}

bool AsymmetricInteractionModel::is_symmetric() const noexcept {
  return k_.is_symmetric() && r_.is_symmetric() && sigma_.is_symmetric() &&
         tau_.is_symmetric();
}

void accumulate_drift_asymmetric(const ParticleSystem& system,
                                 const AsymmetricInteractionModel& model,
                                 double cutoff_radius,
                                 std::vector<geom::Vec2>& out) {
  support::expect(cutoff_radius > 0.0,
                  "accumulate_drift_asymmetric: cutoff must be positive");
  support::expect(system.types_within(model.types()),
                  "accumulate_drift_asymmetric: particle type outside model");
  const std::size_t n = system.size();
  out.assign(n, geom::Vec2{});
  const double cutoff_sq = cutoff_radius * cutoff_radius;
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec2 drift{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const geom::Vec2 delta = system.position(i) - system.position(j);
      const double d_sq = geom::norm_sq(delta);
      if (d_sq == 0.0 || d_sq >= cutoff_sq) continue;
      const double scaling =
          model.scaling(system.types[i], system.types[j], std::sqrt(d_sq));
      drift += delta * (-scaling);
    }
    out[i] = drift;
  }
}

double euler_maruyama_step_asymmetric(ParticleSystem& system,
                                      const AsymmetricInteractionModel& model,
                                      double cutoff_radius,
                                      const IntegratorParams& params,
                                      rng::Xoshiro256& engine,
                                      std::vector<geom::Vec2>& drift_scratch) {
  support::expect(params.dt > 0.0,
                  "euler_maruyama_step_asymmetric: dt must be positive");
  support::expect(params.noise_variance >= 0.0,
                  "euler_maruyama_step_asymmetric: negative noise variance");

  accumulate_drift_asymmetric(system, model, cutoff_radius, drift_scratch);
  const double residual = total_drift_norm(drift_scratch);

  const double noise_scale =
      std::sqrt(params.dt) * std::sqrt(params.noise_variance);
  const double max_step_sq =
      params.max_step > 0.0 ? params.max_step * params.max_step : 0.0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    geom::Vec2 step = drift_scratch[i] * params.dt;
    if (max_step_sq > 0.0 && geom::norm_sq(step) > max_step_sq) {
      step *= params.max_step / geom::norm(step);
    }
    if (noise_scale > 0.0) step += rng::normal_vec2(engine, 1.0) * noise_scale;
    system.translate(i, step);
  }
  return residual;
}

AsymmetricInteractionModel make_chaser_evader_model(double chase_distance,
                                                    double evade_distance,
                                                    double k) {
  support::expect(chase_distance > 0.0 && evade_distance > chase_distance,
                  "make_chaser_evader_model: need 0 < chase < evade");
  AsymmetricInteractionModel model(ForceLawKind::kSpring, 2,
                                   PairParams{k, 1.0, 1.0, 1.0});
  // Type 0 (chaser) wants to sit close to type 1; type 1 (evader) wants to
  // be much farther from type 0 — mutually unsatisfiable preferred
  // distances, the paper's recipe for cycling.
  model.set_r(0, 1, chase_distance);
  model.set_r(1, 0, evade_distance);
  // Within-type: neutral spacing at the midpoint scale.
  model.set_r(0, 0, chase_distance);
  model.set_r(1, 1, chase_distance);
  return model;
}

}  // namespace sops::sim
