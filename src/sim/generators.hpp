// Random interaction-model generators matching the paper's experiment
// descriptions ("10 randomly generated types with mutual preferred distance
// radii r_αβ between …"). All draws are deterministic in (seed, index).
#pragma once

#include <cstdint>

#include "rng/engine.hpp"
#include "sim/force_law.hpp"

namespace sops::sim {

/// Ranges for the random symmetric matrices. Defaults follow §4.1.
struct RandomModelRanges {
  double k_min = 1.0, k_max = 1.0;   ///< k_αβ (Fig. 9/10 captions use k = 1)
  double r_min = 2.0, r_max = 8.0;   ///< r_αβ (Fig. 9/10 captions)
  double tau_min = 1.0, tau_max = 10.0;  ///< τ_αβ (F² only)
};

/// Draws a random symmetric F¹ model over `types` types: each unordered
/// pair's (k, r) is sampled uniformly from the ranges.
[[nodiscard]] InteractionModel random_spring_model(std::size_t types,
                                                   const RandomModelRanges& ranges,
                                                   rng::Xoshiro256& engine);

/// Draws a random symmetric F² model over `types` types. For each unordered
/// pair a preferred distance r is drawn from [r_min, r_max] and the pair's
/// σ (with τ from its own range) is solved so the force's zero crossing
/// lands at r — matching Fig. 8's caption, which specifies F² interactions
/// by preferred-distance radii.
[[nodiscard]] InteractionModel random_double_gaussian_model(
    std::size_t types, const RandomModelRanges& ranges, rng::Xoshiro256& engine);

/// Draws the paper's *literal* F² setting (§4.1): σ_αβ = 1, τ_αβ uniform in
/// [tau_min, tau_max], k_αβ uniform in [k_min, k_max]. With σ ≤ τ this is
/// the purely repulsive, decaying regime (see force_law.hpp sign note).
[[nodiscard]] InteractionModel random_literal_f2_model(
    std::size_t types, const RandomModelRanges& ranges, rng::Xoshiro256& engine);

}  // namespace sops::sim
