// The paper's two force-scaling families, Eqs. (7) and (8), and the
// interaction model bundling the per-type-pair parameter matrices.
//
// Sign convention (fixed by Eq. 6, ż_i = Σ −F(‖Δz‖)·Δz with Δz = z_i − z_j):
// positive force scaling is ATTRACTION toward the neighbor, negative is
// repulsion. F¹ therefore repels below its preferred distance r_αβ and
// attracts above it; F² with σ ≤ τ is purely repulsive and decaying (the
// paper's σ = 1 setting), while σ > τ produces a repulsive core with an
// attractive tail whose zero crossing acts as the preferred distance.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <span>

#include "sim/symmetric_matrix.hpp"

namespace sops::sim {

/// Which of the paper's force-scaling families Eq. (7)/(8) is in effect.
enum class ForceLawKind {
  kSpring,          ///< F¹, Eq. (7): k (1 − r/x); long-range attraction up to r_c
  kDoubleGaussian,  ///< F², Eq. (8): k (e^{−x²/2σ}/σ² − e^{−x²/2τ}); decaying
};

/// Scalar parameters of a single type pair (α, β).
struct PairParams {
  double k = 1.0;      ///< interaction strength k_αβ
  double r = 1.0;      ///< preferred distance r_αβ (used by F¹ only)
  double sigma = 1.0;  ///< σ_αβ (used by F² only)
  double tau = 1.0;    ///< τ_αβ (used by F² only)
};

/// Evaluates the force scaling F_αβ(x) for inter-particle distance x > 0.
/// Note F¹ diverges to −∞ as x → 0; the *velocity* contribution
/// −F(x)·Δz stays bounded for F¹ because the scaling multiplies Δz.
[[nodiscard]] double force_scaling(ForceLawKind kind, const PairParams& p,
                                   double x);

/// Derivative dF/dx (used by tests and by the preferred-distance solver).
[[nodiscard]] double force_scaling_derivative(ForceLawKind kind,
                                              const PairParams& p, double x);

/// Fixed evaluation block of the batched force-scaling paths. Pinned at 4 on
/// every ISA: the lane width is part of the bitwise-reproducibility contract
/// (see support/simd.hpp), so wider machines never widen the math.
inline constexpr std::size_t kForceLanes = 4;

/// One block of F_αβ(x): out[l] = force_scaling(kind, {k,r,sigma,tau}[l], x[l])
/// for kForceLanes lanes, each lane the exact scalar expression — the block
/// form is bitwise-identical to four scalar calls. Callers guarantee
/// x[l] > 0 in every lane; masked kernel lanes carry a blend value of 1.0.
///
/// Deliberately `static` (internal linkage): kernel translation units are
/// compiled under different ISA flags, and a shared inline definition could
/// be merged by the linker into whichever TU's encoding it saw first.
[[maybe_unused]] static void force_scaling_lanes(
    ForceLawKind kind, const double* k, const double* r, const double* sigma,
    const double* tau, const double* x, double* out) noexcept {
  switch (kind) {
    case ForceLawKind::kSpring:
      for (std::size_t l = 0; l < kForceLanes; ++l) {
        out[l] = k[l] * (1.0 - r[l] / x[l]);
      }
      break;
    case ForceLawKind::kDoubleGaussian:
      for (std::size_t l = 0; l < kForceLanes; ++l) {
        out[l] = k[l] * (std::exp(-x[l] * x[l] / (2.0 * sigma[l])) /
                             (sigma[l] * sigma[l]) -
                         std::exp(-x[l] * x[l] / (2.0 * tau[l])));
      }
      break;
  }
}

/// Arbitrary-length batched evaluation: full kForceLanes blocks through
/// force_scaling_lanes, the tail padded with its last valid element (the
/// padding lanes are computed and discarded). Bitwise-identical to mapping
/// force_scaling over the spans. All spans must share x's length.
void force_scaling_batch(ForceLawKind kind, std::span<const double> k,
                         std::span<const double> r, std::span<const double> sigma,
                         std::span<const double> tau, std::span<const double> x,
                         std::span<double> out);

/// The distance at which the force scaling crosses zero (repulsion turns to
/// attraction), if any, searched on (0, search_limit]. For F¹ this is exactly
/// p.r; for F² it exists in the σ > τ regime and is found by bisection.
[[nodiscard]] std::optional<double> preferred_distance(
    ForceLawKind kind, const PairParams& p, double search_limit = 100.0);

/// Chooses F² parameters (σ solved numerically, given τ and k) so the zero
/// crossing lands at `target_r`. This realizes figure captions that specify
/// F² interactions by their "preferred distance radii". Requires target_r > 0.
[[nodiscard]] PairParams f2_params_for_preferred_distance(double target_r,
                                                          double k = 1.0,
                                                          double tau = 1.0);

/// Complete interaction specification: the law family plus all parameter
/// matrices. Immutable once built; validated on construction.
class InteractionModel {
 public:
  /// Builds a model for `types` particle types with all pair parameters set
  /// to the given defaults.
  InteractionModel(ForceLawKind kind, std::size_t types,
                   PairParams defaults = {});

  /// Builds a model from explicit matrices (all must be `types`×`types`).
  InteractionModel(ForceLawKind kind, SymmetricMatrix k, SymmetricMatrix r,
                   SymmetricMatrix sigma, SymmetricMatrix tau);

  [[nodiscard]] ForceLawKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t types() const noexcept { return k_.types(); }

  /// Parameters of the (a, b) pair.
  [[nodiscard]] PairParams pair(std::size_t a, std::size_t b) const {
    return {k_(a, b), r_(a, b), sigma_(a, b), tau_(a, b)};
  }

  /// F_αβ(x) for the (a, b) pair.
  [[nodiscard]] double scaling(std::size_t a, std::size_t b, double x) const {
    return force_scaling(kind_, pair(a, b), x);
  }

  /// Mutators (builder style); entries are set symmetrically.
  InteractionModel& set_k(std::size_t a, std::size_t b, double v);
  InteractionModel& set_r(std::size_t a, std::size_t b, double v);
  InteractionModel& set_sigma(std::size_t a, std::size_t b, double v);
  InteractionModel& set_tau(std::size_t a, std::size_t b, double v);

  /// Access to the underlying matrices.
  [[nodiscard]] const SymmetricMatrix& k_matrix() const noexcept { return k_; }
  [[nodiscard]] const SymmetricMatrix& r_matrix() const noexcept { return r_; }
  [[nodiscard]] const SymmetricMatrix& sigma_matrix() const noexcept {
    return sigma_;
  }
  [[nodiscard]] const SymmetricMatrix& tau_matrix() const noexcept {
    return tau_;
  }

 private:
  void validate() const;

  ForceLawKind kind_;
  SymmetricMatrix k_, r_, sigma_, tau_;
};

}  // namespace sops::sim
