// Euler–Maruyama integration of the overdamped SDE (Eq. 6):
//
//   z_i(t+dt) = z_i(t) + dt · drift_i(t) + √dt · ς · ξ,  ξ ~ N(0, I₂),
//
// where ς² is the paper's noise variance (0.05 throughout its experiments).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "rng/engine.hpp"
#include "sim/forces.hpp"
#include "sim/particle_system.hpp"

namespace sops::sim {

/// Parameters of the stochastic integrator.
struct IntegratorParams {
  /// Time step. One recorded paper "time step" equals one integrator step.
  double dt = 0.05;
  /// Variance of the additive white Gaussian noise w (paper: 0.05).
  double noise_variance = 0.05;
  /// Stability guard: per-step displacement magnitude cap (before noise).
  /// F¹'s drift is bounded, but large k_αβ with many neighbors inside r_c
  /// can overshoot an explicit step; the cap preserves equilibria (it only
  /// engages far from them). 0 disables the cap.
  double max_step = 2.0;
};

/// Applies the position update of one Euler–Maruyama step given the
/// already-accumulated drift of the current configuration. Draws the noise
/// from `engine` in particle order. Split out so the engine's stepping loop
/// can share one drift computation between integration, recording, and
/// equilibrium detection.
void apply_euler_maruyama_update(ParticleSystem& system,
                                 std::span<const geom::Vec2> drift,
                                 const IntegratorParams& params,
                                 rng::Xoshiro256& engine);

/// One Euler–Maruyama step, in place. `drift_scratch` avoids per-step
/// allocation; it is resized as needed. Returns the total drift norm
/// Σ‖drift_i‖ of the *pre-step* configuration (the equilibrium statistic),
/// so callers get it for free.
double euler_maruyama_step(ParticleSystem& system, const InteractionModel& model,
                           double cutoff_radius, const IntegratorParams& params,
                           rng::Xoshiro256& engine,
                           std::vector<geom::Vec2>& drift_scratch,
                           NeighborMode mode = NeighborMode::kAuto);

/// Same step through a persistent neighbor backend (no per-step index
/// construction); otherwise identical contract and identical results.
double euler_maruyama_step(ParticleSystem& system, const InteractionModel& model,
                           double cutoff_radius, const IntegratorParams& params,
                           rng::Xoshiro256& engine,
                           std::vector<geom::Vec2>& drift_scratch,
                           geom::NeighborBackend& backend);

}  // namespace sops::sim
