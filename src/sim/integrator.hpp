// Euler–Maruyama integration of the overdamped SDE (Eq. 6):
//
//   z_i(t+dt) = z_i(t) + dt · drift_i(t) + √dt · ς · ξ,  ξ ~ N(0, I₂),
//
// where ς² is the paper's noise variance (0.05 throughout its experiments).
#pragma once

#include <cmath>
#include <vector>

#include "rng/engine.hpp"
#include "sim/forces.hpp"
#include "sim/particle_system.hpp"

namespace sops::sim {

/// Parameters of the stochastic integrator.
struct IntegratorParams {
  /// Time step. One recorded paper "time step" equals one integrator step.
  double dt = 0.05;
  /// Variance of the additive white Gaussian noise w (paper: 0.05).
  double noise_variance = 0.05;
  /// Stability guard: per-step displacement magnitude cap (before noise).
  /// F¹'s drift is bounded, but large k_αβ with many neighbors inside r_c
  /// can overshoot an explicit step; the cap preserves equilibria (it only
  /// engages far from them). 0 disables the cap.
  double max_step = 2.0;
};

/// One Euler–Maruyama step, in place. `drift_scratch` avoids per-step
/// allocation; it is resized as needed. Returns the total drift norm
/// Σ‖drift_i‖ of the *pre-step* configuration (the equilibrium statistic),
/// so callers get it for free.
double euler_maruyama_step(ParticleSystem& system, const InteractionModel& model,
                           double cutoff_radius, const IntegratorParams& params,
                           rng::Xoshiro256& engine,
                           std::vector<geom::Vec2>& drift_scratch,
                           NeighborMode mode = NeighborMode::kAuto);

}  // namespace sops::sim
