// Pairwise force accumulation — the right-hand side of the paper's
// equation of motion (Eq. 6) without the noise term:
//
//   drift_i = Σ_{j ∈ N_rc(i)}  −F_αβ(‖Δz_ij‖) · Δz_ij,   Δz_ij = z_i − z_j.
//
// Two interchangeable neighbor strategies are provided; both must produce
// identical drifts (tested): all-pairs O(n²), and a hashed cell grid that is
// O(n) per step for bounded density and is selected automatically for finite
// cut-off radii on large collectives.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/force_law.hpp"
#include "sim/particle_system.hpp"

namespace sops::sim {

/// Neighbor-search strategy selection.
enum class NeighborMode {
  kAuto,       ///< grid for finite r_c and n ≥ 64, all-pairs otherwise
  kAllPairs,   ///< O(n²) reference path; required for r_c = ∞
  kCellGrid,   ///< hashed uniform grid; requires finite r_c
  /// Cell-like tessellation (extension): interactions only between direct
  /// Delaunay neighbors, the neighbor model of the paper's base reference
  /// [10] that §4.1 deliberately drops. A finite r_c additionally prunes
  /// tessellation edges longer than the cut-off.
  kDelaunay,
};

/// The value used for an unbounded interaction radius (r_c = ∞).
inline constexpr double kUnboundedRadius = std::numeric_limits<double>::infinity();

/// Computes drift_i for every particle into `out` (resized to n).
///
/// Pairs at exactly zero distance are skipped: the force direction is
/// undefined there, and with continuous noise the event has probability
/// zero; skipping (rather than throwing) keeps hand-constructed degenerate
/// configurations usable in tests.
void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode = NeighborMode::kAuto);

/// Sum over particles of ‖drift_i‖₂ — the residual-force statistic the
/// paper's equilibrium criterion thresholds (§4.1).
[[nodiscard]] double total_drift_norm(std::span<const geom::Vec2> drift);

}  // namespace sops::sim
