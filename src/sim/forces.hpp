// Pairwise force accumulation — the right-hand side of the paper's
// equation of motion (Eq. 6) without the noise term:
//
//   drift_i = Σ_{j ∈ N_rc(i)}  −F_αβ(‖Δz_ij‖) · Δz_ij,   Δz_ij = z_i − z_j.
//
// Interchangeable neighbor strategies are provided; all must produce
// identical drifts for the same pair set (tested): all-pairs O(n²), a
// hashed cell grid that is O(n) per step for bounded density, and the
// Delaunay-tessellation extension. The enum-mode entry point rebuilds its
// index from scratch on every call (the reference / baseline path); the
// engine's hot loop instead reuses a persistent geom::NeighborBackend,
// which enumerates the same pairs in the same order without per-step
// construction.
#pragma once

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "geom/neighbor_backend.hpp"
#include "geom/vec2.hpp"
#include "sim/force_law.hpp"
#include "sim/particle_system.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::sim {

/// Neighbor-search strategy selection.
enum class NeighborMode {
  kAuto,       ///< grid for finite r_c and n ≥ 64, all-pairs otherwise
  kAllPairs,   ///< O(n²) reference path; required for r_c = ∞
  kCellGrid,   ///< hashed uniform grid; requires finite r_c
  /// Cell-like tessellation (extension): interactions only between direct
  /// Delaunay neighbors, the neighbor model of the paper's base reference
  /// [10] that §4.1 deliberately drops. A finite r_c additionally prunes
  /// tessellation edges longer than the cut-off.
  kDelaunay,
  /// Verlet/skin cached pair lists (geom::VerletListBackend): candidates
  /// within r_c + skin are cached and only rebuilt once a particle drifted
  /// past skin/2 — quiet steps skip index construction entirely. Opt-in:
  /// rebuild *timing* is trajectory-dependent, so cross-mode golden pins do
  /// not transfer and kAuto never selects it (within-list enumeration order
  /// stays frozen, so runs remain bitwise-reproducible per mode). Requires
  /// finite r_c; skin comes from SimulationConfig::verlet_skin.
  kVerletSkin,
};

/// The value used for an unbounded interaction radius (r_c = ∞).
inline constexpr double kUnboundedRadius = std::numeric_limits<double>::infinity();

/// Dense per-type-pair parameter table, hoisted out of the pair loop. The
/// matrix accessors re-derive triangle indices and bounds-check on every
/// call, which dominates the per-pair cost for cheap force laws; the table
/// evaluates the identical formulas on the identical parameters, so drifts
/// are bitwise-unchanged. Build once per run (SimulationWorkspace caches
/// one) and reuse across steps.
///
/// Storage is one lane per parameter (k/r/σ/τ), dense over (a, b) at
/// a·types + b — the layout the batched kernels gather candidate parameters
/// from by type id (see pair_base / the *_data accessors).
class PairScalingTable {
 public:
  explicit PairScalingTable(const InteractionModel& model)
      : kind_(model.kind()),
        types_(model.types()),
        k_(types_ * types_),
        r_(types_ * types_),
        sigma_(types_ * types_),
        tau_(types_ * types_) {
    for (std::size_t a = 0; a < types_; ++a) {
      for (std::size_t b = 0; b < types_; ++b) {
        const PairParams p = model.pair(a, b);
        k_[a * types_ + b] = p.k;
        r_[a * types_ + b] = p.r;
        sigma_[a * types_ + b] = p.sigma;
        tau_[a * types_ + b] = p.tau;
      }
    }
  }

  /// Number of particle types the table covers.
  [[nodiscard]] std::size_t types() const noexcept { return types_; }

  /// The force-law family every entry evaluates.
  [[nodiscard]] ForceLawKind kind() const noexcept { return kind_; }

  /// F_αβ(x); same expressions as force_scaling(). x must be positive.
  [[nodiscard]] double operator()(TypeId a, TypeId b, double x) const {
    const std::size_t e = a * types_ + b;
    switch (kind_) {
      case ForceLawKind::kSpring:
        return k_[e] * (1.0 - r_[e] / x);
      case ForceLawKind::kDoubleGaussian:
        return k_[e] * (std::exp(-x * x / (2.0 * sigma_[e])) /
                            (sigma_[e] * sigma_[e]) -
                        std::exp(-x * x / (2.0 * tau_[e])));
    }
    return 0.0;  // unreachable
  }

  /// Base entry index of row type a: entry(a, b) = pair_base(a) + b. The
  /// kernels hoist this per particle and gather per-candidate parameters
  /// from the lane pointers below.
  [[nodiscard]] std::size_t pair_base(TypeId a) const noexcept {
    return static_cast<std::size_t>(a) * types_;
  }

  [[nodiscard]] const double* k_data() const noexcept { return k_.data(); }
  [[nodiscard]] const double* r_data() const noexcept { return r_.data(); }
  [[nodiscard]] const double* sigma_data() const noexcept {
    return sigma_.data();
  }
  [[nodiscard]] const double* tau_data() const noexcept { return tau_.data(); }

 private:
  ForceLawKind kind_;
  std::size_t types_;
  std::vector<double> k_;      // parameter lanes, dense over a·types + b
  std::vector<double> r_;
  std::vector<double> sigma_;
  std::vector<double> tau_;
};

/// Resolves kAuto to the concrete strategy for a collective of `n`
/// particles and cut-off `cutoff_radius`; concrete modes pass through
/// (kAuto never picks kVerletSkin — it is opt-in, see the enum). Never
/// returns kAuto; throws PreconditionError on a mode value outside the
/// enum instead of silently passing it through.
[[nodiscard]] NeighborMode resolve_neighbor_mode(NeighborMode mode,
                                                 std::size_t n,
                                                 double cutoff_radius);

/// The backend kind implementing a resolved (non-kAuto) neighbor mode.
[[nodiscard]] geom::NeighborBackendKind neighbor_backend_kind(
    NeighborMode resolved_mode);

/// Computes drift_i for every particle into `out` (resized to n).
///
/// Pairs at exactly zero distance are skipped: the force direction is
/// undefined there, and with continuous noise the event has probability
/// zero; skipping (rather than throwing) keeps hand-constructed degenerate
/// configurations usable in tests.
void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      NeighborMode mode = NeighborMode::kAuto);

/// Drift accumulation through a persistent backend: rebuilds the backend
/// for the current positions, then sums pair drifts in the backend's
/// enumeration order — bitwise-identical to the matching NeighborMode path,
/// but with no per-step index construction.
void accumulate_drift(const ParticleSystem& system, const InteractionModel& model,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend);

/// Same, with a caller-cached scaling table — the engine's steady-state
/// path: no allocation of any kind per step.
///
/// `step_threads` (0 = hardware concurrency) shards the particle loop over
/// the backend's cell-major partition (NeighborBackend::shard_bounds).
/// Shards own disjoint particle ranges and every particle keeps its serial
/// neighbor-enumeration order, so the result is bitwise-identical to
/// `step_threads == 1` for any thread count and any partition. Backends
/// outside this translation unit run serially regardless (their neighbor
/// queries may share scratch state). This overload forks and joins
/// transient workers every call (SpawnExecutor); the engine's hot loop uses
/// the Executor overload below with a persistent pool instead.
void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend,
                      std::size_t step_threads = 1);

/// The pooled steady-state path: shard count and worker cap both come from
/// `executor.width()`, so a run dispatches each step onto the same
/// persistent runners (SimulationWorkspace owns or borrows them) with no
/// per-step thread creation. Partition, enumeration order, and therefore
/// results are bitwise-identical to the `step_threads` overload at the
/// same width.
void accumulate_drift(const ParticleSystem& system, const PairScalingTable& table,
                      double cutoff_radius, std::vector<geom::Vec2>& out,
                      geom::NeighborBackend& backend,
                      support::Executor& executor);

/// Sum over particles of ‖drift_i‖₂ — the residual-force statistic the
/// paper's equilibrium criterion thresholds (§4.1).
[[nodiscard]] double total_drift_norm(std::span<const geom::Vec2> drift);

}  // namespace sops::sim
