#include "sim/workspace.hpp"

#include "sim/simulation.hpp"
#include "support/error.hpp"

namespace sops::sim {

void SimulationWorkspace::prepare(const SimulationConfig& config) {
  const NeighborMode resolved = resolve_neighbor_mode(
      config.neighbor_mode, config.types.size(), config.cutoff_radius);
  const geom::NeighborBackendKind kind = neighbor_backend_kind(resolved);
  if (!backend_ || backend_->kind() != kind) {
    backend_ = geom::make_neighbor_backend(kind);
  }
  scaling_table_.emplace(config.model);
  drift_.reserve(config.types.size());
  step_threads_ = resolve_parallel_policy(config.parallel_policy,
                                          config.types.size(), 1,
                                          config.threads)
                      .step_threads;
}

geom::NeighborBackend& SimulationWorkspace::backend() {
  support::expect(backend_ != nullptr,
                  "SimulationWorkspace::backend: prepare() a run first");
  return *backend_;
}

const PairScalingTable& SimulationWorkspace::scaling_table() const {
  support::expect(scaling_table_.has_value(),
                  "SimulationWorkspace::scaling_table: prepare() a run first");
  return *scaling_table_;
}

}  // namespace sops::sim
