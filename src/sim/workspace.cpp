#include "sim/workspace.hpp"

#include "geom/verlet_list.hpp"
#include "sim/simulation.hpp"
#include "support/error.hpp"

namespace sops::sim {

void SimulationWorkspace::prepare(const SimulationConfig& config) {
  const NeighborMode resolved = resolve_neighbor_mode(
      config.neighbor_mode, config.types.size(), config.cutoff_radius);
  const geom::NeighborBackendKind kind = neighbor_backend_kind(resolved);
  if (!backend_ || backend_->kind() != kind) {
    backend_ = geom::make_neighbor_backend(kind);
  }
  if (kind == geom::NeighborBackendKind::kVerletSkin) {
    auto& verlet = static_cast<geom::VerletListBackend&>(*backend_);
    verlet.set_skin(config.verlet_skin);
    geom::VerletListBackend::AdaptiveSkin adapt;  // target_interval: default
    adapt.enabled = config.verlet_skin_adapt;
    adapt.skin_min = config.verlet_skin_min;
    adapt.skin_max = config.verlet_skin_max;
    verlet.set_adaptive_skin(adapt);
    verlet.set_partial_rebuild(config.verlet_partial_rebuild);
    // A run must not inherit the previous run's frozen enumeration order:
    // if the new initial positions happened to sit within skin/2 of the
    // stale reference build, the list would be reused and the trajectory
    // would depend on workspace history (and thus on how an ensemble's
    // samples were chunked over workers). One forced build per run keeps
    // every run a pure function of its config; capacity stays warm.
    verlet.invalidate();
  }
  scaling_table_.emplace(config.model);
  drift_.reserve(config.types.size());

  if (lent_executor_ != nullptr) {
    // The lender already resolved the budget; its width is authoritative.
    step_threads_ = lent_executor_->width();
    return;
  }
  step_threads_ = resolve_parallel_policy(config.parallel_policy,
                                          config.types.size(), 1,
                                          config.threads)
                      .step_threads;
  // The pool persists across prepare() calls (and therefore across runs);
  // it is only rebuilt when the resolved width actually changes. A width of
  // 1 keeps any existing pool parked and steps serially.
  if (step_threads_ > 1 &&
      (!owned_pool_ || owned_pool_->width() != step_threads_)) {
    owned_pool_ = std::make_unique<support::TaskPool>(step_threads_);
  }
}

support::Executor& SimulationWorkspace::step_executor() noexcept {
  if (lent_executor_ != nullptr) return *lent_executor_;
  if (step_threads_ > 1 && owned_pool_ != nullptr) {
    return owned_pool_->executor();
  }
  return serial_executor_;
}

const geom::VerletListBackend* SimulationWorkspace::verlet_backend()
    const noexcept {
  return dynamic_cast<const geom::VerletListBackend*>(backend_.get());
}

geom::NeighborBackend& SimulationWorkspace::backend() {
  support::expect(backend_ != nullptr,
                  "SimulationWorkspace::backend: prepare() a run first");
  return *backend_;
}

const PairScalingTable& SimulationWorkspace::scaling_table() const {
  support::expect(scaling_table_.has_value(),
                  "SimulationWorkspace::scaling_table: prepare() a run first");
  return *scaling_table_;
}

}  // namespace sops::sim
