#include "sim/force_law.hpp"

#include <cmath>

namespace sops::sim {

double force_scaling(ForceLawKind kind, const PairParams& p, double x) {
  support::expect(x > 0.0, "force_scaling: distance must be positive");
  switch (kind) {
    case ForceLawKind::kSpring:
      return p.k * (1.0 - p.r / x);
    case ForceLawKind::kDoubleGaussian:
      return p.k * (std::exp(-x * x / (2.0 * p.sigma)) / (p.sigma * p.sigma) -
                    std::exp(-x * x / (2.0 * p.tau)));
  }
  return 0.0;  // unreachable
}

double force_scaling_derivative(ForceLawKind kind, const PairParams& p,
                                double x) {
  support::expect(x > 0.0, "force_scaling_derivative: distance must be positive");
  switch (kind) {
    case ForceLawKind::kSpring:
      return p.k * p.r / (x * x);
    case ForceLawKind::kDoubleGaussian:
      return p.k * (-x / p.sigma * std::exp(-x * x / (2.0 * p.sigma)) /
                        (p.sigma * p.sigma) +
                    x / p.tau * std::exp(-x * x / (2.0 * p.tau)));
  }
  return 0.0;  // unreachable
}

void force_scaling_batch(ForceLawKind kind, std::span<const double> k,
                         std::span<const double> r, std::span<const double> sigma,
                         std::span<const double> tau, std::span<const double> x,
                         std::span<double> out) {
  const std::size_t n = x.size();
  support::expect(k.size() == n && r.size() == n && sigma.size() == n &&
                      tau.size() == n && out.size() == n,
                  "force_scaling_batch: span sizes disagree");
  std::size_t b = 0;
  for (; b + kForceLanes <= n; b += kForceLanes) {
    force_scaling_lanes(kind, k.data() + b, r.data() + b, sigma.data() + b,
                        tau.data() + b, x.data() + b, out.data() + b);
  }
  if (b < n) {
    const std::size_t m = n - b;
    double kp[kForceLanes];
    double rp[kForceLanes];
    double sp[kForceLanes];
    double tp[kForceLanes];
    double xp[kForceLanes];
    double op[kForceLanes];
    for (std::size_t l = 0; l < kForceLanes; ++l) {
      const std::size_t c = b + (l < m ? l : m - 1);
      kp[l] = k[c];
      rp[l] = r[c];
      sp[l] = sigma[c];
      tp[l] = tau[c];
      xp[l] = x[c];
    }
    force_scaling_lanes(kind, kp, rp, sp, tp, xp, op);
    for (std::size_t l = 0; l < m; ++l) out[b + l] = op[l];
  }
}

std::optional<double> preferred_distance(ForceLawKind kind, const PairParams& p,
                                         double search_limit) {
  if (kind == ForceLawKind::kSpring) return p.r;

  // F²: the crossing, if it exists, solves
  //   e^{−x²/2σ}/σ² = e^{−x²/2τ}  ⇔  x² (1/2τ − 1/2σ) = 2 ln σ,
  // which has a positive solution exactly when sign(ln σ) == sign(σ − τ).
  if (p.sigma == p.tau) return std::nullopt;
  const double numerator = 4.0 * std::log(p.sigma) * p.sigma * p.tau;
  const double denominator = p.sigma - p.tau;
  const double x_sq = numerator / denominator;
  if (!(x_sq > 0.0)) return std::nullopt;
  const double x = std::sqrt(x_sq);
  if (x > search_limit) return std::nullopt;
  return x;
}

PairParams f2_params_for_preferred_distance(double target_r, double k,
                                            double tau) {
  support::expect(target_r > 0.0,
                  "f2_params_for_preferred_distance: radius must be positive");
  support::expect(tau > 0.0,
                  "f2_params_for_preferred_distance: tau must be positive");
  // Solve g(σ) := 4 σ τ ln σ / (σ − τ) − r² = 0 for σ > τ (repulsive core,
  // attractive tail). g is continuous and increasing in σ on (τ, ∞) for
  // τ ≥ 1; bisection on a bracket grown geometrically.
  const double r_sq = target_r * target_r;
  auto crossing_sq = [tau](double sigma) {
    return 4.0 * sigma * tau * std::log(sigma) / (sigma - tau);
  };
  double lo = tau * (1.0 + 1e-9);
  // As σ → τ⁺, crossing² → 4τ²·(lnτ + 1)·…; evaluate and expand upward.
  double hi = std::max(2.0 * tau, 2.0);
  while (crossing_sq(hi) < r_sq && hi < 1e12) hi *= 2.0;
  support::expect(crossing_sq(hi) >= r_sq,
                  "f2_params_for_preferred_distance: radius unreachable");
  if (crossing_sq(lo) > r_sq) {
    // Requested radius below the σ→τ⁺ limit: shrink τ and retry once.
    return f2_params_for_preferred_distance(target_r, k, tau * 0.5);
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (crossing_sq(mid) < r_sq) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return {k, target_r, 0.5 * (lo + hi), tau};
}

InteractionModel::InteractionModel(ForceLawKind kind, std::size_t types,
                                   PairParams defaults)
    : kind_(kind),
      k_(types, defaults.k),
      r_(types, defaults.r),
      sigma_(types, defaults.sigma),
      tau_(types, defaults.tau) {
  validate();
}

InteractionModel::InteractionModel(ForceLawKind kind, SymmetricMatrix k,
                                   SymmetricMatrix r, SymmetricMatrix sigma,
                                   SymmetricMatrix tau)
    : kind_(kind),
      k_(std::move(k)),
      r_(std::move(r)),
      sigma_(std::move(sigma)),
      tau_(std::move(tau)) {
  support::expect(k_.types() == r_.types() && k_.types() == sigma_.types() &&
                      k_.types() == tau_.types(),
                  "InteractionModel: matrix sizes disagree");
  validate();
}

void InteractionModel::validate() const {
  support::expect(k_.types() > 0, "InteractionModel: needs at least one type");
  support::expect(sigma_.min_entry() > 0.0 || kind_ == ForceLawKind::kSpring,
                  "InteractionModel: sigma must be positive for F2");
  support::expect(tau_.min_entry() > 0.0 || kind_ == ForceLawKind::kSpring,
                  "InteractionModel: tau must be positive for F2");
  support::expect(r_.min_entry() >= 0.0,
                  "InteractionModel: preferred distances must be non-negative");
}

InteractionModel& InteractionModel::set_k(std::size_t a, std::size_t b,
                                          double v) {
  k_.set(a, b, v);
  return *this;
}
InteractionModel& InteractionModel::set_r(std::size_t a, std::size_t b,
                                          double v) {
  support::expect(v >= 0.0, "InteractionModel::set_r: negative radius");
  r_.set(a, b, v);
  return *this;
}
InteractionModel& InteractionModel::set_sigma(std::size_t a, std::size_t b,
                                              double v) {
  support::expect(v > 0.0, "InteractionModel::set_sigma: must be positive");
  sigma_.set(a, b, v);
  return *this;
}
InteractionModel& InteractionModel::set_tau(std::size_t a, std::size_t b,
                                            double v) {
  support::expect(v > 0.0, "InteractionModel::set_tau: must be positive");
  tau_.set(a, b, v);
  return *this;
}

}  // namespace sops::sim
