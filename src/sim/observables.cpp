#include "sim/observables.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geom/rigid_transform.hpp"
#include "support/error.hpp"

namespace sops::sim {

RadialDistribution radial_distribution(std::span<const geom::Vec2> points,
                                       double r_max, std::size_t bins) {
  support::expect(r_max > 0.0, "radial_distribution: r_max must be positive");
  support::expect(bins >= 1, "radial_distribution: need at least one bin");
  const std::size_t n = points.size();
  support::expect(n >= 2, "radial_distribution: need at least two particles");

  const double dr = r_max / static_cast<double>(bins);
  std::vector<double> counts(bins, 0.0);
  std::size_t pairs_in_range = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = geom::dist(points[i], points[j]);
      if (d >= r_max) continue;
      const auto bin = static_cast<std::size_t>(d / dr);
      counts[std::min(bin, bins - 1)] += 2.0;  // both orderings
      ++pairs_in_range;
    }
  }

  RadialDistribution rdf;
  rdf.r.resize(bins);
  rdf.g.resize(bins);
  // Normalization: mean density of *observed* neighbors within r_max, so
  // g integrates the same mass as the ideal gas over the window and peaks
  // are comparable across differently-sized collectives.
  const double window_area = std::numbers::pi * r_max * r_max;
  const double density =
      2.0 * static_cast<double>(pairs_in_range) / (static_cast<double>(n) * window_area);
  for (std::size_t b = 0; b < bins; ++b) {
    const double r_lo = static_cast<double>(b) * dr;
    const double r_hi = r_lo + dr;
    rdf.r[b] = 0.5 * (r_lo + r_hi);
    const double shell_area = std::numbers::pi * (r_hi * r_hi - r_lo * r_lo);
    const double expected = density * shell_area * static_cast<double>(n);
    rdf.g[b] = expected > 0.0 ? counts[b] / expected : 0.0;
  }
  return rdf;
}

double first_peak_height(const RadialDistribution& rdf) {
  // The first local maximum after the initial depleted core.
  for (std::size_t b = 1; b + 1 < rdf.g.size(); ++b) {
    if (rdf.g[b] > 1.0 && rdf.g[b] >= rdf.g[b - 1] && rdf.g[b] >= rdf.g[b + 1]) {
      return rdf.g[b];
    }
  }
  return rdf.g.empty() ? 0.0 : *std::max_element(rdf.g.begin(), rdf.g.end());
}

std::vector<double> mean_squared_displacement(
    std::span<const std::vector<geom::Vec2>> frames) {
  support::expect(!frames.empty(), "mean_squared_displacement: no frames");
  const std::size_t n = frames.front().size();
  std::vector<double> msd;
  msd.reserve(frames.size());
  for (const auto& frame : frames) {
    support::expect(frame.size() == n,
                    "mean_squared_displacement: frame size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += geom::dist_sq(frame[i], frames.front()[i]);
    }
    msd.push_back(n > 0 ? total / static_cast<double>(n) : 0.0);
  }
  return msd;
}

double radius_of_gyration(std::span<const geom::Vec2> points) {
  support::expect(!points.empty(), "radius_of_gyration: empty configuration");
  const geom::Vec2 c = geom::centroid(points);
  double total = 0.0;
  for (const geom::Vec2 p : points) total += geom::dist_sq(p, c);
  return std::sqrt(total / static_cast<double>(points.size()));
}

double cross_type_neighbor_fraction(std::span<const geom::Vec2> points,
                                    std::span<const TypeId> types) {
  support::expect(points.size() == types.size() && points.size() >= 2,
                  "cross_type_neighbor_fraction: invalid inputs");
  std::size_t cross = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t nearest = i;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const double d = geom::dist_sq(points[i], points[j]);
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    if (types[nearest] != types[i]) ++cross;
  }
  return static_cast<double>(cross) / static_cast<double>(points.size());
}

std::vector<double> mean_radius_by_type(std::span<const geom::Vec2> points,
                                        std::span<const TypeId> types,
                                        std::size_t type_count) {
  support::expect(points.size() == types.size() && !points.empty(),
                  "mean_radius_by_type: invalid inputs");
  const geom::Vec2 c = geom::centroid(points);
  std::vector<double> sum(type_count, 0.0);
  std::vector<std::size_t> count(type_count, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    support::expect(types[i] < type_count,
                    "mean_radius_by_type: type id out of range");
    sum[types[i]] += geom::dist(points[i], c);
    ++count[types[i]];
  }
  for (std::size_t t = 0; t < type_count; ++t) {
    if (count[t] > 0) sum[t] /= static_cast<double>(count[t]);
  }
  return sum;
}

}  // namespace sops::sim
