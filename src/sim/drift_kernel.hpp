// Lane-structured pair-drift kernels — the innermost loops of
// accumulate_drift, batched over blocks of support::kSimdWidth candidates.
//
// Two row shapes cover every neighbor backend:
//
//  - DenseRow: the candidates' coordinates and types already sit in
//    contiguous lanes (a cell's 3×3 block gathered once per cell, or the
//    whole particle set for all-pairs). The kernel streams them directly.
//  - IndexedRow: the candidates are an index row (Verlet candidate rows,
//    Delaunay adjacency rows, generic neighbor spans) into the global
//    coordinate/type lanes; the kernel gathers per block.
//
// Both kernels compute, for row particle i,
//
//   drift_i = Σ_{candidates j} −F_αβ(‖Δz_ij‖) · Δz_ij
//
// masking out candidates with Δz = 0 (self in dense blocks, coincident
// pairs — the old path's zero contribution) and those at or beyond the
// cut-off. The candidate mask is idempotent: rows already pruned by the
// cut-off (Delaunay, generic neighbor spans) pass through unchanged.
//
// Bitwise contract (the reason this is a hand-written op sequence and not
// "whatever auto-vectorization does"): candidates are processed in index
// order in blocks of 4 — lane l of block b holds candidate 4b+l, the tail
// padded with the last valid candidate and masked dead. Each lane carries
// its own partial accumulator; the row reduces as ((l0+l1)+l2)+l3. The
// scalar kernels execute this exact sequence on plain arrays, the vector
// kernels on GNU vector types; every lane op is the same IEEE operation
// either way, so scalar and SIMD results are bitwise-identical — which the
// parity fuzzer asserts across every backend. Lane width never varies with
// the ISA (support::kSimdWidth is pinned); AVX2 dispatch only changes the
// instruction encoding of the identical 4-lane sequence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/vec2.hpp"
#include "sim/forces.hpp"

namespace sops::geom {
class CellGrid;
struct GatherScratch;
}  // namespace sops::geom

namespace sops::sim {

/// A particle against candidates whose coordinates/types are already
/// gathered into contiguous lanes. `cand_*` must stay valid for the call.
struct DenseRow {
  double xi;
  double yi;
  TypeId type_i;
  const double* cand_x;
  const double* cand_y;
  const TypeId* cand_type;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
};

/// A particle against an index row into the global coordinate/type lanes.
struct IndexedRow {
  double xi;
  double yi;
  TypeId type_i;
  const double* xs;
  const double* ys;
  const TypeId* types;
  const std::uint32_t* candidates;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
};

/// A contiguous run of cells of a grid — one shard chunk of the cell-grid
/// drift path — processed in a single kernel call. Rows and candidates
/// stream from bucket-ordered lanes (`sx[k]` = x of CSR entry k), so the
/// kernel call overhead and the scaling-table loads are paid once per
/// chunk, each cell's 3×3 block is bulk-copied from the contiguous spans
/// of geom::CellGrid::block_spans(), and the per-row arithmetic is exactly
/// DenseRow's — the chunk entry changes scheduling, never the sequence.
struct DenseChunk {
  const double* sx;             ///< bucket-ordered x: sx[k] = x[order[k]]
  const double* sy;             ///< bucket-ordered y
  const TypeId* stype;          ///< bucket-ordered types
  const std::uint32_t* order;   ///< CSR entries: slot k → particle index
  const std::uint32_t* starts;  ///< CSR bucket starts (cell_count + 1)
  const geom::CellGrid* grid;   ///< block_spans() source for each cell
  std::size_t cell_begin;       ///< first cell of the chunk
  std::size_t cell_end;         ///< one past the last cell
  geom::GatherScratch* scratch; ///< per-shard candidate lane buffers
  geom::Vec2* out;              ///< drift output, indexed by particle id
  double cutoff_sq;
};

/// The kernel set accumulate_drift dispatches through. Plain function
/// pointers: the AVX2 variants live behind a CPUID check, and no vector
/// type ever crosses this ABI boundary.
struct DriftKernels {
  geom::Vec2 (*dense)(const PairScalingTable& table, const DenseRow& row);
  geom::Vec2 (*indexed)(const PairScalingTable& table, const IndexedRow& row);
  void (*dense_chunk)(const PairScalingTable& table, const DenseChunk& chunk);
  /// Σ‖drift_i‖ with the summation strictly in index order — only the
  /// independent per-element norms are batched, so every variant returns
  /// the scalar loop's exact bits.
  double (*drift_norm)(const geom::Vec2* drift, std::size_t n);
};

/// Kernels for the current support::simd_policy(): the scalar reference
/// pair under kScalar, otherwise the vector pair for the best ISA this
/// build carries and the CPU supports. Cheap; call per accumulation.
[[nodiscard]] const DriftKernels& select_drift_kernels() noexcept;

/// The scalar reference kernels, unconditionally — the anchor the parity
/// fuzzer compares every other configuration against.
[[nodiscard]] const DriftKernels& scalar_drift_kernels() noexcept;

}  // namespace sops::sim
